"""Unit tests for the sort representation."""

import pytest

from repro.smtlib.sorts import (
    BOOL,
    INT,
    REAL,
    Sort,
    array_sort,
    bag_sort,
    bitvec_sort,
    finite_field_sort,
    is_bitvec,
    is_builtin,
    is_container,
    is_numeric,
    relation_sort,
    seq_sort,
    set_sort,
    tuple_sort,
)


def test_rendering():
    assert BOOL.to_smtlib() == "Bool"
    assert bitvec_sort(8).to_smtlib() == "(_ BitVec 8)"
    assert seq_sort(INT).to_smtlib() == "(Seq Int)"
    assert array_sort(INT, seq_sort(BOOL)).to_smtlib() == "(Array Int (Seq Bool))"
    assert finite_field_sort(7).to_smtlib() == "(_ FiniteField 7)"


def test_equality_and_hashing():
    assert bitvec_sort(8) == bitvec_sort(8)
    assert bitvec_sort(8) != bitvec_sort(16)
    assert len({seq_sort(INT), seq_sort(INT), set_sort(INT)}) == 2


def test_width_accessor():
    assert bitvec_sort(12).width == 12
    with pytest.raises(ValueError):
        _ = INT.width


def test_constructor_validation():
    with pytest.raises(ValueError):
        bitvec_sort(0)
    with pytest.raises(ValueError):
        finite_field_sort(1)


def test_relation_is_set_of_tuple():
    rel = relation_sort(INT, BOOL)
    assert rel.name == "Set"
    assert rel.element().name == "Tuple"
    assert rel.element().args == (INT, BOOL)
    assert tuple_sort() == Sort("UnitTuple")


def test_classification():
    assert is_numeric(INT) and is_numeric(REAL) and not is_numeric(BOOL)
    assert is_bitvec(bitvec_sort(4))
    assert is_container(bag_sort(INT))
    assert is_builtin(seq_sort(INT))
    assert not is_builtin(Sort("Person"))


def test_walk():
    nested = array_sort(INT, seq_sort(BOOL))
    assert list(nested.walk()) == [nested, INT, seq_sort(BOOL), BOOL]
