"""Tests for the ground-term evaluator and the shared literal operator
table: SMT-LIB semantics for Euclidean division, total bit-vector division,
string operations, short-circuiting, and evaluation errors."""

from fractions import Fraction

import pytest

from repro.errors import EvaluationError
from repro.smtlib import DeclarationContext, evaluate, evaluate_value, parse_term, simplify
from repro.smtlib.sorts import BOOL, INT
from repro.smtlib.terms import Constant, int_const


def ev(text, bindings=None):
    return evaluate_value(parse_term(text, _ctx()), bindings)


def _ctx():
    context = DeclarationContext()
    context.declare_const("x", INT)
    return context


# -- Core --------------------------------------------------------------------


def test_core_semantics():
    assert ev("(and true true false)") is False
    assert ev("(or false true)") is True
    assert ev("(xor true true true)") is True
    assert ev("(=> true false)") is False
    assert ev("(=> false false)") is True
    assert ev("(= 1 1 1)") is True
    assert ev("(distinct 1 2 3)") is True
    assert ev("(distinct 1 2 1)") is False
    assert ev("(ite (< 1 2) 10 20)") == 10
    assert ev("(not false)") is True


def test_short_circuit_skips_unevaluable_branches():
    # and/or/ite must not evaluate arguments the logic does not need:
    # (div 1 0) is unspecified and would otherwise raise.
    assert ev("(and false (= (div 1 0) 0))") is False
    assert ev("(or true (= (div 1 0) 0))") is True
    assert ev("(ite true 1 (div 1 0))") == 1


# -- Ints / Reals ------------------------------------------------------------


def test_euclidean_div_mod():
    # SMT-LIB div/mod: 0 <= mod < |divisor|.
    assert ev("(div 7 2)") == 3 and ev("(mod 7 2)") == 1
    assert ev("(div (- 7) 2)") == -4 and ev("(mod (- 7) 2)") == 1
    assert ev("(div 7 (- 2))") == -3 and ev("(mod 7 (- 2))") == 1
    assert ev("(div (- 7) (- 2))") == 4 and ev("(mod (- 7) (- 2))") == 1


def test_real_arithmetic_is_exact():
    assert ev("(/ 1.0 3.0)") == Fraction(1, 3)
    assert ev("(+ 0.1 0.2)") == Fraction(3, 10)
    assert ev("(to_int 3.7)") == 3
    assert ev("(to_int (- 3.7))") == -4  # floor
    assert ev("(is_int 2.0)") is True
    assert ev("(to_real 2)") == Fraction(2)
    assert ev("((_ divisible 3) 9)") is True


class TestEuclideanEdgeCases:
    """Dedicated regression coverage for the negative-divisor corners of
    SMT-LIB ``div``/``mod`` (Euclidean semantics: the remainder is
    always in ``[0, |divisor|)``, whatever the signs)."""

    @pytest.mark.parametrize(
        "dividend,divisor",
        [
            (a, b)
            for a in (-13, -7, -3, -1, 0, 1, 3, 7, 13)
            for b in (-9, -5, -2, -1, 1, 2, 5, 9)
        ],
    )
    def test_division_identity_and_remainder_range(self, dividend, divisor):
        def lit(value):
            return str(value) if value >= 0 else f"(- {-value})"

        quotient = ev(f"(div {lit(dividend)} {lit(divisor)})")
        remainder = ev(f"(mod {lit(dividend)} {lit(divisor)})")
        # The defining identity and the Euclidean remainder range.
        assert dividend == divisor * quotient + remainder
        assert 0 <= remainder < abs(divisor)

    def test_negative_divisor_spot_values(self):
        # div rounds *toward* making the remainder non-negative: for a
        # negative divisor the quotient rounds up.
        assert ev("(div 1 (- 2))") == 0 and ev("(mod 1 (- 2))") == 1
        assert ev("(div (- 1) (- 2))") == 1 and ev("(mod (- 1) (- 2))") == 1
        assert ev("(div 6 (- 3))") == -2 and ev("(mod 6 (- 3))") == 0
        assert ev("(div (- 6) (- 3))") == 2 and ev("(mod (- 6) (- 3))") == 0
        assert ev("(div 5 (- 3))") == -1 and ev("(mod 5 (- 3))") == 2
        assert ev("(div (- 5) (- 3))") == 2 and ev("(mod (- 5) (- 3))") == 1

    def test_unit_divisors(self):
        assert ev("(div (- 7) 1)") == -7 and ev("(mod (- 7) 1)") == 0
        assert ev("(div (- 7) (- 1))") == 7 and ev("(mod (- 7) (- 1))") == 0

    def test_chained_div_folds_left(self):
        # (div a b c) is ((a div b) div c), Euclidean at every step.
        assert ev("(div (- 100) 7 (- 3))") == 5  # -100 div 7 = -15; -15 div -3 = 5
        assert ev("(div (- 100) (- 7) 3)") == 5  # -100 div -7 = 15; 15 div 3 = 5

    def test_simplifier_agrees_on_negative_divisors(self):
        # The simplifier folds through the same operator table.
        for text in ["(div (- 7) (- 2))", "(mod (- 7) (- 2))", "(mod 7 (- 2))"]:
            term = parse_term(text)
            assert simplify(term) is evaluate(term)


def test_division_by_zero_is_unspecified():
    with pytest.raises(EvaluationError):
        ev("(div 1 0)")
    with pytest.raises(EvaluationError):
        ev("(mod 1 0)")
    with pytest.raises(EvaluationError):
        ev("(/ 1.0 0.0)")


# -- BitVec ------------------------------------------------------------------


def test_bitvec_semantics():
    assert ev("(bvadd #xff #x02)") == 1  # wraps
    assert ev("(bvudiv #x05 #x00)") == 255  # total: all-ones
    assert ev("(bvurem #x05 #x00)") == 5  # total: dividend
    assert ev("(bvsdiv #xf8 #x02)") == 0xFC  # -8 / 2 = -4
    assert ev("(bvsrem #xf8 #x03)") == 0xFE  # -8 rem 3 = -2 (dividend sign)
    assert ev("(bvsmod #xf8 #x03)") == 0x01  # -8 smod 3 = 1 (divisor sign)
    assert ev("(bvshl #x01 #x09)") == 0  # over-shift
    assert ev("(bvashr #x80 #x01)") == 0xC0  # arithmetic shift keeps sign
    assert ev("(concat #b1 #b0)") == 2
    assert ev("((_ extract 3 0) #xab)") == 0xB
    assert ev("((_ sign_extend 8) #x80)") == 0xFF80
    assert ev("((_ rotate_right 4) #xab)") == 0xBA
    assert ev("((_ repeat 2) #xa)") == 0xAA
    assert ev("(bvslt #xff #x00)") is True  # -1 < 0


# -- Strings -----------------------------------------------------------------


def test_string_semantics():
    assert ev('(str.++ "a" "b" "c")') == "abc"
    assert ev('(str.len "abc")') == 3
    assert ev('(str.at "abc" 5)') == ""
    assert ev('(str.substr "abc" 1 10)') == "bc"
    assert ev('(str.substr "abc" 5 1)') == ""
    assert ev('(str.indexof "abcabc" "bc" 2)') == 4
    assert ev('(str.indexof "abc" "z" 0)') == -1
    assert ev('(str.replace "aaa" "a" "b")') == "baa"
    assert ev('(str.replace_all "aaa" "a" "b")') == "bbb"
    assert ev('(str.to_int "007")') == 7
    assert ev('(str.to_int "-7")') == -1
    assert ev("(str.from_int (- 7))") == ""
    assert ev('(str.prefixof "ab" "abc")') is True
    assert ev('(str.suffixof "bc" "abc")') is True
    assert ev('(str.contains "abc" "z")') is False


# -- Environments and errors -------------------------------------------------


def test_environment_bindings():
    term = parse_term("(+ x 1)", _ctx())
    assert evaluate_value(term, {"x": int_const(41)}) == 42
    assert evaluate(term, {"x": int_const(41)}) is int_const(42)


def test_binding_sort_mismatch_raises():
    term = parse_term("(+ x 1)", _ctx())
    with pytest.raises(EvaluationError):
        evaluate(term, {"x": Constant(True, BOOL)})


def test_free_symbol_raises():
    with pytest.raises(EvaluationError):
        ev("(+ x 1)")


def test_quantifier_raises():
    context = _ctx()
    term = parse_term("(forall ((q Int)) (< q x))", context)
    with pytest.raises(EvaluationError):
        evaluate(term, {"x": int_const(0)})


def test_let_evaluates_bindings_in_parallel():
    assert ev("(let ((a 1) (b 2)) (let ((a b) (b a)) (- a b)))") == 1


def test_simplify_and_evaluate_agree_on_ground_terms():
    for text in [
        "(+ 1 (* 2 3) (- 4))",
        "(ite (< 3 2) 1 (div 9 2))",
        "(bvadd (bvmul #x03 #x05) #x01)",
        '(str.len (str.++ "ab" "cd"))',
    ]:
        term = parse_term(text)
        assert simplify(term) is evaluate(term)
