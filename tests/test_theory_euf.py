"""Tests for the theory layer: the EUF congruence closure plugin.

Three layers of assurance:

* **Unit tests** drive :class:`EufTheory` directly: union/find/congruence
  propagation, disequalities, distinguished constants, predicates,
  explanation quality and push/pop rollback.
* **Explanation reproducibility** — every conflict's explanation, asserted
  alone into a *fresh* theory instance, must reproduce a conflict (the
  explanation really is an inconsistent subset, not just a trace).
* **Engine cross-checks** — QF_UF scripts through the full DPLL(T) stack,
  compared against two independent brute-force oracles: finite-model
  enumeration (complete for EUF by the small-model property) and
  atom-polarity enumeration with per-assignment consistency checks.
"""

import itertools
import random

import pytest

from repro import solve_script
from repro.smtlib import (
    BOOL,
    INT,
    Apply,
    Symbol,
    bitvec_sort,
    int_const,
    uninterpreted_sort,
)
from repro.theory import EufTheory, SortValueAllocator, TheoryConflict

U = uninterpreted_sort("U")


def sym(name: str, sort=U) -> Symbol:
    return Symbol(name, sort)


def eq(a, b) -> Apply:
    return Apply("=", (a, b), BOOL)


def f(t) -> Apply:
    return Apply("f", (t,), U)


def g(a, b) -> Apply:
    return Apply("g", (a, b), U)


def p(t) -> Apply:
    return Apply("p", (t,), BOOL)


def fresh_theory() -> EufTheory:
    return EufTheory(uninterpreted={"f", "g", "p"})


def assert_literals(theory: EufTheory, literals) -> TheoryConflict | None:
    conflict = None
    for atom, positive in literals:
        theory.push()
        conflict = theory.assert_literal(atom, positive)
        if conflict is not None:
            break
    return conflict


# ---------------------------------------------------------------------------
# Union / congruence basics.
# ---------------------------------------------------------------------------


class TestCongruenceClosure:
    def test_transitivity(self):
        t = fresh_theory()
        x, y, z = sym("x"), sym("y"), sym("z")
        assert assert_literals(t, [(eq(x, y), True), (eq(y, z), True)]) is None
        assert t.same_class(x, z)

    def test_congruence_propagates_through_functions(self):
        t = fresh_theory()
        x, y = sym("x"), sym("y")
        assert assert_literals(t, [(eq(x, y), True)]) is None
        t.push()
        assert t.assert_literal(eq(f(x), f(x)), True) is None  # registers f x
        t.push()
        assert t.assert_literal(eq(f(y), f(y)), True) is None  # registers f y
        assert t.same_class(f(x), f(y))

    def test_congruence_is_order_independent(self):
        # Register the applications first, merge the arguments afterwards.
        t = fresh_theory()
        x, y = sym("x"), sym("y")
        conflict = assert_literals(
            t, [(eq(f(x), f(y)), False), (eq(x, y), True)]
        )
        assert conflict is not None

    def test_nested_congruence(self):
        t = fresh_theory()
        x, y = sym("x"), sym("y")
        conflict = assert_literals(
            t,
            [
                (eq(x, y), True),
                (eq(f(f(x)), f(f(y))), False),
            ],
        )
        assert conflict is not None

    def test_binary_function_congruence(self):
        t = fresh_theory()
        a, b, c, d = sym("a"), sym("b"), sym("c"), sym("d")
        conflict = assert_literals(
            t,
            [
                (eq(a, c), True),
                (eq(b, d), True),
                (eq(g(a, b), g(c, d)), False),
            ],
        )
        assert conflict is not None

    def test_orbit_collapse(self):
        # f^3(x) = x and f^5(x) = x force f(x) = x.
        t = fresh_theory()
        x = sym("x")
        f3 = f(f(f(x)))
        f5 = f(f(f3))
        assert assert_literals(t, [(eq(f3, x), True), (eq(f5, x), True)]) is None
        assert t.same_class(f(x), x)

    def test_disequality_without_conflict(self):
        t = fresh_theory()
        x, y = sym("x"), sym("y")
        assert assert_literals(t, [(eq(x, y), False)]) is None
        assert not t.same_class(x, y)
        assert t.check() is None

    def test_distinguished_constants_conflict(self):
        t = fresh_theory()
        x = sym("x", INT)
        conflict = assert_literals(
            t, [(eq(x, int_const(1)), True), (eq(x, int_const(2)), True)]
        )
        assert conflict is not None

    def test_predicate_congruence(self):
        t = fresh_theory()
        x, y = sym("x"), sym("y")
        conflict = assert_literals(
            t, [(eq(x, y), True), (p(x), True), (p(y), False)]
        )
        assert conflict is not None

    def test_predicate_both_polarities_conflict(self):
        t = fresh_theory()
        x = sym("x")
        conflict = assert_literals(t, [(p(x), True), (p(x), False)])
        assert conflict is not None


# ---------------------------------------------------------------------------
# Explanations.
# ---------------------------------------------------------------------------


class TestExplanations:
    def reproduce(self, conflict: TheoryConflict) -> None:
        """The explanation must be inconsistent on its own."""
        replay = fresh_theory()
        assert assert_literals(replay, conflict.literals) is not None

    def test_explanation_is_subset_of_asserted(self):
        t = fresh_theory()
        x, y, z, w = sym("x"), sym("y"), sym("z"), sym("w")
        asserted = [
            (eq(x, y), True),
            (eq(w, w), True),  # irrelevant
            (eq(y, z), True),
            (eq(x, z), False),
        ]
        conflict = assert_literals(t, asserted)
        assert conflict is not None
        assert set(conflict.literals) <= set(asserted)
        # The irrelevant literal must not be blamed.
        assert (eq(w, w), True) not in conflict.literals
        self.reproduce(conflict)

    def test_congruence_explanations_recurse(self):
        t = fresh_theory()
        x, y = sym("x"), sym("y")
        asserted = [
            (eq(x, y), True),
            (eq(f(f(x)), f(f(y))), False),
        ]
        conflict = assert_literals(t, asserted)
        assert conflict is not None
        assert set(conflict.literals) == set(asserted)
        self.reproduce(conflict)

    @pytest.mark.parametrize("seed", range(25))
    def test_random_conflicts_reproduce_from_explanations(self, seed):
        rng = random.Random(seed)
        symbols = [sym(f"s{i}") for i in range(4)]
        t = fresh_theory()
        asserted = []
        conflict = None
        for _ in range(30):
            kind = rng.random()
            if kind < 0.5:
                atom = eq(rng.choice(symbols), rng.choice(symbols))
            elif kind < 0.8:
                atom = eq(f(rng.choice(symbols)), rng.choice(symbols))
            else:
                atom = p(rng.choice(symbols))
            literal = (atom, rng.random() < 0.7)
            t.push()
            asserted.append(literal)
            conflict = t.assert_literal(*literal)
            if conflict is not None:
                break
        if conflict is None:
            assert t.check() is None
            return
        assert set(conflict.literals) <= set(asserted)
        self.reproduce(conflict)


# ---------------------------------------------------------------------------
# Push / pop rollback.
# ---------------------------------------------------------------------------


class TestPushPop:
    def test_pop_undoes_merges(self):
        t = fresh_theory()
        x, y, z = sym("x"), sym("y"), sym("z")
        t.push()
        t.assert_literal(eq(x, y), True)
        t.push()
        t.assert_literal(eq(y, z), True)
        assert t.same_class(x, z)
        t.pop()
        assert t.same_class(x, y)
        assert not t.same_class(x, z)
        t.pop()
        assert not t.same_class(x, y)

    def test_pop_clears_conflict(self):
        t = fresh_theory()
        x, y = sym("x"), sym("y")
        t.push()
        t.assert_literal(eq(x, y), False)
        t.push()
        assert t.assert_literal(eq(x, y), True) is not None
        assert t.check() is not None
        t.pop()
        assert t.check() is None
        # The surviving disequality still works after the rollback.
        t.push()
        assert t.assert_literal(eq(y, x), True) is not None

    def test_pop_undoes_congruence_merges(self):
        t = fresh_theory()
        x, y = sym("x"), sym("y")
        t.push()
        t.assert_literal(eq(f(x), f(x)), True)
        t.push()
        t.assert_literal(eq(f(y), f(y)), True)
        t.push()
        t.assert_literal(eq(x, y), True)
        assert t.same_class(f(x), f(y))
        t.pop()
        assert not t.same_class(f(x), f(y))
        # Re-asserting re-derives the congruence.
        t.push()
        t.assert_literal(eq(x, y), True)
        assert t.same_class(f(x), f(y))

    @pytest.mark.parametrize("seed", range(15))
    def test_random_pop_equivalence(self, seed):
        """Assert random literals with checkpoints, pop a random suffix,
        and compare class structure against a fresh replay of the kept
        prefix."""
        rng = random.Random(1000 + seed)
        symbols = [sym(f"r{i}") for i in range(4)]
        literals = []
        for _ in range(12):
            lhs = rng.choice(symbols)
            rhs = f(rng.choice(symbols)) if rng.random() < 0.4 else rng.choice(symbols)
            literals.append((eq(lhs, rhs), rng.random() < 0.8))
        t = fresh_theory()
        applied = 0
        for literal in literals:
            t.push()
            applied += 1
            if t.assert_literal(*literal) is not None:
                break
        keep = rng.randint(0, applied)
        t.pop(applied - keep)
        replay = fresh_theory()
        for literal in literals[:keep]:
            replay.push()
            if replay.assert_literal(*literal) is not None:
                break
        probes = symbols + [f(s) for s in symbols]
        for a, b in itertools.combinations(probes, 2):
            assert t.same_class(a, b) == replay.same_class(a, b), (a, b)
        assert (t.check() is None) == (replay.check() is None)


# ---------------------------------------------------------------------------
# Models and the sort-value allocator.
# ---------------------------------------------------------------------------


class TestModels:
    def test_model_separates_classes(self):
        t = fresh_theory()
        x, y, z = sym("x"), sym("y"), sym("z")
        assert_literals(t, [(eq(x, y), True), (eq(x, z), False)])
        model = t.model(SortValueAllocator())
        assert model is not None
        assert model.values["x"] is model.values["y"]
        assert model.values["x"] is not model.values["z"]

    def test_model_interprets_functions_congruently(self):
        t = fresh_theory()
        x, y = sym("x"), sym("y")
        assert_literals(
            t, [(eq(x, y), True), (eq(f(x), f(x)), True), (eq(f(y), f(y)), True)]
        )
        model = t.model(SortValueAllocator())
        assert model is not None
        interp = model.functions["f"]
        value = model.values["x"]
        assert interp((value,)) is interp((model.values["y"],))

    def test_model_uses_distinguished_constants(self):
        t = fresh_theory()
        a = sym("a", INT)
        assert_literals(t, [(eq(a, int_const(7)), True)])
        model = t.model(SortValueAllocator())
        assert model is not None
        assert model.values["a"].value == 7

    def test_no_model_in_conflict(self):
        t = fresh_theory()
        x = sym("x")
        assert assert_literals(t, [(eq(x, x), False)]) is not None
        assert t.model(SortValueAllocator()) is None


class TestSortValueAllocator:
    def test_int_values_avoid_reserved(self):
        allocator = SortValueAllocator()
        allocator.reserve(int_const(0))
        allocator.reserve(int_const(1))
        assert allocator.fresh(INT).value == 2
        assert allocator.fresh(INT).value == 3

    def test_uninterpreted_values_are_distinct_abstract_constants(self):
        allocator = SortValueAllocator()
        first, second = allocator.fresh(U), allocator.fresh(U)
        assert first is not second
        assert first.qualifier.startswith("@")
        from repro.smtlib import evaluate

        assert evaluate(eq(first, second)).value is False

    def test_bitvec_exhaustion_returns_none(self):
        allocator = SortValueAllocator()
        bv1 = bitvec_sort(1)
        assert allocator.fresh(bv1) is not None
        assert allocator.fresh(bv1) is not None
        assert allocator.fresh(bv1) is None

    def test_bool_is_not_allocated(self):
        assert SortValueAllocator().fresh(BOOL) is None


# ---------------------------------------------------------------------------
# Engine-level QF_UF: brute-force cross-checks.
# ---------------------------------------------------------------------------


def finite_model_answer(assertions, num_symbols, depth):
    """Complete brute force for one-symbol/one-function/one-predicate
    instances: enumerate every interpretation over universes up to the
    small-model bound (the number of distinct subterms)."""
    terms = set()
    for term in assertions:
        terms.update(node for node in term.walk() if node.sort == U)
    bound = max(1, len(terms))
    for size in range(1, bound + 1):
        universe = range(size)
        for fun_table in itertools.product(universe, repeat=size):
            for pred_table in itertools.product((False, True), repeat=size):
                for values in itertools.product(universe, repeat=num_symbols):
                    env = {f"s{i}": values[i] for i in range(num_symbols)}

                    def ev(term):
                        if isinstance(term, Symbol):
                            return env[term.name]
                        assert isinstance(term, Apply)
                        if term.op == "f":
                            return fun_table[ev(term.args[0])]
                        if term.op == "p":
                            return pred_table[ev(term.args[0])]
                        if term.op == "=":
                            return ev(term.args[0]) == ev(term.args[1])
                        if term.op == "not":
                            return not ev(term.args[0])
                        if term.op == "and":
                            return all(ev(a) for a in term.args)
                        if term.op == "or":
                            return any(ev(a) for a in term.args)
                        raise AssertionError(term.op)

                    if all(ev(a) for a in assertions):
                        return "sat"
    return "unsat"


def random_euf_assertions(rng, num_symbols=1, depth=3, count=4):
    symbols = [sym(f"s{i}") for i in range(num_symbols)]

    def chain(term, length):
        for _ in range(length):
            term = f(term)
        return term

    assertions = []
    for _ in range(count):
        lhs = chain(rng.choice(symbols), rng.randint(0, depth))
        rhs = chain(rng.choice(symbols), rng.randint(0, depth))
        atom = p(lhs) if rng.random() < 0.25 else eq(lhs, rhs)
        if rng.random() < 0.35:
            atom = Apply("not", (atom,), BOOL)
        assertions.append(atom)
    return assertions


def script_for(assertions, num_symbols):
    lines = ["(set-logic QF_UF)", "(declare-sort U 0)"]
    for index in range(num_symbols):
        lines.append(f"(declare-const s{index} U)")
    lines.append("(declare-fun f (U) U)")
    lines.append("(declare-fun p (U) Bool)")
    for term in assertions:
        lines.append(f"(assert {term})")
    lines.append("(check-sat)")
    return "\n".join(lines)


class TestEngineEuf:
    @pytest.mark.parametrize("seed", range(60))
    def test_random_chains_match_finite_model_enumeration(self, seed):
        rng = random.Random(seed)
        assertions = random_euf_assertions(rng)
        result = solve_script(script_for(assertions, 1))[0]
        expected = finite_model_answer(assertions, 1, 3)
        assert result.answer == expected, script_for(assertions, 1)
        if result.answer == "sat":
            from test_engine import assert_model_satisfies

            assert_model_satisfies(result)

    @pytest.mark.parametrize("seed", range(40))
    def test_random_two_symbol_instances_match_polarity_enumeration(self, seed):
        """Broader instances: enumerate atom polarities, keep those the
        boolean structure admits, and check EUF-consistency of each with
        an independent fresh closure."""
        rng = random.Random(10_000 + seed)
        assertions = random_euf_assertions(rng, num_symbols=2, depth=2, count=5)
        result = solve_script(script_for(assertions, 2))[0]

        atoms = []
        for term in assertions:
            for node in term.walk():
                if (
                    isinstance(node, Apply)
                    and node.op in ("=", "p")
                    and node not in atoms
                ):
                    atoms.append(node)
        expected = "unsat"
        for polarity in itertools.product((False, True), repeat=len(atoms)):
            env = dict(zip(atoms, polarity))

            def ev(term):
                if term in env:
                    return env[term]
                assert isinstance(term, Apply) and term.op == "not"
                return not ev(term.args[0])

            if not all(ev(a) for a in assertions):
                continue
            closure = fresh_theory()
            if assert_literals(closure, list(env.items())) is None:
                expected = "sat"
                break
        assert result.answer == expected, script_for(assertions, 2)

    def test_euf_corpus_scripts_answer_definitely(self):
        from pathlib import Path

        corpus = Path(__file__).parent / "corpus"
        sat_result = solve_script((corpus / "euf_sat.smt2").read_text())
        assert [r.answer for r in sat_result] == ["sat", "unsat", "sat"]
        unsat_result = solve_script((corpus / "euf_unsat.smt2").read_text())
        assert [r.answer for r in unsat_result] == ["unsat"]

    def test_mixed_euf_and_boolean_structure(self):
        result = solve_script(
            """
            (set-logic QF_UF)
            (declare-sort U 0)
            (declare-const x U)
            (declare-const y U)
            (declare-const b Bool)
            (declare-fun f (U) U)
            (assert (or b (= (f x) (f y))))
            (assert (not b))
            (assert (not (= x y)))
            (check-sat)
            """
        )[0]
        assert result.answer == "sat"
        from test_engine import assert_model_satisfies

        assert_model_satisfies(result)

    def test_unowned_atom_still_unknown(self):
        # Non-linear arithmetic belongs to no plugin: the atom stays
        # abstract and the answer degrades to unknown (never sat).
        result = solve_script(
            """
            (declare-const x Int)
            (assert (< (mod x 3) 0))
            (check-sat)
            """
        )[0]
        assert result.answer == "unknown"
        assert result.reason == "abstracted-atoms"

    def test_nary_equalities_expand_to_euf(self):
        result = solve_script(
            """
            (set-logic QF_UF)
            (declare-sort U 0)
            (declare-const x U)
            (declare-const y U)
            (declare-const z U)
            (assert (= x y z))
            (assert (distinct x z))
            (check-sat)
            """
        )[0]
        assert result.answer == "unsat"

    def test_nary_distinct_requires_enough_values(self):
        result = solve_script(
            """
            (set-logic QF_UF)
            (declare-sort U 0)
            (declare-const x U)
            (declare-const y U)
            (declare-const z U)
            (declare-fun f (U) U)
            (assert (distinct x y z))
            (assert (= (f x) (f y)))
            (check-sat)
            """
        )[0]
        assert result.answer == "sat"

    def test_bitvec_equality_through_constants(self):
        # Distinguished constants make bit-vector equalities decidable
        # without a bit-vector theory.
        result = solve_script(
            """
            (set-logic QF_BV)
            (declare-const a (_ BitVec 8))
            (assert (= a #x01))
            (assert (= a #x02))
            (check-sat)
            """
        )[0]
        assert result.answer == "unsat"
