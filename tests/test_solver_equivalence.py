"""Old-vs-new CDCL core equivalence, flat-layout unit tests, and the
simplex float-filter guard band.

PR 9 rewrote :class:`repro.sat.Solver` onto flat integer arrays (clause
arena, ``(ref, blocker)`` watch tuples, parallel assignment arrays); the
object-based pre-rewrite core is retained verbatim as
:class:`repro.sat.reference.ReferenceSolver`.  This module cross-checks
the two on seeded sweeps — identical verdicts, identical
failed-assumption cores, checker-accepted proofs from both, and matching
engine-level verdicts on the fuzz-gauntlet fragments — and unit-tests
the flat-specific machinery: arena growth, literal-table growth, watch
swap-remove, blocker skips, and the float filter falling back to exact
``Fraction`` arithmetic on near-degenerate comparisons.

On search statistics: the new core scans binary clauses before long
clauses, so *propagation order within a decision level* can differ from
the reference once binary clauses (original or learned) exist.  Verdicts
and cores never depend on that order, but conflict counts can — so the
stats-equality test pins seeds verified to stay deterministic-identical,
per the "match where determinism allows" contract.
"""

from fractions import Fraction
from random import Random

import pytest

from repro.engine import Engine
from repro.proof import ProofLog, check_proof
from repro.sat import SAT, UNSAT, Solver
from repro.sat.reference import ReferenceSolver
from repro.smtlib.sorts import BOOL, REAL
from repro.smtlib.terms import Apply, Constant, Symbol
from repro.theory import ArithTheory

import test_fuzz_differential as fuzz


# ---------------------------------------------------------------------------
# Seeded CNF sweeps: behavioral equivalence of the two cores.
# ---------------------------------------------------------------------------


def random_cnf(seed: int, width=(2, 3)) -> tuple[int, list[list[int]]]:
    rng = Random(seed)
    num_vars = rng.randint(8, 40)
    num_clauses = int(num_vars * rng.uniform(3.0, 4.6))
    clauses = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), rng.randint(*width))
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    return num_vars, clauses


def certified_solve(solver_cls, num_vars, clauses, assumptions=()):
    """Solve with proof logging; on unsat, assert the checker accepts."""
    solver = solver_cls(num_vars)
    solver.proof = ProofLog()
    solver.add_clauses(clauses)
    answer = solver.solve(assumptions=list(assumptions))
    if answer == UNSAT:
        core = solver.failed_assumptions or ()
        proof = solver.proof.snapshot(tuple(-lit for lit in core))
        verdict = check_proof(proof)
        assert verdict.ok, verdict.error
    return answer, solver


def model_satisfies(model, clauses) -> bool:
    return all(any((lit > 0) == model[abs(lit)] for lit in clause) for clause in clauses)


@pytest.mark.parametrize("seed", range(40))
def test_seeded_sweep_verdicts_models_proofs(seed):
    num_vars, clauses = random_cnf(seed)
    new_answer, new_solver = certified_solve(Solver, num_vars, clauses)
    ref_answer, ref_solver = certified_solve(ReferenceSolver, num_vars, clauses)
    assert new_answer == ref_answer
    if new_answer == SAT:
        assert model_satisfies(new_solver.model, clauses)
        assert model_satisfies(ref_solver.model, clauses)


@pytest.mark.parametrize("seed", range(25))
def test_failed_assumption_cores_match(seed):
    num_vars, clauses = random_cnf(seed + 1000, width=(3, 3))
    rng = Random(seed + 2000)
    candidates = rng.sample(range(1, num_vars + 1), min(6, num_vars))
    assumptions = [v if rng.random() < 0.5 else -v for v in candidates]
    new_answer, new_solver = certified_solve(Solver, num_vars, clauses, assumptions)
    ref_answer, ref_solver = certified_solve(
        ReferenceSolver, num_vars, clauses, assumptions
    )
    assert new_answer == ref_answer
    if new_answer == UNSAT:
        assert new_solver.failed_assumptions == ref_solver.failed_assumptions


@pytest.mark.parametrize("seed", range(17))
def test_search_stats_match_where_deterministic(seed):
    """Width-3 instances verified to keep the two cores in lockstep:
    conflicts, decisions, learned and restarts must agree exactly."""
    rng = Random(seed)
    num_vars = rng.randint(8, 40)
    num_clauses = int(num_vars * rng.uniform(3.5, 4.6))
    clauses = [
        [v if rng.random() < 0.5 else -v for v in rng.sample(range(1, num_vars + 1), 3)]
        for _ in range(num_clauses)
    ]
    new_solver, ref_solver = Solver(num_vars), ReferenceSolver(num_vars)
    new_solver.add_clauses(clauses)
    ref_solver.add_clauses(clauses)
    assert new_solver.solve() == ref_solver.solve()
    for key in ("conflicts", "decisions", "learned", "restarts"):
        assert new_solver.stats[key] == ref_solver.stats[key], key


# ---------------------------------------------------------------------------
# Engine-level equivalence on the fuzz-gauntlet fragments: swapping the
# reference core under the whole engine must not change any verdict, and
# models from both paths must validate externally.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("fragment", ["lia", "lra", "uf", "bv"])
@pytest.mark.parametrize("seed", range(4))
def test_engine_verdicts_match_reference_core(fragment, seed, monkeypatch):
    script = fuzz._generate(fragment, seed)
    new_result = Engine(produce_proofs=True).run(script)
    monkeypatch.setattr("repro.engine.solve.Solver", ReferenceSolver)
    ref_result = Engine(produce_proofs=True).run(script)
    assert new_result.answers == ref_result.answers
    for result in (new_result, ref_result):
        for check in result.check_results:
            if check.answer == "sat":
                fuzz.assert_model_validates(check)
            elif check.answer == "unsat":
                fuzz.assert_certified(check)


# ---------------------------------------------------------------------------
# Flat-layout unit tests.
# ---------------------------------------------------------------------------


class TestFlatLayout:
    def test_arena_growth_preserves_clauses(self):
        solver = Solver(0)
        _, clauses = random_cnf(7)
        arena_sizes = []
        for clause in clauses:
            solver.add_clause(clause)
            arena_sizes.append(len(solver._arena))
        assert arena_sizes[-1] > arena_sizes[0]
        assert arena_sizes == sorted(arena_sizes)  # arena only ever grows
        # Spot-check: the first clause's body is stored intact at one of
        # the refs watching its first literal.
        arena = solver._arena
        bodies = [
            sorted(arena[ref + 2 : ref + 2 + arena[ref]])
            for ref in solver.watcher_refs(clauses[0][0])
        ]
        assert sorted(set(clauses[0])) in bodies

    def test_literal_tables_grow_on_demand(self):
        solver = Solver(2)
        assert solver.add_clause([1, 500])
        assert solver.num_vars >= 500
        assert solver.solve() == SAT
        model = solver.model
        assert model[1] or model[500]

    def test_watch_swap_remove_long_clauses(self):
        solver = Solver(7)
        solver.add_clause([1, 2, 3])
        solver.add_clause([1, 4, 5])
        solver.add_clause([1, 6, 7])
        r1, r2, r3 = solver.watcher_refs(1)
        solver._detach(r1)
        # Swap-remove: the last entry moved into the vacated slot.
        assert solver.watcher_refs(1) == [r3, r2]
        assert r1 not in solver.watcher_refs(2)
        solver._detach(r3)
        assert solver.watcher_refs(1) == [r2]

    def test_watch_swap_remove_binary_clauses(self):
        solver = Solver(4)
        solver.add_clause([1, 2])
        solver.add_clause([1, 3])
        solver.add_clause([1, 4])
        b1, b2, b3 = solver.watcher_refs(1)
        solver._detach(b1)
        assert solver.watcher_refs(1) == [b3, b2]
        assert b1 not in solver.watcher_refs(2)

    def test_blocker_literals_skip_satisfied_clauses(self):
        rng = Random(0)
        num_vars = 100
        clauses = [
            [v if rng.random() < 0.5 else -v for v in rng.sample(range(1, num_vars + 1), 3)]
            for _ in range(426)
        ]
        solver = Solver(num_vars)
        solver.add_clauses(clauses)
        solver.solve()
        assert solver.stats["blocker_skips"] > 0


# ---------------------------------------------------------------------------
# Float filter: near-degenerate comparisons must fall back to exact
# Fraction arithmetic and never change the verdict.
# ---------------------------------------------------------------------------


U = Symbol("fu", REAL)
V = Symbol("fv", REAL)
EPS = Fraction(1, 10**12)


def _real(value) -> Constant:
    return Constant(Fraction(value), REAL)


def _cmp(op, lhs, rhs):
    return Apply(op, (lhs, rhs), BOOL)


class TestFloatFilterFallback:
    def test_row_within_guard_band_falls_back_unsat(self):
        """A slack row 1e-12 short of its lower bound: the float scan
        cannot tell, the exact fallback must flag the violation, and the
        verdict is exactly unsat."""
        theory = ArithTheory()
        total = Apply("+", (U, V), REAL)
        assert theory.assert_literal(_cmp(">=", total, _real(3)), True) is None
        assert theory.assert_literal(_cmp("<=", U, _real(1)), True) is None
        near = Constant(Fraction(2) - EPS, REAL)
        outcome = theory.assert_literal(_cmp("<=", V, near), True)
        if outcome is None:
            outcome = theory.check()
        assert outcome is not None  # max u + v = 3 - 1e-12 < 3 exactly
        assert theory.stats["float_fallbacks"] > 0

    def test_near_degenerate_pivot_row_falls_back(self):
        """A slack row whose value sits within 1e-12 of its bound: the
        float violated-row scan cannot decide it and must consult the
        exact tableau, which says "not violated" — sat."""
        theory = ArithTheory()
        total = Apply("+", (U, V), REAL)
        assert theory.assert_literal(_cmp("<=", total, _real(6)), True) is None
        assert theory.assert_literal(_cmp(">=", U, _real(3)), True) is None
        near = Constant(Fraction(3) - EPS, REAL)
        assert theory.assert_literal(_cmp(">=", V, near), True) is None
        assert theory.check() is None  # u + v = 6 - 1e-12 <= 6 exactly
        assert theory.stats["float_fallbacks"] > 0

    def test_decisive_comparisons_use_float_path(self):
        theory = ArithTheory()
        total = Apply("+", (U, V), REAL)
        assert theory.assert_literal(_cmp("<=", total, _real(100)), True) is None
        assert theory.assert_literal(_cmp(">=", U, _real(3)), True) is None
        assert theory.assert_literal(_cmp(">=", V, _real(3)), True) is None
        assert theory.check() is None  # slack row sits far from its bound
        assert theory.stats["float_skips"] > 0
        assert theory.stats["float_fallbacks"] == 0
