"""Proof production and checking: the certification tentpole.

Three layers under test:

* the independent RUP/DRAT checker (:mod:`repro.proof.checker`) on
  hand-built proofs — acceptance of valid derivations and rejection of
  every forgery class (non-RUP additions, phantom deletions, unsupported
  conclusions, malformed steps);
* the CDCL core's proof logging (:mod:`repro.sat.solver`) — every
  ``UNSAT`` answer on classic hard families, random CNF sweeps and
  assumption-driven checks snapshots to a proof the checker certifies;
* the engine end to end — script-level ``unsat`` answers (pure SAT,
  EUF, LIA, trivially-false, incremental push/pop) carry certified
  proofs with theory-lemma provenance, and the option plumbing
  (``produce_proofs=``, ``(set-option :produce-proofs true)``, late
  enabling) behaves as documented.

The checker shares no propagation code with the solver, so these tests
are a genuine cross-check, not a tautology.
"""

import random

import pytest

from repro import run_script, solve_script
from repro.engine import Engine
from repro.errors import SolverError
from repro.proof import Proof, ProofLog, ProofStep, check_proof
from repro.proof.log import DELETE, INPUT, LEMMA, RUP
from repro.sat import SAT, Solver, UNSAT
from repro.smtlib import parse_script

from test_sat import pigeonhole, random_cnf


#: A conclusion that holds vacuously — used where a test exercises the
#: step replay, not the concluding entailment (``()`` claims the empty
#: clause, which non-contradictory proofs cannot support).
TAUT = (1, -1)


def proof_of(*steps, conclusion=TAUT):
    return Proof(tuple(steps), conclusion)


def inputs(*clauses):
    return [ProofStep(INPUT, clause) for clause in clauses]


# ---------------------------------------------------------------------------
# The checker on hand-built proofs.
# ---------------------------------------------------------------------------


class TestCheckerAccepts:
    def test_empty_proof_of_nothing(self):
        result = check_proof(proof_of(conclusion=(1, -1)))
        assert result.ok and bool(result)

    def test_unit_resolution_chain(self):
        # (1 2), (-1 2), (1 -2), (-1 -2) |- (2) |- () : textbook RUP.
        proof = proof_of(
            *inputs((1, 2), (-1, 2), (1, -2), (-1, -2)),
            ProofStep(RUP, (2,)),
            ProofStep(RUP, ()),
        )
        result = check_proof(proof)
        assert result.ok
        # 4 inputs + the 2 verified additions all enter the clause set.
        assert result.stats["clauses"] == 6
        # Adding (2) propagates to a permanent contradiction, so the
        # final empty-clause step is short-circuited, not re-checked.
        assert result.stats["rup_checked"] == 1

    def test_tautological_clause_is_free(self):
        proof = proof_of(*inputs((1, 2)), ProofStep(RUP, (3, -3)))
        assert check_proof(proof).ok

    def test_lemma_steps_are_axioms(self):
        # The lemma is not RUP from the input — it is trusted, with
        # provenance — and later RUP steps may lean on it.
        proof = proof_of(
            *inputs((1, 2)),
            ProofStep(LEMMA, (-1,), source="arith"),
            ProofStep(RUP, (2,)),
        )
        result = check_proof(proof)
        assert result.ok
        assert result.stats["lemmas"] == 1

    def test_deletion_then_unrelated_rup(self):
        proof = proof_of(
            *inputs((1, 2), (1, -2), (-1, 2), (-1, -2)),
            ProofStep(DELETE, (-1, -2)),
            # (1) is still RUP from the surviving (1 2) and (1 -2):
            # assuming ¬1 forces 2 and ¬2 at once.
            ProofStep(RUP, (1,)),
        )
        assert check_proof(proof).ok

    def test_unit_deletion_is_ignored(self):
        # drat-trim's forward relaxation: deleting a unit never retracts
        # the permanent propagation it caused.
        proof = proof_of(
            *inputs((1,), (-1, 2)),
            ProofStep(DELETE, (1,)),
            ProofStep(RUP, (2,)),
        )
        assert check_proof(proof).ok

    def test_contradiction_short_circuits_later_checks(self):
        # Once the inputs are contradictory, every later step passes —
        # sound, since the contradiction was itself reached by axioms.
        proof = proof_of(
            *inputs((1,), (-1,)),
            ProofStep(RUP, (99,)),
            conclusion=(),
        )
        assert check_proof(proof).ok

    def test_non_empty_conclusion(self):
        # From (-1 2): assuming 1 forces 2, so the clause (-1 2) is
        # entailed; the conclusion re-checks exactly that.
        proof = proof_of(*inputs((-1, 2), (1,)), ProofStep(RUP, (2,)))
        result = check_proof(proof_of(*proof.steps, conclusion=(2,)))
        assert result.ok


class TestCheckerRejects:
    def test_non_rup_addition(self):
        proof = proof_of(*inputs((1, 2)), ProofStep(RUP, (3,)))
        result = check_proof(proof)
        assert not result.ok and not bool(result)
        assert result.step_index == 1
        assert "not RUP" in result.error

    def test_deleting_a_clause_the_solver_never_had(self):
        proof = proof_of(*inputs((1, 2)), ProofStep(DELETE, (3, 4)))
        result = check_proof(proof)
        assert not result.ok
        assert result.step_index == 1
        assert "unknown clause" in result.error

    def test_double_deletion_rejected(self):
        proof = proof_of(
            *inputs((1, 2)),
            ProofStep(DELETE, (1, 2)),
            ProofStep(DELETE, (2, 1)),
        )
        result = check_proof(proof)
        assert not result.ok and result.step_index == 2

    def test_rup_step_must_not_lean_on_deleted_clause(self):
        # With (1 2) deleted, (2) is no longer forced under ¬2.
        proof = proof_of(
            *inputs((1, 2), (-1, 2)),
            ProofStep(DELETE, (1, 2)),
            ProofStep(RUP, (2,)),
        )
        result = check_proof(proof)
        assert not result.ok and result.step_index == 3

    def test_unsupported_empty_conclusion(self):
        result = check_proof(proof_of(*inputs((1, 2)), conclusion=()))
        assert not result.ok
        assert result.step_index is None
        assert "conclusion" in result.error

    def test_unsupported_named_conclusion(self):
        result = check_proof(proof_of(*inputs((1, 2)), conclusion=(-1,)))
        assert not result.ok and "conclusion" in result.error

    def test_unknown_step_kind(self):
        result = check_proof(proof_of(ProofStep("resolve", (1,))))
        assert not result.ok and result.step_index == 0

    def test_zero_literal_raises(self):
        with pytest.raises(ValueError):
            check_proof(proof_of(ProofStep(INPUT, (1, 0))))


# ---------------------------------------------------------------------------
# Proof / ProofLog data shapes.
# ---------------------------------------------------------------------------


class TestProofShapes:
    def test_log_counts_and_snapshot(self):
        log = ProofLog()
        log.log_input((1, 2))
        log.log_lemma((-1,), source="euf")
        log.log_rup((2,))
        log.log_delete((1, 2))
        proof = log.snapshot((2,))
        assert len(proof) == 4
        assert proof.conclusion == (2,)
        assert proof.counts() == {INPUT: 1, LEMMA: 1, RUP: 1, DELETE: 1}
        assert log.stats == {
            "inputs": 1,
            "lemmas": 1,
            "rup_steps": 1,
            "deletions": 1,
            "conclusions": 1,
        }
        # The snapshot is decoupled from later logging.
        log.log_rup((7,))
        assert len(proof) == 4

    def test_to_drat_rendering(self):
        log = ProofLog()
        log.log_input((1, 2))
        log.log_lemma((-1,), source="arith")
        log.log_rup((2,))
        log.log_delete((1, 2))
        log.log_rup(())
        proof = log.snapshot(())
        assert proof.to_drat() == "c t arith\n-1 0\n2 0\nd 1 2 0\n0\n"
        assert proof.to_drat(include_inputs=True).startswith("c i 1 2 0\n")

    def test_empty_proof_renders_empty(self):
        assert proof_of().to_drat() == ""


# ---------------------------------------------------------------------------
# The CDCL core logs certifiable proofs.
# ---------------------------------------------------------------------------


def solve_certified(clauses, assumptions=()):
    """Solve with proof logging on; on UNSAT return a checker-certified
    proof (asserting the certification on the way)."""
    solver = Solver()
    solver.proof = ProofLog()
    for clause in clauses:
        solver.add_clause(clause)
    answer = solver.solve(assumptions=list(assumptions))
    if answer != UNSAT:
        return answer, None
    core = solver.failed_assumptions or ()
    proof = solver.proof.snapshot(tuple(-lit for lit in core))
    verdict = check_proof(proof)
    assert verdict.ok, verdict.error
    return answer, proof


class TestSolverProofs:
    @pytest.mark.parametrize("holes", [2, 3, 4, 5])
    def test_pigeonhole_certified(self, holes):
        answer, proof = solve_certified(pigeonhole(holes))
        assert answer == UNSAT
        assert proof.conclusion == ()
        counts = proof.counts()
        assert counts[INPUT] == len(pigeonhole(holes))
        assert counts[RUP] >= 1

    def test_reduce_db_deletions_are_checkable(self):
        # php(5) is hard enough to trigger clause-database reduction, so
        # the proof exercises delete steps, not just additions.
        answer, proof = solve_certified(pigeonhole(5))
        assert answer == UNSAT
        assert proof.counts()[DELETE] > 0

    def test_random_cnf_sweep_certified(self):
        rng = random.Random(20260808)
        unsat_seen = 0
        for _ in range(150):
            clauses = random_cnf(rng, 9, 42)
            answer, proof = solve_certified(clauses)
            if answer == UNSAT:
                unsat_seen += 1
                assert proof.conclusion == ()
        assert unsat_seen >= 20, "sweep parameters should produce many unsat"

    def test_failed_assumption_core_is_the_conclusion(self):
        # x1 and x2 forced apart; assuming both fails and the proof
        # concludes exactly the negated failed-assumption core.
        answer, proof = solve_certified([[-1, -2]], assumptions=[1, 2])
        assert answer == UNSAT
        assert sorted(proof.conclusion) == [-2, -1]

    def test_assumption_core_subsets_are_rup(self):
        # Only assumption 3 participates in the conflict; the core (and
        # hence the conclusion) must not drag 1 and 2 in.
        answer, proof = solve_certified(
            [[-3, 4], [-3, -4]], assumptions=[1, 2, 3]
        )
        assert answer == UNSAT
        assert proof.conclusion == (-3,)

    def test_incremental_checks_share_one_log(self):
        solver = Solver()
        solver.proof = ProofLog()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        assert solver.solve(assumptions=[-2]) == UNSAT
        first = solver.proof.snapshot((2,))
        assert check_proof(first).ok
        assert solver.solve() == SAT
        solver.add_clause([-2])
        assert solver.solve() == UNSAT
        second = solver.proof.snapshot(())
        assert check_proof(second).ok
        # The earlier snapshot is a frozen prefix and still certifies.
        assert check_proof(first).ok
        assert len(second) > len(first)

    def test_sat_answers_do_not_conclude(self):
        solver = Solver()
        solver.proof = ProofLog()
        solver.add_clause([1, 2])
        assert solver.solve() == SAT
        assert solver.proof.stats["conclusions"] == 0


# ---------------------------------------------------------------------------
# Engine end-to-end: scripts to certified proofs.
# ---------------------------------------------------------------------------


LIA_UNSAT = """
(set-logic QF_LIA)
(declare-const x Int)
(declare-const y Int)
(assert (or (= (* 2 x) (+ (* 2 y) 1)) (and (< x 0) (> x 0))))
(check-sat)
"""

EUF_UNSAT = """
(set-logic QF_UF)
(declare-sort U 0)
(declare-const a U)
(declare-const b U)
(declare-fun f (U) U)
(assert (= a b))
(assert (distinct (f a) (f b)))
(check-sat)
"""

PROP_UNSAT = """
(declare-const p Bool)
(declare-const q Bool)
(assert (and (or p q) (or (not p) q) (or p (not q)) (or (not p) (not q))))
(check-sat)
"""


def certified_checks(source, **kwargs):
    checks = solve_script(source, produce_proofs=True, **kwargs)
    for check in checks:
        if check.answer == "unsat":
            assert check.proof is not None, "unsat without a proof"
            verdict = check_proof(check.proof)
            assert verdict.ok, verdict.error
    return checks


class TestEngineProofs:
    @pytest.mark.parametrize(
        "source", [LIA_UNSAT, EUF_UNSAT, PROP_UNSAT], ids=["lia", "euf", "prop"]
    )
    def test_unsat_scripts_carry_certified_proofs(self, source):
        checks = certified_checks(source)
        assert [check.answer for check in checks] == ["unsat"]

    def test_theory_lemmas_carry_plugin_provenance(self):
        (check,) = certified_checks(EUF_UNSAT)
        sources = {
            step.source for step in check.proof.steps if step.kind == LEMMA
        }
        assert "euf" in sources

    def test_arith_lemmas_carry_plugin_provenance(self):
        (check,) = certified_checks(
            "(set-logic QF_LIA)\n(declare-const x Int)\n"
            "(assert (< x 0))\n(assert (> x 0))\n(check-sat)\n"
        )
        sources = {
            step.source for step in check.proof.steps if step.kind == LEMMA
        }
        assert "arith" in sources

    def test_sat_checks_have_no_proof(self):
        (check,) = solve_script(
            "(declare-const p Bool)\n(assert p)\n(check-sat)\n",
            produce_proofs=True,
        )
        assert check.answer == "sat" and check.proof is None

    def test_proofs_off_by_default(self):
        (check,) = solve_script(LIA_UNSAT)
        assert check.answer == "unsat" and check.proof is None

    def test_set_option_enables_proofs_in_script(self):
        source = "(set-option :produce-proofs true)\n" + PROP_UNSAT
        (check,) = solve_script(source)
        assert check.answer == "unsat"
        assert check.proof is not None and check_proof(check.proof).ok

    def test_enabling_proofs_after_clauses_shipped_raises(self):
        engine = Engine()
        script = parse_script(
            "(declare-const p Bool)\n(assert p)\n(check-sat)\n"
            "(set-option :produce-proofs true)\n"
        )
        with pytest.raises(SolverError):
            engine.run(script)

    def test_trivially_false_assertion_certifies(self):
        (check,) = certified_checks("(assert false)\n(check-sat)\n")
        assert check.answer == "unsat"
        assert check.proof.conclusion == ()
        assert any(step.lits == () for step in check.proof.steps)

    def test_incremental_push_pop_proofs(self):
        source = """
(set-option :produce-proofs true)
(declare-const p Bool)
(declare-const q Bool)
(assert (or p q))
(push 1)
(assert (not p))
(assert (not q))
(check-sat)
(pop 1)
(check-sat)
(push 1)
(assert (and (not p) (not q)))
(check-sat)
"""
        result = run_script(source)
        answers = result.answers
        assert answers == ["unsat", "sat", "unsat"]
        for check in result.check_results:
            if check.answer == "unsat":
                assert check.proof is not None
                assert check_proof(check.proof).ok

    def test_proof_metrics_registered(self):
        engine = Engine(produce_proofs=True)
        engine.run(parse_script(PROP_UNSAT))
        snapshot = engine.metrics.snapshot()
        assert snapshot.get("proof.inputs", 0) > 0
        assert snapshot.get("proof.conclusions", 0) == 1

    def test_proof_span_traced(self):
        from repro.obs import Observability, phase_totals, set_current_tracer

        obs = Observability.tracing()
        engine = Engine(produce_proofs=True, obs=obs)
        previous = set_current_tracer(obs.tracer)
        try:
            engine.run(parse_script(PROP_UNSAT))
        finally:
            set_current_tracer(previous)
        paths = set(phase_totals(obs.tracer))
        assert any(path.endswith("proof") for path in paths), paths
