"""Tests for the script-execution engine and the ``python -m repro`` CLI.

Two acceptance properties from the issue are enforced here:

* **Model oracle** — every ``sat`` answer's model makes ``evaluate`` return
  true for all (inlined) assertions active at that ``check-sat``.
* **Brute-force cross-check** — on every quantifier-free corpus script
  whose assertions range over at most 18 boolean atoms (and no other free
  symbols), the engine's answer equals exhaustive enumeration.
"""

import itertools
import random
from pathlib import Path

import pytest

from repro import CheckSatResult, Engine, run_script, solve_script
from repro.errors import SolverError
from repro.smtlib import (
    BOOL,
    Apply,
    Assert,
    CheckSat,
    GetValue,
    Pop,
    Push,
    Script,
    Symbol,
    TRUE,
    bool_const,
    evaluate,
    parse_script,
    script_to_smtlib,
)
from test_nnf import random_bool_term

CORPUS = sorted((Path(__file__).parent / "corpus").glob("*.smt2"))


# ---------------------------------------------------------------------------
# Oracles.
# ---------------------------------------------------------------------------


def assert_model_satisfies(result: CheckSatResult) -> None:
    """The model-checking oracle: the model evaluates every assertion true
    (uninterpreted functions evaluate through the result's
    interpretations)."""
    assert result.model is not None
    for term in result.assertions:
        assert evaluate(term, result.model, result.fun_interps) is TRUE, term


def boolean_frees(result: CheckSatResult):
    """Free symbols of the checked assertions, or None when any is not Bool
    (or a quantifier blocks evaluation)."""
    free: dict[str, object] = {}
    for term in result.assertions:
        from repro.smtlib import Quantifier

        if any(isinstance(node, Quantifier) for node in term.walk()):
            return None
        free.update(term.free_symbols())
    if any(sort != BOOL for sort in free.values()):
        return None
    return sorted(free)


def brute_force_answer(result: CheckSatResult):
    """Exhaustively decide the checked assertions; None when not amenable
    (non-boolean symbols, quantifiers, or more than 18 atoms)."""
    names = boolean_frees(result)
    if names is None or len(names) > 18:
        return None
    for values in itertools.product([False, True], repeat=len(names)):
        env = {name: bool_const(v) for name, v in zip(names, values)}
        try:
            if all(evaluate(term, env) is TRUE for term in result.assertions):
                return "sat"
        except Exception:
            return None  # unfoldable ground operator: not amenable
    return "unsat"


# ---------------------------------------------------------------------------
# Corpus-wide properties.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_scripts_execute(path):
    result = run_script(path.read_text())
    for check in result.check_results:
        assert check.answer in ("sat", "unsat", "unknown")
        if check.answer == "sat":
            assert_model_satisfies(check)


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_brute_force_cross_check(path):
    for check in solve_script(path.read_text()):
        expected = brute_force_answer(check)
        if expected is None:
            continue
        assert check.answer == expected, (path.stem, check.answer, expected)


def test_corpus_covers_both_answers():
    answers = set()
    for path in CORPUS:
        answers.update(check.answer for check in solve_script(path.read_text()))
    assert {"sat", "unsat"} <= answers


# ---------------------------------------------------------------------------
# Randomised cross-check over generated propositional scripts.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(40))
def test_random_propositional_scripts_cross_check(seed):
    rng = random.Random(seed)
    atoms = [Symbol(f"p{i}", BOOL) for i in range(rng.randint(2, 6))]
    commands = []
    for _ in range(rng.randint(1, 4)):
        commands.append(Assert(random_bool_term(rng, 3, atoms)))
    commands.append(CheckSat())
    result = solve_script(Script(tuple(commands)))[0]
    expected = brute_force_answer(result)
    assert expected is not None
    assert result.answer == expected
    if result.answer == "sat":
        assert_model_satisfies(result)


# ---------------------------------------------------------------------------
# Engine command semantics.
# ---------------------------------------------------------------------------


class TestPushPop:
    def test_pop_restores_satisfiability(self):
        answers = solve_script(
            """
            (declare-const p Bool)
            (assert p)
            (check-sat)
            (push 1)
            (assert (not p))
            (check-sat)
            (pop 1)
            (check-sat)
            """
        )
        assert [r.answer for r in answers] == ["sat", "unsat", "sat"]

    def test_nested_push_levels(self):
        answers = solve_script(
            """
            (declare-const p Bool)
            (declare-const q Bool)
            (push 2)
            (assert (and p q))
            (pop 1)
            (assert (not p))
            (check-sat)
            (pop 1)
            (assert p)
            (check-sat)
            """
        )
        assert [r.answer for r in answers] == ["sat", "sat"]

    def test_pop_beyond_depth_raises(self):
        script = Script((Pop(1),))
        with pytest.raises(SolverError):
            Engine().run(script)

    def test_push_zero_is_noop(self):
        script = Script((Push(0), CheckSat()))
        assert Engine().run(script).answers == ["sat"]


class TestAnswers:
    def test_assert_false_is_trivially_unsat(self):
        result = solve_script("(assert false)\n(check-sat)")[0]
        assert result.answer == "unsat"
        assert result.stats["trivial"] == 1
        # The stats contract holds even on the trivial path.
        for key in ("conflicts", "decisions", "vars", "clauses", "atoms"):
            assert result.stats[key] == 0

    def test_empty_assertions_are_sat(self):
        result = solve_script("(check-sat)")[0]
        assert result.answer == "sat"
        assert result.model == {}

    def test_ground_theory_atoms_prefold(self):
        # The PR-2 evaluator folds the ground atoms; p remains free.
        result = solve_script(
            """
            (declare-const p Bool)
            (assert (or p (< 2 1)))
            (assert (= (+ 1 2) 3))
            (check-sat)
            """
        )[0]
        assert result.answer == "sat"
        assert result.model["p"] is TRUE
        assert_model_satisfies(result)

    def test_theory_atoms_give_unknown_not_sat(self):
        # ``div`` is outside the linear fragment, so the atom stays
        # abstract — a propositionally satisfiable skeleton must answer
        # unknown, never sat.
        result = solve_script(
            """
            (declare-const x Int)
            (assert (< (div x 2) 0))
            (check-sat)
            """
        )[0]
        assert result.answer == "unknown"
        assert result.reason == "abstracted-atoms"

    def test_linear_atoms_now_decided(self):
        # The same shape over the *linear* fragment is decided by the
        # simplex plugin (this was unknown before the arith theory).
        result = solve_script(
            """
            (declare-const x Int)
            (assert (< x 0))
            (check-sat)
            """
        )[0]
        assert result.answer == "sat"
        assert_model_satisfies(result)

    def test_propositionally_inconsistent_theory_is_unsat(self):
        result = solve_script(
            """
            (declare-const x Int)
            (declare-const y Int)
            (assert (or (< x y) (= x y)))
            (assert (not (< x y)))
            (assert (not (= x y)))
            (check-sat)
            """
        )[0]
        assert result.answer == "unsat"

    def test_quantifier_atom_gives_unknown(self):
        result = solve_script(
            """
            (declare-const p Bool)
            (assert (or p (forall ((b Bool)) b)))
            (assert (not p))
            (check-sat)
            """
        )[0]
        assert result.answer == "unknown"
        assert result.reason == "abstracted-atoms"

    def test_vacuous_integer_symbol_gets_a_model_value(self):
        # (= x x) folds to true; since PR 4 the theory layer mints a
        # concrete value for x, so the answer is a validated sat.
        result = solve_script(
            """
            (declare-const x Int)
            (assert (= x x))
            (check-sat)
            """
        )[0]
        assert result.answer == "sat"
        assert result.model is not None and "x" in result.model
        assert_model_satisfies(result)

    def test_conflict_limit_reports_unknown(self):
        # Pigeonhole as a boolean skeleton: 4 pigeons, 3 holes.
        holes, pigeons = 3, 4
        var = lambda i, j: Symbol(f"x{i}_{j}", BOOL)
        commands = []
        for i in range(pigeons):
            commands.append(Assert(Apply("or", tuple(var(i, j) for j in range(holes)), BOOL)))
        for j in range(holes):
            for a in range(pigeons):
                for b in range(a + 1, pigeons):
                    commands.append(
                        Assert(
                            Apply(
                                "or",
                                (
                                    Apply("not", (var(a, j),), BOOL),
                                    Apply("not", (var(b, j),), BOOL),
                                ),
                                BOOL,
                            )
                        )
                    )
        commands.append(CheckSat())
        script = Script(tuple(commands))
        assert solve_script(script)[0].answer == "unsat"
        limited = solve_script(script, conflict_limit=1)[0]
        assert limited.answer == "unknown"
        assert limited.reason == "conflict-limit"

    def test_model_covers_symbols_simplified_away(self):
        result = solve_script(
            """
            (declare-const p Bool)
            (declare-const unused Bool)
            (assert (or p (not p)))
            (check-sat)
            """
        )[0]
        assert result.answer == "sat"
        assert result.model["p"] is not None
        assert "unused" in result.model
        assert_model_satisfies(result)


class TestDefinitions:
    def test_nullary_definition_inlines(self):
        result = solve_script(
            """
            (declare-const p Bool)
            (define-fun alias () Bool p)
            (assert alias)
            (check-sat)
            """
        )[0]
        assert result.answer == "sat"
        assert result.model["p"] is TRUE

    def test_definitions_compose(self):
        result = solve_script(
            """
            (declare-const p Bool)
            (declare-const q Bool)
            (define-fun nand ((a Bool) (b Bool)) Bool (not (and a b)))
            (define-fun nand2 ((a Bool) (b Bool)) Bool (nand (nand a b) (nand a b)))
            (assert (nand2 p q))
            (assert p)
            (check-sat)
            """
        )[0]
        # nand2 is `and`, so p and q must both hold.
        assert result.answer == "sat"
        assert result.model["q"] is TRUE
        assert_model_satisfies(result)

    def test_let_shadows_definition(self):
        result = solve_script(
            """
            (define-fun c () Bool true)
            (assert (let ((c false)) (not c)))
            (check-sat)
            """
        )[0]
        assert result.answer == "sat"

    def test_definition_scoping_respects_pop(self):
        answers = solve_script(
            """
            (declare-const p Bool)
            (push 1)
            (define-fun f () Bool (not p))
            (assert f)
            (check-sat)
            (pop 1)
            (assert p)
            (check-sat)
            """
        )
        assert [r.answer for r in answers] == ["sat", "sat"]


class TestModelQueries:
    def test_get_model_without_check_errors(self):
        result = run_script("(get-model)")
        assert result.output[0].startswith('(error')

    def test_get_model_after_unsat_errors(self):
        result = run_script("(assert false)\n(check-sat)\n(get-model)")
        assert result.output == ["unsat", '(error "no model available: last check-sat was not sat")']

    def test_get_value_evaluates_compound_terms(self):
        result = run_script(
            """
            (declare-const p Bool)
            (declare-const q Bool)
            (assert p)
            (assert (not q))
            (check-sat)
            (get-value ((and p q) (or p q) p))
            """
        )
        assert result.output[0] == "sat"
        assert result.output[1] == "(((and p q) false) ((or p q) true) (p true))"

    def test_get_value_of_integer_terms_uses_model_values(self):
        # Since PR 4 every declared constant gets a model value, so
        # arbitrary ground terms evaluate under the model.
        result = run_script(
            """
            (declare-const x Int)
            (declare-const p Bool)
            (assert p)
            (check-sat)
            (get-value ((+ x 1)))
            """
        )
        assert result.output[0] == "sat"
        assert result.output[1] == "(((+ x 1) 1))"

    def test_get_value_of_unfoldable_term_errors(self):
        result = run_script(
            """
            (declare-const a (Array Int Int))
            (declare-const p Bool)
            (assert p)
            (check-sat)
            (get-value ((select a 0)))
            """
        )
        assert result.output[0] == "sat"
        assert result.output[1].startswith('(error')

    def test_get_model_is_deterministic_and_sorted(self):
        text = """
            (declare-const zz Bool)
            (declare-const aa Bool)
            (assert (or zz aa))
            (check-sat)
            (get-model)
            """
        first = run_script(text).output[1]
        second = run_script(text).output[1]
        assert first == second
        lines = first.splitlines()
        assert lines[0] == "(model"
        assert lines[-1] == ")"
        assert lines[1].index("aa") > 0 and "zz" in lines[2]


class TestCommandsRoundTrip:
    def test_get_value_parses_and_prints(self):
        text = "(declare-const p Bool)\n(get-value (p (not p)))\n"
        script = parse_script(text)
        assert isinstance(script.commands[1], GetValue)
        assert script_to_smtlib(script) == text
        assert parse_script(script_to_smtlib(script)) == script

    def test_exit_stops_execution(self):
        result = run_script("(check-sat)\n(exit)\n(check-sat)")
        assert result.answers == ["sat"]


# ---------------------------------------------------------------------------
# The CLI.
# ---------------------------------------------------------------------------


class TestCli:
    def run_cli(self, capsys, *argv):
        from repro.__main__ import main

        status = main(list(argv))
        captured = capsys.readouterr()
        return status, captured.out, captured.err

    def test_sat_script(self, capsys, tmp_path):
        path = tmp_path / "a.smt2"
        path.write_text("(declare-const p Bool)\n(assert p)\n(check-sat)\n")
        status, out, err = self.run_cli(capsys, str(path))
        assert status == 0
        assert out == "sat\n"
        assert err == ""

    def test_unsat_corpus_script(self, capsys):
        path = Path(__file__).parent / "corpus" / "prop_unsat.smt2"
        status, out, _ = self.run_cli(capsys, str(path))
        assert status == 0
        assert out.strip() == "unsat"

    def test_multiple_files_get_headers(self, capsys, tmp_path):
        one = tmp_path / "one.smt2"
        two = tmp_path / "two.smt2"
        one.write_text("(check-sat)\n")
        two.write_text("(assert false)\n(check-sat)\n")
        status, out, _ = self.run_cli(capsys, str(one), str(two))
        assert status == 0
        assert out.splitlines() == [f"; {one}", "sat", f"; {two}", "unsat"]

    def test_stats_flag_emits_comments(self, capsys, tmp_path):
        path = tmp_path / "a.smt2"
        path.write_text("(declare-const p Bool)\n(assert p)\n(check-sat)\n")
        status, out, _ = self.run_cli(capsys, str(path), "--stats")
        assert status == 0
        assert "; check-sat #0: sat" in out

    def test_parse_error_sets_status(self, capsys, tmp_path):
        path = tmp_path / "bad.smt2"
        path.write_text("(assert (undeclared))\n")
        status, out, err = self.run_cli(capsys, str(path))
        assert status == 1
        assert "(error" in err

    def test_missing_file_sets_status(self, capsys, tmp_path):
        status, _, err = self.run_cli(capsys, str(tmp_path / "absent.smt2"))
        assert status == 1
        assert "(error" in err
