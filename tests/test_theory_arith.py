"""Linear arithmetic: linarith normal forms, δ-rationals, the simplex
plugin's direct API, composite dispatch, and engine-level QF_LRA/QF_LIA
solving."""

from fractions import Fraction

import pytest

from repro import solve_script
from repro.smtlib.evaluate import evaluate
from repro.smtlib.linarith import difference_form, linear_form
from repro.smtlib.parser import parse_term
from repro.smtlib.sorts import BOOL, INT, REAL
from repro.smtlib.terms import TRUE, Apply, Constant, Symbol, int_const
from repro.theory import (
    ArithTheory,
    DeltaRational,
    EufTheory,
    SortValueAllocator,
    TheoryComposite,
)

X = Symbol("x", INT)
Y = Symbol("y", INT)
U = Symbol("u", REAL)
V = Symbol("v", REAL)


def atom(text, **sorts):
    bound = {"x": INT, "y": INT, "z": INT, "u": REAL, "v": REAL}
    bound.update(sorts)
    return parse_term(text, bound=bound)


# ---------------------------------------------------------------------------
# linear_form / difference_form.
# ---------------------------------------------------------------------------


class TestLinearForm:
    def test_constant(self):
        assert linear_form(int_const(7)) == ({}, Fraction(7))

    def test_symbol(self):
        assert linear_form(X) == ({X: Fraction(1)}, Fraction(0))

    def test_sum_and_scaling(self):
        coeffs, constant = linear_form(atom("(+ x (* 3 y) (- x) 5)"))
        assert coeffs == {Y: Fraction(3)}
        assert constant == Fraction(5)

    def test_subtraction_chain(self):
        coeffs, constant = linear_form(atom("(- x y 2)"))
        assert coeffs == {X: Fraction(1), Y: Fraction(-1)}
        assert constant == Fraction(-2)

    def test_division_by_constant(self):
        coeffs, constant = linear_form(atom("(/ (+ u 1.0) 4.0)"))
        assert coeffs == {U: Fraction(1, 4)}
        assert constant == Fraction(1, 4)

    def test_to_real_is_transparent(self):
        coeffs, constant = linear_form(atom("(+ (to_real x) 0.5)"))
        assert coeffs == {X: Fraction(1)}
        assert constant == Fraction(1, 2)

    def test_product_of_two_ground_sides(self):
        coeffs, constant = linear_form(atom("(* (+ 1 2) (- 5 1))"))
        assert coeffs == {}
        assert constant == Fraction(12)

    def test_multiplying_ground_linear_combo(self):
        # (* (- 4 2) x): the ground factor is itself an application.
        coeffs, constant = linear_form(atom("(* (- 4 2) x)"))
        assert coeffs == {X: Fraction(2)}
        assert constant == Fraction(0)

    @pytest.mark.parametrize(
        "text",
        [
            "(* x y)",
            "(div x 2)",
            "(mod x 2)",
            "(abs x)",
            "(/ u v)",
            "(/ u 0.0)",
            "(* x x)",
            "(to_int u)",
            "(ite true x y)",
        ],
    )
    def test_nonlinear_rejected(self, text):
        assert linear_form(atom(text)) is None

    def test_difference_cancels_shared_terms(self):
        lhs = atom("(+ x y 1)")
        rhs = atom("(+ y x)")
        assert difference_form(lhs, rhs) == ({}, Fraction(1))

    def test_zero_coefficients_pruned(self):
        coeffs, _ = linear_form(atom("(+ x (- x))"))
        assert coeffs == {}

    def test_linear_form_agrees_with_evaluate(self):
        term = atom("(- (+ (* 2 x) (* 3 y) 4) (* 5 y))")
        coeffs, constant = linear_form(term)
        bindings = {"x": int_const(7), "y": int_const(-3)}
        expected = evaluate(term, bindings).value
        computed = constant + sum(
            coeff * bindings[symbol.name].value for symbol, coeff in coeffs.items()
        )
        assert computed == expected


# ---------------------------------------------------------------------------
# Delta-rationals.
# ---------------------------------------------------------------------------


class TestDeltaRational:
    def test_lexicographic_order(self):
        assert DeltaRational(1) < DeltaRational(1, 1)
        assert DeltaRational(1, -1) < DeltaRational(1)
        assert DeltaRational(1, 5) < DeltaRational(2, -5)
        assert DeltaRational(3, 2) == DeltaRational(3, 2)
        assert DeltaRational(3) >= DeltaRational(3)

    def test_ring_operations(self):
        a = DeltaRational(Fraction(1, 2), 1)
        b = DeltaRational(Fraction(3, 2), -2)
        assert a + b == DeltaRational(2, -1)
        assert a - b == DeltaRational(-1, 3)
        assert a.scaled(Fraction(4)) == DeltaRational(2, 4)

    def test_integrality_and_floor(self):
        assert DeltaRational(3).is_integral
        assert not DeltaRational(3, 1).is_integral
        assert not DeltaRational(Fraction(1, 2)).is_integral
        assert DeltaRational(3, 1).floor() == 3
        assert DeltaRational(3, -1).floor() == 2
        assert DeltaRational(Fraction(7, 2), 1).floor() == 3
        assert DeltaRational(Fraction(-7, 2)).floor() == -4


# ---------------------------------------------------------------------------
# The theory's direct API.
# ---------------------------------------------------------------------------


def lits(conflict):
    return set(conflict.literals)


class TestArithTheoryDirect:
    def test_owns_linear_comparisons_only(self):
        theory = ArithTheory()
        assert theory.owns_atom(atom("(< x y)"))
        assert theory.owns_atom(atom("(<= (* 2 x) (+ y 3))"))
        # Mixed Int/Real forms (via to_real) stay linear and owned.
        assert theory.owns_atom(atom("(>= (+ (to_real x) u) 1.0)"))
        assert not theory.owns_atom(atom("(< (div x 2) y)"))
        assert not theory.owns_atom(atom("(= x y)"))  # split by preparation
        assert not theory.owns_atom(atom("(< x y 3)"))  # chains are expanded first
        assert not theory.owns_atom(TRUE)

    def test_bound_clash_is_minimal(self):
        theory = ArithTheory()
        low = atom("(>= x 5)")
        high = atom("(<= x 3)")
        middle = atom("(<= x 100)")
        assert theory.assert_literal(middle, True) is None
        assert theory.assert_literal(low, True) is None
        conflict = theory.assert_literal(high, True)
        assert conflict is not None
        assert lits(conflict) == {(high, True), (low, True)}

    def test_negated_literal_flips_bound(self):
        theory = ArithTheory()
        le = atom("(<= x 3)")
        ge = atom("(>= x 4)")
        assert theory.assert_literal(ge, True) is None
        # not (x <= 3) is x >= 4 for integers: consistent with x >= 4.
        assert theory.assert_literal(le, False) is None
        assert theory.check() is None

    def test_simplex_row_conflict(self):
        theory = ArithTheory()
        a = atom("(<= (+ x y) 3)")
        b = atom("(>= x 2)")
        c = atom("(>= y 2)")
        for literal in (a, b, c):
            assert theory.assert_literal(literal, True) is None
        conflict = theory.check()
        assert conflict is not None
        assert lits(conflict) == {(a, True), (b, True), (c, True)}

    def test_push_pop_restores_bounds_and_conflict(self):
        theory = ArithTheory()
        assert theory.assert_literal(atom("(<= x 10)"), True) is None
        theory.push()
        conflict = None
        assert theory.assert_literal(atom("(>= x 4)"), True) is None
        conflict = theory.assert_literal(atom("(<= x 3)"), True)
        assert conflict is not None
        assert theory.check() is conflict
        theory.pop()
        assert theory.check() is None
        # The surviving upper bound still propagates.
        clash = theory.assert_literal(atom("(>= x 11)"), True)
        assert clash is not None

    def test_slack_shared_between_scaled_atoms(self):
        theory = ArithTheory()
        theory.assert_literal(atom("(<= (+ x (* 2 y)) 4)"), True)
        variables_before, rows_before = theory.tableau_size()
        # Twice the same expression, scaled and flipped: no new slack.
        theory.assert_literal(atom("(>= (+ (* 2 x) (* 4 y)) 2)"), True)
        variables_after, rows_after = theory.tableau_size()
        assert variables_after == variables_before
        assert rows_after == rows_before
        assert theory.check() is None

    def test_strict_rational_cycle_unsat(self):
        theory = ArithTheory()
        a = atom("(< u v)")
        b = atom("(< v u)")
        assert theory.assert_literal(a, True) is None
        conflict = theory.assert_literal(b, True) or theory.check()
        assert conflict is not None
        assert lits(conflict) <= {(a, True), (b, True)}

    def test_integer_tightening_refutes_without_search(self):
        theory = ArithTheory()
        a = atom("(< (* 2 x) 6)")
        b = atom("(> (* 2 x) 4)")
        assert theory.assert_literal(a, True) is None
        conflict = theory.assert_literal(b, True) or theory.check()
        assert conflict is not None
        assert theory.stats["branches"] == 0

    def test_parity_refuted_by_tightening(self):
        theory = ArithTheory()
        # 2x - 2y <= 1 and 2x - 2y >= 1 (i.e. = 1): no integer solution.
        # Canonical integer scaling (x - y vs 1/2) tightens the two
        # bounds to 0 and 1, clashing without any search.
        a = atom("(<= (- (* 2 x) (* 2 y)) 1)")
        b = atom("(>= (- (* 2 x) (* 2 y)) 1)")
        assert theory.assert_literal(a, True) is None
        conflict = theory.assert_literal(b, True) or theory.check()
        assert conflict is not None
        assert lits(conflict) <= {(a, True), (b, True)}
        assert theory.stats["branches"] == 0

    BB_ATOMS = (
        "(<= (+ (* 3 x) (* 5 y)) 4)",
        "(>= (+ (* 3 x) (* 5 y)) 4)",
        "(>= x 0)",
        "(>= y 0)",
    )

    def test_branch_and_bound_refutes_interacting_constraints(self):
        # 3x + 5y = 4 with x, y >= 0 is rationally feasible (x = 4/3)
        # but integer-infeasible; no single expression tightens shut, so
        # the refutation needs actual branching.
        theory = ArithTheory()
        for text in self.BB_ATOMS:
            assert theory.assert_literal(atom(text), True) is None
        conflict = theory.check()
        assert conflict is not None
        assert theory.stats["branches"] > 0
        asserted = {(atom(text), True) for text in self.BB_ATOMS}
        assert lits(conflict) <= asserted

    def test_model_realizes_strict_bounds(self):
        theory = ArithTheory()
        theory.assert_literal(atom("(< u v)"), True)
        theory.assert_literal(atom("(< v 1.0)"), True)
        theory.assert_literal(atom("(> u 0.0)"), True)
        assert theory.check() is None
        model = theory.model(SortValueAllocator())
        assert model is not None
        u_value = model.values["u"].value
        v_value = model.values["v"].value
        assert Fraction(0) < u_value < v_value < Fraction(1)

    def test_model_values_are_integral_for_int_vars(self):
        theory = ArithTheory()
        theory.assert_literal(atom("(>= (+ (* 2 x) (* 3 y)) 7)"), True)
        theory.assert_literal(atom("(<= (+ (* 2 x) (* 3 y)) 7)"), True)
        theory.assert_literal(atom("(>= x 1)"), True)
        assert theory.check() is None
        model = theory.model(SortValueAllocator())
        assert model is not None
        x_value = model.values["x"].value
        y_value = model.values["y"].value
        assert isinstance(x_value, int) and isinstance(y_value, int)
        assert 2 * x_value + 3 * y_value == 7

    def test_trivially_false_ground_atom_conflicts(self):
        theory = ArithTheory()
        ground = atom("(< (+ x 1) x)")
        assert theory.owns_atom(ground)
        conflict = theory.assert_literal(ground, True)
        assert conflict is not None
        assert conflict.literals == ((ground, True),)

    def test_exhausted_branch_budget_degrades_to_unknown(self):
        theory = ArithTheory(branch_limit=1)
        for text in self.BB_ATOMS:
            assert theory.assert_literal(atom(text), True) is None
        assert theory.check() is None  # budget too small to refute
        assert theory.model(SortValueAllocator()) is None
        assert theory.incomplete_reason() == "branch-budget-exhausted"
        assert theory.stats["bb_exhausted"] == 1

    def test_deep_branching_never_blows_the_stack(self):
        # Wide integer boxes with near-parallel coefficients force long
        # branch-and-bound chains; at the default interpreter recursion
        # limit this must degrade gracefully, never raise RecursionError.
        import sys

        theory = ArithTheory()
        atoms = (
            "(>= x 0)",
            "(<= x 2000)",
            "(>= y 0)",
            "(<= y 2000)",
            "(<= (+ (* 1999 x) (* 2001 y)) 3999997)",
            "(>= (+ (* 1999 x) (* 2001 y)) 3999997)",
        )
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(1000)
        try:
            conflict = None
            for text in atoms:
                conflict = theory.assert_literal(atom(text), True)
                if conflict is not None:
                    break
            if conflict is None:
                theory.check()  # must not raise, whatever the verdict
        finally:
            sys.setrecursionlimit(limit)


# ---------------------------------------------------------------------------
# Composite dispatch.
# ---------------------------------------------------------------------------


class TestComposite:
    def make(self):
        arith = ArithTheory()
        euf = EufTheory(uninterpreted=("f",))
        return arith, euf, TheoryComposite((arith, euf))

    def test_routing_priority(self):
        from repro.smtlib.sorts import uninterpreted_sort

        arith, euf, composite = self.make()
        sort_u = uninterpreted_sort("W")
        a = Symbol("a", sort_u)
        equality = Apply("=", (Apply("f", (a,), sort_u), a), BOOL)
        assert composite.owner(atom("(< x y)")) is arith
        assert composite.owner(equality) is euf
        assert composite.owner(atom("(< (div x 2) y)")) is None
        assert composite.owns_atom(atom("(< x y)"))
        assert not composite.owns_atom(atom("(< (mod x 5) y)"))

    def test_push_pop_lockstep_and_conflict(self):
        arith, euf, composite = self.make()
        composite.push()
        conflict = composite.assert_literal(atom("(< x x)"), True)
        assert conflict is not None
        assert composite.check() is conflict
        composite.pop()
        assert composite.check() is None

    def test_stats_are_prefixed(self):
        arith, euf, composite = self.make()
        composite.assert_literal(atom("(< x y)"), True)
        merged = composite.stats
        assert merged["arith_literals"] == 1
        assert merged["euf_literals"] == 0

    def test_models_merge_with_shared_allocator(self):
        arith, euf, composite = self.make()
        composite.assert_literal(atom("(>= x 3)"), True)
        assert composite.check() is None
        model = composite.model(SortValueAllocator())
        assert model is not None
        assert model.values["x"] == int_const(3)


# ---------------------------------------------------------------------------
# Engine-level QF_LRA / QF_LIA.
# ---------------------------------------------------------------------------


def check_one(text):
    results = solve_script(text)
    assert len(results) == 1
    return results[0]


def assert_valid_model(result):
    assert result.model is not None
    for term in result.assertions:
        assert evaluate(term, result.model, result.fun_interps) is TRUE


class TestEngineArith:
    def test_lra_sat_with_validated_model(self):
        result = check_one(
            """
            (declare-const u Real)
            (declare-const v Real)
            (assert (< (+ u v) 10.0))
            (assert (> (- u v) 2.0))
            (assert (= (+ u (* 3.0 v)) 6.0))
            (check-sat)
            """
        )
        assert result.answer == "sat"
        assert_valid_model(result)

    def test_lra_unsat_core_conflict(self):
        result = check_one(
            """
            (declare-const u Real)
            (declare-const v Real)
            (assert (< (+ u v) 2.0))
            (assert (< (- u v) 0.0))
            (assert (> u 1.0))
            (check-sat)
            """
        )
        assert result.answer == "unsat"

    def test_lia_relaxation_sat_integers_unsat(self):
        # Rationally feasible (x = 1/2), integrally infeasible.
        result = check_one(
            """
            (declare-const x Int)
            (assert (< (* 2 x) 2))
            (assert (> (* 2 x) 0))
            (check-sat)
            """
        )
        assert result.answer == "unsat"

    def test_lia_branch_and_bound_model(self):
        result = check_one(
            """
            (declare-const x Int)
            (declare-const y Int)
            (assert (>= x 0))
            (assert (>= y 0))
            (assert (= (+ (* 3 x) (* 5 y)) 41))
            (check-sat)
            """
        )
        assert result.answer == "sat"
        assert_valid_model(result)
        x_value = result.model["x"].value
        y_value = result.model["y"].value
        assert 3 * x_value + 5 * y_value == 41

    def test_disequality_case_split(self):
        result = check_one(
            """
            (declare-const x Int)
            (assert (<= 0 x))
            (assert (<= x 1))
            (assert (not (= x 0)))
            (assert (not (= x 1)))
            (check-sat)
            """
        )
        assert result.answer == "unsat"

    def test_distinct_over_ints(self):
        result = check_one(
            """
            (declare-const x Int)
            (declare-const y Int)
            (declare-const z Int)
            (assert (<= 0 x))
            (assert (<= x 2))
            (assert (<= 0 y))
            (assert (<= y 2))
            (assert (<= 0 z))
            (assert (<= z 2))
            (assert (distinct x y z))
            (check-sat)
            """
        )
        assert result.answer == "sat"
        assert_valid_model(result)
        values = {result.model[name].value for name in ("x", "y", "z")}
        assert values == {0, 1, 2}

    def test_mixed_euf_and_arith_script(self):
        result = check_one(
            """
            (declare-sort U 0)
            (declare-const a U)
            (declare-const b U)
            (declare-fun f (U) U)
            (declare-const x Int)
            (declare-const y Int)
            (assert (= (f a) b))
            (assert (not (= (f b) (f (f a)))))
            (assert (< x y))
            (check-sat)
            """
        )
        assert result.answer == "unsat"

    def test_mixed_sat_merges_models(self):
        result = check_one(
            """
            (declare-sort U 0)
            (declare-const a U)
            (declare-const b U)
            (declare-const x Int)
            (assert (not (= a b)))
            (assert (>= x 7))
            (assert (<= x 7))
            (check-sat)
            """
        )
        assert result.answer == "sat"
        assert_valid_model(result)
        assert result.model["x"] == int_const(7)

    def test_incremental_push_pop_arith(self):
        results = solve_script(
            """
            (declare-const x Int)
            (declare-const y Int)
            (assert (<= (+ x y) 10))
            (check-sat)
            (push 1)
            (assert (>= x 8))
            (assert (>= y 8))
            (check-sat)
            (pop 1)
            (check-sat)
            """
        )
        assert [r.answer for r in results] == ["sat", "unsat", "sat"]

    def test_arith_stats_reported(self):
        result = check_one(
            """
            (declare-const x Int)
            (assert (>= x 3))
            (assert (<= x 3))
            (check-sat)
            """
        )
        assert result.answer == "sat"
        assert result.stats["arith_literals"] >= 2
        assert "arith_pivots" in result.stats
        assert "euf_literals" in result.stats

    def test_get_value_over_rational_model(self):
        from repro import run_script

        result = run_script(
            """
            (declare-const u Real)
            (assert (> (* 2.0 u) 1.0))
            (assert (< (* 2.0 u) 2.0))
            (check-sat)
            (get-value (u (* 4.0 u)))
            """
        )
        assert result.answers == ["sat"]
        assert result.output[0] == "sat"
        assert "u" in result.output[1]

    def test_chained_comparison_expansion(self):
        result = check_one(
            """
            (declare-const x Int)
            (declare-const y Int)
            (declare-const z Int)
            (assert (< x y z))
            (assert (>= x 0))
            (assert (<= z 2))
            (check-sat)
            """
        )
        assert result.answer == "sat"
        assert_valid_model(result)
        assert (
            result.model["x"].value
            < result.model["y"].value
            < result.model["z"].value
        )

    def test_unbounded_optimum_direction_is_sat(self):
        result = check_one(
            """
            (declare-const x Int)
            (declare-const y Int)
            (assert (>= (+ x y) 100))
            (check-sat)
            """
        )
        assert result.answer == "sat"
        assert_valid_model(result)

    def test_branch_budget_reason_reaches_the_engine(self, monkeypatch):
        import repro.engine.solve as solve_module

        monkeypatch.setattr(
            solve_module, "ArithTheory", lambda: ArithTheory(branch_limit=1)
        )
        result = check_one(
            """
            (declare-const x Int)
            (declare-const y Int)
            (assert (>= x 0))
            (assert (>= y 0))
            (assert (<= (+ (* 3 x) (* 5 y)) 4))
            (assert (>= (+ (* 3 x) (* 5 y)) 4))
            (check-sat)
            """
        )
        assert result.answer == "unknown"
        assert result.reason == "branch-budget-exhausted"

    def test_rationals_print_exactly(self):
        from repro import run_script

        result = run_script(
            """
            (declare-const u Real)
            (assert (= (* 3.0 u) 1.0))
            (check-sat)
            (get-value (u))
            """
        )
        assert result.answers == ["sat"]
        assert result.output[1] == "((u (/ 1.0 3.0)))"
