"""Tests for eager bit-blasting: the QF_BV path.

Two layers of assurance:

* **Circuit-vs-oracle** — every circuit the blaster builds is checked
  exhaustively against :func:`repro.smtlib.evaluate.fold_apply` at small
  widths: for every input pair, the blasted atom must evaluate ``true``
  exactly on the operator's reference result and ``false`` on a wrong
  one.  This covers the adder, multiplier, restoring divider (including
  the SMT-LIB division-by-zero totality), barrel shifters, signed
  expansions, comparisons and the structural/indexed operators.
* **Engine cross-checks** — QF_BV scripts through the full stack:
  sat/unsat answers, certified proofs (blasted clauses are input clauses,
  so every unsat is RUP-checkable), model decoding with bit symbols kept
  out of models, incremental push/pop, and per-check metrics.
"""

import pytest

from repro import solve_script
from repro.proof import check_proof
from repro.smtlib import (
    BOOL,
    Apply,
    Symbol,
    bitvec_const,
    bitvec_sort,
    bool_const,
    evaluate,
    fold_apply,
)
from repro.theory import BvBlaster
from repro.theory.bv import BIT_MARKER

# ---------------------------------------------------------------------------
# Circuit-vs-oracle exhaustive checks.
# ---------------------------------------------------------------------------


def bv_sym(name: str, width: int) -> Symbol:
    return Symbol(name, bitvec_sort(width))


def bit_bindings(values: dict[str, tuple[int, int]]) -> dict:
    """Bindings for every bit symbol of ``name -> (value, width)``."""
    env = {}
    for name, (value, width) in values.items():
        for i in range(width):
            env[f"{name}{BIT_MARKER}{i}"] = bool_const(bool((value >> i) & 1))
    return env


def assert_circuit_matches(blaster, atom, env, expected: bool, context: str):
    circuit = blaster.rewrite(atom)
    got = evaluate(circuit, env).value
    assert got is expected, f"{context}: circuit={got}, oracle={expected}"


WORD_OPS = [
    "bvadd",
    "bvsub",
    "bvmul",
    "bvand",
    "bvor",
    "bvxor",
    "bvudiv",
    "bvurem",
    "bvsdiv",
    "bvsrem",
    "bvsmod",
    "bvshl",
    "bvlshr",
    "bvashr",
]

CMP_OPS = ["bvult", "bvule", "bvugt", "bvuge", "bvslt", "bvsle", "bvsgt", "bvsge"]


@pytest.mark.parametrize("op", WORD_OPS)
@pytest.mark.parametrize("width", [1, 2, 3])
def test_binary_word_circuit_exhaustive(op, width):
    blaster = BvBlaster()
    x, y = bv_sym("x", width), bv_sym("y", width)
    sort = bitvec_sort(width)
    term = Apply(op, (x, y), sort)
    for xv in range(1 << width):
        for yv in range(1 << width):
            env = bit_bindings({"x": (xv, width), "y": (yv, width)})
            oracle = fold_apply(
                op, (), (bitvec_const(xv, width), bitvec_const(yv, width)), sort
            )
            assert oracle is not None, f"oracle cannot fold {op}"
            expected = oracle.value
            for probe in range(1 << width):
                atom = Apply("=", (term, bitvec_const(probe, width)), BOOL)
                assert_circuit_matches(
                    blaster,
                    atom,
                    env,
                    probe == expected,
                    f"{op} width={width} x={xv} y={yv} probe={probe}",
                )


@pytest.mark.parametrize("op", CMP_OPS)
@pytest.mark.parametrize("width", [1, 2, 3, 4])
def test_comparison_circuit_exhaustive(op, width):
    blaster = BvBlaster()
    x, y = bv_sym("x", width), bv_sym("y", width)
    atom = Apply(op, (x, y), BOOL)
    for xv in range(1 << width):
        for yv in range(1 << width):
            env = bit_bindings({"x": (xv, width), "y": (yv, width)})
            oracle = fold_apply(
                op, (), (bitvec_const(xv, width), bitvec_const(yv, width)), BOOL
            )
            assert_circuit_matches(
                blaster,
                atom,
                env,
                oracle.value,
                f"{op} width={width} x={xv} y={yv}",
            )


@pytest.mark.parametrize("op", ["bvnot", "bvneg"])
@pytest.mark.parametrize("width", [1, 2, 3, 4])
def test_unary_circuit_exhaustive(op, width):
    blaster = BvBlaster()
    x = bv_sym("x", width)
    sort = bitvec_sort(width)
    term = Apply(op, (x,), sort)
    for xv in range(1 << width):
        env = bit_bindings({"x": (xv, width)})
        expected = fold_apply(op, (), (bitvec_const(xv, width),), sort).value
        for probe in range(1 << width):
            atom = Apply("=", (term, bitvec_const(probe, width)), BOOL)
            assert_circuit_matches(
                blaster, atom, env, probe == expected, f"{op} x={xv} probe={probe}"
            )


INDEXED_CASES = [
    ("extract", (2, 1), 4, 2),
    ("extract", (3, 0), 4, 4),
    ("zero_extend", (2,), 3, 5),
    ("sign_extend", (2,), 3, 5),
    ("rotate_left", (1,), 4, 4),
    ("rotate_right", (3,), 4, 4),
    ("repeat", (2,), 3, 6),
]


@pytest.mark.parametrize(
    "op,indices,width,out_width", INDEXED_CASES, ids=lambda v: str(v)
)
def test_indexed_circuit_exhaustive(op, indices, width, out_width):
    blaster = BvBlaster()
    x = bv_sym("x", width)
    sort = bitvec_sort(out_width)
    term = Apply(op, (x,), sort, indices=tuple(indices))
    for xv in range(1 << width):
        env = bit_bindings({"x": (xv, width)})
        expected = fold_apply(
            op, tuple(indices), (bitvec_const(xv, width),), sort
        ).value
        for probe in range(1 << out_width):
            atom = Apply("=", (term, bitvec_const(probe, out_width)), BOOL)
            assert_circuit_matches(
                blaster,
                atom,
                env,
                probe == expected,
                f"{op}{indices} x={xv} probe={probe}",
            )


def test_concat_circuit_exhaustive():
    blaster = BvBlaster()
    x, y = bv_sym("x", 2), bv_sym("y", 3)
    sort = bitvec_sort(5)
    term = Apply("concat", (x, y), sort)
    for xv in range(4):
        for yv in range(8):
            env = bit_bindings({"x": (xv, 2), "y": (yv, 3)})
            expected = (xv << 3) | yv
            for probe in range(32):
                atom = Apply("=", (term, bitvec_const(probe, 5)), BOOL)
                assert_circuit_matches(
                    blaster, atom, env, probe == expected, f"concat {xv} {yv}"
                )


def test_ite_condition_is_rewritten():
    """The condition of a bit-vector ``ite`` is itself a BV atom and must
    blast along with the branches."""
    blaster = BvBlaster()
    x, y = bv_sym("x", 2), bv_sym("y", 2)
    sort = bitvec_sort(2)
    cond = Apply("bvult", (x, y), BOOL)
    term = Apply("ite", (cond, x, y), sort)  # min(x, y)
    for xv in range(4):
        for yv in range(4):
            env = bit_bindings({"x": (xv, 2), "y": (yv, 2)})
            expected = min(xv, yv)
            atom = Apply("=", (term, bitvec_const(expected, 2)), BOOL)
            assert_circuit_matches(
                blaster, atom, env, True, f"ite-min {xv} {yv}"
            )


def test_nary_equality_chains():
    blaster = BvBlaster()
    x, y, z = bv_sym("x", 2), bv_sym("y", 2), bv_sym("z", 2)
    atom = Apply("=", (x, y, z), BOOL)
    for xv in range(4):
        for yv in range(4):
            for zv in range(4):
                env = bit_bindings(
                    {"x": (xv, 2), "y": (yv, 2), "z": (zv, 2)}
                )
                assert_circuit_matches(
                    blaster, atom, env, xv == yv == zv, f"= {xv} {yv} {zv}"
                )


def test_unsupported_leaves_stay_abstracted():
    """Atoms over non-symbol BV leaves survive unchanged (sound fallback)."""
    blaster = BvBlaster()
    w = bitvec_sort(4)
    ux = Apply("f", (bv_sym("x", 4),), w)  # uninterpreted application
    atom = Apply("=", (ux, bitvec_const(0, 4)), BOOL)
    assert blaster.rewrite(atom) is atom
    assert blaster.stats["atoms_skipped"] == 1


def test_decode_reads_back_words():
    blaster = BvBlaster()
    x = bv_sym("x", 3)
    atom = Apply("=", (x, bitvec_const(5, 3)), BOOL)
    blaster.rewrite(atom)
    model = {
        f"x{BIT_MARKER}0": bool_const(True),
        f"x{BIT_MARKER}2": bool_const(True),
        # bit 1 absent: don't-care bits read as 0
    }
    decoded = blaster.decode(model)
    assert decoded["x"] == bitvec_const(5, 3)
    assert blaster.is_bit(f"x{BIT_MARKER}1")
    assert not blaster.is_bit("x")


# ---------------------------------------------------------------------------
# Engine cross-checks.
# ---------------------------------------------------------------------------


def answers(script, **kw):
    return [check.answer for check in solve_script(script, **kw)]


class TestEngine:
    def test_sat_with_decoded_model(self):
        checks = solve_script(
            "(declare-const x (_ BitVec 8))"
            "(declare-const y (_ BitVec 8))"
            "(assert (= (bvadd x y) #x2a))"
            "(assert (bvult x y))"
            "(check-sat)"
        )
        assert checks[0].answer == "sat"
        model = checks[0].model
        xv, yv = model["x"].value, model["y"].value
        assert (xv + yv) % 256 == 0x2A
        assert xv < yv
        assert all(BIT_MARKER not in name for name in model)

    def test_unsat_is_certified(self):
        checks = solve_script(
            "(declare-const x (_ BitVec 6))"
            "(assert (bvult x #b000000))"
            "(check-sat)",
            produce_proofs=True,
        )
        assert checks[0].answer == "unsat"
        assert checks[0].proof is not None
        assert check_proof(checks[0].proof).ok

    def test_adder_commutes_certified(self):
        checks = solve_script(
            "(declare-const x (_ BitVec 5))"
            "(declare-const y (_ BitVec 5))"
            "(assert (not (= (bvadd x y) (bvadd y x))))"
            "(check-sat)",
            produce_proofs=True,
        )
        assert checks[0].answer == "unsat"
        assert check_proof(checks[0].proof).ok

    def test_mul_distributes_certified(self):
        checks = solve_script(
            "(declare-const a (_ BitVec 4))"
            "(declare-const b (_ BitVec 4))"
            "(declare-const c (_ BitVec 4))"
            "(assert (not (= (bvmul a (bvadd b c))"
            "                (bvadd (bvmul a b) (bvmul a c)))))"
            "(check-sat)",
            produce_proofs=True,
        )
        assert checks[0].answer == "unsat"
        assert check_proof(checks[0].proof).ok

    def test_division_by_zero_totality(self):
        assert answers(
            "(declare-const x (_ BitVec 4))"
            "(assert (not (= (bvudiv x #x0) #xf)))"
            "(check-sat)"
        ) == ["unsat"]
        assert answers(
            "(declare-const x (_ BitVec 4))"
            "(assert (not (= (bvurem x #x0) x)))"
            "(check-sat)"
        ) == ["unsat"]

    def test_incremental_push_pop(self):
        assert answers(
            "(declare-const x (_ BitVec 4))"
            "(assert (bvule #x3 x))"
            "(check-sat)"
            "(push 1)"
            "(assert (bvult x #x2))"
            "(check-sat)"
            "(pop 1)"
            "(check-sat)"
        ) == ["sat", "unsat", "sat"]

    def test_incremental_reencode_is_free(self):
        checks = solve_script(
            "(declare-const x (_ BitVec 8))"
            "(assert (= (bvmul x x) #x40))"
            "(check-sat)"
            "(push 1)(check-sat)(pop 1)"
            "(check-sat)"
        )
        assert [c.answer for c in checks] == ["sat"] * 3
        # The blaster memo survives push/pop: later checks re-blast nothing.
        assert checks[1].stats["bv_atoms_blasted"] == 0
        assert checks[2].stats["bv_atoms_blasted"] == 0

    def test_metrics_exposed_per_check(self):
        checks = solve_script(
            "(declare-const x (_ BitVec 4))"
            "(assert (bvult x #x5))"
            "(check-sat)"
        )
        stats = checks[0].stats
        assert stats["bv_atoms_blasted"] >= 1
        assert stats["bv_symbols"] == 1
        assert stats["bv_bits"] == 4

    def test_mixed_bool_structure(self):
        assert answers(
            "(declare-const x (_ BitVec 3))"
            "(declare-const p Bool)"
            "(assert (or p (bvuge x #b101)))"
            "(assert (not p))"
            "(assert (bvult x #b110))"
            "(check-sat)"
        ) == ["sat"]

    def test_get_value_over_bv_terms(self):
        from repro import run_script

        result = run_script(
            "(declare-const x (_ BitVec 4))"
            "(assert (= x #x9))"
            "(check-sat)"
            "(get-value (x (bvadd x #x1)))"
        )
        printed = " ".join(result.output)
        assert "#x9" in printed
        assert "#xa" in printed

    def test_signed_comparison_engine(self):
        # #b100 is -4 signed: smaller than every non-negative value.
        assert answers(
            "(declare-const x (_ BitVec 3))"
            "(assert (bvslt x #b000))"
            "(assert (bvuge x #b100))"
            "(check-sat)"
        ) == ["sat"]

    def test_wide_width_stays_abstracted_but_sound(self):
        # 300 bits exceeds MAX_BLAST_WIDTH: the atom is not blasted, the
        # answer degrades to unknown instead of guessing.
        checks = solve_script(
            "(declare-const x (_ BitVec 300))"
            "(assert (= x x))"
            "(check-sat)"
        )
        assert checks[0].answer in ("sat", "unknown")
