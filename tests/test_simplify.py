"""Tests for the theory-aware simplifier: per-theory rewrite rules, sort
preservation, the rewrite fixpoint, and `simplify_script` over the corpus."""

from pathlib import Path

import pytest

from repro.smtlib import (
    DeclarationContext,
    check,
    check_script,
    parse_script,
    parse_term,
    simplify,
    simplify_script,
)
from repro.smtlib.sorts import BOOL, INT, STRING, bitvec_sort
from repro.smtlib.terms import Apply, Symbol, int_const

CORPUS = sorted((Path(__file__).parent / "corpus").glob("*.smt2"))


@pytest.fixture()
def ctx():
    context = DeclarationContext()
    context.declare_const("x", INT)
    context.declare_const("y", INT)
    context.declare_const("b", BOOL)
    context.declare_const("c", BOOL)
    context.declare_const("v", bitvec_sort(8))
    context.declare_const("w", bitvec_sort(8))
    context.declare_const("s", STRING)
    return context


def simp(text, ctx):
    term = parse_term(text, ctx)
    result = simplify(term)
    # Every rewrite is sort-preserving and well-sorted at the original sort.
    assert result.sort == term.sort
    check(result, ctx)
    # Rewrite fixpoint: with interning this is an identity check.
    assert simplify(result) is result
    return str(result)


# -- Core --------------------------------------------------------------------


@pytest.mark.parametrize(
    "text,expected",
    [
        ("(not true)", "false"),
        ("(not (not b))", "b"),
        ("(and b true c true)", "(and b c)"),
        ("(and b false c)", "false"),
        ("(and b b b)", "b"),
        ("(and b (not b))", "false"),
        ("(and (and b c) c)", "(and b c)"),
        ("(or b false c)", "(or b c)"),
        ("(or b true)", "true"),
        ("(or (not b) b)", "true"),
        ("(xor b false)", "b"),
        ("(xor b true)", "(not b)"),
        ("(xor true true)", "false"),
        ("(=> b true)", "true"),
        ("(=> false b)", "true"),
        ("(=> true b)", "b"),
        ("(=> b c false)", "(not (and b c))"),
        ("(= x x)", "true"),
        ("(= b true)", "b"),
        ("(= b false)", "(not b)"),
        ("(= 1 2)", "false"),
        ("(distinct x x)", "false"),
        ("(distinct b c (not b))", "false"),
        ("(distinct b false)", "b"),
        ("(ite true x y)", "x"),
        ("(ite false x y)", "y"),
        ("(ite b x x)", "x"),
        ("(ite b true false)", "b"),
        ("(ite b false true)", "(not b)"),
        ("(ite (not b) x y)", "(ite b y x)"),
    ],
)
def test_core_rules(ctx, text, expected):
    assert simp(text, ctx) == expected


# -- Ints / Reals ------------------------------------------------------------


@pytest.mark.parametrize(
    "text,expected",
    [
        ("(+ 1 2 3)", "6"),
        ("(+ x 0)", "x"),
        ("(+ 1 x 2)", "(+ x 3)"),
        ("(+ (+ x 1) 2)", "(+ x 3)"),
        ("(* x 1)", "x"),
        ("(* x 0 y)", "0"),
        ("(* 2 x 3)", "(* x 6)"),
        ("(- 5)", "(- 5)"),  # negative literal prints as (- 5)
        ("(- (- x))", "x"),
        ("(- x 0)", "x"),
        ("(- 7 2)", "5"),
        ("(div x 1)", "x"),
        ("(div 7 2)", "3"),
        ("(div (- 7) 2)", "(- 4)"),
        ("(mod x 1)", "0"),
        ("(mod (- 7) 2)", "1"),
        ("(abs (- 3))", "3"),
        ("(< x x)", "false"),
        ("(<= x x)", "true"),
        ("(< 1 2 3)", "true"),
        ("(< 1 3 2)", "false"),
        ("(to_int (to_real x))", "x"),
        ("(to_int 3.7)", "3"),
        ("(/ 1.0 4.0)", "0.25"),
    ],
)
def test_arith_rules(ctx, text, expected):
    assert simp(text, ctx) == expected


# -- BitVec ------------------------------------------------------------------


@pytest.mark.parametrize(
    "text,expected",
    [
        ("(bvadd #x01 #x02)", "#x03"),
        ("(bvadd v #x00)", "v"),
        ("(bvadd #xff #x02)", "#x01"),  # wraps mod 2^8
        ("(bvmul v #x01)", "v"),
        ("(bvmul v #x00)", "#x00"),
        ("(bvand v #x00)", "#x00"),
        ("(bvand v #xff)", "v"),
        ("(bvor v #x00)", "v"),
        ("(bvor v #xff)", "#xff"),
        ("(bvxor v #x00)", "v"),
        ("(bvsub v #x00)", "v"),
        ("(bvshl v #x00)", "v"),
        ("(bvudiv v #x01)", "v"),
        ("(bvnot #x0f)", "#xf0"),
        ("(concat #b10 #b01)", "#x9"),
        ("(concat v #x01 #x02)", "(concat v #x0102)"),
        ("((_ extract 7 0) v)", "v"),
        ("((_ extract 3 0) #xab)", "#xb"),
        ("((_ zero_extend 0) v)", "v"),
        ("((_ zero_extend 8) #xff)", "#x00ff"),
        ("((_ sign_extend 8) #xff)", "#xffff"),
        ("((_ rotate_left 8) v)", "v"),
        ("((_ rotate_left 4) #xab)", "#xba"),
        ("((_ repeat 1) v)", "v"),
        ("(bvult v v)", "false"),
        ("(bvule v v)", "true"),
        ("(bvult #x01 #x02)", "true"),
        ("(bvslt #xff #x01)", "true"),  # -1 < 1 signed
        ("(bvudiv #x05 #x00)", "#xff"),  # SMT-LIB: bvudiv by zero is all-ones
        ("(bvurem #x05 #x00)", "#x05"),
    ],
)
def test_bitvec_rules(ctx, text, expected):
    assert simp(text, ctx) == expected


# -- Strings -----------------------------------------------------------------


@pytest.mark.parametrize(
    "text,expected",
    [
        ('(str.++ "foo" "bar")', '"foobar"'),
        ('(str.++ s "")', "s"),
        ('(str.++ "a" "b" s "c" "d")', '(str.++ "ab" s "cd")'),
        ('(str.len "hello")', "5"),
        ('(str.contains "hello" "ell")', "true"),
        ('(str.at "abc" 1)', '"b"'),
        ('(str.substr "abcdef" 1 3)', '"bcd"'),
        ('(str.to_int "42")', "42"),
        ('(str.to_int "4a")', "(- 1)"),
        ("(str.from_int 42)", '"42"'),
        ("(str.< s s)", "false"),
    ],
)
def test_string_rules(ctx, text, expected):
    assert simp(text, ctx) == expected


# -- Binders -----------------------------------------------------------------


@pytest.mark.parametrize(
    "text,expected",
    [
        ("(let ((z (+ 1 2))) (+ x z))", "(+ x 3)"),
        ("(let ((z (+ x y))) (< z z))", "false"),
        ("(let ((z (+ x y))) (< x 1))", "(< x 1)"),  # unused binding dropped
        ("(forall ((q Int)) (< q 1))", "(forall ((q Int)) (< q 1))"),
        ("(forall ((q Int)) (< x 1))", "(< x 1)"),  # unused binder dropped
        ("(forall ((q Int)) (= q q))", "true"),
        ("(exists ((q Int)) false)", "false"),
        ("(forall ((q Int) (r Int)) (< q 1))", "(forall ((q Int)) (< q 1))"),
    ],
)
def test_binder_rules(ctx, text, expected):
    assert simp(text, ctx) == expected


def test_let_substitution_never_captures(ctx):
    # The literal binding substitutes under the quantifier; the symbolic one
    # must survive as a let around the body.
    text = "(let ((z 5)) (forall ((q Int)) (< q z)))"
    assert simp(text, ctx) == "(forall ((q Int)) (< q 5))"
    text = "(let ((z (+ x y))) (forall ((q Int)) (< q z)))"
    assert simp(text, ctx) == "(let ((z (+ x y))) (forall ((q Int)) (< q z)))"


# -- Whole scripts / corpus --------------------------------------------------


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_simplify_fixpoint_and_sorts(path):
    script = parse_script(path.read_text())
    simplified = simplify_script(script)
    # Fixpoint at the script level.
    assert simplify_script(simplified) == simplified
    # Sorts are preserved assertion by assertion, and the rewritten script
    # still checks end to end.
    for before, after in zip(script.assertions(), simplified.assertions()):
        assert before.sort == after.sort
    check_script(simplified)


def test_simplify_script_only_touches_assertions():
    script = parse_script(
        "(set-logic QF_LIA)\n"
        "(declare-const x Int)\n"
        "(assert (< (+ x 0) (+ 1 2)))\n"
        "(check-sat)\n"
    )
    simplified = simplify_script(script)
    assert [type(c).__name__ for c in simplified] == [
        type(c).__name__ for c in script
    ]
    assert str(simplified.assertions()[0]) == "(< x 3)"


def test_shared_subterms_simplify_once():
    x = Symbol("x", INT)
    shared = Apply("+", (x, int_const(0)), INT)
    root = Apply("<", (shared, Apply("*", (shared, int_const(1)), INT)), BOOL)
    assert str(simplify(root)) == "(< x x)" or str(simplify(root)) == "false"
    assert simplify(root) is simplify(root)


def test_flattening_is_capped_on_shared_dags():
    # t = (+ t t) repeated: tree size 2^60, must stay tractable.
    t = Apply("+", (Symbol("x", INT), int_const(1)), INT)
    for _ in range(60):
        t = Apply("+", (t, t), INT)
    result = simplify(t)
    assert result.sort == INT
    assert simplify(result) is result
