"""Unit tests for the s-expression layer."""

import pytest

from repro.errors import ParseError
from repro.smtlib.lexer import TokenKind
from repro.smtlib.sexpr import (
    Atom,
    head_symbol,
    parse_sexprs,
    sexpr_to_string,
    strip_atoms,
)


def test_parse_nested_lists():
    exprs = parse_sexprs("(assert (= x 1))")
    assert len(exprs) == 1
    assert strip_atoms(exprs[0]) == ["assert", ["=", "x", "1"]]


def test_multiple_top_level_expressions():
    exprs = parse_sexprs("(check-sat) (exit)")
    assert [head_symbol(e) for e in exprs] == ["check-sat", "exit"]


def test_atom_kinds_preserved():
    exprs = parse_sexprs('(f 1 1.5 #b10 "s")')
    kinds = [a.kind for a in exprs[0][1:]]
    assert kinds == [
        TokenKind.NUMERAL,
        TokenKind.DECIMAL,
        TokenKind.BINARY,
        TokenKind.STRING,
    ]


def test_unbalanced_parens_rejected():
    with pytest.raises(ParseError):
        parse_sexprs("(a (b)")
    with pytest.raises(ParseError):
        parse_sexprs("a)")


def test_round_trip_rendering():
    exprs = parse_sexprs('(assert (= x "a""b"))')
    rendered = sexpr_to_string(exprs[0])
    assert rendered == '(assert (= x "a""b"))'
    assert parse_sexprs(rendered) == exprs


def test_string_atom_renders_with_doubled_quotes():
    atom = Atom('a"b', TokenKind.STRING)
    assert str(atom) == '"a""b"'


def test_quoted_symbol_atoms_render_with_bars():
    # Regression: sexpr rendering used to drop |...| quoting, corrupting any
    # structure-level rewrite of scripts with non-simple symbols.
    expr = parse_sexprs("(declare-const |a b| Int)")[0]
    rendered = sexpr_to_string(expr)
    assert rendered == "(declare-const |a b| Int)"
    assert parse_sexprs(rendered) == [expr]
