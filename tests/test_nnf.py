"""Tests for the polarity-tracking NNF pass (`to_nnf`)."""

import itertools
import random

import pytest

from repro.smtlib import (
    BOOL,
    INT,
    Apply,
    FALSE,
    Let,
    Quantifier,
    Symbol,
    TRUE,
    bool_const,
    evaluate,
    int_const,
    is_connective,
    negate,
    to_nnf,
)

A, B, C, D = (Symbol(name, BOOL) for name in "abcd")
X = Symbol("x", INT)


def _not(t):
    return Apply("not", (t,), BOOL)


def _and(*ts):
    return Apply("and", ts, BOOL)


def _or(*ts):
    return Apply("or", ts, BOOL)


def _xor(*ts):
    return Apply("xor", ts, BOOL)


def _implies(*ts):
    return Apply("=>", ts, BOOL)


def _iff(*ts):
    return Apply("=", ts, BOOL)


def _ite(c, t, e):
    return Apply("ite", (c, t, e), BOOL)


def assert_nnf_shape(term):
    """Every ``not`` in an NNF term sits directly above an atom."""
    for node in term.walk():
        if isinstance(node, Apply) and node.op == "not":
            assert not is_connective(node.args[0]), f"not above connective: {node}"
        if isinstance(node, Apply) and node.op == "=>":
            assert not is_connective(node) or False, f"=> survived NNF: {node}"


def random_bool_term(rng, depth, atoms):
    if depth == 0 or rng.random() < 0.2:
        choice = rng.random()
        if choice < 0.1:
            return bool_const(rng.random() < 0.5)
        return rng.choice(atoms)
    op = rng.choice(["not", "and", "or", "xor", "=>", "=", "distinct", "ite"])
    sub = lambda: random_bool_term(rng, depth - 1, atoms)
    if op == "not":
        return _not(sub())
    if op == "ite":
        return _ite(sub(), sub(), sub())
    if op in ("=", "distinct"):
        return Apply(op, (sub(), sub()), BOOL)
    width = rng.randint(2, 3)
    return Apply(op, tuple(sub() for _ in range(width)), BOOL)


class TestShape:
    def test_pushes_not_through_and(self):
        result = to_nnf(_not(_and(A, B)))
        assert result == _or(_not(A), _not(B))

    def test_pushes_not_through_or(self):
        result = to_nnf(_not(_or(A, B, C)))
        assert result == _and(_not(A), _not(B), _not(C))

    def test_double_negation_cancels(self):
        assert to_nnf(_not(_not(A))) is A

    def test_implies_expands_to_or(self):
        assert to_nnf(_implies(A, B)) == _or(_not(A), B)

    def test_negated_implies_is_conjunction(self):
        assert to_nnf(_not(_implies(A, B, C))) == _and(A, B, _not(C))

    def test_negated_xor_flips_last_argument(self):
        assert to_nnf(_not(_xor(A, B))) == _xor(A, _not(B))

    def test_negated_iff_is_xor(self):
        assert to_nnf(_not(_iff(A, B))) == _xor(A, B)

    def test_chained_iff_expands(self):
        result = to_nnf(_iff(A, B, C))
        assert result == _and(_iff(A, B), _iff(B, C))

    def test_negated_chained_iff(self):
        result = to_nnf(_not(_iff(A, B, C)))
        assert result == _or(_xor(A, B), _xor(B, C))

    def test_bool_distinct_is_xor(self):
        assert to_nnf(Apply("distinct", (A, B), BOOL)) == _xor(A, B)

    def test_wide_bool_distinct_is_false(self):
        assert to_nnf(Apply("distinct", (A, B, C), BOOL)) is FALSE
        assert to_nnf(_not(Apply("distinct", (A, B, C), BOOL))) is TRUE

    def test_negated_ite_negates_branches(self):
        assert to_nnf(_not(_ite(A, B, C))) == _ite(A, _not(B), _not(C))

    def test_constants_flip(self):
        assert to_nnf(_not(TRUE)) is FALSE
        assert to_nnf(_not(FALSE)) is TRUE

    def test_quantifiers_dualise(self):
        body = _and(A, B)
        term = _not(Quantifier("forall", (("a", BOOL),), body))
        result = to_nnf(term)
        assert isinstance(result, Quantifier)
        assert result.kind == "exists"
        assert result.body == _or(_not(A), _not(B))

    def test_let_pushes_into_body_only(self):
        value = _and(A, B)
        term = _not(Let((("s", value),), Symbol("s", BOOL)))
        result = to_nnf(term)
        assert isinstance(result, Let)
        assert result.bindings[0][1] is value  # binding value untouched
        assert result.body == _not(Symbol("s", BOOL))

    def test_theory_atoms_are_opaque(self):
        atom = Apply("<", (X, int_const(0)), BOOL)
        assert to_nnf(atom) is atom
        assert to_nnf(_not(atom)) == _not(atom)
        # The negation is not pushed inside the atom's arguments.
        assert to_nnf(_not(_and(atom, A))) == _or(_not(atom), _not(A))

    def test_rejects_non_boolean_terms(self):
        with pytest.raises(ValueError):
            to_nnf(X)


class TestSemantics:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_terms_preserve_truth_tables(self, seed):
        rng = random.Random(seed)
        atoms = [A, B, C, D]
        term = random_bool_term(rng, 4, atoms)
        converted = to_nnf(term)
        assert converted.sort == BOOL
        assert_nnf_shape(converted)
        for values in itertools.product([False, True], repeat=4):
            env = {s.name: bool_const(v) for s, v in zip(atoms, values)}
            assert evaluate(term, env) is evaluate(converted, env), (term, converted)

    @pytest.mark.parametrize("seed", range(20))
    def test_idempotent(self, seed):
        rng = random.Random(1000 + seed)
        term = random_bool_term(rng, 4, [A, B, C])
        converted = to_nnf(term)
        assert to_nnf(converted) is converted


class TestSharing:
    def test_shared_doubling_dag_stays_linear(self):
        # Without (node, polarity) memoization this is exponential.
        term = _and(A, B)
        for _ in range(200):
            term = _and(term, term)
        result = to_nnf(_not(term))
        assert result.dag_size() <= term.dag_size() + 3

    def test_shared_node_converted_once_per_polarity(self):
        shared = _and(A, B)
        term = _or(_not(shared), _and(shared, C))
        result = to_nnf(term)
        # The negative-polarity copy is the De Morgan dual, the positive
        # copy is untouched; both stay shared DAG nodes.
        assert result == _or(_or(_not(A), _not(B)), _and(shared, C))


class TestNegateHelper:
    def test_negate_flips_constants(self):
        assert negate(TRUE) is FALSE
        assert negate(FALSE) is TRUE

    def test_negate_unwraps_not(self):
        assert negate(_not(A)) is A
        assert negate(A) == _not(A)
