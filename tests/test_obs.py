"""The observability layer: metrics registry, span tracing, event log,
profile rendering, engine/CLI integration and the overhead guard."""

from __future__ import annotations

import io
import json
import time
from pathlib import Path

import pytest

from repro.engine import Engine, run_script, solve_script
from repro.obs import (
    EVENT_SCHEMA,
    EventLog,
    MetricsRegistry,
    NULL_SPAN,
    Observability,
    Tracer,
    format_phase_table,
    get_current_tracer,
    open_memory_log,
    phase_seconds,
    phase_totals,
    set_current_tracer,
    trace_span,
    validate_event,
    validate_trace,
)
from repro.smtlib import parse_script


# ---------------------------------------------------------------------------
# Metrics registry.
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("engine.widgets")
        counter.inc()
        counter.inc(4)
        assert registry.snapshot()["engine.widgets"] == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.timer("t") is registry.timer("t")

    def test_cross_kind_name_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.timer("x")

    def test_timer_monotonic_accumulation(self):
        registry = MetricsRegistry()
        timer = registry.timer("phase")
        with timer.time():
            time.sleep(0.001)
        with timer.time():
            pass
        assert timer.count == 2
        assert timer.total_ns >= 1_000_000
        snap = registry.snapshot()
        assert snap["phase_ns"] == timer.total_ns
        assert snap["phase_count"] == 2
        with pytest.raises(ValueError):
            timer.add_ns(-5)

    def test_source_namespacing_and_unregister(self):
        registry = MetricsRegistry()
        stats = {"hits": 3, "level": 9}
        registry.register_source("ns", lambda: stats, gauges=("level",))
        snap = registry.snapshot()
        assert snap == {"ns.hits": 3, "ns.level": 9}
        assert registry.gauge_keys() == frozenset({"ns.level"})
        registry.unregister_source("ns")
        assert registry.snapshot() == {}

    def test_unregister_prefix(self):
        registry = MetricsRegistry()
        registry.register_source("theory.euf", lambda: {"merges": 1})
        registry.register_source("theory.arith", lambda: {"pivots": 2})
        registry.register_source("sat", lambda: {"conflicts": 3})
        registry.unregister_prefix("theory.")
        assert registry.snapshot() == {"sat.conflicts": 3}

    def test_delta_counts_new_sources_from_zero(self):
        registry = MetricsRegistry()
        stats = {"conflicts": 2}
        registry.register_source("sat", lambda: stats)
        before = registry.snapshot()
        stats["conflicts"] = 7
        registry.register_source("theory.euf", lambda: {"merges": 11})
        delta = registry.delta(before)
        assert delta["sat.conflicts"] == 5
        assert delta["theory.euf.merges"] == 11  # absent in before: from zero

    def test_delta_gauges_keep_after_value(self):
        registry = MetricsRegistry()
        level = {"live": 100, "hits": 10}
        registry.register_source("intern", lambda: level, gauges=("live",))
        before = registry.snapshot()
        level["live"] = 40
        level["hits"] = 25
        delta = registry.delta(before)
        assert delta["intern.live"] == 40  # the level, not 40 - 100
        assert delta["intern.hits"] == 15

    def test_reregistering_source_replaces_supplier(self):
        registry = MetricsRegistry()
        registry.register_source("sat", lambda: {"conflicts": 1})
        registry.register_source("sat", lambda: {"conflicts": 99})
        assert registry.snapshot() == {"sat.conflicts": 99}


# ---------------------------------------------------------------------------
# Span tracing.
# ---------------------------------------------------------------------------


class TestSpans:
    def test_nesting_structure(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner2"):
                pass
        assert [span.name for span in tracer.roots] == ["outer"]
        assert [span.name for span in tracer.roots[0].children] == ["inner", "inner2"]
        assert tracer.depth == 0

    def test_reentrant_same_name_nests(self):
        tracer = Tracer()
        with tracer.span("solve"):
            with tracer.span("solve"):
                pass
        root = tracer.roots[0]
        assert root.name == "solve"
        assert [span.name for span in root.children] == ["solve"]

    def test_reentering_open_handle_raises(self):
        tracer = Tracer()
        handle = tracer.span("x")
        with handle:
            with pytest.raises(RuntimeError):
                handle.__enter__()

    def test_merge_folds_closed_siblings(self):
        tracer = Tracer()
        with tracer.span("parent"):
            for _ in range(5):
                with tracer.span("hot", merge=True):
                    pass
        children = tracer.roots[0].children
        assert len(children) == 1
        assert children[0].name == "hot"
        assert children[0].count == 5

    def test_merge_folds_children_recursively(self):
        tracer = Tracer()
        with tracer.span("parent"):
            for _ in range(4):
                with tracer.span("hot", merge=True):
                    with tracer.span("sub"):
                        pass
        hot = tracer.roots[0].children[0]
        assert hot.count == 4
        # One merged subtree, not one "sub" child per activation.
        assert [span.name for span in hot.children] == ["sub"]
        assert hot.children[0].count == 4

    def test_span_total_is_monotonic_and_covers_children(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.001)
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert inner.total_ns >= 1_000_000
        assert outer.total_ns >= inner.total_ns

    def test_spans_close_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert tracer.depth == 0
        assert tracer.roots[0].children[0].name == "inner"

    def test_trace_span_without_tracer_is_null(self):
        assert get_current_tracer() is None
        assert trace_span("anything") is NULL_SPAN
        with trace_span("anything"):
            pass  # no-op context manager

    def test_set_current_tracer_save_restore(self):
        tracer = Tracer()
        previous = set_current_tracer(tracer)
        try:
            assert previous is None
            assert get_current_tracer() is tracer
            with trace_span("via-module"):
                pass
            assert tracer.roots[0].name == "via-module"
        finally:
            set_current_tracer(previous)
        assert get_current_tracer() is None

    def test_to_dict_shape(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        shape = tracer.roots[0].to_dict()
        assert shape["name"] == "a"
        assert shape["children"][0]["name"] == "b"
        assert "ns" in shape and "count" in shape


# ---------------------------------------------------------------------------
# Profile rendering.
# ---------------------------------------------------------------------------


class TestProfile:
    def _tracer(self):
        tracer = Tracer()
        with tracer.span("check-sat"):
            with tracer.span("search"):
                with tracer.span("theory-check", merge=True):
                    pass
        with tracer.span("check-sat"):
            pass
        return tracer

    def test_phase_totals_keys_on_paths(self):
        totals = phase_totals(self._tracer())
        assert set(totals) == {
            "check-sat",
            "check-sat/search",
            "check-sat/search/theory-check",
        }
        assert totals["check-sat"]["count"] == 2  # same-path roots accumulate

    def test_phase_seconds_shape(self):
        seconds = phase_seconds(self._tracer())
        assert all(isinstance(v, float) for v in seconds.values())

    def test_format_phase_table_prefix_and_indent(self):
        table = format_phase_table(self._tracer(), prefix="; ")
        lines = table.splitlines()
        assert all(line.startswith("; ") for line in lines)
        assert any("  search" in line for line in lines)  # depth-1 indent


# ---------------------------------------------------------------------------
# Event log.
# ---------------------------------------------------------------------------


class TestEventLog:
    def test_envelope_and_schema_valid(self):
        log, buffer = open_memory_log()
        log.emit("decision", var=3, level=1)
        log.emit("conflict", level=1, size=4)
        log.close()
        records = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert [r["kind"] for r in records] == ["decision", "conflict", "summary"]
        assert [r["seq"] for r in records] == [0, 1, 2]
        for record in records:
            assert validate_event(record) == []

    def test_cap_and_sampling_stride(self):
        log, buffer = open_memory_log(cap_per_kind=5, sample_stride=3)
        for conflicts in range(20):
            log.emit("restart", conflicts=conflicts)
        log.close()
        records = [json.loads(line) for line in buffer.getvalue().splitlines()]
        restarts = [r for r in records if r["kind"] == "restart"]
        # 5 full-rate + every 3rd of the remaining 15.
        assert len(restarts) == 10
        summary = records[-1]
        assert summary["kind"] == "summary"
        assert summary["counts"]["restart"] == 20
        assert summary["dropped"]["restart"] == 10
        assert validate_trace(io.StringIO(buffer.getvalue())) == []

    def test_close_idempotent_and_emit_after_close(self):
        log, buffer = open_memory_log()
        log.emit("restart", conflicts=1)
        log.close()
        log.close()
        log.emit("restart", conflicts=2)  # silently ignored
        records = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert [r["kind"] for r in records] == ["restart", "summary"]

    def test_path_sink_owned(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with EventLog(path) as log:
            log.emit("script", path="x.smt2")
        assert validate_trace(path) == []

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            open_memory_log(cap_per_kind=0)
        with pytest.raises(ValueError):
            open_memory_log(sample_stride=0)

    def test_validate_event_catches_problems(self):
        assert validate_event([]) != []
        assert any(
            "unknown event kind" in e
            for e in validate_event({"seq": 0, "t_ns": 0, "kind": "nope"})
        )
        assert any(
            "missing field" in e
            for e in validate_event({"seq": 0, "t_ns": 0, "kind": "learn"})
        )
        assert any(
            "missing envelope" in e for e in validate_event({"kind": "restart"})
        )

    def test_validate_trace_catches_problems(self):
        assert validate_trace(io.StringIO("")) == ["trace is empty"]
        no_summary = '{"seq": 0, "t_ns": 0, "kind": "restart", "conflicts": 1}\n'
        assert any(
            "summary" in error for error in validate_trace(io.StringIO(no_summary))
        )
        bad_seq = (
            '{"seq": 0, "t_ns": 0, "kind": "restart", "conflicts": 1}\n'
            '{"seq": 5, "t_ns": 0, "kind": "summary", "counts": {}, "dropped": {}}\n'
        )
        assert any("seq" in error for error in validate_trace(io.StringIO(bad_seq)))
        assert any(
            "invalid JSON" in error for error in validate_trace(io.StringIO("{nope\n"))
        )

    def test_every_schema_kind_roundtrips(self):
        payloads = {
            "script": {"path": "a.smt2"},
            "push": {"levels": 1, "depth": 2},
            "pop": {"levels": 1, "depth": 1},
            "check-begin": {"index": 0},
            "check-end": {"index": 0, "answer": "sat"},
            "unknown": {"index": 0, "reason": "conflict-limit"},
            "decision": {"var": 1, "level": 1},
            "conflict": {"level": 1, "size": 2},
            "learn": {"size": 2, "lbd": 1, "backjump": 0},
            "restart": {"conflicts": 10},
            "theory-lemma": {"size": 3},
            "theory-conflict": {"plugin": "euf", "size": 3},
        }
        assert set(payloads) | {"summary"} == set(EVENT_SCHEMA)
        log, buffer = open_memory_log()
        for kind, fields in payloads.items():
            log.emit(kind, **fields)
        log.close()
        assert validate_trace(io.StringIO(buffer.getvalue())) == []


# ---------------------------------------------------------------------------
# Engine integration.
# ---------------------------------------------------------------------------

DIAMOND = """
(set-info :status unsat)
(declare-const x0 Real)
(declare-const x1 Real)
(declare-const x2 Real)
(declare-const x3 Real)
(assert (>= x0 0.0)) (assert (<= x0 0.0))
(assert (or (and (<= x1 (+ x0 1.0)) (>= x1 (+ x0 1.0)))
            (and (<= x1 (+ x0 2.0)) (>= x1 (+ x0 2.0)))))
(assert (or (and (<= x2 (+ x1 1.0)) (>= x2 (+ x1 1.0)))
            (and (<= x2 (+ x1 2.0)) (>= x2 (+ x1 2.0)))))
(assert (or (and (<= x3 (+ x2 1.0)) (>= x3 (+ x2 1.0)))
            (and (<= x3 (+ x2 2.0)) (>= x3 (+ x2 2.0)))))
(assert (>= x3 100.0))
(check-sat)
"""

INCREMENTAL = """
(declare-const p Bool)
(declare-const q Bool)
(assert (or p q))
(check-sat)
(push 1)
(assert (not p))
(assert (not q))
(check-sat)
(pop 1)
(check-sat)
"""


class TestEngineIntegration:
    def test_trace_path_produces_valid_jsonl_and_phases(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        result = run_script(DIAMOND, trace=str(path))
        assert result.answers == ["unsat"]
        assert validate_trace(path) == []
        kinds = {json.loads(line)["kind"] for line in path.read_text().splitlines()}
        assert {"check-begin", "check-end", "summary"} <= kinds
        assert "parse" in result.phases
        assert any(key.startswith("check-sat") for key in result.phases)
        check = result.check_results[0]
        assert "total" in check.phases and "search" in check.phases
        assert check.phases["total"] >= check.phases["search"]

    def test_trace_records_search_and_theory_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        run_script(DIAMOND, trace=str(path))
        records = [json.loads(line) for line in path.read_text().splitlines()]
        by_kind: dict[str, list[dict]] = {}
        for record in records:
            by_kind.setdefault(record["kind"], []).append(record)
        assert by_kind["decision"], "diamond search must branch"
        assert by_kind["conflict"], "diamond search must conflict"
        learns = by_kind["learn"]
        assert all(r["lbd"] >= 1 and r["size"] >= 1 for r in learns)
        lemmas = by_kind.get("theory-lemma", []) + by_kind.get("theory-conflict", [])
        assert lemmas, "arithmetic vetoes must be logged"
        for record in by_kind.get("theory-conflict", []):
            assert record["plugin"] == "arith"

    def test_push_pop_and_unknown_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        run_script(INCREMENTAL, trace=str(path))
        records = [json.loads(line) for line in path.read_text().splitlines()]
        pushes = [r for r in records if r["kind"] == "push"]
        pops = [r for r in records if r["kind"] == "pop"]
        assert pushes and pushes[0]["depth"] == 2
        assert pops and pops[0]["depth"] == 1
        ends = [r for r in records if r["kind"] == "check-end"]
        assert [r["answer"] for r in ends] == ["sat", "unsat", "sat"]
        assert [r["index"] for r in ends] == [0, 1, 2]

    def test_unknown_reason_event(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        source = """
        (declare-const p Bool)
        (declare-const q Bool)
        (assert (or p q))
        (assert (or (not p) q))
        (assert (or p (not q)))
        (assert (or (not p) (not q)))
        (check-sat)
        """
        results = solve_script(source, conflict_limit=0, trace=str(path))
        assert results[0].answer == "unknown"
        records = [json.loads(line) for line in path.read_text().splitlines()]
        unknowns = [r for r in records if r["kind"] == "unknown"]
        assert unknowns and unknowns[0]["reason"] == "conflict-limit"

    def test_shared_event_log_left_open(self):
        log, buffer = open_memory_log()
        run_script("(check-sat)", trace=log)
        run_script("(check-sat)", trace=log)
        log.close()
        records = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert sum(1 for r in records if r["kind"] == "check-begin") == 2
        assert records[-1]["kind"] == "summary"

    def test_metrics_delta_namespaced_and_consistent_with_stats(self):
        result = solve_script(DIAMOND)[0]
        assert result.metrics["sat.conflicts"] == result.stats["conflicts"]
        assert result.metrics["theory.arith.pivots"] == result.stats["arith_pivots"]
        assert result.metrics["theory.euf.merges"] == result.stats["euf_merges"]
        assert "intern.hits" in result.metrics
        assert "engine.guard_clauses" in result.metrics

    def test_metrics_per_check_delta_resets_between_checks(self):
        results = solve_script(INCREMENTAL)
        # Second check re-encodes only the pushed assertions.
        assert results[1].metrics["engine.checks"] == 1
        assert results[1].stats["conflicts"] == results[1].metrics["sat.conflicts"]
        # Theory counters are per-check absolutes even though the
        # registry persists across checks.
        for result in results:
            assert result.metrics.get("theory.euf.merges", 0) >= 0

    def test_guard_clauses_not_counted_as_tseitin_output(self):
        results = solve_script(
            """
            (declare-const p Bool)
            (assert p)
            (check-sat)
            (check-sat)
            """
        )
        first, second = results
        # One asserted atom: a guard clause ships, but the encoder
        # itself emits no gate clauses.
        assert first.stats["tseitin_new_clauses"] == 0
        assert first.metrics["engine.guard_clauses"] >= 1
        assert first.stats["clauses"] >= 1  # guards still count as shipped
        # Unchanged re-check: nothing new on either ledger.
        assert second.stats["tseitin_new_clauses"] == 0
        assert second.stats["tseitin_new_vars"] == 0

    def test_trivial_check_keeps_zeroed_legacy_shape(self):
        result = solve_script("(assert false)(check-sat)")[0]
        assert result.answer == "unsat"
        assert result.stats["trivial"] == 1
        assert result.stats["conflicts"] == 0
        assert result.stats["vars"] == 0
        assert result.metrics["sat.decisions"] == 0

    def test_nontrivial_check_has_trivial_zero(self):
        result = solve_script("(declare-const p Bool)(assert p)(check-sat)")[0]
        assert result.stats["trivial"] == 0

    def test_engine_metrics_property_snapshot(self):
        engine = Engine()
        engine.run(parse_script("(declare-const p Bool)(assert p)(check-sat)"))
        snapshot = engine.metrics.snapshot()
        assert snapshot["engine.checks"] == 1
        assert snapshot["sat.decisions"] >= 0
        assert engine.obs.tracer is None  # default engine does not trace

    def test_no_tracing_no_phases(self):
        result = run_script(DIAMOND)
        assert result.phases == {}
        assert result.check_results[0].phases == {}

    def test_current_tracer_restored_after_run(self):
        outer = Tracer()
        previous = set_current_tracer(outer)
        try:
            run_script(DIAMOND, trace=None, obs=Observability.tracing())
            assert get_current_tracer() is outer
        finally:
            set_current_tracer(previous)


# ---------------------------------------------------------------------------
# Overhead guard: disabled instrumentation must stay in the noise.
# ---------------------------------------------------------------------------


class TestOverheadGuard:
    # The same generous bar + floor clamp check_regression applies to the
    # benchmark suites: sub-floor timings cannot flake on scheduler
    # jitter, and anything past 2.5x is a genuine hot-path tax.
    THRESHOLD = 2.5
    FLOOR = 0.05

    def _workload(self):
        lines = ["(set-info :status unsat)"]
        holes, pigeons = 4, 5
        for p in range(pigeons):
            lines.append(f"(declare-const f{p} Int)")
        for p in range(pigeons):
            lines.append(f"(assert (>= f{p} 0)) (assert (< f{p} {holes}))")
        for a in range(pigeons):
            for b in range(a + 1, pigeons):
                lines.append(f"(assert (not (= f{a} f{b})))")
        lines.append("(check-sat)")
        return "\n".join(lines)

    def test_disabled_instrumentation_overhead_within_gate(self):
        source = self._workload()
        script = parse_script(source)

        def run_plain():
            t0 = time.perf_counter()
            result = Engine().run(script)
            return time.perf_counter() - t0, result

        def run_traced():
            log, _ = open_memory_log()
            obs = Observability.tracing(events=log)
            t0 = time.perf_counter()
            result = Engine(obs=obs).run(script)
            elapsed = time.perf_counter() - t0
            log.close()
            return elapsed, result

        # Warm up once (intern table, bytecode), then take the best of 2.
        run_plain()
        plain_s, plain_result = min(run_plain(), run_plain(), key=lambda x: x[0])
        traced_s, traced_result = min(run_traced(), run_traced(), key=lambda x: x[0])

        assert plain_result.answers == ["unsat"]
        # Instrumentation must not change the search itself.
        assert traced_result.check_results[0].stats == plain_result.check_results[0].stats
        ratio = max(traced_s, self.FLOOR) / max(plain_s, self.FLOOR)
        assert ratio <= self.THRESHOLD, (
            f"enabled instrumentation costs {ratio:.2f}x "
            f"(traced {traced_s:.4f}s vs plain {plain_s:.4f}s)"
        )


# ---------------------------------------------------------------------------
# CLI flags.
# ---------------------------------------------------------------------------


class TestCliObservability:
    def run_cli(self, capsys, *argv):
        from repro.__main__ import main

        status = main(list(argv))
        captured = capsys.readouterr()
        return status, captured.out, captured.err

    @pytest.fixture()
    def script_path(self, tmp_path):
        path = tmp_path / "a.smt2"
        path.write_text(DIAMOND)
        return str(path)

    def test_stats_json_is_pure_json(self, capsys, script_path, tmp_path):
        other = tmp_path / "b.smt2"
        other.write_text("(declare-const p Bool)(assert p)(check-sat)")
        status, out, _ = self.run_cli(capsys, script_path, str(other), "--stats-json")
        assert status == 0
        document = json.loads(out)  # exactly one JSON document on stdout
        assert [f["answers"] for f in document["files"]] == [["unsat"], ["sat"]]
        check = document["files"][0]["checks"][0]
        assert check["stats"]["conflicts"] == check["metrics"]["sat.conflicts"]
        assert "total" in check["phases"]
        assert any(k.startswith("parse") for k in document["files"][0]["phases"])

    def test_trace_flag_writes_valid_jsonl(self, capsys, script_path, tmp_path):
        trace = tmp_path / "out.jsonl"
        status, out, _ = self.run_cli(capsys, script_path, "--trace", str(trace))
        assert status == 0
        assert out.strip() == "unsat"
        assert validate_trace(trace) == []
        kinds = [json.loads(line)["kind"] for line in trace.read_text().splitlines()]
        assert kinds[0] == "script"
        assert kinds[-1] == "summary"

    def test_trace_shared_across_files(self, capsys, script_path, tmp_path):
        other = tmp_path / "b.smt2"
        other.write_text("(check-sat)")
        trace = tmp_path / "out.jsonl"
        status, _, _ = self.run_cli(
            capsys, script_path, str(other), "--trace", str(trace)
        )
        assert status == 0
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        scripts = [r["path"] for r in records if r["kind"] == "script"]
        assert scripts == [script_path, str(other)]
        assert sum(1 for r in records if r["kind"] == "summary") == 1

    def test_profile_prints_comment_table(self, capsys, script_path):
        status, out, _ = self.run_cli(capsys, script_path, "--profile")
        assert status == 0
        lines = out.splitlines()
        assert lines[0] == "unsat"  # solver output first, untouched
        table = [line for line in lines if line.startswith("; ")]
        assert any("phase" in line for line in table)
        assert any("search" in line for line in table)

    def test_profile_with_stats_json_goes_to_stderr(self, capsys, script_path):
        status, out, err = self.run_cli(
            capsys, script_path, "--stats-json", "--profile"
        )
        assert status == 0
        json.loads(out)  # stdout stays machine-readable
        assert "phase" in err

    def test_stats_json_with_strict_status_mismatch(self, capsys, tmp_path):
        path = tmp_path / "wrong.smt2"
        path.write_text("(set-info :status unsat)(check-sat)")
        status, out, err = self.run_cli(
            capsys, str(path), "--stats-json", "--strict-status"
        )
        assert status == 2
        json.loads(out)
        assert "warning" in err
