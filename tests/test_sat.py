"""Tests for the CDCL solver: correctness against brute force, the classic
unsatisfiable families, and the solver's operational behaviour."""

import itertools
import random

import pytest

from repro.sat import SAT, Solver, UNKNOWN, UNSAT, from_dimacs, luby, to_dimacs


def brute_force(num_vars, clauses):
    for assignment in itertools.product([False, True], repeat=num_vars):
        if all(any((lit > 0) == assignment[abs(lit) - 1] for lit in c) for c in clauses):
            return True
    return False


def check_model(solver, clauses):
    model = solver.model
    assert model is not None
    for clause in clauses:
        assert any((lit > 0) == model[abs(lit)] for lit in clause), clause


def random_cnf(rng, num_vars, num_clauses, width=3):
    clauses = []
    for _ in range(num_clauses):
        size = rng.randint(1, min(width, num_vars))
        variables = rng.sample(range(1, num_vars + 1), size)
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    return clauses


def pigeonhole(holes):
    """PHP(holes+1, holes): holes+1 pigeons into `holes` holes — unsat."""
    pigeons = holes + 1

    def var(i, j):
        return i * holes + j + 1

    clauses = [[var(i, j) for j in range(holes)] for i in range(pigeons)]
    for j in range(holes):
        for a in range(pigeons):
            for b in range(a + 1, pigeons):
                clauses.append([-var(a, j), -var(b, j)])
    return clauses


class TestLuby:
    def test_sequence_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            luby(0)


class TestBasics:
    def test_empty_formula_is_sat(self):
        solver = Solver()
        assert solver.solve() == SAT
        assert solver.model == [False]

    def test_unit_propagation_chain(self):
        solver = Solver()
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        assert solver.solve() == SAT
        assert solver.model[1] and solver.model[2] and solver.model[3]
        assert solver.stats["decisions"] == 0

    def test_empty_clause_is_unsat(self):
        solver = Solver()
        assert solver.add_clause([]) is False
        assert solver.solve() == UNSAT

    def test_conflicting_units(self):
        solver = Solver()
        solver.add_clause([1])
        assert solver.add_clause([-1]) is False
        assert solver.solve() == UNSAT

    def test_tautologies_are_dropped(self):
        solver = Solver()
        assert solver.add_clause([1, -1])
        assert solver.num_clauses == 0
        assert solver.solve() == SAT

    def test_duplicate_literals_collapse(self):
        solver = Solver()
        solver.add_clause([1, 1, 2, 2])
        assert solver.solve() == SAT

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            Solver().add_clause([0])

    def test_clauses_rejected_mid_search(self):
        solver = Solver()
        solver._trail_lim.append(0)  # simulate an open decision level
        with pytest.raises(ValueError):
            solver.add_clause([1])

    def test_ensure_vars_grows_pool(self):
        solver = Solver(num_vars=3)
        assert solver.num_vars == 3
        solver.add_clause([5])
        assert solver.num_vars == 5


class TestCrossCheck:
    @pytest.mark.parametrize("seed", range(150))
    def test_random_formulas_agree_with_brute_force(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(1, 9)
        clauses = random_cnf(rng, num_vars, rng.randint(1, 35))
        solver = Solver(num_vars)
        solver.add_clauses(clauses)
        answer = solver.solve()
        assert answer == (SAT if brute_force(num_vars, clauses) else UNSAT)
        if answer == SAT:
            check_model(solver, clauses)

    @pytest.mark.parametrize("n", [20, 40])
    def test_phase_transition_3sat_models_validate(self, n):
        rng = random.Random(n)
        clauses = [c for c in random_cnf(rng, n, round(4.26 * n)) if len(c) == 3]
        solver = Solver(n)
        solver.add_clauses(clauses)
        if solver.solve() == SAT:
            check_model(solver, clauses)


class TestHardFamilies:
    @pytest.mark.parametrize("holes", [2, 3, 4, 5])
    def test_pigeonhole_is_unsat(self, holes):
        solver = Solver()
        solver.add_clauses(pigeonhole(holes))
        assert solver.solve() == UNSAT
        if holes >= 4:
            assert solver.stats["conflicts"] > 0
            assert solver.stats["learned"] > 0

    def test_restarts_fire_on_hard_instances(self):
        solver = Solver()
        solver.add_clauses(pigeonhole(6))
        assert solver.solve() == UNSAT
        assert solver.stats["restarts"] >= 1

    def test_xor_parity_contradiction(self):
        # x1 ^ x2 = 1, x2 ^ x3 = 1, x1 ^ x3 = 1 has odd cycle parity: unsat.
        def xor_eq(a, b, parity):
            if parity:
                return [[a, b], [-a, -b]]
            return [[-a, b], [a, -b]]

        solver = Solver()
        for a, b in [(1, 2), (2, 3), (1, 3)]:
            solver.add_clauses(xor_eq(a, b, True))
        assert solver.solve() == UNSAT


class TestOperational:
    def test_conflict_limit_yields_unknown(self):
        solver = Solver()
        solver.add_clauses(pigeonhole(6))
        assert solver.solve(conflict_limit=5) == UNKNOWN
        # The search can be resumed and completed.
        assert solver.solve() == UNSAT

    def test_repeated_solve_is_stable(self):
        solver = Solver()
        solver.add_clauses([[1, 2], [-1, 2]])
        assert solver.solve() == SAT
        first = list(solver.model)
        assert solver.solve() == SAT
        assert solver.model == first

    def test_add_clause_after_sat_refines_answer(self):
        solver = Solver()
        solver.add_clause([1, 2])
        assert solver.solve() == SAT
        model = solver.model
        # Block the found model; the other polarity must be found.
        solver.add_clause([v if not model[v] else -v for v in (1, 2)])
        assert solver.solve() == SAT
        assert solver.model != model

    def test_unsat_is_sticky(self):
        solver = Solver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve() == UNSAT
        assert solver.add_clause([2]) is False
        assert solver.solve() == UNSAT

    def test_learned_clause_reduction_triggers(self):
        # A formula hard enough to learn more than the initial budget.
        solver = Solver()
        solver.add_clauses(pigeonhole(7))
        assert solver.solve() == UNSAT
        assert solver.stats["deleted"] > 0

    def test_model_is_none_before_solving_and_after_unsat(self):
        solver = Solver()
        assert solver.model is None
        solver.add_clause([1])
        solver.add_clause([-1])
        solver.solve()
        assert solver.model is None


class TestDimacsIntegration:
    def test_pigeonhole_round_trips_through_dimacs(self):
        clauses = pigeonhole(4)
        num_vars = max(abs(lit) for c in clauses for lit in c)
        num_vars2, parsed = from_dimacs(to_dimacs(num_vars, clauses))
        solver = Solver(num_vars2)
        solver.add_clauses(parsed)
        assert solver.solve() == UNSAT
