"""Unsat cores: ``(! ... :named ...)`` end-to-end and as properties.

The deterministic tests drive the full script surface — named
assertions, ``(set-option :produce-unsat-cores true)``,
``(get-unsat-core)``, the documented error outputs — and the
interaction with proofs (a core's negated selectors are the proof's
conclusion).

The property tests run seeded random QF_LIA scripts with named
assertions over an unnamed background and check the semantic laws a
core must satisfy:

* **soundness** — the named assertions of the core, together with the
  unnamed background, re-solve to ``unsat`` in a fresh engine;
* **irrelevance** — removing any named assertion *outside* the core
  keeps the script unsat (the core never hides a dependence);
* **scoping** — under randomized ``push``/``pop``, a core only ever
  mentions names from frames alive at its ``check-sat``.
"""

from random import Random

import pytest

from repro import run_script, solve_script
from repro.proof import check_proof
from repro.smtlib import parse_script, script_to_smtlib
from repro.smtlib.script import (
    Assert,
    CheckSat,
    DeclareConst,
    Pop,
    Push,
    Script,
    SetLogic,
)
from repro.smtlib.sorts import BOOL, INT
from repro.smtlib.terms import Apply, Symbol, int_const

X = Symbol("x", INT)
Y = Symbol("y", INT)


def bound(symbol, op, value):
    return Apply(op, (symbol, int_const(value)), BOOL)


# ---------------------------------------------------------------------------
# Deterministic end-to-end behaviour.
# ---------------------------------------------------------------------------


NAMED_LIA = """
(set-logic QF_LIA)
(set-option :produce-unsat-cores true)
(declare-const x Int)
(declare-const y Int)
(assert (! (<= x 2) :named low))
(assert (! (>= x 5) :named high))
(assert (! (<= y 100) :named slack))
(check-sat)
(get-unsat-core)
"""


class TestEndToEnd:
    def test_core_names_reported_in_assertion_order(self):
        result = run_script(NAMED_LIA)
        assert result.answers == ["unsat"]
        assert result.output == ["unsat", "(low high)"]
        assert result.check_results[0].unsat_core == ("low", "high")

    def test_irrelevant_named_assertion_excluded(self):
        (check,) = solve_script(NAMED_LIA)
        assert "slack" not in check.unsat_core

    def test_get_unsat_core_requires_the_option(self):
        result = run_script(
            "(declare-const p Bool)\n(assert (! p :named p0))\n"
            "(assert (not p))\n(check-sat)\n(get-unsat-core)\n"
        )
        assert result.answers == ["unsat"]
        assert result.output[0] == "unsat"
        assert "unsat cores are not enabled" in result.output[1]

    def test_get_unsat_core_requires_an_unsat_answer(self):
        result = run_script(
            "(set-option :produce-unsat-cores true)\n"
            "(declare-const p Bool)\n(assert (! p :named p0))\n"
            "(check-sat)\n(get-unsat-core)\n"
        )
        assert result.answers == ["sat"]
        assert "not unsat" in result.output[1]

    def test_get_unsat_core_before_any_check(self):
        result = run_script(
            "(set-option :produce-unsat-cores true)\n(get-unsat-core)\n"
        )
        assert "not unsat" in result.output[0]

    def test_option_toggles_mid_script(self):
        result = run_script(
            "(declare-const p Bool)\n(assert (! p :named p0))\n"
            "(assert (! (not p) :named p1))\n"
            "(check-sat)\n(get-unsat-core)\n"
            "(set-option :produce-unsat-cores true)\n"
            "(check-sat)\n(get-unsat-core)\n"
        )
        assert result.answers == ["unsat", "unsat"]
        assert "not enabled" in result.output[1]
        assert result.output[3] == "(p0 p1)"

    def test_engine_kwarg_enables_cores(self):
        (check,) = solve_script(
            "(declare-const p Bool)\n(assert (! p :named p0))\n"
            "(assert (not p))\n(check-sat)\n",
            produce_unsat_cores=True,
        )
        assert check.answer == "unsat" and check.unsat_core == ("p0",)

    def test_unnamed_unsat_has_empty_core(self):
        # The background alone is contradictory: the named core is empty.
        (check,) = solve_script(
            "(declare-const p Bool)\n(assert (! p :named p0))\n"
            "(assert p)\n(assert (not p))\n(check-sat)\n",
            produce_unsat_cores=True,
        )
        assert check.answer == "unsat" and check.unsat_core == ()

    def test_named_false_is_its_own_core(self):
        (check,) = solve_script(
            "(assert (! false :named boom))\n(check-sat)\n",
            produce_unsat_cores=True,
        )
        assert check.answer == "unsat" and check.unsat_core == ("boom",)

    def test_unnamed_false_has_empty_core(self):
        (check,) = solve_script(
            "(assert (! true :named ok))\n(assert false)\n(check-sat)\n",
            produce_unsat_cores=True,
        )
        assert check.answer == "unsat" and check.unsat_core == ()

    def test_label_aliases_the_term_in_later_assertions(self):
        # SMT-LIB: a :named label becomes a Bool symbol for the term.
        (check,) = solve_script(
            "(declare-const p Bool)\n(declare-const q Bool)\n"
            "(assert (! (and p q) :named both))\n(assert (not both))\n"
            "(check-sat)\n"
        )
        assert check.answer == "unsat"

    def test_cores_without_proofs_and_vice_versa(self):
        (with_cores,) = solve_script(NAMED_LIA)
        assert with_cores.unsat_core is not None and with_cores.proof is None
        (with_proofs,) = solve_script(
            "(declare-const p Bool)\n(assert p)\n(assert (not p))\n(check-sat)\n",
            produce_proofs=True,
        )
        assert with_proofs.proof is not None and with_proofs.unsat_core is None

    def test_core_selectors_are_the_proof_conclusion(self):
        (check,) = solve_script(
            NAMED_LIA, produce_proofs=True, produce_unsat_cores=True
        )
        assert check.answer == "unsat"
        assert check.unsat_core == ("low", "high")
        assert check.proof is not None and check_proof(check.proof).ok
        # One negated selector per failed assumption; the named core is
        # a subset of those (frame selectors may fail alongside).
        assert len(check.proof.conclusion) >= len(check.unsat_core)
        assert all(lit < 0 for lit in check.proof.conclusion)


# ---------------------------------------------------------------------------
# Random named scripts: the semantic core laws.
# ---------------------------------------------------------------------------


def random_named_script(seed):
    """A QF_LIA script over boxed x, y: unnamed box background plus 3-6
    named linear facts.  Returns (script, named) with ``named`` the
    label → Assert map."""
    rng = Random(seed)
    commands = [
        SetLogic("QF_LIA"),
        DeclareConst("x", INT),
        DeclareConst("y", INT),
        Assert(bound(X, "<=", 8)),
        Assert(bound(X, ">=", -8)),
        Assert(bound(Y, "<=", 8)),
        Assert(bound(Y, ">=", -8)),
    ]
    named = {}
    total = Apply("+", (X, Y), INT)
    for index in range(rng.randint(3, 6)):
        subject = rng.choice([X, Y, total])
        op = rng.choice(["<=", ">=", "<", ">", "="])
        term = Apply(op, (subject, int_const(rng.randint(-9, 9))), BOOL)
        label = f"a{index}"
        command = Assert(term, label)
        named[label] = command
        commands.append(command)
    commands.append(CheckSat())
    return Script(tuple(commands)), named


def rebuild(script, named, keep):
    """The same script with only the named assertions in ``keep``."""
    commands = [
        command
        for command in script.commands
        if not (isinstance(command, Assert) and command.name is not None)
        or command.name in keep
    ]
    return Script(tuple(commands))


UNSAT_CASES = []
for _seed in range(120):
    _script, _named = random_named_script(9973 * _seed)
    (_check,) = solve_script(_script, produce_unsat_cores=True)
    if _check.answer == "unsat":
        UNSAT_CASES.append((_seed, _script, _named, _check.unsat_core))

assert len(UNSAT_CASES) >= 25, "generator should produce a healthy unsat rate"


@pytest.mark.parametrize(
    "seed,script,named,core", UNSAT_CASES, ids=lambda value: str(value)[:24]
)
def test_core_re_solves_unsat(seed, script, named, core):
    """Soundness: the core's named assertions plus the unnamed
    background are already unsat in a fresh engine."""
    assert core is not None
    reduced = rebuild(script, named, set(core))
    (check,) = solve_script(reduced)
    assert check.answer == "unsat", (
        f"seed {seed}: core {core} does not re-solve unsat"
    )


@pytest.mark.parametrize(
    "seed,script,named,core", UNSAT_CASES, ids=lambda value: str(value)[:24]
)
def test_removing_non_core_assertions_keeps_unsat(seed, script, named, core):
    """Irrelevance: dropping any single named assertion outside the core
    cannot flip the verdict."""
    for label in named:
        if label in core:
            continue
        reduced = rebuild(script, named, set(named) - {label})
        (check,) = solve_script(reduced, produce_unsat_cores=True)
        assert check.answer == "unsat", (
            f"seed {seed}: dropping non-core {label} flipped the verdict"
        )
        assert set(check.unsat_core) <= set(named) - {label}


@pytest.mark.parametrize(
    "seed,script,named,core", UNSAT_CASES[:10], ids=lambda value: str(value)[:24]
)
def test_core_scripts_roundtrip_through_printer(seed, script, named, core):
    """parse(print(s)) preserves the :named labels, so the reprinted
    script yields the same core.  (Structural equality does not hold for
    hand-built scripts — a negative ``Constant`` prints as the unary
    ``(- n)`` — so the law here is label and verdict preservation.)"""
    reparsed = parse_script(script_to_smtlib(script))
    labels = [
        command.name
        for command in reparsed.commands
        if isinstance(command, Assert) and command.name is not None
    ]
    assert labels == list(named)
    (check,) = solve_script(reparsed, produce_unsat_cores=True)
    assert check.answer == "unsat" and check.unsat_core == core


# ---------------------------------------------------------------------------
# Randomized push/pop: cores stay scoped to live frames.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(40))
def test_cores_scoped_to_live_frames(seed):
    rng = Random(31337 + seed)
    commands = [SetLogic("QF_LIA"), DeclareConst("x", INT)]
    live = [[]]  # stack of name lists, one per frame
    expected_live = []  # per check-sat: the set of live names
    counter = 0
    for _ in range(rng.randint(8, 20)):
        action = rng.random()
        if action < 0.35:
            op = rng.choice(["<=", ">="])
            label = f"n{counter}"
            counter += 1
            commands.append(Assert(bound(X, op, rng.randint(-4, 4)), label))
            live[-1].append(label)
        elif action < 0.55:
            commands.append(Push())
            live.append([])
        elif action < 0.7 and len(live) > 1:
            commands.append(Pop())
            live.pop()
        else:
            commands.append(CheckSat())
            expected_live.append({name for frame in live for name in frame})
    commands.append(CheckSat())
    expected_live.append({name for frame in live for name in frame})

    checks = solve_script(
        Script(tuple(commands)), produce_proofs=True, produce_unsat_cores=True
    )
    assert len(checks) == len(expected_live)
    for check, live_names in zip(checks, expected_live):
        assert check.answer in ("sat", "unsat")
        if check.answer != "unsat":
            continue
        assert check.unsat_core is not None
        assert set(check.unsat_core) <= live_names, (
            f"seed {seed}: core {check.unsat_core} leaks popped names"
        )
        assert check.proof is not None
        verdict = check_proof(check.proof)
        assert verdict.ok, f"seed {seed}: {verdict.error}"
        # The core alone (no background here beyond bounds on x) must
        # re-solve unsat in a fresh engine.
        refit = [SetLogic("QF_LIA"), DeclareConst("x", INT)]
        by_name = {
            command.name: command
            for command in commands
            if isinstance(command, Assert) and command.name is not None
        }
        refit.extend(Assert(by_name[name].term) for name in check.unsat_core)
        refit.append(CheckSat())
        (again,) = solve_script(Script(tuple(refit)))
        assert again.answer == "unsat", (
            f"seed {seed}: scoped core {check.unsat_core} not unsat alone"
        )


def test_popped_names_can_be_reused():
    # A name lives with its frame: after pop the label is free again.
    source = """
(set-option :produce-unsat-cores true)
(declare-const x Int)
(push 1)
(assert (! (<= x 0) :named b))
(check-sat)
(pop 1)
(push 1)
(assert (! (>= x 1) :named b))
(assert (! (<= x 0) :named c))
(check-sat)
(get-unsat-core)
"""
    result = run_script(source)
    assert result.answers == ["sat", "unsat"]
    assert result.output[-1] == "(b c)"
