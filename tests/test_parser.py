"""Unit tests for the script/term parser."""

import pytest

from repro.errors import ParseError, TypeCheckError, UnknownSymbolError
from repro.smtlib import (
    Apply,
    Assert,
    CheckSat,
    Constant,
    DeclarationContext,
    DeclareConst,
    DeclareFun,
    DefineFun,
    Let,
    Quantifier,
    SetLogic,
    Symbol,
    parse_script,
    parse_sort,
    parse_term,
)
from repro.smtlib.sexpr import parse_sexprs
from repro.smtlib.sorts import BOOL, INT, REAL, STRING, array_sort, bitvec_sort, seq_sort


def ctx(**consts):
    context = DeclarationContext()
    for name, sort in consts.items():
        context.declare_const(name, sort)
    return context


# -- sorts ------------------------------------------------------------------


def sort_of(text, context=None):
    return parse_sort(parse_sexprs(text)[0], context)


def test_parse_simple_and_parametric_sorts():
    assert sort_of("Int") == INT
    assert sort_of("(_ BitVec 8)") == bitvec_sort(8)
    assert sort_of("(Array Int (Seq Bool))") == array_sort(INT, seq_sort(BOOL))


def test_parse_relation_normalises_to_set_of_tuple():
    from repro.smtlib.sorts import relation_sort

    assert sort_of("(Relation Int Int)") == relation_sort(INT, INT)


def test_sort_arity_validation():
    with pytest.raises(ParseError):
        sort_of("(Array Int)")
    with pytest.raises(ParseError):
        sort_of("Seq")
    with pytest.raises(ParseError):
        sort_of("(_ BitVec 0)")


def test_undeclared_sort_rejected_in_context():
    with pytest.raises(UnknownSymbolError):
        sort_of("Person", DeclarationContext())


def test_declared_sorts_never_take_indices():
    context = DeclarationContext()
    context.declare_sort("S", 0)
    with pytest.raises(ParseError):
        sort_of("(_ S 3)", context)


def test_bare_tuple_and_relation_atoms_rejected():
    with pytest.raises(ParseError):
        sort_of("Relation")
    with pytest.raises(ParseError):
        sort_of("Tuple")


# -- terms ------------------------------------------------------------------


def test_literals():
    assert parse_term("42") == Constant(42, INT)
    assert parse_term("1.5").sort == REAL
    assert parse_term('"hi"') == Constant("hi", STRING)
    assert parse_term("#b1010") == Constant(10, bitvec_sort(4))
    assert parse_term("#xff") == Constant(255, bitvec_sort(8))
    assert parse_term("(_ bv5 8)") == Constant(5, bitvec_sort(8))
    with pytest.raises(ParseError):
        parse_term("(_ bv9 3)")  # 9 does not fit in 3 bits
    assert parse_term("true").sort == BOOL


def test_symbol_resolution():
    term = parse_term("(+ x 1)", ctx(x=INT))
    assert term == Apply("+", (Symbol("x", INT), Constant(1, INT)), INT)
    with pytest.raises(UnknownSymbolError):
        parse_term("missing", DeclarationContext())


def test_declared_function_application():
    context = DeclarationContext()
    context.declare_fun("f", (INT, INT), BOOL)
    term = parse_term("(f 1 2)", context)
    assert term.sort == BOOL
    with pytest.raises(TypeCheckError):
        parse_term("(f 1 true)", context)
    with pytest.raises(TypeCheckError):
        parse_term("f", context)  # arity-2 function used as a constant


def test_indexed_operator_application():
    term = parse_term("((_ extract 3 0) #xab)")
    assert term == Apply("extract", (Constant(0xAB, bitvec_sort(8)),), bitvec_sort(4), indices=(3, 0))


def test_let_binds_sorts():
    term = parse_term("(let ((a 1) (b 2.5)) (< (to_real a) b))", ctx())
    assert isinstance(term, Let)
    assert term.sort == BOOL
    assert dict((n, v.sort) for n, v in term.bindings) == {"a": INT, "b": REAL}


def test_quantifier_body_must_be_bool():
    term = parse_term("(forall ((n Int)) (= n n))")
    assert isinstance(term, Quantifier)
    with pytest.raises(TypeCheckError):
        parse_term("(exists ((n Int)) (+ n 1))")


def test_qualified_constants():
    empty = parse_term("(as seq.empty (Seq Int))")
    assert empty.qualifier == "seq.empty" and empty.sort == seq_sort(INT)
    ff = parse_term("(as ff9 (_ FiniteField 7))")
    assert ff.value == 2 and ff.qualifier == "ff2"


def test_qualified_constant_sort_must_match_theory():
    with pytest.raises(TypeCheckError):
        parse_term("(as seq.empty (Set Int))")
    with pytest.raises(TypeCheckError):
        parse_term("(as set.empty Int)")


def test_sort_ascribed_identifier_resolves_to_symbol():
    # (as x Int) is the identifier x, not a qualified constant.
    term = parse_term("(as x Int)", ctx(x=INT))
    assert term == Symbol("x", INT)
    # Ascribing the wrong sort is ill-sorted, not a silent constant.
    with pytest.raises(TypeCheckError):
        parse_term("(as x Bool)", ctx(x=INT))
    # A completely unknown symbol under `as` must not parse.
    with pytest.raises(UnknownSymbolError):
        parse_term("(as zzz Bool)", ctx())


def test_builtin_regex_constants():
    term = parse_term('(str.in_re "a" (re.union re.none (re.inter re.all re.allchar)))')
    assert term.sort == BOOL


def test_bound_variables_shadow_builtin_constants():
    term = parse_term("(forall ((re.none Int)) (= re.none 0))")
    assert term.body.args[0] == Symbol("re.none", INT)


def test_bound_variables_shadow_true_and_false():
    term = parse_term("(forall ((true Int)) (>= true 0))")
    assert term.body.args[0] == Symbol("true", INT)
    let = parse_term("(let ((true (> 0 1))) true)")
    assert let.body == Symbol("true", BOOL)


def test_duplicate_bindings_rejected():
    with pytest.raises(ParseError):
        parse_term("(let ((x 1) (x true)) x)")
    with pytest.raises(ParseError):
        parse_term("(forall ((x Int) (x Bool)) true)")
    with pytest.raises(ParseError):
        parse_script("(define-fun f ((x Int) (x Bool)) Bool (= x x))")


def test_shadowing_let_over_declared_const():
    term = parse_term("(let ((x true)) x)", ctx(x=INT))
    assert term.sort == BOOL


# -- commands and scripts ---------------------------------------------------


def test_parse_script_commands():
    script = parse_script(
        """
        (set-logic QF_LIA)
        (declare-const x Int)
        (declare-fun f (Int) Int)
        (define-fun g ((n Int)) Int (f (+ n x)))
        (assert (= (g 1) x))
        (check-sat)
        """
    )
    assert isinstance(script.commands[0], SetLogic)
    assert isinstance(script.commands[1], DeclareConst)
    assert isinstance(script.commands[2], DeclareFun)
    assert isinstance(script.commands[3], DefineFun)
    assert isinstance(script.commands[4], Assert)
    assert isinstance(script.commands[5], CheckSat)
    assert script.logic == "QF_LIA"
    assert len(script.assertions()) == 1


def test_push_pop_scoping():
    script = parse_script(
        """
        (declare-const x Int)
        (push 1)
        (declare-const y Int)
        (assert (= x y))
        (pop 1)
        """
    )
    assert len(script) == 5
    # After the pop, y is out of scope again.
    with pytest.raises(UnknownSymbolError):
        parse_script(
            """
            (push 1)
            (declare-const y Int)
            (pop 1)
            (assert (= y 0))
            """
        )


def test_define_fun_body_sort_checked():
    with pytest.raises(TypeCheckError):
        parse_script("(define-fun f ((n Int)) Bool (+ n 1))")


def test_assert_requires_bool():
    with pytest.raises(TypeCheckError):
        parse_script("(declare-const x Int) (assert (+ x 1))")


def test_duplicate_declaration_rejected():
    from repro.errors import SortError

    with pytest.raises(SortError):
        parse_script("(declare-const x Int) (declare-const x Bool)")
    # Shadowing across push levels is rejected too (cvc5 refuses to
    # re-declare any in-scope symbol, regardless of assertion level).
    with pytest.raises(SortError):
        parse_script("(declare-const x Int) (push 1) (declare-const x Bool)")


def test_define_fun_params_may_shadow_declarations():
    script = parse_script(
        "(declare-const x Bool) (define-fun f ((x Int)) Int (+ x 1)) (assert (= (f 1) 2))"
    )
    from repro.smtlib import check_script

    check_script(script)


def test_set_info_with_quoted_symbol_value_round_trips():
    from repro.smtlib import script_to_smtlib

    script = parse_script("(set-info :source |an example benchmark|)")
    assert parse_script(script_to_smtlib(script)) == script


def test_builtin_names_cannot_be_redeclared():
    # cvc5 rejects redeclaring theory symbols; accepting them here would
    # silently resolve uses to the builtin and poison the oracle.
    with pytest.raises(ParseError):
        parse_script("(declare-fun and (Bool Bool) Bool)")
    with pytest.raises(ParseError):
        parse_script("(declare-fun |and| (Bool Bool) Bool)")  # |and| IS and
    with pytest.raises(ParseError):
        parse_script("(declare-const true Bool)")
    with pytest.raises(ParseError):
        parse_script("(declare-const re.none RegLan)")
    with pytest.raises(ParseError):
        parse_script("(declare-sort Int 0)")
    with pytest.raises(ParseError):
        parse_script("(declare-sort Relation 0)")


def test_quoted_sort_names_round_trip():
    from repro.smtlib import script_to_smtlib

    script = parse_script(
        "(declare-sort |my sort| 0)"
        "(declare-const x |my sort|)"
        "(assert (forall ((v |my sort|)) (= v x)))"
    )
    printed = script_to_smtlib(script)
    assert "|my sort|" in printed
    assert parse_script(printed) == script


def test_command_head_must_be_a_plain_symbol():
    with pytest.raises(ParseError):
        parse_script('("assert" true)')
    # |assert| canonicalises to the plain symbol assert (quoted simple
    # symbols are the same symbol), so it still names the command.
    assert len(parse_script("(|assert| true)")) == 1


def test_quoted_reserved_word_is_an_ordinary_symbol():
    # |let| is a symbol that merely shares letters with the keyword.
    script = parse_script(
        "(declare-fun |let| (Int) Int) (assert (= (|let| 0) 0)) (check-sat)"
    )
    from repro.smtlib import script_to_smtlib

    printed = script_to_smtlib(script)
    assert "|let|" in printed
    assert parse_script(printed) == script
    # The unquoted spelling keeps its syntactic role.
    with pytest.raises(ParseError):
        parse_script("(declare-fun let (Int) Int)")


def test_reserved_words_rejected_in_identifier_positions():
    with pytest.raises(ParseError):
        parse_term("(let ((forall 1)) forall)")
    with pytest.raises(ParseError):
        parse_term("(exists ((as Int)) true)")
    with pytest.raises(ParseError):
        parse_term("par")


def test_unknown_command_rejected():
    with pytest.raises(ParseError):
        parse_script("(frobnicate)")


def test_malformed_commands_rejected():
    with pytest.raises(ParseError):
        parse_script("(assert)")
    with pytest.raises(ParseError):
        parse_script("(declare-fun f Int Int)")
    with pytest.raises(ParseError):
        parse_script("(push x)")


# -- :named annotations and unsat-core commands ------------------------------


def test_named_assert_parses_to_labelled_assert():
    script = parse_script(
        "(declare-const x Int) (assert (! (> x 0) :named pos))"
    )
    command = script.commands[-1]
    assert isinstance(command, Assert)
    assert command.name == "pos"
    assert command.term == Apply(
        ">", (Symbol("x", INT), Constant(0, INT)), BOOL
    )


def test_named_assert_accepts_quoted_symbols():
    script = parse_script("(assert (! true :named |my lemma|))")
    assert script.commands[-1].name == "my lemma"


def test_named_label_becomes_a_bool_alias():
    # SMT-LIB: the label is a fresh 0-ary Bool symbol aliasing the term,
    # usable in later assertions.
    script = parse_script(
        "(declare-const p Bool) (assert (! p :named lbl)) (assert (not lbl))"
    )
    assert len(script.assertions()) == 2


def test_named_label_must_be_fresh():
    from repro.errors import SortError

    with pytest.raises(SortError):
        parse_script("(declare-const p Bool) (assert (! true :named p))")
    with pytest.raises(SortError):
        parse_script(
            "(assert (! true :named a)) (assert (! false :named a))"
        )


def test_annotation_requires_exactly_one_named_attribute():
    with pytest.raises(ParseError):
        parse_script("(assert (! true))")
    with pytest.raises(ParseError):
        parse_script("(assert (! true :named))")
    with pytest.raises(ParseError):
        parse_script("(assert (! true :named a :named b))")
    with pytest.raises(ParseError):
        parse_script("(assert (! true :weight 1))")
    with pytest.raises(ParseError):
        parse_script("(assert (! true named a))")


def test_annotation_outside_assert_rejected():
    with pytest.raises(ParseError):
        parse_script("(assert (and (! true :named a) true))")


def test_get_unsat_core_parses():
    from repro.smtlib import GetUnsatCore

    script = parse_script("(get-unsat-core)")
    assert isinstance(script.commands[0], GetUnsatCore)
    with pytest.raises(ParseError):
        parse_script("(get-unsat-core extra)")
