"""Tests for the Tseitin encoder and DIMACS I/O."""

import itertools
import random

import pytest

from repro.sat import SAT, Solver, UNSAT, from_dimacs, to_dimacs
from repro.smtlib import (
    BOOL,
    INT,
    Apply,
    FALSE,
    Symbol,
    TRUE,
    TseitinEncoder,
    bool_const,
    evaluate,
    int_const,
    is_connective,
    skeleton_atoms,
    to_nnf,
    tseitin,
)
from test_nnf import random_bool_term

A, B, C, D = (Symbol(name, BOOL) for name in "abcd")
X = Symbol("x", INT)


def brute_force_satisfiable(term, atoms):
    for values in itertools.product([False, True], repeat=len(atoms)):
        env = {s.name: bool_const(v) for s, v in zip(atoms, values)}
        if evaluate(term, env) is TRUE:
            return True
    return False


def solve_formula(formula):
    solver = Solver(formula.num_vars)
    for clause in formula.clauses:
        solver.add_clause(clause)
    return solver, solver.solve()


class TestConnectiveClassification:
    def test_boolean_connectives(self):
        assert is_connective(Apply("and", (A, B), BOOL))
        assert is_connective(Apply("not", (A,), BOOL))
        assert is_connective(Apply("=", (A, B), BOOL))
        assert is_connective(Apply("ite", (A, B, C), BOOL))

    def test_theory_equality_is_an_atom(self):
        assert not is_connective(Apply("=", (X, int_const(0)), BOOL))
        assert not is_connective(Apply("<", (X, int_const(0)), BOOL))

    def test_non_boolean_ite_is_not_a_connective(self):
        assert not is_connective(Apply("ite", (A, X, int_const(0)), INT))

    def test_symbols_and_constants_are_atoms(self):
        assert not is_connective(A)
        assert not is_connective(TRUE)


class TestSkeletonAtoms:
    def test_collects_distinct_atoms_in_order(self):
        lt = Apply("<", (X, int_const(0)), BOOL)
        term = Apply("and", (A, Apply("or", (lt, A, B), BOOL), lt), BOOL)
        assert skeleton_atoms(term) == [A, lt, B]

    def test_does_not_descend_into_atoms(self):
        eq = Apply("=", (X, X), BOOL)
        assert skeleton_atoms(Apply("not", (eq,), BOOL)) == [eq]

    def test_boolean_constants_are_not_atoms(self):
        # Mirrors TseitinEncoder.atom_vars, which never assigns them a var.
        term = Apply("and", (A, TRUE, Apply("or", (FALSE, B), BOOL)), BOOL)
        assert skeleton_atoms(term) == [A, B]
        assert set(tseitin(term).atom_vars) == {A, B}


class TestEquisatisfiability:
    @pytest.mark.parametrize("seed", range(60))
    def test_random_skeletons_agree_with_brute_force(self, seed):
        rng = random.Random(seed)
        atoms = [A, B, C, D]
        term = random_bool_term(rng, 4, atoms)
        formula = tseitin(to_nnf(term))
        solver, answer = solve_formula(formula)
        expected = brute_force_satisfiable(term, atoms)
        assert answer == (SAT if expected else UNSAT), term
        if answer == SAT:
            # The CNF model, restricted to the atoms, satisfies the term.
            env = {}
            for atom, var in formula.atom_vars.items():
                env[atom.name] = bool_const(solver.model[var])
            for atom in atoms:
                env.setdefault(atom.name, bool_const(False))
            assert evaluate(term, env) is TRUE

    def test_true_is_satisfiable(self):
        _, answer = solve_formula(tseitin(TRUE))
        assert answer == SAT

    def test_false_is_unsatisfiable(self):
        _, answer = solve_formula(tseitin(FALSE))
        assert answer == UNSAT

    def test_conjoined_assertions(self):
        encoder = TseitinEncoder()
        encoder.assert_term(Apply("or", (A, B), BOOL))
        encoder.assert_term(Apply("not", (A,), BOOL))
        encoder.assert_term(Apply("not", (B,), BOOL))
        _, answer = solve_formula(encoder.formula)
        assert answer == UNSAT


class TestSharing:
    def test_shared_subterm_gets_one_aux_variable(self):
        shared = Apply("and", (A, B), BOOL)
        term = Apply("or", (shared, Apply("not", (shared,), BOOL)), BOOL)
        formula = tseitin(term)
        # Atoms a, b plus exactly two gates: the shared `and`, the `or`.
        assert formula.num_atoms == 2
        assert formula.num_aux == 2

    def test_not_introduces_no_variable(self):
        formula = tseitin(Apply("not", (A,), BOOL))
        assert formula.num_vars == 1
        assert formula.clauses == [(-1,)]

    def test_deep_shared_dag_encodes_linearly(self):
        term = Apply("and", (A, B), BOOL)
        for _ in range(100):
            term = Apply("and", (term, term), BOOL)
        formula = tseitin(term)
        assert formula.num_vars <= 2 + 101  # atoms + one aux per level

    def test_encoding_is_linear_in_connectives(self):
        wide = Apply("or", tuple(Symbol(f"v{i}", BOOL) for i in range(50)), BOOL)
        formula = tseitin(wide)
        assert formula.num_vars == 51
        assert len(formula.clauses) == 50 + 1 + 1  # gate + long clause + root unit


class TestEncoderErrors:
    def test_rejects_non_boolean_terms(self):
        with pytest.raises(ValueError):
            TseitinEncoder().encode(X)


class TestDimacs:
    def test_round_trip(self):
        clauses = [(1, -2, 3), (-1,), (2, 3)]
        text = to_dimacs(3, clauses, comments=("a comment",))
        assert text.startswith("c a comment\np cnf 3 3\n")
        assert from_dimacs(text) == (3, clauses)

    def test_round_trip_of_encoded_formula(self):
        formula = tseitin(to_nnf(Apply("=>", (A, Apply("xor", (B, C), BOOL)), BOOL)))
        text = to_dimacs(formula.num_vars, formula.clauses)
        num_vars, clauses = from_dimacs(text)
        assert num_vars == formula.num_vars
        assert clauses == [tuple(c) for c in formula.clauses]
        # And the round-tripped formula still solves identically.
        solver = Solver(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() == SAT

    def test_accepts_multiline_clauses_and_comments(self):
        text = "c hi\np cnf 3 2\n1 2\n3 0 -1\n-2 0\n"
        assert from_dimacs(text) == (3, [(1, 2, 3), (-1, -2)])

    def test_accepts_satlib_percent_terminator(self):
        text = "p cnf 2 1\n1 -2 0\n%\n0\n"
        assert from_dimacs(text) == (2, [(1, -2)])

    def test_rejects_missing_header(self):
        with pytest.raises(ValueError, match="header"):
            from_dimacs("1 2 0\n")

    def test_rejects_duplicate_header(self):
        with pytest.raises(ValueError, match="duplicate"):
            from_dimacs("p cnf 1 0\np cnf 1 0\n")

    def test_rejects_unterminated_clause(self):
        with pytest.raises(ValueError, match="unterminated"):
            from_dimacs("p cnf 2 1\n1 2\n")

    def test_rejects_out_of_range_literal(self):
        with pytest.raises(ValueError, match="exceeds"):
            from_dimacs("p cnf 2 1\n1 3 0\n")

    def test_rejects_clause_count_mismatch(self):
        with pytest.raises(ValueError, match="declares"):
            from_dimacs("p cnf 2 2\n1 0\n")

    def test_export_rejects_bad_literals(self):
        with pytest.raises(ValueError):
            to_dimacs(2, [(0,)])
        with pytest.raises(ValueError):
            to_dimacs(2, [(3,)])
