"""Property tests for arithmetic normalization.

Seeded random generators (deterministic, no external dependencies)
check the algebraic laws the arithmetic stack rests on:

* ``simplify`` is idempotent and sort-preserving on random Int/Real
  terms and atoms;
* ``simplify`` preserves models: ``evaluate(t, m)`` equals
  ``evaluate(simplify(t), m)`` over random bindings;
* :func:`~repro.smtlib.linarith.linear_form` agrees with the evaluator:
  the polynomial it extracts computes the same value as the term it
  came from.
"""

from fractions import Fraction
from random import Random

import pytest

from repro.smtlib.evaluate import evaluate
from repro.smtlib.linarith import linear_form
from repro.smtlib.simplify import simplify
from repro.smtlib.sorts import BOOL, INT, REAL
from repro.smtlib.terms import Apply, Constant, Symbol, Term, int_const

INT_VARS = [Symbol(name, INT) for name in ("x", "y", "z")]
REAL_VARS = [Symbol(name, REAL) for name in ("u", "v")]


def real_const(value) -> Constant:
    return Constant(Fraction(value), REAL)


def random_numeric(rng: Random, depth: int, sort) -> Term:
    """A random numeric term; divisors are non-zero literals so every
    generated term is total under ``evaluate``."""
    variables = INT_VARS if sort == INT else REAL_VARS
    const = int_const if sort == INT else real_const
    if depth <= 0 or rng.random() < 0.3:
        if rng.random() < 0.5:
            return rng.choice(variables)
        return const(rng.randint(-9, 9))
    choice = rng.random()
    if sort == INT and choice < 0.18:
        divisor = const(rng.choice([-5, -3, -2, 2, 3, 5, 7]))
        op = rng.choice(["div", "mod"])
        return Apply(op, (random_numeric(rng, depth - 1, sort), divisor), INT)
    if sort == REAL and choice < 0.18:
        divisor = real_const(rng.choice([-4, -2, 2, 4, Fraction(1, 2)]))
        return Apply("/", (random_numeric(rng, depth - 1, sort), divisor), REAL)
    if choice < 0.3:
        return Apply("-", (random_numeric(rng, depth - 1, sort),), sort)
    if choice < 0.45:
        # Keep * linear-ish sometimes, nonlinear other times.
        left = random_numeric(rng, depth - 1, sort)
        right = const(rng.randint(-4, 4)) if rng.random() < 0.7 else random_numeric(
            rng, depth - 1, sort
        )
        return Apply("*", (left, right), sort)
    op = rng.choice(["+", "-"])
    width = rng.randint(2, 3)
    args = tuple(random_numeric(rng, depth - 1, sort) for _ in range(width))
    return Apply(op, args, sort)


def random_atom(rng: Random, sort) -> Term:
    op = rng.choice(["<", "<=", ">", ">=", "=", "distinct"])
    lhs = random_numeric(rng, 3, sort)
    rhs = random_numeric(rng, 3, sort)
    return Apply(op, (lhs, rhs), BOOL)


def random_bindings(rng: Random, sort) -> dict[str, Constant]:
    if sort == INT:
        return {symbol.name: int_const(rng.randint(-8, 8)) for symbol in INT_VARS}
    return {
        symbol.name: real_const(
            Fraction(rng.randint(-16, 16), rng.choice([1, 2, 3, 4]))
        )
        for symbol in REAL_VARS
    }


@pytest.mark.parametrize("seed", range(60))
@pytest.mark.parametrize("sort", [INT, REAL], ids=["int", "real"])
def test_simplify_idempotent_and_sort_preserving(seed, sort):
    rng = Random(1000 + seed)
    term = random_atom(rng, sort)
    simplified = simplify(term)
    assert simplified.sort == term.sort
    assert simplify(simplified) is simplified


@pytest.mark.parametrize("seed", range(60))
@pytest.mark.parametrize("sort", [INT, REAL], ids=["int", "real"])
def test_simplify_preserves_models(seed, sort):
    rng = Random(2000 + seed)
    term = random_atom(rng, sort)
    simplified = simplify(term)
    for trial in range(5):
        bindings = random_bindings(Random(3000 + seed * 31 + trial), sort)
        assert evaluate(term, bindings) is evaluate(simplified, bindings), (
            f"simplify changed the value of {term} under {bindings}"
        )


@pytest.mark.parametrize("seed", range(60))
@pytest.mark.parametrize("sort", [INT, REAL], ids=["int", "real"])
def test_numeric_simplify_preserves_values(seed, sort):
    rng = Random(4000 + seed)
    term = random_numeric(rng, 4, sort)
    simplified = simplify(term)
    assert simplified.sort == term.sort
    for trial in range(5):
        bindings = random_bindings(Random(5000 + seed * 31 + trial), sort)
        assert evaluate(term, bindings) is evaluate(simplified, bindings)


@pytest.mark.parametrize("seed", range(60))
@pytest.mark.parametrize("sort", [INT, REAL], ids=["int", "real"])
def test_linear_form_agrees_with_evaluate(seed, sort):
    rng = Random(6000 + seed)
    term = random_numeric(rng, 3, sort)
    form = linear_form(term)
    if form is None:
        return  # nonlinear: nothing to check
    coeffs, constant = form
    for trial in range(5):
        bindings = random_bindings(Random(7000 + seed * 31 + trial), sort)
        expected = Fraction(evaluate(term, bindings).value)
        computed = constant + sum(
            coeff * Fraction(bindings[symbol.name].value)
            for symbol, coeff in coeffs.items()
        )
        assert computed == expected, f"linear_form disagrees on {term}"


@pytest.mark.parametrize("seed", range(40))
def test_comparison_folding_sound(seed):
    """When simplify folds a comparison atom to a constant, the constant
    matches brute-force evaluation at random points."""
    rng = Random(8000 + seed)
    term = random_atom(rng, INT)
    simplified = simplify(term)
    if not isinstance(simplified, Constant):
        return
    for trial in range(10):
        bindings = random_bindings(Random(9000 + seed * 37 + trial), INT)
        assert evaluate(term, bindings) is simplified
