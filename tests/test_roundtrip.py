"""Corpus round-trip tests: the tentpole acceptance law.

For every bundled corpus script ``s``: ``parse(print(parse(text)))`` is a
fixpoint, and the type checker accepts every term in it.
"""

from pathlib import Path

import pytest

from repro.smtlib import check_script, parse_script, script_to_smtlib

CORPUS = sorted((Path(__file__).parent / "corpus").glob("*.smt2"))

assert CORPUS, "bundled corpus is missing"


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_parse_print_parse_fixpoint(path):
    script = parse_script(path.read_text())
    printed = script_to_smtlib(script)
    reparsed = parse_script(printed)
    assert reparsed == script
    # And printing is deterministic: a second round yields identical text.
    assert script_to_smtlib(reparsed) == printed


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_typecheck_accepts_corpus(path):
    script = parse_script(path.read_text())
    check_script(script)


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_exercises_commands(path):
    script = parse_script(path.read_text())
    assert len(script.assertions()) >= 1
