"""Corpus round-trip tests: the tentpole acceptance law.

For every bundled corpus script ``s``: ``parse(print(parse(text)))`` is a
fixpoint, the type checker accepts every term in it, and the engine's
answers never contradict the ``(set-info :status ...)`` annotations —
with the propositional/EUF/arithmetic scripts required to answer their
annotated status *exactly* (no ``unknown`` cop-out).
"""

from pathlib import Path

import pytest

from repro import run_script
from repro.smtlib import check_script, parse_script, script_to_smtlib

CORPUS = sorted((Path(__file__).parent / "corpus").glob("*.smt2"))

assert CORPUS, "bundled corpus is missing"

#: Scripts inside the fragments the engine decides outright: every
#: check-sat must answer its annotation, not just avoid contradicting it.
DECIDED = {
    "prop_sat",
    "prop_unsat",
    "euf_sat",
    "euf_unsat",
    "lra_sat",
    "lra_unsat",
    "lia_sat",
    "lia_unsat",
}


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_parse_print_parse_fixpoint(path):
    script = parse_script(path.read_text())
    printed = script_to_smtlib(script)
    reparsed = parse_script(printed)
    assert reparsed == script
    # And printing is deterministic: a second round yields identical text.
    assert script_to_smtlib(reparsed) == printed


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_typecheck_accepts_corpus(path):
    script = parse_script(path.read_text())
    check_script(script)


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_exercises_commands(path):
    script = parse_script(path.read_text())
    assert len(script.assertions()) >= 1


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_engine_matches_status(path):
    """Soundness over the whole corpus: a definite answer never
    contradicts the script's ``:status`` annotation; completeness over
    the decided fragments: the annotation is answered exactly."""
    result = run_script(path.read_text())
    assert result.status_mismatches == [], (
        f"{path.stem}: answers {result.answers} contradict :status"
    )
    if path.stem in DECIDED:
        for index, check in enumerate(result.check_results):
            assert check.answer in ("sat", "unsat"), (
                f"{path.stem}: check-sat #{index} answered {check.answer} "
                f"(reason={check.reason}) in a decided fragment"
            )
            if check.expected is not None:
                assert check.answer == check.expected, (
                    f"{path.stem}: check-sat #{index} answered {check.answer},"
                    f" annotated {check.expected}"
                )
