"""Corpus round-trip tests: the tentpole acceptance law.

For every bundled corpus script ``s``: ``parse(print(parse(text)))`` is a
fixpoint, the type checker accepts every term in it, and the engine's
answers never contradict the ``(set-info :status ...)`` annotations —
with the propositional/EUF/arithmetic scripts required to answer their
annotated status *exactly* (no ``unknown`` cop-out).

Scripts carrying ``(set-info :unsat-core (n1 n2 ...))`` annotations are
additionally gated on their cores, the same way ``:status`` gates the
answer: the annotation applies to the next ``check-sat``, whose
``unsat_core`` must name exactly the annotated assertions.
"""

from pathlib import Path

import pytest

from repro import run_script
from repro.smtlib import check_script, parse_script, script_to_smtlib
from repro.smtlib.script import CheckSat, SetInfo

CORPUS = sorted((Path(__file__).parent / "corpus").glob("*.smt2"))

assert CORPUS, "bundled corpus is missing"

#: Scripts inside the fragments the engine decides outright: every
#: check-sat must answer its annotation, not just avoid contradicting it.
DECIDED = {
    "prop_sat",
    "prop_unsat",
    "euf_sat",
    "euf_unsat",
    "lra_sat",
    "lra_unsat",
    "lia_sat",
    "lia_unsat",
    "unsat_core_lia",
    "unsat_core_uf",
    "bitvec",
    "arrays",
}


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_parse_print_parse_fixpoint(path):
    script = parse_script(path.read_text())
    printed = script_to_smtlib(script)
    reparsed = parse_script(printed)
    assert reparsed == script
    # And printing is deterministic: a second round yields identical text.
    assert script_to_smtlib(reparsed) == printed


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_typecheck_accepts_corpus(path):
    script = parse_script(path.read_text())
    check_script(script)


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_exercises_commands(path):
    script = parse_script(path.read_text())
    assert len(script.assertions()) >= 1


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_engine_matches_status(path):
    """Soundness over the whole corpus: a definite answer never
    contradicts the script's ``:status`` annotation; completeness over
    the decided fragments: the annotation is answered exactly."""
    result = run_script(path.read_text())
    assert result.status_mismatches == [], (
        f"{path.stem}: answers {result.answers} contradict :status"
    )
    if path.stem in DECIDED:
        for index, check in enumerate(result.check_results):
            assert check.answer in ("sat", "unsat"), (
                f"{path.stem}: check-sat #{index} answered {check.answer} "
                f"(reason={check.reason}) in a decided fragment"
            )
            if check.expected is not None:
                assert check.answer == check.expected, (
                    f"{path.stem}: check-sat #{index} answered {check.answer},"
                    f" annotated {check.expected}"
                )


def expected_cores(script):
    """Pair each ``(set-info :unsat-core ...)`` annotation with the index
    of the ``check-sat`` it gates (the next one, like ``:status``)."""
    expected = {}
    pending = None
    index = 0
    for command in script.commands:
        if isinstance(command, SetInfo) and command.keyword == ":unsat-core":
            pending = tuple(command.value.strip("()").split())
        elif isinstance(command, CheckSat):
            if pending is not None:
                expected[index] = pending
                pending = None
            index += 1
    return expected


ANNOTATED = [path for path in CORPUS if ":unsat-core" in path.read_text()]

assert ANNOTATED, "corpus should carry :unsat-core annotated scripts"


@pytest.mark.parametrize("path", ANNOTATED, ids=lambda p: p.stem)
def test_corpus_engine_matches_unsat_core(path):
    """Core gate: annotated scripts must report exactly the annotated
    named-assertion core, both on the result object and through the
    printable ``(get-unsat-core)`` output."""
    script = parse_script(path.read_text())
    expected = expected_cores(script)
    assert expected, f"{path.stem}: annotation did not parse"
    result = run_script(path.read_text())
    for index, names in expected.items():
        check = result.check_results[index]
        assert check.answer == "unsat", (
            f"{path.stem}: check-sat #{index} answered {check.answer}, "
            "but carries an :unsat-core annotation"
        )
        assert check.unsat_core == names, (
            f"{path.stem}: check-sat #{index} core {check.unsat_core}, "
            f"annotated {names}"
        )
        rendered = "({})".format(" ".join(names))
        assert rendered in result.output, (
            f"{path.stem}: (get-unsat-core) never printed {rendered}"
        )
