"""Unit tests for the tokeniser."""

import pytest

from repro.errors import LexerError
from repro.smtlib.lexer import TokenKind, tokenize


def kinds(text):
    return [token.kind for token in tokenize(text)]


def texts(text):
    return [token.text for token in tokenize(text)]


def test_parentheses_and_symbols():
    tokens = tokenize("(assert x)")
    assert [t.kind for t in tokens] == [
        TokenKind.LPAREN,
        TokenKind.SYMBOL,
        TokenKind.SYMBOL,
        TokenKind.RPAREN,
    ]
    assert tokens[1].text == "assert"


def test_numerals_and_decimals():
    assert kinds("42") == [TokenKind.NUMERAL]
    assert kinds("4.25") == [TokenKind.DECIMAL]
    assert texts("4.25") == ["4.25"]
    assert kinds("0 0.5") == [TokenKind.NUMERAL, TokenKind.DECIMAL]


def test_leading_zero_numerals_rejected():
    # SMT-LIB numerals are 0 or a digit sequence not starting with 0.
    with pytest.raises(LexerError):
        tokenize("01")
    with pytest.raises(LexerError):
        tokenize("007.5")


def test_decimal_requires_digit_after_dot():
    # Regression: `1.` used to tokenize as a DECIMAL; SMT-LIB requires at
    # least one digit after the dot.
    with pytest.raises(LexerError):
        tokenize("1.")
    with pytest.raises(LexerError):
        tokenize("(= x 3. )")


def test_literal_token_boundaries_enforced():
    # '1x', '1.5x', '#x1g' are not valid SMT-LIB tokens; silently splitting
    # them into two tokens would change script semantics.
    with pytest.raises(LexerError):
        tokenize("1x")
    with pytest.raises(LexerError):
        tokenize("1.5x")
    with pytest.raises(LexerError):
        tokenize("#x1g")
    with pytest.raises(LexerError):
        tokenize("#b012")


def test_is_simple_symbol_matches_lexer():
    from repro.smtlib.lexer import is_simple_symbol

    assert is_simple_symbol("str.++")
    assert not is_simple_symbol("1abc")
    assert not is_simple_symbol("a b")
    assert not is_simple_symbol("")
    # ASCII only: SMT-LIB simple symbols exclude Unicode alphanumerics.
    assert not is_simple_symbol("café")


def test_non_ascii_rejected_outside_quotes():
    with pytest.raises(LexerError):
        tokenize("café")
    # ...but quoted symbols may carry any printable characters.
    tokens = tokenize("|café|")
    assert tokens[0].text == "café"


def test_hex_and_binary_literals():
    assert kinds("#x1A #b101") == [TokenKind.HEXADECIMAL, TokenKind.BINARY]
    with pytest.raises(LexerError):
        tokenize("#x")
    with pytest.raises(LexerError):
        tokenize("#b")
    with pytest.raises(LexerError):
        tokenize("#q1")
    # The prefixes are lowercase in the SMT-LIB grammar.
    with pytest.raises(LexerError):
        tokenize("#Xff")
    with pytest.raises(LexerError):
        tokenize("#B01")


def test_string_escaping():
    tokens = tokenize('"he said ""hi"""')
    assert tokens[0].kind == TokenKind.STRING
    assert tokens[0].text == 'he said "hi"'
    with pytest.raises(LexerError):
        tokenize('"unterminated')


def test_quoted_symbols():
    tokens = tokenize("|hello world|")
    assert tokens[0].kind == TokenKind.QUOTED_SYMBOL
    assert tokens[0].text == "hello world"
    # A quoted simple symbol denotes the same symbol as its unquoted
    # spelling, so it canonicalises to a plain SYMBOL token...
    assert tokenize("|abc|")[0].kind == TokenKind.SYMBOL
    # ...but quoted reserved words stay distinct from the keyword.
    assert tokenize("|let|")[0].kind == TokenKind.QUOTED_SYMBOL
    with pytest.raises(LexerError):
        tokenize("|unterminated")
    # SMT-LIB forbids backslash inside quoted symbols; accepting it would
    # produce symbols the printer cannot express.
    with pytest.raises(LexerError):
        tokenize(r"|a\b|")


def test_keywords():
    tokens = tokenize(":produce-models")
    assert tokens[0].kind == TokenKind.KEYWORD
    assert tokens[0].text == ":produce-models"
    with pytest.raises(LexerError):
        tokenize(": lonely-colon")


def test_comments_skipped():
    assert texts("x ; a comment\ny") == ["x", "y"]


def test_positions_track_lines_and_columns():
    tokens = tokenize("(a\n  b)")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[2].line, tokens[2].column) == (2, 3)


def test_stray_character_rejected():
    with pytest.raises(LexerError):
        tokenize("x \x01 y")
