"""Tests for the lazy arrays plugin (extensional select/store).

Three layers of assurance:

* **Unit tests** drive :class:`ArraysTheory` directly: read-over-write
  propagation, extensionality witnesses, provenance-rewritten conflicts
  and push/pop rollback on the shared e-graph.
* **Engine cross-checks** — QF_AX-style scripts through the full DPLL(T)
  stack: store-chain reasoning, symbolic index case splits shipped as
  theory lemmas, certified unsat proofs, unsat cores, incremental
  push/pop and boolean element sorts.
* **Soundness of the validation net** — the array-aware evaluator rejects
  models that violate the array axioms, so incomplete corners demote to
  ``unknown`` instead of answering a wrong ``sat``.
"""

import pytest

from repro import run_script, solve_script
from repro.proof import check_proof
from repro.smtlib import (
    BOOL,
    INT,
    Apply,
    Symbol,
    array_sort,
    int_const,
    uninterpreted_sort,
)
from repro.theory import ArraysState, ArraysTheory

I = uninterpreted_sort("I")
AII = array_sort(I, INT)


def sym(name, sort):
    return Symbol(name, sort)


def eq(a, b):
    return Apply("=", (a, b), BOOL)


def select(a, i):
    return Apply("select", (a, i), a.sort.element(1))


def store(a, i, v):
    return Apply("store", (a, i, v), a.sort)


# ---------------------------------------------------------------------------
# Plugin unit tests.
# ---------------------------------------------------------------------------


class TestPlugin:
    def test_row1_read_own_write(self):
        t = ArraysTheory()
        a, i = sym("a", AII), sym("i", I)
        atom = eq(select(store(a, i, int_const(5)), i), int_const(5))
        t.push()
        conflict = t.assert_literal(atom, False)
        # RoW-1 forces the read to 5; denying the equality conflicts.
        assert conflict is not None
        assert (atom, False) in conflict.literals

    def test_conflict_hides_internal_axioms(self):
        t = ArraysTheory()
        a, i = sym("a", AII), sym("i", I)
        atom = eq(select(store(a, i, int_const(5)), i), int_const(5))
        t.push()
        conflict = t.assert_literal(atom, False)
        # Provenance rewriting: explanations only mention trail literals.
        assert set(conflict.literals) <= {(atom, False)}

    def test_congruent_indices_propagate(self):
        t = ArraysTheory()
        a = sym("a", AII)
        i, j = sym("i", I), sym("j", I)
        read = select(store(a, i, int_const(1)), j)
        t.push()
        assert t.assert_literal(eq(i, j), True) is None
        t.push()
        conflict = t.assert_literal(eq(read, int_const(1)), False)
        if conflict is None:
            conflict = t.check()
        assert conflict is not None

    def test_symbolic_indices_emit_lemma_pair(self):
        t = ArraysTheory()
        a = sym("a", AII)
        i, j = sym("i", I), sym("j", I)
        read = select(store(a, i, int_const(1)), j)
        t.push()
        assert t.assert_literal(eq(read, int_const(2)), True) is None
        assert t.check() is None
        lemmas = t.pending_lemmas()
        assert len(lemmas) == 2
        index_eq = eq(i, j)
        assert lemmas[0].literals[0] == (index_eq, False)
        assert lemmas[1].literals[0] == (index_eq, True)
        # The pair ships once: a later check re-emits nothing.
        assert t.check() is None
        assert t.pending_lemmas() == ()

    def test_state_survives_plugin_rebuild(self):
        state = ArraysState()
        a = sym("a", AII)
        i, j = sym("i", I), sym("j", I)
        read = select(store(a, i, int_const(1)), j)
        t = ArraysTheory(state=state)
        t.push()
        t.assert_literal(eq(read, int_const(2)), True)
        t.check()
        assert len(t.pending_lemmas()) == 2
        # A fresh plugin over the same engine state skips the emitted pair.
        t2 = ArraysTheory(state=state)
        t2.push()
        t2.assert_literal(eq(read, int_const(2)), True)
        t2.check()
        assert t2.pending_lemmas() == ()

    def test_extensionality_creates_witness(self):
        t = ArraysTheory()
        a, b = sym("a", AII), sym("b", AII)
        t.push()
        assert t.assert_literal(eq(a, b), False) is None
        assert t.stats["witnesses"] == 1
        t.push()
        # Merging the arrays now clashes with the witness disequality.
        conflict = t.assert_literal(eq(a, b), True)
        assert conflict is not None

    def test_push_pop_rolls_back(self):
        t = ArraysTheory()
        a, i = sym("a", AII), sym("i", I)
        atom = eq(select(store(a, i, int_const(5)), i), int_const(5))
        t.push()
        assert t.assert_literal(atom, True) is None
        t.push()
        assert t.assert_literal(atom, False) is not None
        t.pop()
        assert t.check() is None

    def test_model_hides_witnesses(self):
        from repro.theory import SortValueAllocator

        t = ArraysTheory()
        a, b = sym("a", AII), sym("b", AII)
        t.push()
        assert t.assert_literal(eq(a, b), False) is None
        assert t.check() is None
        model = t.model(SortValueAllocator())
        assert model is not None
        assert all("@arr!" not in name for name in model.values)


# ---------------------------------------------------------------------------
# Engine cross-checks.
# ---------------------------------------------------------------------------


def answers(script, **kw):
    return [check.answer for check in solve_script(script, **kw)]


PRELUDE = (
    "(declare-sort I 0)"
    "(declare-const a (Array I Int))"
    "(declare-const b (Array I Int))"
    "(declare-const i I)"
    "(declare-const j I)"
)


class TestEngine:
    def test_read_over_write_hit(self):
        assert answers(
            PRELUDE
            + "(assert (not (= (select (store a i 5) i) 5)))(check-sat)"
        ) == ["unsat"]

    def test_nested_store_case_split(self):
        # i != j: the outer write at j cannot mask the inner write at i.
        assert answers(
            PRELUDE
            + "(assert (not (= i j)))"
            "(assert (not (= (select (store (store a i 1) j 2) i) 1)))"
            "(check-sat)"
        ) == ["unsat"]

    def test_nested_store_sat_when_indices_free(self):
        # Without i != j the outer write may mask the inner one: sat.
        checks = solve_script(
            PRELUDE
            + "(assert (not (= (select (store (store a i 1) j 2) i) 1)))"
            "(check-sat)"
        )
        assert checks[0].answer == "sat"

    def test_ground_indices_no_case_split(self):
        checks = solve_script(
            "(declare-const a (Array Int Int))"
            "(assert (= (select (store a 1 10) 2) 5))"
            "(assert (= (select a 2) 6))"
            "(check-sat)"
        )
        assert checks[0].answer == "unsat"
        # Distinct literal indices resolve internally, no lemma shipped.
        assert checks[0].stats["arrays_row2_ground"] >= 1
        assert checks[0].stats["arrays_lemmas"] == 0

    def test_extensionality_unsat(self):
        assert answers(
            PRELUDE
            + "(assert (= b (store a i (select a i))))"
            "(assert (not (= a b)))"
            "(check-sat)"
        ) == ["unsat"]

    def test_extensionality_sat(self):
        checks = solve_script(PRELUDE + "(assert (not (= a b)))(check-sat)")
        assert checks[0].answer == "sat"
        assert all("@arr!" not in name for name in checks[0].model)

    def test_unsat_is_certified(self):
        checks = solve_script(
            PRELUDE
            + "(assert (not (= i j)))"
            "(assert (not (= (select (store (store a i 1) j 2) i) 1)))"
            "(check-sat)",
            produce_proofs=True,
        )
        assert checks[0].answer == "unsat"
        assert checks[0].proof is not None
        assert check_proof(checks[0].proof).ok

    def test_unsat_core_names_array_facts(self):
        checks = solve_script(
            PRELUDE
            + "(assert (! (not (= i j)) :named distinct-indices))"
            "(assert (! (not (= (select (store (store a i 1) j 2) i) 1))"
            " :named read-miss))"
            "(assert (! (= (select a j) 7) :named irrelevant))"
            "(check-sat)",
            produce_unsat_cores=True,
        )
        assert checks[0].answer == "unsat"
        core = set(checks[0].unsat_core)
        assert {"distinct-indices", "read-miss"} <= core
        assert "irrelevant" not in core

    def test_incremental_push_pop(self):
        assert answers(
            PRELUDE
            + "(assert (= (select (store a i 3) i) 3))"
            "(check-sat)"
            "(push 1)"
            "(assert (not (= i j)))"
            "(assert (not (= (select (store (store a i 1) j 2) i) 1)))"
            "(check-sat)"
            "(pop 1)"
            "(check-sat)"
        ) == ["sat", "unsat", "sat"]

    def test_bool_elements(self):
        assert answers(
            "(declare-const a (Array Int Bool))"
            "(declare-const i Int)"
            "(assert (select (store a i true) i))"
            "(check-sat)"
        ) == ["sat"]
        assert answers(
            "(declare-const a (Array Int Bool))"
            "(declare-const i Int)"
            "(assert (not (select (store a i true) i)))"
            "(check-sat)"
        ) == ["unsat"]

    def test_store_identity(self):
        # store a i (select a i) == a, both polarities.
        assert answers(
            "(declare-const a (Array Int Int))"
            "(declare-const i Int)"
            "(assert (= (store a i (select a i)) a))"
            "(check-sat)"
        ) == ["sat"]
        assert answers(
            "(declare-const a (Array Int Int))"
            "(declare-const i Int)"
            "(assert (not (= (store a i (select a i)) a)))"
            "(check-sat)"
        ) == ["unsat"]

    def test_cooperation_with_euf(self):
        assert answers(
            PRELUDE
            + "(declare-fun f (I) I)"
            "(assert (= (f i) j))"
            "(assert (not (= i j)))"
            "(assert (not (= (select (store (store a i 1) (f i) 2) i) 1)))"
            "(check-sat)"
        ) == ["unsat"]

    def test_metrics_exposed_per_check(self):
        checks = solve_script(
            PRELUDE
            + "(assert (not (= (select (store a i 1) j) 1)))(check-sat)"
        )
        stats = checks[0].stats
        assert stats["arrays_row1_instances"] >= 1
        assert stats["arrays_lemmas"] >= 1

    def test_arith_forced_index_equality_stays_sound(self):
        """Simplex-forced index equalities are invisible to the arrays
        e-graph (documented incompleteness): the answer degrades to
        ``unknown``, never to a wrong ``sat``."""
        checks = solve_script(
            "(declare-const a (Array Int Int))"
            "(declare-const i Int)(declare-const j Int)"
            "(assert (= i j))"
            "(assert (not (= (select (store a i 1) j) 1)))"
            "(check-sat)"
        )
        assert checks[0].answer in ("unsat", "unknown")

    def test_get_model_prints_cleanly(self):
        result = run_script(
            PRELUDE + "(assert (not (= a b)))(check-sat)(get-model)"
        )
        printed = " ".join(result.output)
        assert "@arr!" not in printed
