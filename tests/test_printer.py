"""Unit tests for the SMT-LIB printer."""

from fractions import Fraction

import pytest

from repro.smtlib import (
    Apply,
    Assert,
    CheckSat,
    DeclareFun,
    DefineFun,
    Script,
    SetLogic,
    Symbol,
    command_to_smtlib,
    constant_to_smtlib,
    parse_script,
    parse_term,
    script_to_smtlib,
    symbol_to_smtlib,
    term_to_smtlib,
)
from repro.smtlib.sorts import BOOL, INT, REAL, bitvec_sort
from repro.smtlib.terms import (
    Constant,
    bitvec_const,
    bool_const,
    int_const,
    real_const,
    string_const,
)


def test_symbol_quoting():
    from repro.errors import PrinterError, SmtLibError

    assert symbol_to_smtlib("abc") == "abc"
    assert symbol_to_smtlib("str.++") == "str.++"
    assert symbol_to_smtlib("hello world") == "|hello world|"
    # Identifiers that collide with reserved words must print quoted, or the
    # output would change meaning in head position.
    assert symbol_to_smtlib("let") == "|let|"
    assert symbol_to_smtlib("forall") == "|forall|"
    with pytest.raises(PrinterError):
        symbol_to_smtlib("can|not")
    # Oracles catch SmtLibError to classify input failures; unprintable
    # symbols must land in that hierarchy, not in ValueError.
    assert issubclass(PrinterError, SmtLibError)


def test_boolean_and_integer_constants():
    assert constant_to_smtlib(bool_const(True)) == "true"
    assert constant_to_smtlib(int_const(42)) == "42"
    assert constant_to_smtlib(int_const(-3)) == "(- 3)"


def test_real_constants():
    assert constant_to_smtlib(real_const(Fraction(3, 2))) == "1.5"
    assert constant_to_smtlib(real_const(2)) == "2.0"
    assert constant_to_smtlib(real_const(Fraction(-1, 4))) == "(- 0.25)"
    # No finite decimal expansion: prints as a division that parses to an
    # equivalent application.
    assert constant_to_smtlib(Constant(Fraction(1, 3), REAL)) == "(/ 1.0 3.0)"


def test_string_constants_escape_quotes():
    assert constant_to_smtlib(string_const('say "hi"')) == '"say ""hi"""'


def test_bitvec_constants_pick_hex_or_binary():
    assert constant_to_smtlib(bitvec_const(255, 8)) == "#xff"
    assert constant_to_smtlib(bitvec_const(1, 8)) == "#x01"  # zero-padded
    assert constant_to_smtlib(bitvec_const(5, 3)) == "#b101"
    assert constant_to_smtlib(bitvec_const(0, 12)) == "#x000"


def test_term_printing_nested():
    term = parse_term("(forall ((n Int)) (let ((m (+ n 1))) (< n m)))")
    assert term_to_smtlib(term) == "(forall ((n Int)) (let ((m (+ n 1))) (< n m)))"


def test_indexed_application_printing():
    term = Apply("extract", (bitvec_const(0xAB, 8),), bitvec_sort(4), indices=(3, 0))
    assert term_to_smtlib(term) == "((_ extract 3 0) #xab)"


def test_command_printing():
    assert command_to_smtlib(SetLogic("QF_BV")) == "(set-logic QF_BV)"
    declare = DeclareFun("f", (INT, INT), BOOL)
    assert command_to_smtlib(declare) == "(declare-fun f (Int Int) Bool)"
    define = DefineFun("g", (("n", INT),), INT, Apply("+", (Symbol("n", INT), int_const(1)), INT))
    assert command_to_smtlib(define) == "(define-fun g ((n Int)) Int (+ n 1))"
    assert command_to_smtlib(CheckSat()) == "(check-sat)"
    assert command_to_smtlib(Assert(bool_const(True))) == "(assert true)"


def test_script_printing_one_command_per_line():
    script = Script((SetLogic("QF_LIA"), CheckSat()))
    assert script_to_smtlib(script) == "(set-logic QF_LIA)\n(check-sat)\n"
    assert script_to_smtlib(Script(())) == ""


def test_printed_text_reparses_identically():
    script = parse_script("(declare-const x Int) (assert (= x 7)) (check-sat)")
    assert parse_script(script_to_smtlib(script)) == script


def test_named_assert_prints_annotation():
    assert (
        command_to_smtlib(Assert(bool_const(True), "lemma"))
        == "(assert (! true :named lemma))"
    )
    # Labels needing quoting go through the symbol printer.
    assert (
        command_to_smtlib(Assert(bool_const(True), "my lemma"))
        == "(assert (! true :named |my lemma|))"
    )


def test_get_unsat_core_prints():
    from repro.smtlib import GetUnsatCore

    assert command_to_smtlib(GetUnsatCore()) == "(get-unsat-core)"


def test_named_assert_roundtrips():
    source = (
        "(declare-const x Int)\n"
        "(assert (! (<= x 2) :named low))\n"
        "(assert (! (>= x 5) :named |odd name|))\n"
        "(get-unsat-core)\n"
    )
    script = parse_script(source)
    printed = script_to_smtlib(script)
    assert parse_script(printed) == script
    assert "(assert (! (<= x 2) :named low))" in printed
    assert "(assert (! (>= x 5) :named |odd name|))" in printed
