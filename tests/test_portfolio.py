"""Portfolio, budget and interrupt robustness tests (PR 10).

Four concerns, each mapped to a bug class this PR fixes or a guarantee
the portfolio layer makes:

* **Config equivalence** — every diversified
  :class:`~repro.sat.SolverConfig` in the portfolio lineup must reach the
  same verdict as the default sequential engine on the fuzz-gauntlet
  generators (diversification changes the trajectory, never the answer),
  and seeded noisy configs must replay deterministically.
* **Portfolio races** — the multiprocessing runner returns the sequential
  verdict, its ``unsat`` proofs pass the independent checker, and
  cancellation leaves no orphaned processes (``active_children()``).
* **Wall-clock budget** — expired deadlines surface as ``unknown`` with
  reason ``timeout`` through the engine and the CLI, and leave the
  engine reusable.
* **Interrupt robustness** — a ``KeyboardInterrupt`` (or cancel) mid-
  search unwinds the trail to the assumption-free root; the same solver
  and engine answer the same query correctly on retry.
* **Recursion guard** — deep scripts solve through :class:`Engine`
  directly (no CLI band-aid required).
"""

from __future__ import annotations

import multiprocessing
import sys
import time

import pytest

from repro import Engine, run_script, solve_script
from repro.limits import DEFAULT_RECURSION_LIMIT, ensure_recursion_limit
from repro.portfolio import solve_portfolio
from repro.proof import check_proof
from repro.sat import UNKNOWN, UNSAT, Solver, SolverConfig
from repro.smtlib.script import Assert, CheckSat, DeclareConst, Script, SetLogic
from repro.smtlib.sorts import BOOL
from repro.smtlib.terms import Apply, Symbol

from test_fuzz_differential import _generate

# ---------------------------------------------------------------------------
# Shared workloads.
# ---------------------------------------------------------------------------


def pigeonhole_script(holes: int) -> str:
    """PHP(holes+1, holes) as SMT-LIB text: classically unsat, and hard
    enough for resolution that budgets reliably expire mid-search."""
    pigeons = holes + 1
    lines = ["(set-logic QF_UF)"]
    for p in range(pigeons):
        for h in range(holes):
            lines.append(f"(declare-const x{p}_{h} Bool)")
    for p in range(pigeons):
        lines.append(
            "(assert (or " + " ".join(f"x{p}_{h}" for h in range(holes)) + "))"
        )
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                lines.append(f"(assert (or (not x{p1}_{h}) (not x{p2}_{h})))")
    lines.append("(check-sat)")
    return "\n".join(lines)


def assert_certified(check) -> None:
    assert check.proof is not None, "unsat answer carries no proof"
    verdict = check_proof(check.proof)
    assert verdict.ok, f"independent checker rejected the proof: {verdict.error}"


# ---------------------------------------------------------------------------
# SolverConfig surface.
# ---------------------------------------------------------------------------


def test_default_config_is_default():
    config = SolverConfig()
    assert config.is_default
    assert not config.needs_rng


@pytest.mark.parametrize(
    "kwargs",
    [
        {"phase_init": "maybe"},
        {"restart": "inner-outer"},
        {"restart_base": 0},
        {"restart_factor": 1.0},
        {"var_decay": 1.0},
        {"var_decay": 0.0},
        {"random_decision_freq": 1.5},
        # Randomized knobs without a seed must fail loudly: portfolio
        # runs are replayable by construction.
        {"random_decision_freq": 0.1},
        {"phase_init": "random"},
    ],
)
def test_config_validation_rejects(kwargs):
    with pytest.raises(ValueError):
        SolverConfig(**kwargs)


def test_portfolio_lineup_is_deterministic_and_leads_with_default():
    lineup = SolverConfig.portfolio(8)
    assert len(lineup) == 8
    assert lineup[0].is_default
    assert lineup == SolverConfig.portfolio(8)
    assert len({config.name for config in lineup}) == 8
    with pytest.raises(ValueError):
        SolverConfig.portfolio(0)


@pytest.mark.parametrize("fragment", ["lia", "uf", "bv"])
@pytest.mark.parametrize("seed", range(3))
def test_every_config_matches_sequential_verdict(fragment, seed):
    """Diversification changes trajectories, never verdicts — checked on
    the same generators the differential-fuzz gauntlet uses."""
    script = _generate(fragment, seed)
    baseline = solve_script(script)[0].answer
    assert baseline in ("sat", "unsat")
    for config in SolverConfig.portfolio(4):
        engine = Engine(config=config, produce_proofs=True)
        (check,) = engine.run(script).check_results
        assert check.answer == baseline, (
            f"{fragment}/{seed}: config {config.name} answered "
            f"{check.answer}, default answered {baseline}"
        )
        if check.answer == "unsat":
            assert_certified(check)


def test_seeded_noise_replays_deterministically():
    config = SolverConfig(
        name="noisy",
        seed=7,
        phase_init="random",
        random_decision_freq=0.2,
        random_polarity_freq=0.1,
    )
    script = pigeonhole_script(5)
    first = Engine(config=config).run(script_text_to_script(script))
    second = Engine(config=config).run(script_text_to_script(script))
    assert first.answers == second.answers
    keys = ("conflicts", "decisions", "restarts", "random_decisions")
    first_stats = first.check_results[0].stats
    second_stats = second.check_results[0].stats
    for key in keys:
        assert first_stats[key] == second_stats[key], key
    assert first_stats["random_decisions"] > 0, (
        "noise knobs produced no random decisions on a 1k-conflict search"
    )


def script_text_to_script(text: str) -> Script:
    from repro.smtlib import parse_script

    return parse_script(text)


# ---------------------------------------------------------------------------
# Learned-clause sharing at the solver level.
# ---------------------------------------------------------------------------


def test_solver_export_and_import_roundtrip():
    def clauses():
        # PHP(4, 3) directly as CNF over vars 1..12: var(p, h) = 3p + h + 1.
        out = []
        for p in range(4):
            out.append([3 * p + h + 1 for h in range(3)])
        for h in range(3):
            for p1 in range(4):
                for p2 in range(p1 + 1, 4):
                    out.append([-(3 * p1 + h + 1), -(3 * p2 + h + 1)])
        return out

    exporter = Solver(12)
    exporter.share_max_lbd = 6
    for clause in clauses():
        exporter.add_clause(clause)
    assert exporter.solve() == UNSAT
    exported = exporter.drain_exported()
    assert exported, "an unsat PHP search learned no short clauses"
    assert exporter.drain_exported() == []  # drained means drained
    assert exporter.stats["shared_exported"] >= len(exported)

    importer = Solver(12)
    for clause in clauses():
        importer.add_clause(clause)
    count = importer.import_clauses(exported)
    assert count == len(exported)
    assert importer.import_clauses(exported) == 0  # dedupe on re-import
    assert importer.solve() == UNSAT


def test_import_refused_mid_search():
    solver = Solver(2)
    solver.add_clause([1, 2])
    solver._trail_lim.append(0)  # simulate an open decision level
    with pytest.raises(ValueError):
        solver.import_clauses([(1, 2)])


# ---------------------------------------------------------------------------
# Portfolio races (multiprocessing).
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("fragment", ["lia", "uf", "ax"])
def test_portfolio_matches_sequential_and_certifies(fragment):
    script = _generate(fragment, 0)
    baseline = solve_script(script)[0].answer
    outcome = solve_portfolio(script, workers=3, timeout=120, produce_proofs=True)
    (check,) = outcome.result.check_results
    assert check.answer == baseline
    if check.answer == "unsat":
        assert_certified(check)
    assert outcome.reports[outcome.winner].status == "won"
    assert multiprocessing.active_children() == []


def test_portfolio_with_clause_sharing_stays_sound():
    outcome = solve_portfolio(
        pigeonhole_script(5),
        workers=3,
        timeout=120,
        produce_proofs=True,
        share_clauses=True,
    )
    (check,) = outcome.result.check_results
    assert check.answer == "unsat"
    assert_certified(check)
    assert multiprocessing.active_children() == []


def test_portfolio_multi_check_script():
    script = """
    (set-logic QF_UF)
    (declare-const p Bool)
    (declare-const q Bool)
    (assert (or p q))
    (check-sat)
    (push 1)
    (assert (not p))
    (assert (not q))
    (check-sat)
    (pop 1)
    (check-sat)
    """
    sequential = [c.answer for c in solve_script(script)]
    outcome = solve_portfolio(script, workers=2, timeout=120)
    assert [c.answer for c in outcome.result.check_results] == sequential
    assert multiprocessing.active_children() == []


def test_portfolio_timeout_cancels_every_worker_cleanly():
    start = time.monotonic()
    outcome = solve_portfolio(pigeonhole_script(7), workers=2, timeout=0.3)
    elapsed = time.monotonic() - start
    (check,) = outcome.result.check_results
    assert check.answer == "unknown"
    assert check.reason == "timeout"
    # Workers self-stop on their own deadline; the race must not run
    # anywhere near the instance's ~4s sequential solve time.
    assert elapsed < 8, f"race took {elapsed:.1f}s after a 0.3s timeout"
    assert multiprocessing.active_children() == []


def test_portfolio_via_solve_script_entry_point():
    results = solve_script(
        "(set-logic QF_UF)(declare-const p Bool)(assert p)(check-sat)",
        portfolio=2,
        timeout=60,
    )
    assert [c.answer for c in results] == ["sat"]
    assert multiprocessing.active_children() == []


def test_portfolio_rejects_sequential_only_options():
    with pytest.raises(ValueError):
        run_script(
            "(check-sat)", portfolio=2, config=SolverConfig(phase_init="true")
        )


def test_portfolio_win_attribution_metrics():
    from repro.obs import Observability

    obs = Observability()
    outcome = solve_portfolio(
        pigeonhole_script(4), workers=2, timeout=60, obs=obs
    )
    snapshot = obs.metrics.snapshot()
    assert snapshot["portfolio.workers"] == 2
    assert snapshot["portfolio.winner"] == outcome.winner
    winner_name = outcome.winner_config.name
    assert snapshot[f"portfolio.wins.{winner_name}"] == 1
    assert snapshot[f"portfolio.w{outcome.winner}.won"] == 1
    # The winner shipped its final counters under its own namespace.
    assert f"portfolio.w{outcome.winner}.sat.conflicts" in snapshot


# ---------------------------------------------------------------------------
# Wall-clock budget (timeout) through the existing unknown machinery.
# ---------------------------------------------------------------------------


def test_engine_timeout_returns_unknown_with_reason():
    engine = Engine(timeout=0.05)
    (check,) = engine.run(
        script_text_to_script(pigeonhole_script(7))
    ).check_results
    assert check.answer == "unknown"
    assert check.reason == "timeout"


def test_engine_timeout_budget_spans_the_whole_script():
    # Two hard checks, one budget: the second check starts past the
    # deadline and must also answer unknown/timeout (not hang).
    text = pigeonhole_script(7)
    text += "\n(check-sat)"
    engine = Engine(timeout=0.05)
    checks = engine.run(script_text_to_script(text)).check_results
    assert [c.answer for c in checks] == ["unknown", "unknown"]
    assert all(c.reason == "timeout" for c in checks)


def test_solver_deadline_and_interrupt_reasons():
    solver = Solver(12)
    for p in range(4):
        solver.add_clause([3 * p + h + 1 for h in range(3)])
    for h in range(3):
        for p1 in range(4):
            for p2 in range(p1 + 1, 4):
                solver.add_clause([-(3 * p1 + h + 1), -(3 * p2 + h + 1)])
    assert solver.solve(deadline=time.monotonic() - 1.0) == UNKNOWN
    assert solver.stop_reason == "timeout"
    assert solver.solve(interrupt=lambda: True) == UNKNOWN
    assert solver.stop_reason == "cancelled"
    # Budgets removed: the same solver finishes the query.
    assert solver.solve() == UNSAT
    assert solver.stop_reason is None


def test_cli_timeout_flag(capsys):
    from repro.__main__ import main

    import tempfile, os

    with tempfile.NamedTemporaryFile(
        "w", suffix=".smt2", delete=False
    ) as handle:
        handle.write(pigeonhole_script(7))
        path = handle.name
    try:
        code = main([path, "--timeout", "0.05"])
    finally:
        os.unlink(path)
    assert code == 0
    assert capsys.readouterr().out.strip() == "unknown"


# ---------------------------------------------------------------------------
# Interrupt robustness: reusable state after KeyboardInterrupt/cancel.
# ---------------------------------------------------------------------------


class _RaiseAfter:
    """Interrupt callback that raises mid-search after ``calls`` polls,
    simulating a KeyboardInterrupt landing at an arbitrary boundary."""

    def __init__(self, calls: int) -> None:
        self.remaining = calls

    def __call__(self) -> bool:
        self.remaining -= 1
        if self.remaining <= 0:
            raise KeyboardInterrupt
        return False


def test_solver_is_reusable_after_keyboard_interrupt():
    def build() -> Solver:
        solver = Solver(12)
        for p in range(4):
            solver.add_clause([3 * p + h + 1 for h in range(3)])
        for h in range(3):
            for p1 in range(4):
                for p2 in range(p1 + 1, 4):
                    solver.add_clause(
                        [-(3 * p1 + h + 1), -(3 * p2 + h + 1)]
                    )
        return solver

    expected = build().solve()
    assert expected == UNSAT
    solver = build()
    with pytest.raises(KeyboardInterrupt):
        solver.solve(interrupt=_RaiseAfter(3))
    # The trail is back at the assumption-free root ...
    assert solver._trail_lim == []
    # ... and the interrupted solver answers the same query correctly.
    assert solver.solve() == expected


def test_solver_interrupt_preserves_assumption_queries():
    # PHP(4,3) over vars 1..12 plus a free marker variable 13; interrupt
    # polls fire at conflict boundaries, so the search must conflict
    # under the assumption before the injected KeyboardInterrupt lands.
    solver = Solver(13)
    for p in range(4):
        solver.add_clause([3 * p + h + 1 for h in range(3)])
    for h in range(3):
        for p1 in range(4):
            for p2 in range(p1 + 1, 4):
                solver.add_clause([-(3 * p1 + h + 1), -(3 * p2 + h + 1)])
    with pytest.raises(KeyboardInterrupt):
        solver.solve(assumptions=[13], interrupt=_RaiseAfter(1))
    # The assumption pseudo-levels are unwound with the rest of the trail.
    assert solver._trail_lim == []
    assert solver._values[13] == 0
    assert solver.solve(assumptions=[13]) == UNSAT
    assert solver.solve() == UNSAT


def test_engine_is_reusable_after_keyboard_interrupt():
    script = script_text_to_script(pigeonhole_script(6))
    engine = Engine(interrupt=_RaiseAfter(5))
    with pytest.raises(KeyboardInterrupt):
        engine.run(script)
    # The engine's solver returned to the root; a fresh run on the same
    # engine instance answers correctly.
    assert engine.solver._trail_lim == []
    retry = Engine(timeout=120)
    (check,) = retry.run(script).check_results
    assert check.answer == "unsat"


def test_engine_cancel_flag_reports_cancelled():
    engine = Engine(interrupt=lambda: True)
    (check,) = engine.run(
        script_text_to_script(pigeonhole_script(6))
    ).check_results
    assert check.answer == "unknown"
    assert check.reason == "cancelled"


# ---------------------------------------------------------------------------
# Recursion guard: deep scripts through the Engine API (no CLI band-aid).
# ---------------------------------------------------------------------------


def test_deep_script_solves_through_engine_api():
    # Build the deep term iteratively (no recursion needed to construct
    # it), then drop the interpreter limit to something a CLI-less
    # library caller might have: Engine.run must install the guard.
    depth = 6000
    p = Symbol("p", BOOL)
    term = p
    for _ in range(depth):
        term = Apply("not", (term,), BOOL)
    script = Script(
        (
            SetLogic("QF_UF"),
            DeclareConst("p", BOOL),
            Assert(term),
            CheckSat(),
        )
    )
    original = sys.getrecursionlimit()
    sys.setrecursionlimit(3000)
    try:
        (check,) = Engine().run(script).check_results
    finally:
        sys.setrecursionlimit(max(original, DEFAULT_RECURSION_LIMIT))
    # Even depth of nots: equivalent to (assert p).
    assert check.answer == "sat"


def test_ensure_recursion_limit_never_lowers():
    original = sys.getrecursionlimit()
    try:
        sys.setrecursionlimit(DEFAULT_RECURSION_LIMIT + 1234)
        assert ensure_recursion_limit() == DEFAULT_RECURSION_LIMIT + 1234
        sys.setrecursionlimit(1000)
        assert ensure_recursion_limit() == DEFAULT_RECURSION_LIMIT
        assert sys.getrecursionlimit() == DEFAULT_RECURSION_LIMIT
    finally:
        sys.setrecursionlimit(max(original, DEFAULT_RECURSION_LIMIT))
