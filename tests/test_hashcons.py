"""Tests for the hash-consed term core: interning uniqueness, identity
equality, cached sorts/hashes, weak collection, and the acceptance
criterion that parsing any corpus script twice yields identical term
object graphs."""

import copy
import gc
import pickle
from fractions import Fraction
from pathlib import Path

import pytest

from repro.smtlib import parse_script
from repro.smtlib.sorts import BOOL, INT, REAL, seq_sort
from repro.smtlib.terms import (
    FALSE,
    TRUE,
    Apply,
    Constant,
    Let,
    Quantifier,
    Symbol,
    bool_const,
    int_const,
    intern_stats,
    qualified_constant,
    reset_intern_stats,
)

CORPUS = sorted((Path(__file__).parent / "corpus").glob("*.smt2"))


def test_every_node_kind_interns_to_one_object():
    assert Constant(3, INT) is Constant(3, INT)
    assert Symbol("x", INT) is Symbol("x", INT)
    x = Symbol("x", INT)
    assert Apply("+", (x, int_const(1)), INT) is Apply("+", [x, int_const(1)], INT)
    body = Apply("<", (x, int_const(1)), BOOL)
    assert Quantifier("forall", (("x", INT),), body) is Quantifier(
        "forall", [("x", INT)], body
    )
    assert Let((("y", x),), body) is Let([("y", x)], body)


def test_equality_is_identity_and_hash_is_structural():
    a = Apply("+", (Symbol("x", INT), int_const(1)), INT)
    b = Apply("+", (Symbol("x", INT), int_const(1)), INT)
    assert a is b and a == b and hash(a) == hash(b)
    c = Apply("+", (Symbol("x", INT), int_const(2)), INT)
    assert a is not c and a != c


def test_distinct_value_types_stay_distinct():
    # bool == int in Python (True == 1), but Bool true and an Int 1 must
    # never collapse to one node.
    assert Constant(True, BOOL) is not Constant(1, INT)
    assert bool_const(True) is TRUE and bool_const(False) is FALSE
    # Real constants normalise ints to Fraction, so 2 and Fraction(2) merge.
    assert Constant(2, REAL) is Constant(Fraction(2), REAL)
    assert Constant(2, REAL).value == Fraction(2)


def test_qualified_constants_intern_per_qualifier():
    empty = qualified_constant("seq.empty", seq_sort(INT))
    assert empty is qualified_constant("seq.empty", seq_sort(INT))
    universe = qualified_constant("set.universe", seq_sort(INT))
    assert empty is not universe


def test_cached_sorts():
    x = Symbol("x", INT)
    body = Apply("<", (x, int_const(1)), BOOL)
    assert Quantifier("exists", (("x", INT),), body).sort == BOOL
    assert Let((("y", int_const(1)),), x).sort == INT


def test_terms_are_immutable():
    t = int_const(1)
    with pytest.raises(AttributeError):
        t.value = 2
    with pytest.raises(AttributeError):
        del t.sort


def test_copy_and_pickle_preserve_identity():
    t = Apply("+", (Symbol("x", INT), int_const(1)), INT)
    assert copy.copy(t) is t
    assert copy.deepcopy(t) is t
    assert pickle.loads(pickle.dumps(t)) is t


def test_intern_stats_count_hits_and_misses():
    reset_intern_stats()
    before = intern_stats()
    assert before["hits"] == 0 and before["misses"] == 0
    first = Apply("*", (Symbol("fresh_sym", INT), int_const(991)), INT)
    second = Apply("*", (Symbol("fresh_sym", INT), int_const(991)), INT)
    assert first is second
    after = intern_stats()
    assert after["misses"] >= 1 and after["hits"] >= 1


def test_unreferenced_terms_are_collected():
    t = Apply("+", (Symbol("collectable_sym", INT), int_const(424242)), INT)
    live_with = intern_stats()["live"]
    del t
    gc.collect()
    assert intern_stats()["live"] < live_with


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_double_parse_yields_identical_object_graphs(path):
    text = path.read_text()
    first = parse_script(text)
    second = parse_script(text)
    assert first == second
    for a, b in zip(first.assertions(), second.assertions()):
        assert a is b


def test_dag_size_counts_unique_nodes():
    x = Symbol("x", INT)
    shared = Apply("+", (x, x), INT)
    doubled = Apply("+", (shared, shared), INT)
    assert doubled.size() == 7  # tree view: occurrences
    assert doubled.dag_size() == 3  # DAG view: x, shared, doubled


def test_deep_free_symbols_is_linear_via_sharing():
    t = Apply("+", (Symbol("x", INT), int_const(1)), INT)
    for _ in range(64):  # tree size 2^64+: only tractable on the DAG
        t = Apply("+", (t, t), INT)
    assert t.free_symbols() == {"x": INT}
    assert t.dag_size() == 67
