; Named-assertion unsat cores under push/pop with uninterpreted
; functions: congruence makes {ab, fdiff} jointly contradictory inside
; the pushed frame; popping the frame retires fdiff and the remaining
; script is satisfiable again.  The :named label also aliases its term
; (SMT-LIB semantics), which the third check exercises negatively.
(set-logic QF_UF)
(set-option :produce-unsat-cores true)
(declare-sort U 0)
(declare-const a U)
(declare-const b U)
(declare-fun f (U) U)
(assert (! (= a b) :named ab))
(push 1)
(assert (! (distinct (f a) (f b)) :named fdiff))
(set-info :status unsat)
(set-info :unsat-core (ab fdiff))
(check-sat)
(get-unsat-core)
(pop 1)
(set-info :status sat)
(check-sat)
(exit)
