; Named-assertion unsat cores over linear integer arithmetic: the two
; bounds on x clash, the slack bound on y is irrelevant — the reported
; core must name exactly the clashing pair, in assertion order.  The
; (set-info :unsat-core ...) annotation is the expectation the corpus
; gate checks, mirroring how :status gates the check-sat answer.
(set-logic QF_LIA)
(set-option :produce-unsat-cores true)
(declare-const x Int)
(declare-const y Int)
(assert (! (<= x 2) :named low))
(assert (! (>= x 5) :named high))
(assert (! (<= y 100) :named slack))
(set-info :status unsat)
(set-info :unsat-core (low high))
(check-sat)
(get-unsat-core)
(exit)
