; EUF: the classic orbit argument.  f^3(x) = x and f^5(x) = x force
; f(x) = x by congruence (gcd(3, 5) = 1), contradicting the disequality.
(set-logic QF_UF)
(set-info :status unsat)
(declare-sort U 0)
(declare-const x U)
(declare-fun f (U) U)
(assert (= (f (f (f x))) x))
(assert (= (f (f (f (f (f x))))) x))
(assert (not (= (f x) x)))
(check-sat)
(exit)
