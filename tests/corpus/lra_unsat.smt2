; Linear rational arithmetic, unsatisfiable: x > 1 and x - y < 0 force
; y > 1, so x + y < 2 is impossible; the disjunction makes the SAT core
; case-split before each arm is refuted by a simplex explanation.
(set-logic QF_LRA)
(set-info :status unsat)
(declare-const x Real)
(declare-const y Real)
(assert (< (+ x y) 2.0))
(assert (< (- x y) 0.0))
(assert (> x 1.0))
(assert (or (<= y 1.0) (<= x 1.0)))
(check-sat)
(exit)
