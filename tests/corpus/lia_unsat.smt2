; Linear integer arithmetic, unsatisfiable: 2x = 2y + 1 has no integer
; solution (parity) — integer bound tightening refutes it without
; search — and the boxed slice 4 < 2z < 6 needs the branch-free
; tightening of strict bounds to the empty integer interval.
(set-logic QF_LIA)
(set-info :status unsat)
(declare-const x Int)
(declare-const y Int)
(declare-const z Int)
(assert (or (= (* 2 x) (+ (* 2 y) 1)) (and (< (* 2 z) 6) (> (* 2 z) 4))))
(check-sat)
(exit)
