"""Unit tests for the well-sortedness checker.

The acceptance bar requires at least ten deliberately ill-sorted terms to
be rejected; ``ILL_SORTED`` below holds well over that many.
"""

import pytest

from repro.errors import TypeCheckError, UnknownSymbolError
from repro.smtlib import (
    Apply,
    Constant,
    DeclarationContext,
    Let,
    Quantifier,
    Symbol,
    apply_sort,
    check,
    check_script,
    is_builtin_operator,
    parse_script,
    parse_term,
)
from repro.smtlib.sorts import (
    BOOL,
    INT,
    REAL,
    STRING,
    array_sort,
    bitvec_sort,
    finite_field_sort,
    seq_sort,
    set_sort,
    tuple_sort,
)
from repro.smtlib.terms import int_const


def test_apply_sort_core_and_arith():
    assert apply_sort("and", (), (BOOL, BOOL, BOOL)) == BOOL
    assert apply_sort("+", (), (INT, INT)) == INT
    assert apply_sort("/", (), (REAL, REAL)) == REAL
    assert apply_sort("<", (), (REAL, REAL)) == BOOL
    assert apply_sort("ite", (), (BOOL, STRING, STRING)) == STRING


def test_apply_sort_bitvec_widths():
    assert apply_sort("concat", (), (bitvec_sort(8), bitvec_sort(4))) == bitvec_sort(12)
    assert apply_sort("extract", (7, 4), (bitvec_sort(8),)) == bitvec_sort(4)
    assert apply_sort("zero_extend", (8,), (bitvec_sort(8),)) == bitvec_sort(16)
    assert apply_sort("repeat", (3,), (bitvec_sort(2),)) == bitvec_sort(6)


def test_apply_sort_containers():
    seq = seq_sort(INT)
    assert apply_sort("seq.nth", (), (seq, INT)) == INT
    assert apply_sort("select", (), (array_sort(INT, BOOL), INT)) == BOOL
    assert apply_sort("set.member", (), (INT, set_sort(INT))) == BOOL


def test_declared_functions_via_context():
    context = DeclarationContext()
    context.declare_fun("f", (INT,), BOOL)
    assert apply_sort("f", (), (INT,), context) == BOOL
    with pytest.raises(TypeCheckError):
        apply_sort("f", (), (BOOL,), context)
    with pytest.raises(UnknownSymbolError):
        apply_sort("g", (), (INT,), context)


def test_is_builtin_operator():
    assert is_builtin_operator("bvadd")
    assert not is_builtin_operator("my-function")


def test_check_accepts_well_sorted_tree():
    term = parse_term("(and (< 1 2) (= #b10 #b10))")
    assert check(term) == BOOL


def test_check_catches_lying_stored_sort():
    # The Apply stores Bool but + over Ints derives Int.
    lying = Apply("+", (int_const(1), int_const(2)), BOOL)
    with pytest.raises(TypeCheckError):
        check(lying)


def test_check_free_symbols_against_context():
    context = DeclarationContext()
    context.declare_const("x", INT)
    assert check(Symbol("x", INT), context) == INT
    with pytest.raises(TypeCheckError):
        check(Symbol("x", BOOL), context)  # declared Int, used at Bool
    with pytest.raises(UnknownSymbolError):
        check(Symbol("y", INT), context)


def test_check_without_context_trusts_declared_function_applications():
    # Regression: check(term) with no context used to raise
    # UnknownSymbolError on any application of a declared function.
    script = parse_script(
        "(declare-fun f (Int) Int) (declare-const x Int) (assert (= (f x) 0))"
    )
    assert check(script.assertions()[0]) == BOOL


def test_builtin_regex_constants_checked():
    from repro.smtlib.sorts import REGLAN

    assert check(Symbol("re.allchar", REGLAN)) == REGLAN
    with pytest.raises(TypeCheckError):
        check(Symbol("re.none", INT))


def test_check_script_runs_whole_pipeline():
    script = parse_script(
        """
        (declare-const x Int)
        (define-fun incr ((n Int)) Int (+ n 1))
        (assert (= (incr x) 2))
        (check-sat)
        """
    )
    check_script(script)


ILL_SORTED = [
    # (operator, indices, argument sorts) triples that must be rejected.
    ("and", (), (INT, BOOL)),
    ("not", (), (INT,)),
    ("not", (), (BOOL, BOOL)),
    ("=", (), (INT, BOOL)),
    ("=", (), (INT,)),
    ("ite", (), (INT, INT, INT)),
    ("ite", (), (BOOL, INT, REAL)),
    ("+", (), (INT, REAL)),
    ("+", (), (BOOL, BOOL)),
    ("div", (), (REAL, REAL)),
    ("mod", (), (INT,)),
    ("/", (), (INT, INT)),
    ("<", (), (STRING, STRING)),
    ("to_real", (), (REAL,)),
    ("divisible", (), (INT,)),  # missing index
    ("concat", (), (bitvec_sort(4), INT)),
    ("extract", (1, 3), (bitvec_sort(8),)),  # high < low
    ("extract", (9, 0), (bitvec_sort(8),)),  # out of range
    ("bvadd", (), (bitvec_sort(4), bitvec_sort(8))),
    ("bvnot", (), (INT,)),
    ("bvult", (), (bitvec_sort(4), bitvec_sort(8))),
    ("str.len", (), (INT,)),
    ("str.++", (), (STRING, INT)),
    ("str.in_re", (), (STRING, STRING)),
    ("select", (), (INT, INT)),
    ("select", (), (array_sort(INT, BOOL), BOOL)),
    ("store", (), (array_sort(INT, BOOL), INT, INT)),
    ("seq.nth", (), (seq_sort(INT), BOOL)),
    ("seq.++", (), (seq_sort(INT), seq_sort(BOOL))),
    ("set.member", (), (BOOL, set_sort(INT))),
    ("set.union", (), (set_sort(INT), set_sort(BOOL))),
    ("rel.tclosure", (), (set_sort(INT),)),
    ("bag.count", (), (INT, set_sort(INT))),
    ("ff.add", (), (finite_field_sort(5), finite_field_sort(7))),
    ("ff.neg", (), (INT,)),
    ("tuple.select", (2,), (tuple_sort(INT, BOOL),)),  # index out of range
]


@pytest.mark.parametrize("op,indices,args", ILL_SORTED)
def test_ill_sorted_applications_rejected(op, indices, args):
    with pytest.raises(TypeCheckError):
        apply_sort(op, indices, args)


def test_bound_variable_shadowing_builtin_cannot_be_applied():
    # Same rule as the parser: a binding named like a builtin operator
    # shadows it, and bound variables are never applicable.
    from repro.smtlib.terms import TRUE

    shadowing = Quantifier("forall", (("and", BOOL),), Apply("and", (TRUE, TRUE), BOOL))
    with pytest.raises(TypeCheckError):
        check(shadowing)


def test_quantifier_and_let_validation():
    with pytest.raises(TypeCheckError):
        check(Quantifier("forall", (("n", INT),), int_const(1)))  # non-Bool body
    with pytest.raises(TypeCheckError):
        check(Let((), int_const(1)))  # no bindings
    with pytest.raises(TypeCheckError):  # duplicate parallel-let bindings
        check(Let((("n", int_const(1)), ("n", int_const(2))), Symbol("n", INT)))
    with pytest.raises(TypeCheckError):  # duplicate quantifier bindings
        check(Quantifier("forall", (("n", INT), ("n", BOOL)), Symbol("n", BOOL)))
    bound_ok = Let((("n", int_const(1)),), Apply("=", (Symbol("n", INT), int_const(1)), BOOL))
    assert check(bound_ok) == BOOL
    # A let-bound symbol used at the wrong sort must be caught.
    bad = Let((("n", int_const(1)),), Symbol("n", BOOL))
    with pytest.raises(TypeCheckError):
        check(bad)


def test_constant_validation():
    with pytest.raises(TypeCheckError):
        check(Constant(2, BOOL))
    with pytest.raises(TypeCheckError):
        check(Constant(256, bitvec_sort(8)))
    with pytest.raises(TypeCheckError):
        check(Constant("text", INT))
    with pytest.raises(TypeCheckError):
        check(Constant(3, finite_field_sort(5)))  # missing ff qualifier
    with pytest.raises(TypeCheckError):
        check(Constant(9, finite_field_sort(5), qualifier="ff9"))  # out of range
    with pytest.raises(TypeCheckError):
        check(Constant(1, finite_field_sort(7), qualifier="ff3"))  # qualifier/value mismatch
    with pytest.raises(TypeCheckError):
        check(Constant(1, finite_field_sort(7), qualifier="ffoo"))  # non-numeric qualifier


def test_check_script_rejects_duplicate_define_fun_params():
    from repro.smtlib import DefineFun, Script
    from repro.smtlib.sorts import REAL
    from repro.smtlib.terms import Symbol as Sym

    bad = Script((DefineFun("f", (("x", INT), ("x", REAL)), INT, Sym("x", INT)),))
    with pytest.raises(TypeCheckError):
        check_script(bad)
