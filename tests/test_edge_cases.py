"""Printer/lexer edge-case coverage: quoted-symbol and string-escaping
round-trips, negative numerals via ``(- n)``, and the
``parse(print(simplify(s)))`` fixpoint across the whole corpus."""

from fractions import Fraction
from pathlib import Path

import pytest

from repro.errors import PrinterError
from repro.smtlib import (
    parse_script,
    parse_term,
    script_to_smtlib,
    simplify_script,
    symbol_to_smtlib,
    term_to_smtlib,
)
from repro.smtlib.sorts import REAL
from repro.smtlib.terms import Constant, int_const, real_const, string_const

CORPUS = sorted((Path(__file__).parent / "corpus").glob("*.smt2"))


# -- Quoted symbols ----------------------------------------------------------


@pytest.mark.parametrize(
    "name",
    ["weird name", "a(b)c", "with;semicolon", "let", "forall", "as", "_", "1leading"],
)
def test_quoted_symbol_round_trips(name):
    quoted = symbol_to_smtlib(name)
    assert quoted == f"|{name}|"
    script = parse_script(f"(declare-const {quoted} Int)\n(assert (= {quoted} 0))\n")
    text = script_to_smtlib(script)
    assert parse_script(text) == script
    assert quoted in text


def test_unquotable_symbol_raises():
    with pytest.raises(PrinterError):
        symbol_to_smtlib("has|pipe")
    with pytest.raises(PrinterError):
        symbol_to_smtlib("has\\backslash")


def test_quoted_simple_symbol_canonicalises_to_plain():
    # |x| and x denote the same symbol, so they must parse to one node.
    script_a = parse_script("(declare-const |x| Int)\n(assert (= x 0))\n")
    script_b = parse_script("(declare-const x Int)\n(assert (= |x| 0))\n")
    assert script_a == script_b


# -- String escaping ---------------------------------------------------------


@pytest.mark.parametrize(
    "value,printed",
    [
        ('say "hi"', '"say ""hi"""'),
        ('""', '""""""'),
        ("", '""'),
        ("back\\slash", '"back\\slash"'),
        ("tab\there", '"tab\there"'),
    ],
)
def test_string_escaping_round_trips(value, printed):
    constant = string_const(value)
    assert term_to_smtlib(constant) == printed
    assert parse_term(printed) is constant


# -- Negative numerals -------------------------------------------------------


def test_negative_int_prints_as_negation_application():
    assert term_to_smtlib(int_const(-5)) == "(- 5)"
    # (- 5) reparses as an application, which evaluates/simplifies back to
    # the same value; the printed text is a fixpoint from the first round.
    reparsed = parse_term("(- 5)")
    assert term_to_smtlib(reparsed) == "(- 5)"
    from repro.smtlib import simplify

    assert simplify(reparsed) is int_const(-5)


def test_negative_real_prints_as_negation_application():
    assert term_to_smtlib(real_const(Fraction(-3, 2))) == "(- 1.5)"
    assert term_to_smtlib(real_const(Fraction(-1, 3))) == "(- (/ 1.0 3.0))"
    assert term_to_smtlib(Constant(Fraction(1, 3), REAL)) == "(/ 1.0 3.0)"
    reparsed = parse_term("(- (/ 1.0 3.0))")
    assert term_to_smtlib(reparsed) == "(- (/ 1.0 3.0))"


def test_negative_numerals_inside_scripts_round_trip():
    script = parse_script(
        "(declare-const x Int)\n(assert (< x (- 5)))\n(assert (= x (- 0 7)))\n"
    )
    text = script_to_smtlib(script)
    assert parse_script(text) == script


# -- parse(print(simplify(s))) fixpoint over the corpus ----------------------


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_simplify_print_parse_fixpoint(path):
    script = parse_script(path.read_text())
    simplified = simplify_script(script)
    text = script_to_smtlib(simplified)
    reparsed = parse_script(text)
    # The printed simplified script is a round-trip fixpoint...
    assert script_to_smtlib(reparsed) == text
    assert parse_script(script_to_smtlib(reparsed)) == reparsed
    # ...and re-simplifying the reparsed script changes nothing further
    # (reparsing can only introduce (- n) applications, which fold back).
    assert script_to_smtlib(simplify_script(reparsed)) == text


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_plain_round_trip_still_holds(path):
    script = parse_script(path.read_text())
    assert parse_script(script_to_smtlib(script)) == script
