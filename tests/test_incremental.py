"""Tests for incremental solving: the SAT layer's assumptions/hook API and
the engine's persistent-solver ``check-sat``.

Covers the PR-4 acceptance criteria directly:

* assumption-based solving with failed-assumption cores (cores are
  subsets of the assumptions and are themselves unsatisfiable),
* clause addition between ``solve`` calls with watched-literal
  reattachment,
* theory-hook lemma injection at partial and full assignments,
* learned-clause retention across consecutive ``check-sat`` calls,
* zero Tseitin re-encoding of unchanged assertions (via stats),
* push/pop soundness cross-checked against a fresh solver per query on
  randomized scripts.
"""

import random

import pytest

from repro import Engine, solve_script
from repro.sat import SAT, UNSAT, Solver, TheoryHook
from repro.smtlib import BOOL, Apply, Assert, CheckSat, Pop, Push, Script, Symbol
from test_engine import assert_model_satisfies, brute_force_answer
from test_nnf import random_bool_term


# ---------------------------------------------------------------------------
# SAT layer: assumptions and failed cores.
# ---------------------------------------------------------------------------


class TestAssumptions:
    def test_assumptions_restrict_but_do_not_commit(self):
        solver = Solver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1]) == SAT
        assert solver.model[2] is True
        assert solver.solve(assumptions=[-2]) == SAT
        assert solver.model[1] is True
        assert solver.solve(assumptions=[-1, -2]) == UNSAT
        # Assumption failure is not permanent.
        assert solver.solve() == SAT

    def test_failed_assumptions_are_a_core(self):
        solver = Solver()
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        assert solver.solve(assumptions=[-3, 1, 5]) == UNSAT
        core = solver.failed_assumptions
        assert core is not None
        assert set(core) <= {-3, 1, 5}
        assert 5 not in core  # irrelevant assumption must not be blamed
        # The core alone is unsatisfiable with the clauses.
        replay = Solver()
        replay.add_clause([-1, 2])
        replay.add_clause([-2, 3])
        assert replay.solve(assumptions=list(core)) == UNSAT

    def test_contradictory_assumptions(self):
        solver = Solver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[3, -3]) == UNSAT
        assert set(solver.failed_assumptions) == {3, -3}

    def test_globally_unsat_reports_empty_core(self):
        solver = Solver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve(assumptions=[2]) == UNSAT
        assert solver.failed_assumptions == ()

    def test_failed_assumptions_cleared_on_sat(self):
        solver = Solver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1, -2]) == UNSAT
        assert solver.failed_assumptions is not None
        assert solver.solve(assumptions=[1]) == SAT
        assert solver.failed_assumptions is None

    @pytest.mark.parametrize("seed", range(30))
    def test_random_cores_replay_unsat(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(4, 8)
        clauses = []
        for _ in range(rng.randint(6, 20)):
            size = rng.randint(1, 3)
            variables = rng.sample(range(1, num_vars + 1), size)
            clauses.append([v if rng.random() < 0.5 else -v for v in variables])
        assumptions = []
        for var in rng.sample(range(1, num_vars + 1), rng.randint(1, num_vars)):
            assumptions.append(var if rng.random() < 0.5 else -var)

        solver = Solver()
        solver.add_clauses(clauses)
        answer = solver.solve(assumptions=assumptions)
        if answer == SAT:
            model = solver.model
            for lit in assumptions:
                assert model[abs(lit)] == (lit > 0)
            return
        core = solver.failed_assumptions
        assert core is not None and set(core) <= set(assumptions)
        replay = Solver()
        replay.add_clauses(clauses)
        assert replay.solve(assumptions=list(core)) == UNSAT

    def test_clause_addition_between_solves(self):
        solver = Solver()
        solver.add_clause([1, 2, 3])
        assert solver.solve() == SAT
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve() == SAT
        assert solver.model[3] is True
        solver.add_clause([-3])
        assert solver.solve() == UNSAT


# ---------------------------------------------------------------------------
# SAT layer: theory hook.
# ---------------------------------------------------------------------------


class _BlockEqual(TheoryHook):
    """Vetoes any full assignment where variables 1 and 2 agree —
    i.e. enforces ``1 xor 2`` purely through final-check lemmas."""

    def __init__(self):
        self.finals = 0

    def on_check(self, solver, final):
        if not final:
            return ()
        self.finals += 1
        if solver.value(1) == solver.value(2):
            lit1 = 1 if solver.value(1) == 1 else -1
            lit2 = 2 if solver.value(2) == 1 else -2
            return ([-lit1, -lit2],)
        return ()


class _BlockEverything(TheoryHook):
    def on_check(self, solver, final):
        if not final:
            return ()
        clause = []
        for var in range(1, solver.num_vars + 1):
            clause.append(-var if solver.value(var) == 1 else var)
        return (clause,)


class _ForbidTrue(TheoryHook):
    """Eagerly vetoes variable 1 being true (a unit theory lemma)."""

    def on_check(self, solver, final):
        if solver.value(1) == 1:
            return ([-1],)
        return ()


class TestTheoryHook:
    def test_final_check_lemmas_steer_the_model(self):
        solver = Solver(2)
        solver.add_clause([1, 2])
        hook = _BlockEqual()
        solver.theory = hook
        assert solver.solve() == SAT
        assert solver.model[1] != solver.model[2]
        assert hook.finals >= 1
        assert solver.stats["theory_lemmas"] >= 0

    def test_blocking_every_assignment_is_unsat(self):
        solver = Solver(3)
        solver.theory = _BlockEverything()
        assert solver.solve() == UNSAT
        assert solver.stats["theory_lemmas"] >= 1

    def test_eager_unit_lemma(self):
        solver = Solver(2)
        solver.add_clause([1, 2])
        solver.theory = _ForbidTrue()
        solver.theory_eager = True
        assert solver.solve() == SAT
        assert solver.model[1] is False
        assert solver.model[2] is True

    def test_theory_lemmas_survive_between_solves(self):
        solver = Solver(3)
        solver.theory = _BlockEverything()
        assert solver.solve() == UNSAT
        # The 2^3 blocking lemmas are problem clauses now; without the
        # hook the formula stays unsat.
        solver.theory = None
        assert solver.solve() == UNSAT


# ---------------------------------------------------------------------------
# Engine: persistent solver across check-sat.
# ---------------------------------------------------------------------------


def pigeonhole_script_commands(holes):
    """PHP(holes+1, holes) as boolean assertions (hard, unsat)."""
    pigeons = holes + 1
    var = lambda i, j: Symbol(f"x{i}_{j}", BOOL)
    commands = []
    for i in range(pigeons):
        commands.append(Assert(Apply("or", tuple(var(i, j) for j in range(holes)), BOOL)))
    for j in range(holes):
        for a in range(pigeons):
            for b in range(a + 1, pigeons):
                commands.append(
                    Assert(
                        Apply(
                            "or",
                            (
                                Apply("not", (var(a, j),), BOOL),
                                Apply("not", (var(b, j),), BOOL),
                            ),
                            BOOL,
                        )
                    )
                )
    return commands


class TestIncrementalEngine:
    def test_second_check_reencodes_nothing(self):
        engine = Engine()
        p, q = Symbol("p", BOOL), Symbol("q", BOOL)
        script = Script(
            (
                Assert(Apply("or", (p, q), BOOL)),
                Assert(Apply("=>", (p, q), BOOL)),
                CheckSat(),
                CheckSat(),
            )
        )
        first, second = engine.run(script).check_results
        assert first.answer == second.answer == "sat"
        assert first.stats["encoded_assertions"] == 2
        assert first.stats["tseitin_new_vars"] > 0
        assert second.stats["encoded_assertions"] == 0
        assert second.stats["tseitin_new_vars"] == 0
        assert second.stats["tseitin_new_clauses"] == 0

    def test_push_pop_keeps_base_encoding(self):
        p, q = Symbol("p", BOOL), Symbol("q", BOOL)
        script = Script(
            (
                Assert(Apply("or", (p, q), BOOL)),
                CheckSat(),
                Push(1),
                Assert(Apply("not", (p,), BOOL)),
                CheckSat(),
                Pop(1),
                CheckSat(),
            )
        )
        results = Engine().run(script).check_results
        assert [r.answer for r in results] == ["sat", "sat", "sat"]
        # The push frame encoded exactly its one new assertion...
        assert results[1].stats["encoded_assertions"] == 1
        # ... and the final check re-encoded nothing at all.
        assert results[2].stats["encoded_assertions"] == 0
        assert results[2].stats["tseitin_new_vars"] == 0

    def test_learned_clauses_survive_pop(self):
        commands = [Push(1)]
        commands.extend(pigeonhole_script_commands(3))
        commands.append(CheckSat())
        commands.append(Pop(1))
        commands.append(Assert(Symbol("p", BOOL)))
        commands.append(CheckSat())
        results = Engine().run(Script(tuple(commands))).check_results
        assert [r.answer for r in results] == ["unsat", "sat"]
        assert results[0].stats["conflicts"] > 0
        # The clauses learned refuting the pigeonhole block are retained
        # in the shared database after the pop.
        assert results[1].stats["learned_db"] >= results[0].stats["learned_db"] > 0

    def test_repeated_checks_get_cheaper(self):
        commands = pigeonhole_script_commands(4)
        commands.append(CheckSat())
        commands.append(CheckSat())
        results = Engine().run(Script(tuple(commands))).check_results
        assert [r.answer for r in results] == ["unsat", "unsat"]
        # The second check replays the learned refutation: strictly fewer
        # conflicts than the first full search.
        assert results[1].stats["conflicts"] < results[0].stats["conflicts"]

    def test_trivial_false_short_circuits_without_solver(self):
        from repro.smtlib import FALSE

        engine = Engine()
        results = engine.run(Script((Assert(FALSE), CheckSat()))).check_results
        assert results[0].answer == "unsat"
        assert results[0].stats["trivial"] == 1

    def test_status_annotation_is_consumed_per_check(self):
        results = solve_script(
            """
            (set-info :status sat)
            (declare-const p Bool)
            (assert p)
            (check-sat)
            (push 1)
            (assert (not p))
            (check-sat)
            (pop 1)
            (set-info :status sat)
            (check-sat)
            """
        )
        assert [r.expected for r in results] == ["sat", None, "sat"]
        assert not any(r.contradicts_expected for r in results)

    def test_contradicts_expected_flag(self):
        results = solve_script(
            """
            (set-info :status unsat)
            (declare-const p Bool)
            (assert p)
            (check-sat)
            """
        )
        assert results[0].answer == "sat"
        assert results[0].contradicts_expected

    def test_dimacs_export_roundtrips(self):
        from repro.sat import from_dimacs

        engine = Engine()
        engine.run(
            Script(
                (
                    Assert(Apply("or", (Symbol("p", BOOL), Symbol("q", BOOL)), BOOL)),
                    CheckSat(),
                )
            )
        )
        num_vars, clauses = from_dimacs(engine.dimacs())
        assert num_vars >= 2
        replay = Solver(num_vars)
        replay.add_clauses(clauses)
        # The exported CNF must preserve satisfiability of the final state.
        assert replay.solve() == SAT


# ---------------------------------------------------------------------------
# Randomized push/pop soundness: persistent engine vs fresh solver.
# ---------------------------------------------------------------------------


def random_incremental_script(rng, atoms):
    """A random command sequence with pushes, pops, asserts and checks;
    returns (script, flattened) where ``flattened`` holds, per check-sat,
    the equivalent from-scratch script of the assertions active there."""
    commands = []
    stack = [[]]
    flattened = []
    for _ in range(rng.randint(6, 18)):
        roll = rng.random()
        if roll < 0.45:
            term = random_bool_term(rng, rng.randint(1, 3), atoms)
            stack[-1].append(term)
            commands.append(Assert(term))
        elif roll < 0.60 and len(stack) > 1:
            levels = rng.randint(1, len(stack) - 1)
            del stack[-levels:]
            commands.append(Pop(levels))
        elif roll < 0.75:
            stack.append([])
            commands.append(Push(1))
        else:
            commands.append(CheckSat())
            active = tuple(term for frame in stack for term in frame)
            flattened.append(
                Script(tuple(Assert(term) for term in active) + (CheckSat(),))
            )
    commands.append(CheckSat())
    active = tuple(term for frame in stack for term in frame)
    flattened.append(Script(tuple(Assert(term) for term in active) + (CheckSat(),)))
    return Script(tuple(commands)), flattened


class TestRandomizedPushPopSoundness:
    @pytest.mark.parametrize("seed", range(40))
    def test_persistent_engine_matches_fresh_solver(self, seed):
        rng = random.Random(seed)
        atoms = [Symbol(f"p{i}", BOOL) for i in range(rng.randint(2, 5))]
        script, flattened = random_incremental_script(rng, atoms)
        incremental = Engine().run(script).check_results
        assert len(incremental) == len(flattened)
        for check, reference_script in zip(incremental, flattened):
            reference = solve_script(reference_script)[0]
            assert check.answer == reference.answer
            if check.answer == "sat":
                assert_model_satisfies(check)
            expected = brute_force_answer(check)
            if expected is not None:
                assert check.answer == expected

    @pytest.mark.parametrize("seed", range(20))
    def test_euf_push_pop_matches_fresh_solver(self, seed):
        from repro.smtlib import uninterpreted_sort

        rng = random.Random(7_000 + seed)
        U = uninterpreted_sort("U")
        symbols = [Symbol(f"u{i}", U) for i in range(3)]

        def random_euf_atom():
            def chain(term, length):
                for _ in range(length):
                    term = Apply("f", (term,), U)
                return term

            lhs = chain(rng.choice(symbols), rng.randint(0, 2))
            rhs = chain(rng.choice(symbols), rng.randint(0, 2))
            atom = Apply("=", (lhs, rhs), BOOL)
            return Apply("not", (atom,), BOOL) if rng.random() < 0.4 else atom

        from repro.smtlib import DeclareFun

        commands = []
        stack = [[]]
        flattened = []
        declaration = DeclareFun("f", (U,), U)
        commands.append(declaration)
        for _ in range(rng.randint(6, 14)):
            roll = rng.random()
            if roll < 0.5:
                term = random_euf_atom()
                stack[-1].append(term)
                commands.append(Assert(term))
            elif roll < 0.62 and len(stack) > 1:
                del stack[-1:]
                commands.append(Pop(1))
            elif roll < 0.75:
                stack.append([])
                commands.append(Push(1))
            else:
                commands.append(CheckSat())
                active = tuple(t for frame in stack for t in frame)
                flattened.append(
                    Script(
                        (declaration,)
                        + tuple(Assert(t) for t in active)
                        + (CheckSat(),)
                    )
                )
        commands.append(CheckSat())
        active = tuple(t for frame in stack for t in frame)
        flattened.append(
            Script((declaration,) + tuple(Assert(t) for t in active) + (CheckSat(),))
        )
        incremental = Engine().run(Script(tuple(commands))).check_results
        for check, reference_script in zip(incremental, flattened):
            reference = solve_script(reference_script)[0]
            assert check.answer == reference.answer
            assert check.answer in ("sat", "unsat")
            if check.answer == "sat":
                assert_model_satisfies(check)
