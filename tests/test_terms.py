"""Unit tests for the term AST, including printing of every node kind and
the structure-sharing guarantee of ``replace_subterm``."""

from fractions import Fraction

from repro.smtlib.sorts import BOOL, INT, seq_sort
from repro.smtlib.terms import (
    FALSE,
    TRUE,
    Apply,
    Let,
    Quantifier,
    Symbol,
    bitvec_const,
    ff_const,
    int_const,
    qualified_constant,
    real_const,
    replace_subterm,
    string_const,
    substitute,
)

X = Symbol("x", INT)
Y = Symbol("y", INT)
PLUS = Apply("+", (X, Y), INT)
LESS = Apply("<", (X, Y), BOOL)


def test_str_works_for_all_five_node_kinds():
    # Regression: the seed's Term.__str__ imported a printer module that did
    # not exist, so stringifying any term crashed.
    assert str(int_const(3)) == "3"  # Constant
    assert str(X) == "x"  # Symbol
    assert str(PLUS) == "(+ x y)"  # Apply
    quantifier = Quantifier("forall", (("x", INT),), LESS)
    assert str(quantifier) == "(forall ((x Int)) (< x y))"  # Quantifier
    let = Let((("z", PLUS),), Apply("<", (Symbol("z", INT), Y), BOOL))
    assert str(let) == "(let ((z (+ x y))) (< z y))"  # Let


def test_constant_constructors():
    assert str(TRUE) == "true" and str(FALSE) == "false"
    assert real_const(Fraction(3, 2)).value == Fraction(3, 2)
    assert string_const("hi").sort.name == "String"
    assert bitvec_const(300, 8).value == 300 % 256
    assert ff_const(9, 7).qualifier == "ff2"
    assert qualified_constant("seq.empty", seq_sort(INT)).qualifier == "seq.empty"


def test_walk_size_depth():
    assert PLUS.size() == 3
    assert PLUS.depth() == 2
    assert [type(node).__name__ for node in PLUS.walk()] == ["Apply", "Symbol", "Symbol"]


def test_free_symbols_respect_binders():
    quantifier = Quantifier("forall", (("x", INT),), LESS)
    assert quantifier.free_symbols() == {"y": INT}
    let = Let((("x", Y),), LESS)
    assert let.free_symbols() == {"y": INT}


def test_substitute_shadowing():
    replaced = substitute(LESS, {"x": int_const(1)})
    assert str(replaced) == "(< 1 y)"
    quantifier = Quantifier("forall", (("x", INT),), LESS)
    assert substitute(quantifier, {"x": int_const(1)}) is quantifier


def test_replace_subterm_replaces_first_occurrence():
    rewritten = replace_subterm(PLUS, X, int_const(5))
    assert str(rewritten) == "(+ 5 y)"


def test_replace_subterm_shares_structure():
    # Identity preservation: nodes whose descendants are untouched must be
    # returned as-is, not rebuilt.
    left = Apply("+", (X, Y), INT)
    right = Apply("*", (X, Y), INT)
    root = Apply("<", (left, right), BOOL)
    rewritten = replace_subterm(root, right, X)
    assert rewritten.args[0] is left  # untouched sibling not rebuilt
    assert rewritten.args[1] is X

    # No match at all: the whole tree comes back identical.
    assert replace_subterm(root, int_const(99), X) is root

    quantifier = Quantifier("forall", (("x", INT),), root)
    assert replace_subterm(quantifier, int_const(99), X) is quantifier
    let = Let((("z", left),), root)
    assert replace_subterm(let, int_const(99), X) is let


def test_operators_reported():
    assert Apply("<", (PLUS, Y), BOOL).operators() == {"<", "+"}
