"""Differential fuzzing gauntlet: engine vs brute-force oracles.

A seeded generator produces random scripts in three fragments —
QF_LIA, QF_LRA and QF_UF — whose variables are *boxed* (explicit range
assertions), so a brute-force oracle is exact:

* **QF_LIA** — three Int variables in ``[-B, B]``: exhaustive
  enumeration of all ``(2B+1)³`` assignments decides the script, and
  the engine's verdict must match exactly, both directions.
* **QF_LRA** — two Real variables in ``[-B, B]``: a quarter-step grid
  under-approximates satisfiability, so a grid model refutes an
  ``unsat`` verdict; every ``sat`` verdict is checked by re-evaluating
  the engine's own model externally.
* **QF_UF** — two constants and a unary function with ground terms
  ``{a, b, f(a), f(b)}``: the finite-model property bounds satisfying
  domains by the number of ground terms (4), so enumerating all
  assignments and function tables over domains of size 1..4 is an
  exact oracle.

Every case additionally round-trips through the printer —
``parse(print(script))`` must re-solve to the same verdict — and every
``sat`` answer must come with a model that the (engine-independent)
evaluator accepts on every assertion.

Certification rides on every run: the engine solves with proof
production on, and **every** ``unsat`` verdict — eager, lazy, and the
incremental push/pop replays below — must carry a clause proof the
independent RUP/DRAT checker accepts.  A bounded seed subset re-runs
each fragment lazily (theory checks only at full assignments) and as an
incremental replay (the last assertion split into a pushed frame,
popped, and re-pushed), cross-checking the verdicts against the eager
whole-script run.

The sample is a fixed, deterministic 300 cases (seeded per-case), so CI
runs the same gauntlet every time; crank ``CASES`` up locally to hunt.
"""

from fractions import Fraction
from itertools import product
from random import Random

import pytest

from repro import run_script, solve_script
from repro.engine import Engine
from repro.proof import check_proof
from repro.smtlib import parse_script, script_to_smtlib
from repro.smtlib.evaluate import FunctionInterpretation, evaluate
from repro.smtlib.script import (
    Assert,
    CheckSat,
    DeclareConst,
    DeclareFun,
    DeclareSort,
    Pop,
    Push,
    Script,
    SetLogic,
)
from repro.smtlib.sorts import BOOL, INT, REAL, uninterpreted_sort
from repro.smtlib.terms import (
    TRUE,
    Apply,
    Constant,
    Symbol,
    Term,
    int_const,
    qualified_constant,
)

#: Per-fragment deterministic case counts: 120 + 100 + 80 = 300 in CI.
CASES = {"lia": 120, "lra": 100, "uf": 80}

#: Bounded seed subsets for the lazy and incremental certification
#: replays (each replay solves the script several times over).
REPLAYS = {"lia": 30, "lra": 15, "uf": 20}

#: Box half-width for the numeric fragments.
BOX = 4

U = uninterpreted_sort("U")


# ---------------------------------------------------------------------------
# Generators.
# ---------------------------------------------------------------------------


def real_const(value) -> Constant:
    return Constant(Fraction(value), REAL)


def _numeric_atom(rng: Random, variables: list[Symbol], sort) -> Term:
    """A random linear atom  Σ cᵢxᵢ ▷ k  over the given variables."""
    const = int_const if sort == INT else real_const
    chosen = rng.sample(variables, rng.randint(1, len(variables)))
    parts: list[Term] = []
    for symbol in chosen:
        coeff = rng.choice([-3, -2, -1, 1, 2, 3])
        if coeff == 1:
            parts.append(symbol)
        else:
            parts.append(Apply("*", (const(coeff), symbol), sort))
    lhs: Term = parts[0] if len(parts) == 1 else Apply("+", tuple(parts), sort)
    rhs: Term = const(rng.randint(-6, 6))
    op = rng.choice(["<", "<=", ">", ">=", "=", "distinct"])
    return Apply(op, (lhs, rhs), BOOL)


def _uf_atom(rng: Random, terms: list[Term]) -> Term:
    lhs, rhs = rng.choice(terms), rng.choice(terms)
    return Apply("=", (lhs, rhs), BOOL)


def _formula(rng: Random, depth: int, make_atom) -> Term:
    if depth <= 0 or rng.random() < 0.35:
        return make_atom()
    op = rng.choice(["and", "or", "not", "=>", "ite", "xor"])
    if op == "not":
        return Apply("not", (_formula(rng, depth - 1, make_atom),), BOOL)
    if op == "ite":
        args = tuple(_formula(rng, depth - 1, make_atom) for _ in range(3))
        return Apply("ite", args, BOOL)
    width = rng.randint(2, 3)
    args = tuple(_formula(rng, depth - 1, make_atom) for _ in range(width))
    return Apply(op, args, BOOL)


def generate_numeric(seed: int, sort) -> tuple[Script, list[Symbol]]:
    rng = Random(seed)
    names = ["x", "y", "z"] if sort == INT else ["u", "v"]
    variables = [Symbol(name, sort) for name in names]
    const = int_const if sort == INT else real_const
    commands: list = [SetLogic("QF_LIA" if sort == INT else "QF_LRA")]
    for symbol in variables:
        commands.append(DeclareConst(symbol.name, sort))
        commands.append(Assert(Apply("<=", (const(-BOX), symbol), BOOL)))
        commands.append(Assert(Apply("<=", (symbol, const(BOX)), BOOL)))
    for _ in range(rng.randint(1, 3)):
        commands.append(
            Assert(_formula(rng, 3, lambda: _numeric_atom(rng, variables, sort)))
        )
    commands.append(CheckSat())
    return Script(tuple(commands)), variables


def generate_uf(seed: int) -> tuple[Script, list[Term]]:
    rng = Random(seed)
    a, b = Symbol("a", U), Symbol("b", U)
    terms: list[Term] = [a, b, Apply("f", (a,), U), Apply("f", (b,), U)]
    commands: list = [
        SetLogic("QF_UF"),
        DeclareSort("U", 0),
        DeclareConst("a", U),
        DeclareConst("b", U),
        DeclareFun("f", (U,), U),
    ]
    for _ in range(rng.randint(2, 5)):
        commands.append(Assert(_formula(rng, 2, lambda: _uf_atom(rng, terms))))
    commands.append(CheckSat())
    return Script(tuple(commands)), terms


# ---------------------------------------------------------------------------
# Oracles.
# ---------------------------------------------------------------------------


def _holds(assertions, bindings, funs=None) -> bool:
    for term in assertions:
        if evaluate(term, bindings, funs) is not TRUE:
            return False
    return True


def oracle_lia(script: Script, variables: list[Symbol]) -> bool:
    """Exact satisfiability by exhausting the (boxed) integer space."""
    assertions = script.assertions()
    names = [symbol.name for symbol in variables]
    for point in product(range(-BOX, BOX + 1), repeat=len(names)):
        bindings = {name: int_const(value) for name, value in zip(names, point)}
        if _holds(assertions, bindings):
            return True
    return False


def oracle_lra_grid(script: Script, variables: list[Symbol]) -> bool:
    """Satisfiability *under-approximation*: a quarter-step grid.  A hit
    proves sat; a miss proves nothing (vertices can be off-grid)."""
    assertions = script.assertions()
    names = [symbol.name for symbol in variables]
    steps = [Fraction(k, 4) for k in range(-4 * BOX, 4 * BOX + 1)]
    for point in product(steps, repeat=len(names)):
        bindings = {
            name: Constant(value, REAL) for name, value in zip(names, point)
        }
        if _holds(assertions, bindings):
            return True
    return False


def oracle_uf(script: Script, ground_terms: list[Term]) -> bool:
    """Exact satisfiability via the finite-model property: enumerate all
    models over domains of size 1..len(ground_terms)."""
    assertions = script.assertions()
    limit = len(ground_terms)
    for size in range(1, limit + 1):
        universe = [qualified_constant(f"@U!{i}", U) for i in range(size)]
        for a_value, b_value in product(universe, repeat=2):
            bindings = {"a": a_value, "b": b_value}
            for table in product(universe, repeat=size):
                funs = {
                    "f": FunctionInterpretation(
                        {(element,): image for element, image in zip(universe, table)},
                        universe[0],
                    )
                }
                if _holds(assertions, bindings, funs):
                    return True
    return False


# ---------------------------------------------------------------------------
# The differential harness.
# ---------------------------------------------------------------------------


def assert_certified(check) -> None:
    """Every unsat verdict must carry a checker-accepted clause proof."""
    assert check.proof is not None, "unsat answer must carry a proof"
    verdict = check_proof(check.proof)
    assert verdict.ok, f"proof rejected: {verdict.error}"


def engine_verdict(script: Script) -> tuple[str, object]:
    results = solve_script(script, produce_proofs=True)
    assert len(results) == 1
    if results[0].answer == "unsat":
        assert_certified(results[0])
    return results[0].answer, results[0]


def lazy_verdict(script: Script) -> str:
    """Solve with the theory hook only at full assignments; certify."""
    engine = Engine(theory_eager=False, produce_proofs=True)
    (check,) = engine.run(script).check_results
    if check.answer == "unsat":
        assert_certified(check)
    return check.answer


def incremental_replay_verdicts(script: Script) -> list[str]:
    """Replay the script with its last assertion in a pushed frame:
    check, pop (re-check the relaxed prefix), re-push and check again.
    Certifies every unsat along the way; returns the three answers."""
    commands = [c for c in script.commands if not isinstance(c, CheckSat)]
    last = max(i for i, c in enumerate(commands) if isinstance(c, Assert))
    replay = (
        commands[:last]
        + [Push(), commands[last], CheckSat()]
        + [Pop(), CheckSat()]
        + [Push(), commands[last], CheckSat()]
    )
    result = run_script(Script(tuple(replay)), produce_proofs=True)
    for check in result.check_results:
        if check.answer == "unsat":
            assert_certified(check)
    return result.answers


def assert_model_validates(result) -> None:
    assert result.model is not None, "sat answer must carry a model"
    for term in result.assertions:
        value = evaluate(term, result.model, result.fun_interps)
        assert value is TRUE, f"model fails assertion {term}"


def assert_roundtrip_agrees(script: Script, answer: str) -> None:
    reparsed = parse_script(script_to_smtlib(script))
    again, _ = engine_verdict(reparsed)
    assert again == answer, f"parse(print(s)) re-solve flipped {answer} -> {again}"


@pytest.mark.parametrize("seed", range(CASES["lia"]))
def test_differential_lia(seed):
    script, variables = generate_numeric(7919 * seed + 1, INT)
    answer, result = engine_verdict(script)
    assert answer in ("sat", "unsat"), (
        f"engine answered {answer} ({result.reason}) on a boxed QF_LIA script"
    )
    expected = "sat" if oracle_lia(script, variables) else "unsat"
    assert answer == expected, f"engine {answer} but exhaustive oracle {expected}"
    if answer == "sat":
        assert_model_validates(result)
    assert_roundtrip_agrees(script, answer)


@pytest.mark.parametrize("seed", range(CASES["lra"]))
def test_differential_lra(seed):
    script, variables = generate_numeric(7919 * seed + 2, REAL)
    answer, result = engine_verdict(script)
    assert answer in ("sat", "unsat"), (
        f"engine answered {answer} ({result.reason}) on a boxed QF_LRA script"
    )
    if answer == "sat":
        assert_model_validates(result)
    else:
        assert not oracle_lra_grid(script, variables), (
            "engine unsat but the grid oracle found a rational model"
        )
    assert_roundtrip_agrees(script, answer)


@pytest.mark.parametrize("seed", range(CASES["uf"]))
def test_differential_uf(seed):
    script, ground_terms = generate_uf(7919 * seed + 3)
    answer, result = engine_verdict(script)
    assert answer in ("sat", "unsat"), (
        f"engine answered {answer} ({result.reason}) on a QF_UF script"
    )
    expected = "sat" if oracle_uf(script, ground_terms) else "unsat"
    assert answer == expected, f"engine {answer} but finite-model oracle {expected}"
    if answer == "sat":
        assert_model_validates(result)
    assert_roundtrip_agrees(script, answer)


# ---------------------------------------------------------------------------
# Certification replays: lazy theory mode and incremental push/pop.
# ---------------------------------------------------------------------------


def _generate(fragment: str, seed: int) -> Script:
    if fragment == "lia":
        return generate_numeric(7919 * seed + 1, INT)[0]
    if fragment == "lra":
        return generate_numeric(7919 * seed + 2, REAL)[0]
    return generate_uf(7919 * seed + 3)[0]


def _replay_params():
    return [
        (fragment, seed)
        for fragment, count in sorted(REPLAYS.items())
        for seed in range(count)
    ]


@pytest.mark.parametrize("fragment,seed", _replay_params())
def test_lazy_replay_agrees_and_certifies(fragment, seed):
    script = _generate(fragment, seed)
    eager, _ = engine_verdict(script)
    assert lazy_verdict(script) == eager, (
        f"{fragment}/{seed}: lazy theory mode flipped the verdict"
    )


@pytest.mark.parametrize("fragment,seed", _replay_params())
def test_incremental_replay_agrees_and_certifies(fragment, seed):
    script = _generate(fragment, seed)
    answer, _ = engine_verdict(script)
    full, relaxed, again = incremental_replay_verdicts(script)
    assert full == answer, (
        f"{fragment}/{seed}: pushed-frame replay answered {full}, whole-script {answer}"
    )
    assert again == answer, (
        f"{fragment}/{seed}: re-pushed frame answered {again}, whole-script {answer}"
    )
    # Dropping the last assertion relaxes the script: unsat is monotone.
    if relaxed == "unsat":
        assert answer == "unsat", (
            f"{fragment}/{seed}: relaxed prefix unsat but the full script {answer}"
        )
