"""Differential fuzzing gauntlet: engine vs brute-force oracles.

A seeded generator produces random scripts in five fragments —
QF_LIA, QF_LRA, QF_UF, QF_BV and QF_AX — whose variables are *boxed*
(explicit ranges, narrow widths or small finite universes), so a
brute-force oracle is exact or soundly one-sided:

* **QF_LIA** — three Int variables in ``[-B, B]``: exhaustive
  enumeration of all ``(2B+1)³`` assignments decides the script, and
  the engine's verdict must match exactly, both directions.
* **QF_LRA** — two Real variables in ``[-B, B]``: a quarter-step grid
  under-approximates satisfiability, so a grid model refutes an
  ``unsat`` verdict; every ``sat`` verdict is checked by re-evaluating
  the engine's own model externally.
* **QF_UF** — two constants and a unary function with ground terms
  ``{a, b, f(a), f(b)}``: the finite-model property bounds satisfying
  domains by the number of ground terms (4), so enumerating all
  assignments and function tables over domains of size 1..4 is an
  exact oracle.
* **QF_BV** — two width-3 variables under random operator/comparison
  trees: all 64 assignments are enumerated through
  :func:`~repro.smtlib.evaluate.fold_apply`, giving an exact oracle
  that is independent of the bit-blasted circuits it cross-checks.
* **QF_AX** — arrays over uninterpreted index/value sorts with store
  chains, selects and extensional equalities: a custom evaluator over
  explicit finite models (arrays as total tuples, so extensional
  equality is tuple equality) enumerates universes up to 3×3.  A hit
  refutes an ``unsat`` verdict; every ``sat`` verdict is checked
  against the engine's own model by the array-aware evaluator.

Every case additionally round-trips through the printer —
``parse(print(script))`` must re-solve to the same verdict — and every
``sat`` answer must come with a model that the (engine-independent)
evaluator accepts on every assertion.

Certification rides on every run: the engine solves with proof
production on, and **every** ``unsat`` verdict — eager, lazy, and the
incremental push/pop replays below — must carry a clause proof the
independent RUP/DRAT checker accepts.  A bounded seed subset re-runs
each fragment lazily (theory checks only at full assignments) and as an
incremental replay (the last assertion split into a pushed frame,
popped, and re-pushed), cross-checking the verdicts against the eager
whole-script run.

The sample is a fixed, deterministic 300 cases (seeded per-case), so CI
runs the same gauntlet every time; crank ``CASES`` up locally to hunt.
"""

from fractions import Fraction
from itertools import product
from random import Random

import pytest

from repro import run_script, solve_script
from repro.engine import Engine
from repro.proof import check_proof
from repro.smtlib import parse_script, script_to_smtlib
from repro.smtlib.evaluate import FunctionInterpretation, evaluate
from repro.smtlib.script import (
    Assert,
    CheckSat,
    DeclareConst,
    DeclareFun,
    DeclareSort,
    Pop,
    Push,
    Script,
    SetLogic,
)
from repro.smtlib.sorts import (
    BOOL,
    INT,
    REAL,
    array_sort,
    bitvec_sort,
    uninterpreted_sort,
)
from repro.smtlib.terms import (
    FALSE,
    TRUE,
    Apply,
    Constant,
    Symbol,
    Term,
    bitvec_const,
    int_const,
    qualified_constant,
)

#: Per-fragment deterministic case counts: 120+100+80+60+40 = 400 in CI.
CASES = {"lia": 120, "lra": 100, "uf": 80, "bv": 60, "ax": 40}

#: Bounded seed subsets for the lazy and incremental certification
#: replays (each replay solves the script several times over).
REPLAYS = {"lia": 30, "lra": 15, "uf": 20, "bv": 15, "ax": 10}

#: Box half-width for the numeric fragments.
BOX = 4

#: Bit width for the QF_BV fragment (8 values per variable: exhaustive).
BV_WIDTH = 3

U = uninterpreted_sort("U")
IDX = uninterpreted_sort("X")
VAL = uninterpreted_sort("V")


# ---------------------------------------------------------------------------
# Generators.
# ---------------------------------------------------------------------------


def real_const(value) -> Constant:
    return Constant(Fraction(value), REAL)


def _numeric_atom(rng: Random, variables: list[Symbol], sort) -> Term:
    """A random linear atom  Σ cᵢxᵢ ▷ k  over the given variables."""
    const = int_const if sort == INT else real_const
    chosen = rng.sample(variables, rng.randint(1, len(variables)))
    parts: list[Term] = []
    for symbol in chosen:
        coeff = rng.choice([-3, -2, -1, 1, 2, 3])
        if coeff == 1:
            parts.append(symbol)
        else:
            parts.append(Apply("*", (const(coeff), symbol), sort))
    lhs: Term = parts[0] if len(parts) == 1 else Apply("+", tuple(parts), sort)
    rhs: Term = const(rng.randint(-6, 6))
    op = rng.choice(["<", "<=", ">", ">=", "=", "distinct"])
    return Apply(op, (lhs, rhs), BOOL)


def _uf_atom(rng: Random, terms: list[Term]) -> Term:
    lhs, rhs = rng.choice(terms), rng.choice(terms)
    return Apply("=", (lhs, rhs), BOOL)


def _formula(rng: Random, depth: int, make_atom) -> Term:
    if depth <= 0 or rng.random() < 0.35:
        return make_atom()
    op = rng.choice(["and", "or", "not", "=>", "ite", "xor"])
    if op == "not":
        return Apply("not", (_formula(rng, depth - 1, make_atom),), BOOL)
    if op == "ite":
        args = tuple(_formula(rng, depth - 1, make_atom) for _ in range(3))
        return Apply("ite", args, BOOL)
    width = rng.randint(2, 3)
    args = tuple(_formula(rng, depth - 1, make_atom) for _ in range(width))
    return Apply(op, args, BOOL)


def generate_numeric(seed: int, sort) -> tuple[Script, list[Symbol]]:
    rng = Random(seed)
    names = ["x", "y", "z"] if sort == INT else ["u", "v"]
    variables = [Symbol(name, sort) for name in names]
    const = int_const if sort == INT else real_const
    commands: list = [SetLogic("QF_LIA" if sort == INT else "QF_LRA")]
    for symbol in variables:
        commands.append(DeclareConst(symbol.name, sort))
        commands.append(Assert(Apply("<=", (const(-BOX), symbol), BOOL)))
        commands.append(Assert(Apply("<=", (symbol, const(BOX)), BOOL)))
    for _ in range(rng.randint(1, 3)):
        commands.append(
            Assert(_formula(rng, 3, lambda: _numeric_atom(rng, variables, sort)))
        )
    commands.append(CheckSat())
    return Script(tuple(commands)), variables


_BV_BINARY = [
    "bvadd",
    "bvsub",
    "bvmul",
    "bvand",
    "bvor",
    "bvxor",
    "bvudiv",
    "bvurem",
    "bvshl",
    "bvlshr",
    "bvashr",
]
_BV_CMP = [
    "=",
    "bvult",
    "bvule",
    "bvugt",
    "bvuge",
    "bvslt",
    "bvsle",
    "bvsgt",
    "bvsge",
]


def _bv_term(rng: Random, variables: list[Symbol], depth: int) -> Term:
    sort = bitvec_sort(BV_WIDTH)
    if depth <= 0 or rng.random() < 0.3:
        if rng.random() < 0.3:
            return bitvec_const(rng.randrange(1 << BV_WIDTH), BV_WIDTH)
        return rng.choice(variables)
    op = rng.choice(_BV_BINARY + ["bvnot", "bvneg"])
    if op in ("bvnot", "bvneg"):
        return Apply(op, (_bv_term(rng, variables, depth - 1),), sort)
    args = (
        _bv_term(rng, variables, depth - 1),
        _bv_term(rng, variables, depth - 1),
    )
    return Apply(op, args, sort)


def _bv_atom(rng: Random, variables: list[Symbol]) -> Term:
    lhs = _bv_term(rng, variables, 2)
    rhs = _bv_term(rng, variables, 2)
    return Apply(rng.choice(_BV_CMP), (lhs, rhs), BOOL)


def generate_bv(seed: int) -> tuple[Script, list[Symbol]]:
    rng = Random(seed)
    sort = bitvec_sort(BV_WIDTH)
    variables = [Symbol("x", sort), Symbol("y", sort)]
    commands: list = [SetLogic("QF_BV")]
    for symbol in variables:
        commands.append(DeclareConst(symbol.name, sort))
    for _ in range(rng.randint(1, 3)):
        commands.append(
            Assert(_formula(rng, 2, lambda: _bv_atom(rng, variables)))
        )
    commands.append(CheckSat())
    return Script(tuple(commands)), variables


def _ax_index(rng: Random) -> Term:
    return Symbol(rng.choice(["i", "j"]), IDX)


def _ax_array(rng: Random, depth: int) -> Term:
    base: Term = Symbol(rng.choice(["a", "b"]), array_sort(IDX, VAL))
    if depth <= 0 or rng.random() < 0.4:
        return base
    return Apply(
        "store",
        (_ax_array(rng, depth - 1), _ax_index(rng), _ax_value(rng, depth - 1)),
        base.sort,
    )


def _ax_value(rng: Random, depth: int) -> Term:
    if depth <= 0 or rng.random() < 0.5:
        return Symbol(rng.choice(["v", "w"]), VAL)
    return Apply("select", (_ax_array(rng, depth - 1), _ax_index(rng)), VAL)


def _ax_atom(rng: Random) -> Term:
    kind = rng.random()
    if kind < 0.45:  # read equality
        read = Apply("select", (_ax_array(rng, 2), _ax_index(rng)), VAL)
        return Apply("=", (read, _ax_value(rng, 1)), BOOL)
    if kind < 0.75:  # extensional array equality
        return Apply("=", (_ax_array(rng, 2), _ax_array(rng, 1)), BOOL)
    if kind < 0.9:  # index equality
        return Apply("=", (Symbol("i", IDX), Symbol("j", IDX)), BOOL)
    return Apply("=", (Symbol("v", VAL), Symbol("w", VAL)), BOOL)


def generate_ax(seed: int) -> Script:
    rng = Random(seed)
    commands: list = [
        SetLogic("QF_AX"),
        DeclareSort("X", 0),
        DeclareSort("V", 0),
        DeclareConst("a", array_sort(IDX, VAL)),
        DeclareConst("b", array_sort(IDX, VAL)),
        DeclareConst("i", IDX),
        DeclareConst("j", IDX),
        DeclareConst("v", VAL),
        DeclareConst("w", VAL),
    ]
    for _ in range(rng.randint(2, 4)):
        commands.append(Assert(_formula(rng, 2, lambda: _ax_atom(rng))))
    commands.append(CheckSat())
    return Script(tuple(commands))


def generate_uf(seed: int) -> tuple[Script, list[Term]]:
    rng = Random(seed)
    a, b = Symbol("a", U), Symbol("b", U)
    terms: list[Term] = [a, b, Apply("f", (a,), U), Apply("f", (b,), U)]
    commands: list = [
        SetLogic("QF_UF"),
        DeclareSort("U", 0),
        DeclareConst("a", U),
        DeclareConst("b", U),
        DeclareFun("f", (U,), U),
    ]
    for _ in range(rng.randint(2, 5)):
        commands.append(Assert(_formula(rng, 2, lambda: _uf_atom(rng, terms))))
    commands.append(CheckSat())
    return Script(tuple(commands)), terms


# ---------------------------------------------------------------------------
# Oracles.
# ---------------------------------------------------------------------------


def _holds(assertions, bindings, funs=None) -> bool:
    for term in assertions:
        if evaluate(term, bindings, funs) is not TRUE:
            return False
    return True


def oracle_lia(script: Script, variables: list[Symbol]) -> bool:
    """Exact satisfiability by exhausting the (boxed) integer space."""
    assertions = script.assertions()
    names = [symbol.name for symbol in variables]
    for point in product(range(-BOX, BOX + 1), repeat=len(names)):
        bindings = {name: int_const(value) for name, value in zip(names, point)}
        if _holds(assertions, bindings):
            return True
    return False


def oracle_lra_grid(script: Script, variables: list[Symbol]) -> bool:
    """Satisfiability *under-approximation*: a quarter-step grid.  A hit
    proves sat; a miss proves nothing (vertices can be off-grid)."""
    assertions = script.assertions()
    names = [symbol.name for symbol in variables]
    steps = [Fraction(k, 4) for k in range(-4 * BOX, 4 * BOX + 1)]
    for point in product(steps, repeat=len(names)):
        bindings = {
            name: Constant(value, REAL) for name, value in zip(names, point)
        }
        if _holds(assertions, bindings):
            return True
    return False


def oracle_bv(script: Script, variables: list[Symbol]) -> bool:
    """Exact satisfiability by exhausting the (narrow) bit-vector space,
    evaluated through ``fold_apply`` — independent of the blasted circuits."""
    assertions = script.assertions()
    names = [symbol.name for symbol in variables]
    for point in product(range(1 << BV_WIDTH), repeat=len(names)):
        bindings = {
            name: bitvec_const(value, BV_WIDTH)
            for name, value in zip(names, point)
        }
        if _holds(assertions, bindings):
            return True
    return False


def _ax_eval(term: Term, env: dict):
    """Evaluate a QF_AX term in an explicit finite model.

    Indices and values are small ints; an array is a total tuple over the
    index universe, so ``=`` over arrays is tuple equality — extensional
    by construction.  Independent of the engine *and* of the production
    evaluator's :class:`~repro.smtlib.evaluate.ArrayValue` semantics."""
    if isinstance(term, Symbol):
        return env[term.name]
    if term is TRUE:
        return True
    if term is FALSE:
        return False
    assert isinstance(term, Apply), f"unexpected node {term!r}"
    op = term.op
    if op == "select":
        array = _ax_eval(term.args[0], env)
        return array[_ax_eval(term.args[1], env)]
    if op == "store":
        array = list(_ax_eval(term.args[0], env))
        array[_ax_eval(term.args[1], env)] = _ax_eval(term.args[2], env)
        return tuple(array)
    values = [_ax_eval(arg, env) for arg in term.args]
    if op == "=":
        return all(value == values[0] for value in values[1:])
    if op == "not":
        return not values[0]
    if op == "and":
        return all(values)
    if op == "or":
        return any(values)
    if op == "xor":
        parity = False
        for value in values:
            parity ^= bool(value)
        return parity
    if op == "=>":
        result = bool(values[-1])
        for value in reversed(values[:-1]):
            result = (not value) or result
        return result
    if op == "ite":
        return values[1] if values[0] else values[2]
    raise AssertionError(f"oracle cannot evaluate {op!r}")


def oracle_ax(script: Script) -> bool:
    """Satisfiability *under-approximation* for QF_AX: explicit models
    over index/value universes up to size 3.  A hit is a genuine model
    (the semantics are exact), so it soundly refutes ``unsat``."""
    assertions = script.assertions()
    for index_size in (1, 2, 3):
        for value_size in (1, 2, 3):
            arrays = list(product(range(value_size), repeat=index_size))
            for i_val, j_val in product(range(index_size), repeat=2):
                for v_val, w_val in product(range(value_size), repeat=2):
                    for a_val, b_val in product(arrays, repeat=2):
                        env = {
                            "a": a_val,
                            "b": b_val,
                            "i": i_val,
                            "j": j_val,
                            "v": v_val,
                            "w": w_val,
                        }
                        if all(_ax_eval(t, env) for t in assertions):
                            return True
    return False


def oracle_uf(script: Script, ground_terms: list[Term]) -> bool:
    """Exact satisfiability via the finite-model property: enumerate all
    models over domains of size 1..len(ground_terms)."""
    assertions = script.assertions()
    limit = len(ground_terms)
    for size in range(1, limit + 1):
        universe = [qualified_constant(f"@U!{i}", U) for i in range(size)]
        for a_value, b_value in product(universe, repeat=2):
            bindings = {"a": a_value, "b": b_value}
            for table in product(universe, repeat=size):
                funs = {
                    "f": FunctionInterpretation(
                        {(element,): image for element, image in zip(universe, table)},
                        universe[0],
                    )
                }
                if _holds(assertions, bindings, funs):
                    return True
    return False


# ---------------------------------------------------------------------------
# The differential harness.
# ---------------------------------------------------------------------------


def assert_certified(check) -> None:
    """Every unsat verdict must carry a checker-accepted clause proof."""
    assert check.proof is not None, "unsat answer must carry a proof"
    verdict = check_proof(check.proof)
    assert verdict.ok, f"proof rejected: {verdict.error}"


def engine_verdict(script: Script) -> tuple[str, object]:
    results = solve_script(script, produce_proofs=True)
    assert len(results) == 1
    if results[0].answer == "unsat":
        assert_certified(results[0])
    return results[0].answer, results[0]


def lazy_verdict(script: Script) -> str:
    """Solve with the theory hook only at full assignments; certify."""
    engine = Engine(theory_eager=False, produce_proofs=True)
    (check,) = engine.run(script).check_results
    if check.answer == "unsat":
        assert_certified(check)
    return check.answer


def incremental_replay_verdicts(script: Script) -> list[str]:
    """Replay the script with its last assertion in a pushed frame:
    check, pop (re-check the relaxed prefix), re-push and check again.
    Certifies every unsat along the way; returns the three answers."""
    commands = [c for c in script.commands if not isinstance(c, CheckSat)]
    last = max(i for i, c in enumerate(commands) if isinstance(c, Assert))
    replay = (
        commands[:last]
        + [Push(), commands[last], CheckSat()]
        + [Pop(), CheckSat()]
        + [Push(), commands[last], CheckSat()]
    )
    result = run_script(Script(tuple(replay)), produce_proofs=True)
    for check in result.check_results:
        if check.answer == "unsat":
            assert_certified(check)
    return result.answers


def assert_model_validates(result) -> None:
    assert result.model is not None, "sat answer must carry a model"
    for term in result.assertions:
        value = evaluate(term, result.model, result.fun_interps)
        assert value is TRUE, f"model fails assertion {term}"


def assert_roundtrip_agrees(script: Script, answer: str) -> None:
    reparsed = parse_script(script_to_smtlib(script))
    again, _ = engine_verdict(reparsed)
    assert again == answer, f"parse(print(s)) re-solve flipped {answer} -> {again}"


@pytest.mark.parametrize("seed", range(CASES["lia"]))
def test_differential_lia(seed):
    script, variables = generate_numeric(7919 * seed + 1, INT)
    answer, result = engine_verdict(script)
    assert answer in ("sat", "unsat"), (
        f"engine answered {answer} ({result.reason}) on a boxed QF_LIA script"
    )
    expected = "sat" if oracle_lia(script, variables) else "unsat"
    assert answer == expected, f"engine {answer} but exhaustive oracle {expected}"
    if answer == "sat":
        assert_model_validates(result)
    assert_roundtrip_agrees(script, answer)


@pytest.mark.parametrize("seed", range(CASES["lra"]))
def test_differential_lra(seed):
    script, variables = generate_numeric(7919 * seed + 2, REAL)
    answer, result = engine_verdict(script)
    assert answer in ("sat", "unsat"), (
        f"engine answered {answer} ({result.reason}) on a boxed QF_LRA script"
    )
    if answer == "sat":
        assert_model_validates(result)
    else:
        assert not oracle_lra_grid(script, variables), (
            "engine unsat but the grid oracle found a rational model"
        )
    assert_roundtrip_agrees(script, answer)


@pytest.mark.parametrize("seed", range(CASES["uf"]))
def test_differential_uf(seed):
    script, ground_terms = generate_uf(7919 * seed + 3)
    answer, result = engine_verdict(script)
    assert answer in ("sat", "unsat"), (
        f"engine answered {answer} ({result.reason}) on a QF_UF script"
    )
    expected = "sat" if oracle_uf(script, ground_terms) else "unsat"
    assert answer == expected, f"engine {answer} but finite-model oracle {expected}"
    if answer == "sat":
        assert_model_validates(result)
    assert_roundtrip_agrees(script, answer)


@pytest.mark.parametrize("seed", range(CASES["bv"]))
def test_differential_bv(seed):
    script, variables = generate_bv(7919 * seed + 4)
    answer, result = engine_verdict(script)
    assert answer in ("sat", "unsat"), (
        f"engine answered {answer} ({result.reason}) on a narrow QF_BV script"
    )
    expected = "sat" if oracle_bv(script, variables) else "unsat"
    assert answer == expected, f"engine {answer} but exhaustive oracle {expected}"
    if answer == "sat":
        assert_model_validates(result)
    assert_roundtrip_agrees(script, answer)


@pytest.mark.parametrize("seed", range(CASES["ax"]))
def test_differential_ax(seed):
    script = generate_ax(7919 * seed + 5)
    answer, result = engine_verdict(script)
    assert answer in ("sat", "unsat"), (
        f"engine answered {answer} ({result.reason}) on a QF_AX script"
    )
    if answer == "sat":
        assert_model_validates(result)
    else:
        assert not oracle_ax(script), (
            "engine unsat but the finite-model oracle found an array model"
        )
    assert_roundtrip_agrees(script, answer)


# ---------------------------------------------------------------------------
# Certification replays: lazy theory mode and incremental push/pop.
# ---------------------------------------------------------------------------


def _generate(fragment: str, seed: int) -> Script:
    if fragment == "lia":
        return generate_numeric(7919 * seed + 1, INT)[0]
    if fragment == "lra":
        return generate_numeric(7919 * seed + 2, REAL)[0]
    if fragment == "bv":
        return generate_bv(7919 * seed + 4)[0]
    if fragment == "ax":
        return generate_ax(7919 * seed + 5)
    return generate_uf(7919 * seed + 3)[0]


def _replay_params():
    return [
        (fragment, seed)
        for fragment, count in sorted(REPLAYS.items())
        for seed in range(count)
    ]


@pytest.mark.parametrize("fragment,seed", _replay_params())
def test_lazy_replay_agrees_and_certifies(fragment, seed):
    script = _generate(fragment, seed)
    eager, _ = engine_verdict(script)
    assert lazy_verdict(script) == eager, (
        f"{fragment}/{seed}: lazy theory mode flipped the verdict"
    )


@pytest.mark.parametrize("fragment,seed", _replay_params())
def test_incremental_replay_agrees_and_certifies(fragment, seed):
    script = _generate(fragment, seed)
    answer, _ = engine_verdict(script)
    full, relaxed, again = incremental_replay_verdicts(script)
    assert full == answer, (
        f"{fragment}/{seed}: pushed-frame replay answered {full}, whole-script {answer}"
    )
    assert again == answer, (
        f"{fragment}/{seed}: re-pushed frame answered {again}, whole-script {answer}"
    )
    # Dropping the last assertion relaxes the script: unsat is monotone.
    if relaxed == "unsat":
        assert answer == "unsat", (
            f"{fragment}/{seed}: relaxed prefix unsat but the full script {answer}"
        )
