#!/usr/bin/env python3
"""Benchmark harness for the eager bit-blasting path: circuit CNF size
and SAT search over blasted word-level structure, driven through the
full engine.

Four deterministic workload families:

* ``adder_equiv`` — the commutativity miter ``x + y ≠ y + x`` at a
  given width: two ripple-carry adders feed one disequality, the CNF is
  unsat, and the refutation wall-clock tracks how well unit propagation
  flows through carry chains.
* ``mul_equiv`` — the distributivity miter ``a·(b+c) ≠ a·b + a·c``:
  shift-add multipliers dominate the clause count (O(w²) gates), so
  this is the blasting-throughput stress.
* ``factor_sweep`` — the width sweep: one push/pop'd factoring query
  per width (``x · y = K`` for a semiprime ``K`` with both factors
  forced non-trivial), sat at every width; search cost grows with the
  width while the encoding stays incremental.
* ``ult_ladder`` — a strict unsigned chain ``x₀ < x₁ < … < x_m`` packed
  near the width's capacity: almost every assignment violates some
  link, so the solver walks the comparison circuits' propagations hard
  before finding the single ascending ribbon.

Results are printed as a table and written as JSON (``BENCH_bv.json``),
the same shape as the other suites, so ``check_regression.py``
auto-gates them against ``benchmarks/baselines/BENCH_bv.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_bv.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))
sys.setrecursionlimit(1_000_000)

from repro import Engine  # noqa: E402
from repro.obs import Observability, phase_seconds  # noqa: E402
from repro.smtlib import (  # noqa: E402
    BOOL,
    Apply,
    Assert,
    CheckSat,
    Pop,
    Push,
    Script,
    Symbol,
    bitvec_const,
    bitvec_sort,
)


def bv(name, width):
    return Symbol(name, bitvec_sort(width))


def eq(a, b):
    return Apply("=", (a, b), BOOL)


def neq(a, b):
    return Apply("not", (eq(a, b),), BOOL)


def word(op, a, b):
    return Apply(op, (a, b), a.sort)


def ult(a, b):
    return Apply("bvult", (a, b), BOOL)


# ---------------------------------------------------------------------------
# Workload generators.
# ---------------------------------------------------------------------------


def adder_equiv_commands(width):
    """Commutativity miter: x + y != y + x, unsat at any width."""
    x, y = bv("x", width), bv("y", width)
    commands = (
        Assert(neq(word("bvadd", x, y), word("bvadd", y, x))),
        CheckSat(),
    )
    return commands, ["unsat"]


def mul_equiv_commands(width):
    """Distributivity miter: a*(b+c) != a*b + a*c, unsat at any width."""
    a, b, c = bv("a", width), bv("b", width), bv("c", width)
    lhs = word("bvmul", a, word("bvadd", b, c))
    rhs = word("bvadd", word("bvmul", a, b), word("bvmul", a, c))
    return (Assert(neq(lhs, rhs)), CheckSat()), ["unsat"]


#: Width → a semiprime that fits it, with both factors > 1.
SEMIPRIMES = {6: 3 * 5, 8: 11 * 13, 10: 17 * 19, 12: 29 * 31}


def factor_sweep_commands(widths):
    """One factoring query per width: x*y = K, x > 1, y > 1 — sat."""
    commands = []
    expected = []
    for width in widths:
        product = SEMIPRIMES[width]
        x, y = bv(f"fx{width}", width), bv(f"fy{width}", width)
        one = bitvec_const(1, width)
        commands.append(Push(1))
        commands.append(Assert(eq(word("bvmul", x, y), bitvec_const(product, width))))
        commands.append(Assert(ult(one, x)))
        commands.append(Assert(ult(one, y)))
        commands.append(CheckSat())
        commands.append(Pop(1))
        expected.append("sat")
    return tuple(commands), expected


def ult_ladder_commands(width, length):
    """Strict ascending chain of `length` words packed into the width's
    value range: sat, but with very little slack."""
    xs = [bv(f"l{i}", width) for i in range(length)]
    commands = [Assert(ult(bitvec_const(1, width), xs[0]))]
    for left, right in zip(xs, xs[1:]):
        commands.append(Assert(ult(left, right)))
    commands.append(CheckSat())
    return tuple(commands), ["sat"]


# ---------------------------------------------------------------------------
# Runner.
# ---------------------------------------------------------------------------


def run_workload(name, n, commands, expected, verify):
    obs = Observability.tracing()
    engine = Engine(obs=obs)
    t0 = time.perf_counter()
    result = engine.run(Script(tuple(commands)))
    elapsed = time.perf_counter() - t0
    answers = result.answers
    if verify and expected is not None:
        assert answers == expected, (name, answers, expected)
    totals = {
        key: sum(r.stats.get(key, 0) for r in result.check_results)
        for key in ("conflicts", "decisions", "bv_atoms_blasted", "bv_gates", "bv_bits")
    }
    last = result.check_results[-1]
    return {
        "workload": name,
        "n": n,
        "nodes": {
            "vars": last.stats.get("vars", 0),
            "clauses": last.stats.get("clauses", 0),
            "atoms": last.stats.get("atoms", 0),
        },
        "answer": ",".join(answers),
        "solver": totals,
        "seconds": {"solve": round(elapsed, 6)},
        "phases": phase_seconds(obs.tracer),
        "metrics": engine.metrics.snapshot(),
    }


def _run(args: argparse.Namespace) -> int:
    verify = args.check or args.smoke
    adder_width = 12 if args.smoke else 24
    mul_width = 4 if args.smoke else 5
    sweep_widths = (6, 8) if args.smoke else (6, 8, 10, 12)
    ladder_width, ladder_length = (4, 12) if args.smoke else (5, 28)

    results = [
        run_workload(
            "adder_equiv", adder_width, *adder_equiv_commands(adder_width), verify
        ),
        run_workload("mul_equiv", mul_width, *mul_equiv_commands(mul_width), verify),
        run_workload(
            "factor_sweep",
            sweep_widths[-1],
            *factor_sweep_commands(sweep_widths),
            verify,
        ),
        run_workload(
            "ult_ladder",
            ladder_length,
            *ult_ladder_commands(ladder_width, ladder_length),
            verify,
        ),
    ]

    header = (
        f"{'workload':<14} {'n':>4} {'vars':>7} {'clauses':>8} {'answer':>16} "
        f"{'blasted':>8} {'gates':>8} {'conflicts':>10} {'seconds':>10}"
    )
    print(header)
    print("-" * len(header))
    for row in results:
        answer = row["answer"] if len(row["answer"]) <= 16 else row["answer"][:13] + "..."
        print(
            f"{row['workload']:<14} {row['n']:>4} {row['nodes']['vars']:>7} "
            f"{row['nodes']['clauses']:>8} {answer:>16} "
            f"{row['solver']['bv_atoms_blasted']:>8} {row['solver']['bv_gates']:>8} "
            f"{row['solver']['conflicts']:>10} {row['seconds']['solve']:>10.4f}"
        )

    payload = {
        "bench": "bv",
        "mode": "smoke" if args.smoke else "full",
        "python": sys.version.split()[0],
        "results": results,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small sizes + full verification")
    parser.add_argument("--check", action="store_true", help="verify answers")
    parser.add_argument("--out", default="BENCH_bv.json", help="JSON output path")
    args = parser.parse_args(argv)
    outcome: list = []
    threading.stack_size(512 * 1024 * 1024)
    worker = threading.Thread(target=lambda: outcome.append(_run(args)))
    worker.start()
    worker.join()
    return outcome[0] if outcome else 1


if __name__ == "__main__":
    raise SystemExit(main())
