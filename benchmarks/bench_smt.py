#!/usr/bin/env python3
"""Benchmark harness for the DPLL(T) engine: EUF workloads and
incremental push/pop solving.

Four deterministic workload families, all driven through the full
engine (parse-free: scripts are built as command tuples):

* ``euf_orbit`` — the orbit collapse ``f^n(x) = x ∧ f^(n+1)(x) = x ∧
  f(x) ≠ x``: a deep congruence-closure chain, always unsat; stresses
  registration, congruence propagation and proof-forest explanations.
* ``euf_pigeonhole`` — n+1 constants mapped by an uninterpreted ``f``
  into n named holes, images pairwise distinct: the SAT core enumerates
  hole choices and EUF vetoes them with blocking lemmas — the classic
  lazy-SMT search/theory ping-pong, always unsat.
* ``euf_model`` — a satisfiable equality web over function chains;
  measures closure plus model construction and in-engine validation.
* ``incremental`` — a shared boolean core (xor chain) plus ``rounds``
  push/assert/check/pop deltas, solved twice: once through ONE persistent
  engine (the PR-4 path: selector-literal frames, retained learned
  clauses, zero re-encoding of the core) and once from scratch with a
  fresh engine per query.  The row reports both times and their ratio;
  with ``--check``/``--smoke`` the harness asserts the persistent path
  is at least 2x faster (the acceptance criterion) and that both paths
  agree on every answer.

Results are printed as a table and written as JSON (``BENCH_smt.json``),
the same shape as the other suites, so ``check_regression.py``
auto-gates them against ``benchmarks/baselines/BENCH_smt.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_smt.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))
sys.setrecursionlimit(1_000_000)

from repro import Engine  # noqa: E402
from repro.obs import Observability, phase_seconds  # noqa: E402
from repro.smtlib import (  # noqa: E402
    BOOL,
    Apply,
    Assert,
    CheckSat,
    DeclareFun,
    Pop,
    Push,
    Script,
    Symbol,
    uninterpreted_sort,
)

U = uninterpreted_sort("U")


def eq(a, b):
    return Apply("=", (a, b), BOOL)


def neg(a):
    return Apply("not", (a,), BOOL)


def f_chain(term, length):
    for _ in range(length):
        term = Apply("f", (term,), U)
    return term


# ---------------------------------------------------------------------------
# Workload generators.
# ---------------------------------------------------------------------------


def orbit_commands(n):
    """f^n(x) = x, f^(n+1)(x) = x, f(x) != x — unsat by gcd collapse."""
    x = Symbol("x", U)
    return (
        DeclareFun("f", (U,), U),
        Assert(eq(f_chain(x, n), x)),
        Assert(eq(f_chain(x, n + 1), x)),
        Assert(neg(eq(f_chain(x, 1), x))),
        CheckSat(),
    )


def euf_pigeonhole_commands(holes):
    """holes+1 pigeons mapped into ``holes`` named cells, images pairwise
    distinct — unsat, found through SAT/EUF lemma exchange."""
    pigeons = [Symbol(f"p{i}", U) for i in range(holes + 1)]
    cells = [Symbol(f"h{j}", U) for j in range(holes)]
    commands = [DeclareFun("f", (U,), U)]
    for pigeon in pigeons:
        image = Apply("f", (pigeon,), U)
        choice = tuple(eq(image, cell) for cell in cells)
        commands.append(
            Assert(choice[0] if len(choice) == 1 else Apply("or", choice, BOOL))
        )
    for i in range(len(pigeons)):
        for j in range(i + 1, len(pigeons)):
            commands.append(
                Assert(
                    neg(eq(Apply("f", (pigeons[i],), U), Apply("f", (pigeons[j],), U)))
                )
            )
    commands.append(CheckSat())
    return tuple(commands)


def euf_model_commands(n):
    """A satisfiable equality web: chains glued at every other link plus
    scattered disequalities; exercises model construction/validation."""
    commands = [DeclareFun("f", (U,), U)]
    symbols = [Symbol(f"a{i}", U) for i in range(n)]
    for i in range(n - 1):
        if i % 2 == 0:
            commands.append(Assert(eq(f_chain(symbols[i], 2), symbols[i + 1])))
        else:
            commands.append(Assert(eq(symbols[i], f_chain(symbols[i + 1], 1))))
    for i in range(0, n - 3, 4):
        commands.append(Assert(neg(eq(symbols[i], symbols[i + 3]))))
    commands.append(CheckSat())
    return tuple(commands)


def xor_core_assertions(length):
    """The bench_sat xor chain as terms: z_i = x_i xor z_{i-1}, plus the
    direct parity — satisfiable, with plenty of shared structure."""
    xs = [Symbol(f"x{i}", BOOL) for i in range(length)]
    zs = [Symbol(f"z{i}", BOOL) for i in range(length)]
    assertions = [eq(zs[0], xs[0])]
    for i in range(1, length):
        assertions.append(eq(zs[i], Apply("xor", (xs[i], zs[i - 1]), BOOL)))
    assertions.append(eq(zs[-1], Apply("xor", tuple(xs), BOOL)))
    return assertions, xs, zs


def incremental_workload(length, rounds):
    """Returns (full incremental script, per-check flattened scripts,
    expected answers)."""
    base, xs, zs = xor_core_assertions(length)
    commands = [Assert(term) for term in base]
    commands.append(CheckSat())
    flattened = [Script(tuple(Assert(t) for t in base) + (CheckSat(),))]
    expected = ["sat"]
    for round_index in range(rounds):
        extra_sat = round_index % 2 == 0
        if extra_sat:
            # Pin a couple of chain variables: still satisfiable.
            extras = [
                xs[(3 * round_index) % length],
                neg(xs[(3 * round_index + 1) % length]),
            ]
            expected.append("sat")
        else:
            # Contradict one chain link (a small, local delta): unsat.
            k = 1 + (round_index * 7) % (length - 1)
            extras = [neg(eq(zs[k], Apply("xor", (xs[k], zs[k - 1]), BOOL)))]
            expected.append("unsat")
        commands.append(Push(1))
        commands.extend(Assert(term) for term in extras)
        commands.append(CheckSat())
        commands.append(Pop(1))
        flattened.append(
            Script(
                tuple(Assert(t) for t in base)
                + tuple(Assert(t) for t in extras)
                + (CheckSat(),)
            )
        )
    return Script(tuple(commands)), flattened, expected


# ---------------------------------------------------------------------------
# Runners.
# ---------------------------------------------------------------------------


def run_script_workload(name, n, commands, expected, verify):
    obs = Observability.tracing()
    engine = Engine(obs=obs)
    t0 = time.perf_counter()
    result = engine.run(Script(tuple(commands)))
    elapsed = time.perf_counter() - t0
    answers = result.answers
    if verify and expected is not None:
        assert answers == expected, (name, answers, expected)
    last = result.check_results[-1]
    return {
        "workload": name,
        "n": n,
        "nodes": {
            "vars": last.stats.get("vars", 0),
            "clauses": last.stats.get("clauses", 0),
            "atoms": last.stats.get("atoms", 0),
        },
        "answer": ",".join(answers),
        "solver": {
            "conflicts": sum(r.stats.get("conflicts", 0) for r in result.check_results),
            "propagations": sum(
                r.stats.get("propagations", 0) for r in result.check_results
            ),
            "theory_lemmas": sum(
                r.stats.get("theory_lemmas", 0) for r in result.check_results
            ),
            "euf_merges": sum(r.stats.get("euf_merges", 0) for r in result.check_results),
        },
        "seconds": {"solve": round(elapsed, 6)},
        "phases": phase_seconds(obs.tracer),
        "metrics": engine.metrics.snapshot(),
    }


def run_incremental_workload(length, rounds, verify):
    script, flattened, expected = incremental_workload(length, rounds)

    obs = Observability.tracing()
    t0 = time.perf_counter()
    engine = Engine(obs=obs)
    incremental_result = engine.run(script)
    incremental_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    scratch_answers = []
    for reference in flattened:
        scratch_answers.append(Engine().run(reference).answers[0])
    scratch_s = time.perf_counter() - t0

    answers = incremental_result.answers
    speedup = scratch_s / incremental_s if incremental_s > 0 else float("inf")
    if verify:
        assert answers == expected, (answers, expected)
        assert scratch_answers == expected, (scratch_answers, expected)
        later = incremental_result.check_results[1:]
        # The core is never re-encoded after the first check ...
        assert all(r.stats["tseitin_new_vars"] < 50 for r in later), "core re-encoded"
        # ... and the acceptance criterion: >= 2x over from-scratch.  The
        # full bar applies only above a timing floor (mirroring
        # check_regression's clamp) so scheduler noise on CI-sized smoke
        # runs cannot flake the build; smoke still sanity-checks >= 1.2x
        # against a locally-measured ~3x.
        if scratch_s >= 0.25:
            assert speedup >= 2.0, f"incremental speedup only {speedup:.2f}x"
        else:
            assert speedup >= 1.2, f"incremental speedup only {speedup:.2f}x"
    stats = incremental_result.check_results[-1].stats
    return {
        "workload": "incremental",
        "n": length,
        "rounds": rounds,
        "nodes": {
            "vars": stats.get("vars", 0),
            "clauses": stats.get("clauses", 0),
            "atoms": stats.get("atoms", 0),
        },
        "answer": ",".join(answers),
        "speedup": round(speedup, 2),
        "solver": {
            "conflicts": sum(
                r.stats.get("conflicts", 0) for r in incremental_result.check_results
            ),
            "learned_db": stats.get("learned_db", 0),
        },
        "seconds": {
            "incremental": round(incremental_s, 6),
            "scratch": round(scratch_s, 6),
        },
        "phases": phase_seconds(obs.tracer),
        "metrics": engine.metrics.snapshot(),
    }


def _run(args: argparse.Namespace) -> int:
    verify = args.check or args.smoke
    orbit_n = 60 if args.smoke else 400
    php_n = 4 if args.smoke else 6
    model_n = 80 if args.smoke else 600
    chain_n = 120 if args.smoke else 500
    rounds = 6 if args.smoke else 14

    results = [
        run_script_workload(
            "euf_orbit", orbit_n, orbit_commands(orbit_n), ["unsat"], verify
        ),
        run_script_workload(
            "euf_pigeonhole",
            php_n,
            euf_pigeonhole_commands(php_n),
            ["unsat"],
            verify,
        ),
        run_script_workload(
            "euf_model", model_n, euf_model_commands(model_n), ["sat"], verify
        ),
        run_incremental_workload(chain_n, rounds, verify),
    ]

    header = (
        f"{'workload':<16} {'n':>6} {'vars':>7} {'clauses':>8} {'answer':>22} "
        f"{'conflicts':>10} {'seconds':>18}"
    )
    print(header)
    print("-" * len(header))
    for row in results:
        seconds = " ".join(f"{k}={v:.4f}" for k, v in row["seconds"].items())
        answer = row["answer"] if len(row["answer"]) <= 22 else row["answer"][:19] + "..."
        print(
            f"{row['workload']:<16} {row['n']:>6} {row['nodes']['vars']:>7} "
            f"{row['nodes']['clauses']:>8} {answer:>22} "
            f"{row['solver']['conflicts']:>10} {seconds:>18}"
        )
    incremental = next(r for r in results if r["workload"] == "incremental")
    print(f"\nincremental speedup vs from-scratch: {incremental['speedup']:.2f}x")

    payload = {
        "bench": "smt",
        "mode": "smoke" if args.smoke else "full",
        "python": sys.version.split()[0],
        "results": results,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small sizes + full verification")
    parser.add_argument("--check", action="store_true", help="verify answers and speedup")
    parser.add_argument("--out", default="BENCH_smt.json", help="JSON output path")
    args = parser.parse_args(argv)
    # Deep chains recurse through simplify/NNF/Tseitin; run in a worker
    # thread with a large stack, mirroring the other benchmark harnesses.
    outcome: list = []
    threading.stack_size(512 * 1024 * 1024)
    worker = threading.Thread(target=lambda: outcome.append(_run(args)))
    worker.start()
    worker.join()
    return outcome[0] if outcome else 1


if __name__ == "__main__":
    raise SystemExit(main())
