#!/usr/bin/env python3
"""Benchmark harness for the linear-arithmetic theory: simplex shapes
and branch-and-bound depth, driven through the full engine.

Four deterministic workload families:

* ``dense_simplex`` — a satisfiable LP whose constraint rows touch
  *every* variable (``Σ xᵢ`` bounds plus per-variable boxes): each
  pivot rewrites wide rows, stressing tableau row/column bookkeeping
  and model extraction over shared slacks.
* ``sparse_simplex`` — a banded chain ``xᵢ + x_{i+1} ≥ i`` with a
  global cap, unsat by summation: pivots touch 2-variable rows and the
  refutation needs the dual simplex's row explanation, not a bound
  clash.
* ``branch_bound`` — bounded integer knapsack equalities
  (``3x + 5y + 7z = K`` over boxes), alternating feasible and
  infeasible ``K``: the rational relaxation is fractional, so every
  query exercises branch-and-bound (depth grows with the box).
* ``diamond_lra`` — the classic diamond chain: per-layer disjunctions
  ``x_{i+1} ≤ xᵢ + 1`` or ``x_{i+1} ≤ xᵢ + 2`` with a final window on
  ``x_n``: the SAT core enumerates paths and the theory vetoes them
  with bound explanations — the lazy-SMT search/theory ping-pong for
  arithmetic.

Results are printed as a table and written as JSON
(``BENCH_arith.json``), the same shape as the other suites, so
``check_regression.py`` auto-gates them against
``benchmarks/baselines/BENCH_arith.json``.  Three tiers share the
workload families: ``--mode=smoke`` (milliseconds, verified — CI's
per-push gate), ``--mode=full`` (the default), and ``--mode=heavy``
(seconds-scale simplex instances for trustworthy timing).  ``--smoke``
remains as an alias for ``--mode=smoke``.

Usage::

    PYTHONPATH=src python benchmarks/bench_arith.py [--mode {smoke,full,heavy}] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))
sys.setrecursionlimit(1_000_000)

from repro import Engine  # noqa: E402
from repro.obs import Observability, phase_seconds  # noqa: E402
from repro.smtlib import (  # noqa: E402
    BOOL,
    INT,
    REAL,
    Apply,
    Assert,
    CheckSat,
    Script,
    Symbol,
)
from repro.smtlib.terms import Constant, int_const  # noqa: E402
from fractions import Fraction  # noqa: E402


# Workload sizes per tier:
# (dense n, sparse n, bb box, bb targets, diamond layers).
MODE_SIZES = {
    "smoke": (20, 40, 6, (29, 1, 41, 2), 8),
    "full": (60, 160, 10, (29, 1, 41, 2, 71, 4, 97, 101, 2, 139), 14),
    "heavy": (220, 700, 13, (29, 1, 41, 2, 71, 4, 97, 101, 2, 139, 163, 3), 600),
}


def rconst(value):
    return Constant(Fraction(value), REAL)


def plus(args, sort):
    return args[0] if len(args) == 1 else Apply("+", tuple(args), sort)


def scaled(coeff, symbol, sort):
    const = int_const if sort == INT else rconst
    return symbol if coeff == 1 else Apply("*", (const(coeff), symbol), sort)


def le(a, b):
    return Apply("<=", (a, b), BOOL)


def ge(a, b):
    return Apply(">=", (a, b), BOOL)


# ---------------------------------------------------------------------------
# Workload generators.
# ---------------------------------------------------------------------------


def dense_simplex_commands(n):
    """A satisfiable LP with n variables and dense Σ-rows."""
    xs = [Symbol(f"r{i}", REAL) for i in range(n)]
    commands = []
    total = plus(xs, REAL)
    commands.append(Assert(le(total, rconst(n))))
    commands.append(Assert(ge(total, rconst(n // 2))))
    for i, x in enumerate(xs):
        commands.append(Assert(ge(x, rconst(0))))
        commands.append(Assert(le(x, rconst(2))))
        if i + 1 < n:
            # Overlapping prefix sums keep the rows dense and distinct.
            prefix = plus(xs[: i + 2], REAL)
            commands.append(Assert(ge(prefix, rconst(i // 3))))
    commands.append(CheckSat())
    return tuple(commands), ["sat"]


def sparse_simplex_commands(n):
    """Banded chain x_i + x_{i+1} >= i with a global cap: unsat."""
    xs = [Symbol(f"s{i}", REAL) for i in range(n)]
    commands = []
    need = 0
    for i in range(n - 1):
        commands.append(Assert(ge(plus([xs[i], xs[i + 1]], REAL), rconst(i))))
        if i % 2 == 0:
            need += i
    # Summing the even-indexed band rows: Σ over disjoint pairs must
    # reach `need`, so capping the full sum below that is infeasible.
    commands.append(Assert(le(plus(xs, REAL), rconst(need - 1))))
    commands.append(CheckSat())
    return tuple(commands), ["unsat"]


def branch_bound_commands(box, targets):
    """Bounded knapsack equalities 3x + 5y + 7z = K, one check per K."""
    x, y, z = (Symbol(name, INT) for name in ("bx", "by", "bz"))
    commands = []
    for symbol in (x, y, z):
        commands.append(Assert(ge(symbol, int_const(0))))
        commands.append(Assert(le(symbol, int_const(box))))
    combo = plus(
        [scaled(3, x, INT), scaled(5, y, INT), scaled(7, z, INT)], INT
    )
    expected = []
    from repro.smtlib import Pop, Push

    for target in targets:
        commands.append(Push(1))
        commands.append(Assert(ge(combo, int_const(target))))
        commands.append(Assert(le(combo, int_const(target))))
        commands.append(CheckSat())
        commands.append(Pop(1))
        reachable = any(
            3 * a + 5 * b + 7 * c == target
            for a in range(box + 1)
            for b in range(box + 1)
            for c in range(box + 1)
        )
        expected.append("sat" if reachable else "unsat")
    return tuple(commands), expected


def diamond_lra_commands(layers, window):
    """Diamond chains over Real: x_{i+1} is x_i + 1 or x_i + 2 (as <=
    disjunctions with >= floors), final value boxed into a window that
    only some path sums can hit."""
    xs = [Symbol(f"d{i}", REAL) for i in range(layers + 1)]
    commands = [Assert(ge(xs[0], rconst(0))), Assert(le(xs[0], rconst(0)))]
    for i in range(layers):
        step1 = plus([xs[i], rconst(1)], REAL)
        step2 = plus([xs[i], rconst(2)], REAL)
        one = Apply("and", (le(xs[i + 1], step1), ge(xs[i + 1], step1)), BOOL)
        two = Apply("and", (le(xs[i + 1], step2), ge(xs[i + 1], step2)), BOOL)
        commands.append(Assert(Apply("or", (one, two), BOOL)))
    low, high = window
    commands.append(Assert(ge(xs[-1], rconst(low))))
    commands.append(Assert(le(xs[-1], rconst(high))))
    commands.append(CheckSat())
    expected = "sat" if layers <= high and low <= 2 * layers else "unsat"
    return tuple(commands), [expected]


# ---------------------------------------------------------------------------
# Runner.
# ---------------------------------------------------------------------------


def run_workload(name, n, commands, expected, verify):
    obs = Observability.tracing()
    engine = Engine(obs=obs)
    t0 = time.perf_counter()
    result = engine.run(Script(tuple(commands)))
    elapsed = time.perf_counter() - t0
    answers = result.answers
    if verify and expected is not None:
        assert answers == expected, (name, answers, expected)
    totals = {
        key: sum(r.stats.get(key, 0) for r in result.check_results)
        for key in ("conflicts", "theory_lemmas", "arith_pivots", "arith_branches")
    }
    last = result.check_results[-1]
    return {
        "workload": name,
        "n": n,
        "nodes": {
            "vars": last.stats.get("vars", 0),
            "clauses": last.stats.get("clauses", 0),
            "atoms": last.stats.get("atoms", 0),
        },
        "answer": ",".join(answers),
        "solver": totals,
        "seconds": {"solve": round(elapsed, 6)},
        "phases": phase_seconds(obs.tracer),
        "metrics": engine.metrics.snapshot(),
    }


def _run(args: argparse.Namespace) -> int:
    verify = args.check or args.mode == "smoke"
    dense_n, sparse_n, bb_box, bb_targets, diamond_layers = MODE_SIZES[args.mode]
    bb_targets = list(bb_targets)

    results = [
        run_workload(
            "dense_simplex", dense_n, *dense_simplex_commands(dense_n), verify
        ),
        run_workload(
            "sparse_simplex", sparse_n, *sparse_simplex_commands(sparse_n), verify
        ),
        run_workload(
            "branch_bound", bb_box, *branch_bound_commands(bb_box, bb_targets), verify
        ),
        run_workload(
            "diamond_lra",
            diamond_layers,
            *diamond_lra_commands(diamond_layers, (diamond_layers + 1, 2 * diamond_layers)),
            verify,
        ),
    ]

    header = (
        f"{'workload':<16} {'n':>5} {'vars':>7} {'atoms':>6} {'answer':>24} "
        f"{'pivots':>8} {'branches':>9} {'seconds':>10}"
    )
    print(header)
    print("-" * len(header))
    for row in results:
        answer = row["answer"] if len(row["answer"]) <= 24 else row["answer"][:21] + "..."
        print(
            f"{row['workload']:<16} {row['n']:>5} {row['nodes']['vars']:>7} "
            f"{row['nodes']['atoms']:>6} {answer:>24} "
            f"{row['solver']['arith_pivots']:>8} {row['solver']['arith_branches']:>9} "
            f"{row['seconds']['solve']:>10.4f}"
        )

    payload = {
        "bench": "arith",
        "mode": args.mode,
        "python": sys.version.split()[0],
        "results": results,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--mode",
        choices=sorted(MODE_SIZES),
        default="full",
        help="workload tier: smoke (ms, verified), full (sub-second), heavy (seconds)",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="alias for --mode=smoke (small sizes + verification)"
    )
    parser.add_argument("--check", action="store_true", help="verify answers")
    parser.add_argument("--out", default="BENCH_arith.json", help="JSON output path")
    args = parser.parse_args(argv)
    if args.smoke:
        args.mode = "smoke"
    outcome: list = []
    threading.stack_size(512 * 1024 * 1024)
    worker = threading.Thread(target=lambda: outcome.append(_run(args)))
    worker.start()
    worker.join()
    return outcome[0] if outcome else 1


if __name__ == "__main__":
    raise SystemExit(main())
