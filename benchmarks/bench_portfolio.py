#!/usr/bin/env python3
"""Benchmark harness for the parallel portfolio runner.

Races the diversified :class:`~repro.sat.SolverConfig` lineup against the
sequential engine on the two heavy-tier families where single-trajectory
luck dominates wall clock:

* ``pigeonhole`` — PHP(n+1, n), resolution-hard and always unsat.
* ``random_3sat`` — uniform 3-SAT at the phase-transition ratio (fixed
  seeds, mixed answers).

Measurement is **interleaved A/B**: for every worker count the harness
runs the sequential engine immediately before the portfolio race and
derives the speedup from that adjacent pair, so machine drift between
the first and last run cannot flatter either side.  Every run's verdicts
are asserted equal to the sequential engine's (a portfolio must never
change an answer), and the win-attribution table records which config
won each race.

The JSON shape matches the other suites (``results[*].workload`` +
``seconds``), so ``check_regression.py`` gates it the moment a baseline
is committed.  NOTE: on a single-core container the portfolio cannot
beat the sequential engine except by diversification luck — workers
time-share one CPU.  Speedups here are honest measurements of whatever
hardware CI provides, not a claim about the 1-core case.

Usage::

    PYTHONPATH=src python benchmarks/bench_portfolio.py \
        [--mode {smoke,full,heavy}] [--share-clauses] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from bench_sat import pigeonhole_clauses, random_3sat_clauses  # noqa: E402

from repro import run_script  # noqa: E402
from repro.portfolio import solve_portfolio  # noqa: E402

#: Per-tier sizes: (pigeonhole holes, 3-SAT vars, 3-SAT seeds, worker counts).
MODE_SIZES = {
    "smoke": (4, 30, (0,), (1, 2)),
    "full": (6, 120, (0, 1), (1, 2, 4)),
    "heavy": (7, 200, (0, 1), (1, 2, 4, 8)),
}
#: Hard wall-clock ceiling per race, so a pathological heavy run cannot
#: wedge CI; hitting it shows up as a verdict mismatch (unknown/timeout).
RACE_TIMEOUT = 600.0


def clauses_to_script(clauses: list[list[int]]) -> str:
    """Render a CNF clause list as an SMT-LIB script over Bool consts."""
    num_vars = max(abs(lit) for clause in clauses for lit in clause)
    lines = ["(set-logic QF_UF)"]
    lines.extend(f"(declare-const b{v} Bool)" for v in range(1, num_vars + 1))
    for clause in clauses:
        lits = " ".join(
            f"b{lit}" if lit > 0 else f"(not b{-lit})" for lit in clause
        )
        lines.append(f"(assert (or {lits}))")
    lines.append("(check-sat)")
    return "\n".join(lines)


def sequential_run(script: str) -> tuple[list[str], float, dict[str, int]]:
    t0 = time.perf_counter()
    result = run_script(script, timeout=RACE_TIMEOUT)
    elapsed = time.perf_counter() - t0
    stats = result.check_results[0].stats
    solver = {
        key: stats.get(key, 0)
        for key in ("conflicts", "decisions", "propagations", "restarts", "learned")
    }
    return result.answers, elapsed, solver


def portfolio_run(
    script: str, workers: int, share_clauses: bool
) -> tuple[list[str], float, str]:
    t0 = time.perf_counter()
    outcome = solve_portfolio(
        script,
        workers=workers,
        timeout=RACE_TIMEOUT,
        share_clauses=share_clauses,
    )
    elapsed = time.perf_counter() - t0
    return (
        outcome.result.answers,
        elapsed,
        outcome.winner_config.name,
    )


def run_family(
    name: str,
    n: int,
    script: str,
    worker_counts: tuple[int, ...],
    share_clauses: bool,
) -> dict:
    seconds: dict[str, float] = {}
    speedup: dict[str, float] = {}
    wins: dict[str, str] = {}
    baseline_answers, seq_s, solver = sequential_run(script)
    seconds["sequential"] = round(seq_s, 6)
    for workers in worker_counts:
        # Interleaved A/B: a fresh sequential run right before each race.
        answers_a, seq_adjacent, _ = sequential_run(script)
        assert answers_a == baseline_answers, (name, workers, "sequential drifted")
        answers_b, port_s, winner = portfolio_run(script, workers, share_clauses)
        assert answers_b == baseline_answers, (
            f"{name}: portfolio w{workers} changed the verdict "
            f"({answers_b} vs {baseline_answers})"
        )
        seconds[f"portfolio_w{workers}"] = round(port_s, 6)
        speedup[f"w{workers}"] = round(seq_adjacent / port_s, 3) if port_s else 0.0
        wins[f"w{workers}"] = winner
    return {
        "workload": name,
        "n": n,
        "answer": ",".join(baseline_answers),
        "solver": solver,
        "seconds": seconds,
        "speedup": speedup,
        "wins": wins,
    }


def _run(args: argparse.Namespace) -> int:
    php_n, sat3_n, sat3_seeds, worker_counts = MODE_SIZES[args.mode]
    results = [
        run_family(
            "pigeonhole",
            php_n,
            clauses_to_script(pigeonhole_clauses(php_n)),
            worker_counts,
            args.share_clauses,
        )
    ]
    for seed in sat3_seeds:
        results.append(
            run_family(
                f"random_3sat_s{seed}",
                sat3_n,
                clauses_to_script(random_3sat_clauses(sat3_n, seed)),
                worker_counts,
                args.share_clauses,
            )
        )

    header = (
        f"{'workload':<18} {'n':>5} {'answer':>8} {'seq_s':>8} "
        + " ".join(f"{'w' + str(w) + '_s':>8} {'x' + str(w):>6}" for w in worker_counts)
    )
    print(header)
    print("-" * len(header))
    for row in results:
        cells = " ".join(
            f"{row['seconds'][f'portfolio_w{w}']:>8.3f} "
            f"{row['speedup'][f'w{w}']:>6.2f}"
            for w in worker_counts
        )
        print(
            f"{row['workload']:<18} {row['n']:>5} {row['answer']:>8} "
            f"{row['seconds']['sequential']:>8.3f} {cells}"
        )
    print("\nwin attribution:")
    for row in results:
        attribution = ", ".join(
            f"{key}={value}" for key, value in sorted(row["wins"].items())
        )
        print(f"  {row['workload']}: {attribution}")

    payload = {
        "bench": "portfolio",
        "mode": args.mode,
        "share_clauses": args.share_clauses,
        "cpus": os.cpu_count(),
        "python": sys.version.split()[0],
        "results": results,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--mode",
        choices=sorted(MODE_SIZES),
        default="full",
        help="workload tier: smoke (ms), full (sub-second), heavy (seconds)",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="alias for --mode=smoke"
    )
    parser.add_argument(
        "--share-clauses",
        action="store_true",
        help="enable learned-clause sharing between the racing workers",
    )
    parser.add_argument("--out", default="BENCH_portfolio.json", help="JSON output path")
    args = parser.parse_args(argv)
    if args.smoke:
        args.mode = "smoke"
    return _run(args)


if __name__ == "__main__":
    raise SystemExit(main())
