#!/usr/bin/env python3
"""Benchmark harness for the CNF pipeline and the CDCL solver.

Three classic workload families, all deterministic:

* ``pigeonhole`` — PHP(n+1, n) as direct CNF clauses: resolution-hard,
  always unsat; stresses conflict analysis, learning and restarts.
* ``random_3sat`` — uniform 3-SAT at the phase-transition ratio m/n = 4.26
  (fixed seeds): the classic mixed sat/unsat stress test.
* ``xor_chain_sat`` / ``xor_chain_unsat`` — chained parity constraints
  built as *terms* and lowered through ``to_nnf`` + Tseitin, so this family
  measures the whole cnf pipeline, not just the solver.

Per workload the harness reports CNF size (vars/clauses), the answer,
solver statistics and wall-clock split into encode and solve phases.
Results are printed as a table and written as JSON (``BENCH_sat.json``),
the same shape as ``BENCH_simplify.json``, so CI can archive and
regression-gate them.  Three tiers share the workload families and only
differ in size: ``--mode=smoke`` (milliseconds, verifies every expected
answer — what CI runs on every push), ``--mode=full`` (sub-second, the
default), and ``--mode=heavy`` (seconds-scale instances — pigeonhole 8,
random 3-SAT at n=200, deep xor chains — where a real speedup is
distinguishable from timer noise).  ``--smoke`` remains as an alias for
``--mode=smoke``.

Usage::

    PYTHONPATH=src python benchmarks/bench_sat.py [--mode {smoke,full,heavy}] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))
sys.setrecursionlimit(1_000_000)

from repro.obs import MetricsRegistry, Tracer, phase_seconds  # noqa: E402
from repro.sat import Solver  # noqa: E402
from repro.smtlib import (  # noqa: E402
    BOOL,
    Apply,
    Symbol,
    TseitinEncoder,
    bool_const,
    to_nnf,
)

PHASE_TRANSITION_RATIO = 4.26
RANDOM_3SAT_SEEDS = (0, 1, 2)

# Workload sizes per tier: (pigeonhole holes, random-3sat vars, xor length).
MODE_SIZES = {
    "smoke": (4, 30, 60),
    "full": (7, 150, 1200),
    "heavy": (8, 200, 4000),
}


# ---------------------------------------------------------------------------
# Clause-level generators.
# ---------------------------------------------------------------------------


def pigeonhole_clauses(holes: int) -> list[list[int]]:
    """PHP(holes+1, holes): every pigeon in a hole, no hole shared."""
    pigeons = holes + 1

    def var(i: int, j: int) -> int:
        return i * holes + j + 1

    clauses = [[var(i, j) for j in range(holes)] for i in range(pigeons)]
    for j in range(holes):
        for a in range(pigeons):
            for b in range(a + 1, pigeons):
                clauses.append([-var(a, j), -var(b, j)])
    return clauses


def random_3sat_clauses(num_vars: int, seed: int) -> list[list[int]]:
    rng = random.Random(seed)
    num_clauses = round(PHASE_TRANSITION_RATIO * num_vars)
    clauses = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), 3)
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    return clauses


# ---------------------------------------------------------------------------
# Term-level generators (exercise to_nnf + Tseitin).
# ---------------------------------------------------------------------------


def xor_chain_terms(length: int, satisfiable: bool):
    """Parity constraints over a chain: ``z_i = x_i xor z_{i-1}``, with the
    chain head pinned and the overall parity asserted both through the
    chain and directly over the ``x_i`` — consistent when ``satisfiable``,
    a parity contradiction otherwise."""
    xs = [Symbol(f"x{i}", BOOL) for i in range(length)]
    zs = [Symbol(f"z{i}", BOOL) for i in range(length)]
    assertions = [Apply("=", (zs[0], xs[0]), BOOL)]
    for i in range(1, length):
        step = Apply("xor", (xs[i], zs[i - 1]), BOOL)
        assertions.append(Apply("=", (zs[i], step), BOOL))
    # The chain end states the parity of all x's; assert it twice, once
    # negated, to force a contradiction when requested.
    direct = Apply("xor", tuple(xs), BOOL)
    assertions.append(Apply("=", (zs[-1], direct), BOOL))
    if not satisfiable:
        assertions.append(Apply("xor", (zs[-1], direct), BOOL))
    return assertions


# ---------------------------------------------------------------------------
# Runners.
# ---------------------------------------------------------------------------


def _solver_metrics(solver: Solver) -> dict[str, int]:
    """The solver counters through the unified registry namespace."""
    registry = MetricsRegistry()
    registry.register_source("sat", lambda: solver.stats)
    return registry.snapshot()


def run_clause_workload(name: str, n: int, clauses: list[list[int]], expected, verify):
    num_vars = max(abs(lit) for clause in clauses for lit in clause)
    solver = Solver(num_vars)
    tracer = Tracer()
    t0 = time.perf_counter()
    with tracer.span("encode"):
        solver.add_clauses(clauses)
    encode_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    with tracer.span("solve"):
        answer = solver.solve()
    solve_s = time.perf_counter() - t0
    if verify and expected is not None:
        assert answer == expected, (name, answer, expected)
    if verify and answer == "sat":
        model = solver.model
        assert all(any((lit > 0) == model[abs(lit)] for lit in c) for c in clauses), name
    return _row(
        name, n, num_vars, len(clauses), answer, solver, encode_s, solve_s, tracer
    )


def run_term_workload(name: str, n: int, assertions, expected, verify):
    tracer = Tracer()
    t0 = time.perf_counter()
    with tracer.span("encode"):
        encoder = TseitinEncoder()
        for term in assertions:
            encoder.assert_term(to_nnf(term))
        formula = encoder.formula
        solver = Solver(formula.num_vars)
        solver.add_clauses(formula.clauses)
    encode_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    with tracer.span("solve"):
        answer = solver.solve()
    solve_s = time.perf_counter() - t0
    if verify and expected is not None:
        assert answer == expected, (name, answer, expected)
    if verify and answer == "sat":
        from repro.smtlib import TRUE, evaluate

        model = solver.model
        env = {atom.name: bool_const(model[var]) for atom, var in formula.atom_vars.items()}
        assert all(evaluate(term, env) is TRUE for term in assertions), name
    return _row(
        name,
        n,
        formula.num_vars,
        len(formula.clauses),
        answer,
        solver,
        encode_s,
        solve_s,
        tracer,
    )


def _row(name, n, num_vars, num_clauses, answer, solver, encode_s, solve_s, tracer):
    return {
        "workload": name,
        "n": n,
        "nodes": {"vars": num_vars, "clauses": num_clauses},
        "answer": answer,
        "solver": {
            key: solver.stats[key]
            for key in ("conflicts", "decisions", "propagations", "restarts", "learned")
        },
        "seconds": {"encode": round(encode_s, 6), "solve": round(solve_s, 6)},
        "phases": phase_seconds(tracer),
        "metrics": _solver_metrics(solver),
    }


def run_random_3sat(n: int, verify: bool):
    """Aggregate the fixed-seed instances into one row (answers vary by
    seed, so the row records the answer multiset)."""
    total_encode = total_solve = 0.0
    answers = []
    stats = {"conflicts": 0, "decisions": 0, "propagations": 0, "restarts": 0, "learned": 0}
    metrics: dict[str, int] = {}
    num_vars = num_clauses = 0
    tracer = Tracer()
    for seed in RANDOM_3SAT_SEEDS:
        clauses = random_3sat_clauses(n, seed)
        solver = Solver(n)
        t0 = time.perf_counter()
        with tracer.span("encode", merge=True):
            solver.add_clauses(clauses)
        total_encode += time.perf_counter() - t0
        t0 = time.perf_counter()
        with tracer.span("solve", merge=True):
            answer = solver.solve()
        total_solve += time.perf_counter() - t0
        answers.append(answer)
        if verify and answer == "sat":
            model = solver.model
            assert all(any((lit > 0) == model[abs(lit)] for lit in c) for c in clauses)
        for key in stats:
            stats[key] += solver.stats[key]
        for key, value in _solver_metrics(solver).items():
            metrics[key] = metrics.get(key, 0) + value
        num_vars, num_clauses = n, len(clauses)
    return {
        "workload": "random_3sat",
        "n": n,
        "nodes": {"vars": num_vars, "clauses": num_clauses},
        "answer": ",".join(answers),
        "solver": stats,
        "seconds": {"encode": round(total_encode, 6), "solve": round(total_solve, 6)},
        "phases": phase_seconds(tracer),
        "metrics": metrics,
    }


def _run(args: argparse.Namespace) -> int:
    verify = args.check or args.mode == "smoke"
    php_n, sat3_n, xor_n = MODE_SIZES[args.mode]

    results = [
        run_clause_workload(
            "pigeonhole", php_n, pigeonhole_clauses(php_n), "unsat", verify
        ),
        run_random_3sat(sat3_n, verify),
        run_term_workload(
            "xor_chain_sat", xor_n, xor_chain_terms(xor_n, True), "sat", verify
        ),
        run_term_workload(
            "xor_chain_unsat", xor_n, xor_chain_terms(xor_n, False), "unsat", verify
        ),
    ]

    header = (
        f"{'workload':<16} {'n':>6} {'vars':>7} {'clauses':>8} {'answer':>12} "
        f"{'conflicts':>10} {'encode_s':>9} {'solve_s':>9}"
    )
    print(header)
    print("-" * len(header))
    for row in results:
        print(
            f"{row['workload']:<16} {row['n']:>6} {row['nodes']['vars']:>7} "
            f"{row['nodes']['clauses']:>8} {row['answer']:>12} "
            f"{row['solver']['conflicts']:>10} {row['seconds']['encode']:>9.4f} "
            f"{row['seconds']['solve']:>9.4f}"
        )

    payload = {
        "bench": "sat",
        "mode": args.mode,
        "python": sys.version.split()[0],
        "results": results,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--mode",
        choices=sorted(MODE_SIZES),
        default="full",
        help="workload tier: smoke (ms, verified), full (sub-second), heavy (seconds)",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="alias for --mode=smoke (small sizes + verification)"
    )
    parser.add_argument("--check", action="store_true", help="verify answers and models")
    parser.add_argument("--out", default="BENCH_sat.json", help="JSON output path")
    args = parser.parse_args(argv)
    if args.smoke:
        args.mode = "smoke"
    # Deep xor chains recurse through to_nnf/Tseitin; run in a worker
    # thread with a large stack, mirroring bench_simplify.
    outcome: list = []
    threading.stack_size(512 * 1024 * 1024)
    worker = threading.Thread(target=lambda: outcome.append(_run(args)))
    worker.start()
    worker.join()
    return outcome[0] if outcome else 1


if __name__ == "__main__":
    raise SystemExit(main())
