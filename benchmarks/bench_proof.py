#!/usr/bin/env python3
"""Benchmark harness for proof production and checking.

Four deterministic workload families measure the certification
pipeline end to end:

* ``pigeonhole_plain`` / ``pigeonhole_logged`` — the same PHP(n+1, n)
  refutation with proof logging off and on: the pair bounds the
  logging overhead on a learning-heavy unsat search.
* ``pigeonhole_check`` — replaying the logged proof through the
  independent RUP/DRAT checker (counting-based propagation, shared
  with nothing in the solver): checker throughput on a real proof.
* ``random_3sat_logged`` — fixed-seed phase-transition 3-SAT with
  logging on; every unsat instance's proof is checked, so the row
  carries both solve and check time on mixed verdicts.
* ``engine_unsat_core`` — an engine-level script with many ``:named``
  assertions of which exactly one clashing pair matters: measures the
  named-selector machinery, core extraction and proof certification
  through the full SMT-LIB stack.

Results are printed as a table and written as JSON (``BENCH_proof.json``)
in the same shape as the other ``bench_*`` suites, so CI archives them
and ``check_regression.py`` gates the timings against the committed
baseline.  ``--smoke`` shrinks sizes and verifies every answer, core
and proof.

Usage::

    PYTHONPATH=src python benchmarks/bench_proof.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))
sys.setrecursionlimit(1_000_000)

from repro.engine import solve_script  # noqa: E402
from repro.proof import ProofLog, check_proof  # noqa: E402
from repro.sat import Solver  # noqa: E402

PHASE_TRANSITION_RATIO = 4.26
RANDOM_3SAT_SEEDS = (0, 1, 2)


def pigeonhole_clauses(holes: int) -> list[list[int]]:
    """PHP(holes+1, holes): every pigeon in a hole, no hole shared."""
    pigeons = holes + 1

    def var(i: int, j: int) -> int:
        return i * holes + j + 1

    clauses = [[var(i, j) for j in range(holes)] for i in range(pigeons)]
    for j in range(holes):
        for a in range(pigeons):
            for b in range(a + 1, pigeons):
                clauses.append([-var(a, j), -var(b, j)])
    return clauses


def random_3sat_clauses(num_vars: int, seed: int) -> list[list[int]]:
    rng = random.Random(seed)
    num_clauses = round(PHASE_TRANSITION_RATIO * num_vars)
    clauses = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), 3)
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    return clauses


def named_core_script(width: int) -> str:
    """``width`` named facts on distinct variables plus one clashing
    pair on x: the core must be exactly that pair."""
    lines = ["(set-logic QF_LIA)", "(set-option :produce-unsat-cores true)"]
    lines.append("(declare-const x Int)")
    for i in range(width):
        lines.append(f"(declare-const v{i} Int)")
        lines.append(f"(assert (! (<= v{i} {i}) :named pad{i}))")
    lines.append("(assert (! (<= x 0) :named low))")
    lines.append("(assert (! (>= x 1) :named high))")
    lines.append("(check-sat)")
    lines.append("(get-unsat-core)")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Runners.
# ---------------------------------------------------------------------------


def _solve(clauses: list[list[int]], logged: bool):
    solver = Solver()
    if logged:
        solver.proof = ProofLog()
    for clause in clauses:
        solver.add_clause(clause)
    t0 = time.perf_counter()
    answer = solver.solve()
    return solver, answer, time.perf_counter() - t0


def run_pigeonhole(holes: int, verify: bool) -> list[dict]:
    clauses = pigeonhole_clauses(holes)
    _, answer_plain, plain_s = _solve(clauses, logged=False)
    solver, answer, logged_s = _solve(clauses, logged=True)
    if verify:
        assert answer_plain == answer == "unsat", (answer_plain, answer)
    proof = solver.proof.snapshot(())
    t0 = time.perf_counter()
    verdict = check_proof(proof)
    check_s = time.perf_counter() - t0
    if verify:
        assert verdict.ok, verdict.error
    counts = proof.counts()
    shape = {
        "steps": len(proof),
        "rup": counts["rup"],
        "deletions": counts["delete"],
    }
    return [
        {
            "workload": "pigeonhole_plain",
            "n": holes,
            "answer": answer_plain,
            "seconds": {"solve": round(plain_s, 6)},
        },
        {
            "workload": "pigeonhole_logged",
            "n": holes,
            "answer": answer,
            "proof": shape,
            "seconds": {"solve": round(logged_s, 6)},
        },
        {
            "workload": "pigeonhole_check",
            "n": holes,
            "answer": "certified" if verdict.ok else "REJECTED",
            "checker": verdict.stats,
            "seconds": {"check": round(check_s, 6)},
        },
    ]


def run_random_3sat(num_vars: int, verify: bool) -> dict:
    solve_s = check_s = 0.0
    answers = []
    steps = 0
    for seed in RANDOM_3SAT_SEEDS:
        clauses = random_3sat_clauses(num_vars, seed)
        solver, answer, seconds = _solve(clauses, logged=True)
        solve_s += seconds
        answers.append(answer)
        if answer == "unsat":
            proof = solver.proof.snapshot(())
            steps += len(proof)
            t0 = time.perf_counter()
            verdict = check_proof(proof)
            check_s += time.perf_counter() - t0
            if verify:
                assert verdict.ok, verdict.error
    return {
        "workload": "random_3sat_logged",
        "n": num_vars,
        "answer": ",".join(answers),
        "proof": {"steps": steps},
        "seconds": {"solve": round(solve_s, 6), "check": round(check_s, 6)},
    }


def run_engine_cores(width: int, verify: bool) -> dict:
    source = named_core_script(width)
    t0 = time.perf_counter()
    checks = solve_script(source, produce_proofs=True, produce_unsat_cores=True)
    solve_s = time.perf_counter() - t0
    (check,) = checks
    t0 = time.perf_counter()
    verdict = check_proof(check.proof) if check.proof is not None else None
    check_s = time.perf_counter() - t0
    if verify:
        assert check.answer == "unsat", check.answer
        assert check.unsat_core == ("low", "high"), check.unsat_core
        assert verdict is not None and verdict.ok, verdict
    return {
        "workload": "engine_unsat_core",
        "n": width,
        "answer": check.answer,
        "core": list(check.unsat_core or ()),
        "proof": {"steps": len(check.proof) if check.proof is not None else 0},
        "seconds": {"solve": round(solve_s, 6), "check": round(check_s, 6)},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small sizes + full verification")
    parser.add_argument("--check", action="store_true", help="verify answers, cores and proofs")
    parser.add_argument("--out", default="BENCH_proof.json", help="JSON output path")
    args = parser.parse_args(argv)
    verify = args.check or args.smoke
    php_n = 4 if args.smoke else 6
    # 35 vars puts two of the three fixed seeds on the unsat side, so
    # even the smoke run exercises proof checking on mixed verdicts.
    sat3_n = 35 if args.smoke else 100
    core_n = 20 if args.smoke else 200

    results = run_pigeonhole(php_n, verify)
    results.append(run_random_3sat(sat3_n, verify))
    results.append(run_engine_cores(core_n, verify))

    header = f"{'workload':<20} {'n':>6} {'answer':>16} {'steps':>8} {'seconds':>9}"
    print(header)
    print("-" * len(header))
    for row in results:
        steps = row.get("proof", {}).get("steps", "-")
        total = sum(row["seconds"].values())
        print(
            f"{row['workload']:<20} {row['n']:>6} {row['answer'][:16]:>16} "
            f"{steps:>8} {total:>9.4f}"
        )

    payload = {
        "bench": "proof",
        "mode": "smoke" if args.smoke else "full",
        "python": sys.version.split()[0],
        "results": results,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
