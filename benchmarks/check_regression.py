#!/usr/bin/env python3
"""Benchmark regression gate: compare fresh BENCH_*.json against baselines.

For every fresh result file given on the command line, the matching
baseline (same file name) is loaded from ``--baseline-dir`` and each
workload's total wall-clock is compared.  With **no** positional
arguments the gate auto-discovers every ``--baseline-dir``/``*.json``
and expects the matching fresh file in the current directory — so a new
benchmark suite is gated the moment its baseline is committed, with no
CI or script changes (a discovered baseline whose fresh file is missing
fails the gate: the suite was supposed to run).

The gate fails (exit 1) when any
workload regressed by more than ``--threshold``× (default 2.5×, generous
enough to absorb CI-runner noise).  Sub-floor timings (default 50 ms) are
clamped before comparing, so micro-workloads cannot trip the gate on
scheduler jitter and modest machine-speed differences between the
baseline machine and the CI runner are absorbed for smoke-sized
workloads.  Workloads present only on one side are reported but do
not fail the gate, so adding a benchmark never requires a lockstep
baseline update.

Speedups are reported too: a workload more than
``--speedup-threshold``× faster than its baseline (default 2×) is
flagged ``FASTER — consider re-baselining``.  Speedups never fail the
gate; the flag makes a perf win visible in CI output and nudges the
author to refresh the committed baseline so the gate keeps teeth.

Besides the wall-clock gate, the script prints an **informational**
counter-drift report: the deterministic search counters (``solver`` and
``intern`` blocks of each workload row) are compared against the
baseline and any counter that moved by more than ``--drift-threshold``×
(default 1.5×, both sides above a small noise floor) is listed.  Counter
drift never fails the gate — timings vary with the machine, but counter
movement on identical inputs means the search *behavior* changed, which
is exactly what a reviewer wants surfaced next to a timing diff.

Usage::

    python benchmarks/check_regression.py [BENCH_simplify.json ...] \
        [--baseline-dir benchmarks/baselines] [--threshold 2.5] [--floor 0.02]
"""

from __future__ import annotations

import argparse
import glob
import json
import os


def workload_seconds(payload: dict) -> dict[str, float]:
    """Total wall-clock per workload: the sum of its non-null phase timings."""
    totals: dict[str, float] = {}
    for row in payload.get("results", []):
        seconds = row.get("seconds", {})
        totals[row["workload"]] = sum(v for v in seconds.values() if v is not None)
    return totals


def workload_counters(payload: dict) -> dict[str, dict[str, int]]:
    """Per-workload deterministic counters: the ``solver`` block plus the
    integer ``intern`` entries (hit_rate and other floats are derived)."""
    out: dict[str, dict[str, int]] = {}
    for row in payload.get("results", []):
        counters: dict[str, int] = {}
        for key, value in (row.get("solver") or {}).items():
            if isinstance(value, int):
                counters[key] = value
        for key, value in (row.get("intern") or {}).items():
            if isinstance(value, int):
                counters[f"intern.{key}"] = value
        out[row["workload"]] = counters
    return out


def counter_drift(
    fresh_path: str,
    baseline_path: str,
    drift_threshold: float,
    min_count: int = 50,
):
    """Yield (workload, counter, baseline, fresh, ratio) rows where a
    counter moved by more than ``drift_threshold``× in either direction.
    Counters below ``min_count`` on both sides are noise and skipped."""
    with open(fresh_path, encoding="utf-8") as handle:
        fresh = workload_counters(json.load(handle))
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = workload_counters(json.load(handle))
    for workload in sorted(fresh.keys() & baseline.keys()):
        fresh_counters = fresh[workload]
        baseline_counters = baseline[workload]
        for key in sorted(fresh_counters.keys() & baseline_counters.keys()):
            fresh_v = fresh_counters[key]
            base_v = baseline_counters[key]
            if max(fresh_v, base_v) < min_count:
                continue
            ratio = (fresh_v + 1) / (base_v + 1)
            if ratio > drift_threshold or ratio < 1 / drift_threshold:
                yield workload, key, base_v, fresh_v, ratio


def compare(fresh_path: str, baseline_path: str, threshold: float, floor: float):
    """Yield (workload, fresh_s, baseline_s, ratio, regressed) rows."""
    with open(fresh_path, encoding="utf-8") as handle:
        fresh = workload_seconds(json.load(handle))
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = workload_seconds(json.load(handle))
    for workload in sorted(fresh.keys() | baseline.keys()):
        fresh_s = fresh.get(workload)
        baseline_s = baseline.get(workload)
        if fresh_s is None or baseline_s is None:
            yield workload, fresh_s, baseline_s, None, False
            continue
        ratio = max(fresh_s, floor) / max(baseline_s, floor)
        yield workload, fresh_s, baseline_s, ratio, ratio > threshold


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "fresh",
        nargs="*",
        help="freshly generated BENCH_*.json files (default: auto-discover "
        "one per committed baseline, expected in the current directory)",
    )
    parser.add_argument(
        "--baseline-dir",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "baselines"),
        help="directory holding the committed baseline JSONs",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.5,
        help="fail when fresh wall-clock exceeds baseline by this factor",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=0.05,
        help="clamp timings below this many seconds before comparing",
    )
    parser.add_argument(
        "--drift-threshold",
        type=float,
        default=1.5,
        help="report (never fail on) counters that moved by this factor",
    )
    parser.add_argument(
        "--speedup-threshold",
        type=float,
        default=2.0,
        help="report (never fail on) workloads faster than baseline by this factor",
    )
    args = parser.parse_args(argv)

    failures: list[str] = []
    speedups: list[str] = []
    fresh_files = list(args.fresh)
    if not fresh_files:
        baselines = sorted(glob.glob(os.path.join(args.baseline_dir, "*.json")))
        if not baselines:
            print(f"no baselines in {args.baseline_dir}; nothing to gate")
            return 0
        fresh_files = [os.path.basename(path) for path in baselines]
        print(
            "auto-discovered {} baseline suite(s): {}".format(
                len(fresh_files), ", ".join(fresh_files)
            )
        )
        for fresh_path in list(fresh_files):
            if not os.path.exists(fresh_path):
                failures.append(f"{fresh_path} (fresh result missing — suite not run?)")
                fresh_files.remove(fresh_path)

    header = f"{'workload':<20} {'baseline_s':>11} {'fresh_s':>9} {'ratio':>7}  status"
    for fresh_path in fresh_files:
        baseline_path = os.path.join(args.baseline_dir, os.path.basename(fresh_path))
        print(f"== {fresh_path} vs {baseline_path}")
        if not os.path.exists(baseline_path):
            print("   no baseline found; skipping (commit one to enable the gate)")
            continue
        print(header)
        print("-" * len(header))
        for workload, fresh_s, baseline_s, ratio, regressed in compare(
            fresh_path, baseline_path, args.threshold, args.floor
        ):
            if ratio is None:
                side = "baseline" if fresh_s is None else "fresh"
                print(f"{workload:<20} {'-':>11} {'-':>9} {'-':>7}  only in {side}")
                continue
            if regressed:
                status = "REGRESSED"
            elif ratio < 1 / args.speedup_threshold:
                status = (
                    f"FASTER ({1 / ratio:.1f}x) — consider re-baselining"
                )
                speedups.append(
                    f"{os.path.basename(fresh_path)}:{workload} ({1 / ratio:.1f}x faster)"
                )
            else:
                status = "ok"
            print(
                f"{workload:<20} {baseline_s:>11.4f} {fresh_s:>9.4f} {ratio:>6.2f}x  {status}"
            )
            if regressed:
                failures.append(f"{os.path.basename(fresh_path)}:{workload} ({ratio:.2f}x)")
        drifts = list(
            counter_drift(fresh_path, baseline_path, args.drift_threshold)
        )
        if drifts:
            print(
                f"counter drift beyond {args.drift_threshold}x "
                "(informational, never gates):"
            )
            for workload, key, base_v, fresh_v, ratio in drifts:
                print(f"  ~ {workload}.{key}: {base_v} -> {fresh_v} ({ratio:.2f}x)")
        else:
            print(
                f"counter drift: none beyond {args.drift_threshold}x (informational)"
            )
        print()
    if speedups:
        print(
            f"NOTE: {len(speedups)} workload(s) more than {args.speedup_threshold}x "
            "faster than baseline — consider re-baselining:"
        )
        for speedup in speedups:
            print(f"  - {speedup}")
    if failures:
        print(f"FAIL: {len(failures)} workload(s) regressed beyond {args.threshold}x:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"OK: no workload regressed beyond {args.threshold}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
