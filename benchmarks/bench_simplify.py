#!/usr/bin/env python3
"""Benchmark harness for the hash-consed term core and the simplifier.

Generates deterministic deep/wide/shared term workloads, runs
construction, simplification and (where ground) evaluation over them, and
reports per-workload:

* tree node count and DAG node count before/after simplification,
* intern-table hit/miss counts and hit rate for the construction phase,
* wall-clock for build / simplify / evaluate.

Results are printed as a table and written as JSON (``BENCH_simplify.json``
by default) so CI can archive them.  ``--smoke`` shrinks every workload for
a fast correctness-oriented pass; ``--check`` (implied by ``--smoke``)
re-typechecks every simplified term at its original sort and asserts the
simplify fixpoint.

Usage::

    PYTHONPATH=src python benchmarks/bench_simplify.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))
sys.setrecursionlimit(1_000_000)

from repro.obs import MetricsRegistry, Tracer, phase_seconds  # noqa: E402
from repro.smtlib import (  # noqa: E402
    BOOL,
    INT,
    STRING,
    Apply,
    Let,
    Symbol,
    Term,
    bitvec_const,
    bitvec_sort,
    bool_const,
    check,
    evaluate,
    int_const,
    intern_stats,
    parse_script,
    reset_intern_stats,
    script_to_smtlib,
    simplify,
    simplify_script,
    string_const,
)

BV8 = bitvec_sort(8)


# ---------------------------------------------------------------------------
# Workload generators.  All deterministic: same n → same term.
# ---------------------------------------------------------------------------


def deep_ground_add(n: int) -> Term:
    """Left-nested all-literal addition chain: folds to one constant."""
    term: Term = int_const(1)
    for i in range(n):
        term = Apply("+", (term, int_const(i % 7)), INT)
    return term


def deep_mixed_add(n: int) -> Term:
    """Left-nested addition chain over one symbol: folds to ``(+ x c)``."""
    term: Term = Symbol("x", INT)
    for i in range(n):
        term = Apply("+", (term, int_const(i % 7)), INT)
    return term


def wide_and(n: int) -> Term:
    """Wide conjunction with duplicates and ``true`` units interleaved."""
    args: list[Term] = []
    for i in range(n):
        args.append(Symbol(f"b{i % max(1, n // 4)}", BOOL))  # ~4x duplication
        if i % 5 == 0:
            args.append(bool_const(True))
    return Apply("and", tuple(args), BOOL)


def bv_mix(n: int) -> Term:
    """Bit-vector chain mixing bvadd/bvand/bvxor with literal runs."""
    term: Term = Symbol("v", BV8)
    for i in range(n):
        op = ("bvadd", "bvand", "bvxor")[i % 3]
        term = Apply(op, (term, bitvec_const(i * 37, 8)), BV8)
    return term


def string_runs(n: int) -> Term:
    """``str.++`` with long literal runs around a few symbols."""
    args: list[Term] = []
    for i in range(n):
        args.append(string_const(f"lit{i % 11}"))
        if i % 16 == 15:
            args.append(Symbol(f"s{i % 3}", STRING))
    if len(args) < 2:
        args.append(string_const("pad"))
    return Apply("str.++", tuple(args), STRING)


def ite_chain(n: int) -> Term:
    """Nested ``ite`` with literal conditions: collapses to one branch."""
    term: Term = int_const(0)
    for i in range(n):
        term = Apply(
            "ite", (bool_const(i % 2 == 0), int_const(i), term), INT
        )
    return term


def nested_lets(n: int) -> Term:
    """Deep nested-``let`` spine with literal-propagating bindings: the
    accumulated environment folds the whole chain to one constant.
    Exercises the binder path (scope handling, env restriction)."""
    from repro.smtlib.sorts import BOOL

    body: Term = Apply("<", (Symbol(f"a{n-1}", INT), int_const(0)), BOOL)
    for i in reversed(range(n)):
        if i == 0:
            value: Term = int_const(7)
        else:
            value = Apply("+", (Symbol(f"a{i-1}", INT), int_const(1)), INT)
        body = Let(((f"a{i}", value),), body)
    return body


def shared_doubling(n: int) -> Term:
    """``t = (+ t t)`` repeated: tree size 2^n, DAG size O(n).

    Exercises the intern table (every level is one node) and the
    simplifier's memoization plus the flattening cap.
    """
    term: Term = Apply("+", (Symbol("x", INT), int_const(1)), INT)
    for _ in range(n):
        term = Apply("+", (term, term), INT)
    return term


WORKLOADS = {
    "deep_ground_add": (deep_ground_add, 20_000, 200),
    "deep_mixed_add": (deep_mixed_add, 20_000, 200),
    "wide_and": (wide_and, 50_000, 500),
    "bv_mix": (bv_mix, 10_000, 200),
    "string_runs": (string_runs, 20_000, 200),
    "ite_chain": (ite_chain, 10_000, 200),
    "nested_lets": (nested_lets, 10_000, 200),
    "shared_doubling": (shared_doubling, 400, 40),
}


def _intern_metrics() -> dict[str, int]:
    """The intern-table counters through the unified registry namespace."""
    registry = MetricsRegistry()
    registry.register_source("intern", intern_stats, gauges=("live",))
    return registry.snapshot()


def run_workload(name: str, n: int, verify: bool) -> dict:
    build_fn = WORKLOADS[name][0]
    tracer = Tracer()
    reset_intern_stats()
    t0 = time.perf_counter()
    with tracer.span("build"):
        term = build_fn(n)
    build_s = time.perf_counter() - t0
    stats = intern_stats()
    hit_rate = stats["hits"] / max(1, stats["hits"] + stats["misses"])

    # Tree size is exponential for the shared workloads; report DAG size
    # always and tree size only when it is tractable.
    dag_before = term.dag_size()
    tree_before = term.size() if name != "shared_doubling" else None

    t0 = time.perf_counter()
    with tracer.span("simplify"):
        simplified = simplify(term)
    simplify_s = time.perf_counter() - t0

    dag_after = simplified.dag_size()
    tree_after = simplified.size() if name != "shared_doubling" else None

    evaluate_s = None
    if not term.free_symbols():
        t0 = time.perf_counter()
        with tracer.span("evaluate"):
            value = evaluate(term)
        evaluate_s = time.perf_counter() - t0
        assert simplified is value or simplified == value, name

    if verify:
        assert simplified.sort == term.sort, name
        assert simplify(simplified) is simplified, name
        check(simplified)

    return {
        "workload": name,
        "n": n,
        "nodes": {
            "dag_before": dag_before,
            "dag_after": dag_after,
            "tree_before": tree_before,
            "tree_after": tree_after,
        },
        "intern": {**stats, "hit_rate": round(hit_rate, 4)},
        "seconds": {
            "build": round(build_s, 6),
            "simplify": round(simplify_s, 6),
            "evaluate": round(evaluate_s, 6) if evaluate_s is not None else None,
        },
        "phases": phase_seconds(tracer),
        "metrics": _intern_metrics(),
    }


def run_corpus(corpus_dir: str, verify: bool) -> dict:
    """Parse every corpus script twice (measuring intern hits on the second
    pass), then simplify and round-trip print each one."""
    paths = sorted(
        os.path.join(corpus_dir, f)
        for f in os.listdir(corpus_dir)
        if f.endswith(".smt2")
    )
    texts = [Path(p).read_text(encoding="utf-8") for p in paths]
    tracer = Tracer()
    t0 = time.perf_counter()
    with tracer.span("parse"):
        first = [parse_script(text) for text in texts]
        reset_intern_stats()
        second = [parse_script(text) for text in texts]
    parse_s = time.perf_counter() - t0
    stats = intern_stats()
    for a, b in zip(first, second):
        for ta, tb in zip(a.assertions(), b.assertions()):
            assert ta is tb, "double parse must yield identical object graphs"

    t0 = time.perf_counter()
    with tracer.span("simplify"):
        simplified = [simplify_script(script) for script in second]
    simplify_s = time.perf_counter() - t0
    if verify:
        for script in simplified:
            reparsed = parse_script(script_to_smtlib(script))
            assert script_to_smtlib(reparsed) == script_to_smtlib(script)
    hit_rate = stats["hits"] / max(1, stats["hits"] + stats["misses"])
    return {
        "workload": "corpus_reparse",
        "n": len(paths),
        "nodes": {
            "dag_before": sum(t.dag_size() for s in second for t in s.assertions()),
            "dag_after": sum(t.dag_size() for s in simplified for t in s.assertions()),
            "tree_before": sum(t.size() for s in second for t in s.assertions()),
            "tree_after": sum(t.size() for s in simplified for t in s.assertions()),
        },
        "intern": {**stats, "hit_rate": round(hit_rate, 4)},
        "seconds": {"build": round(parse_s, 6), "simplify": round(simplify_s, 6), "evaluate": None},
        "phases": phase_seconds(tracer),
        "metrics": _intern_metrics(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small sizes + full verification")
    parser.add_argument("--check", action="store_true", help="verify sorts and fixpoint")
    parser.add_argument("--out", default="BENCH_simplify.json", help="JSON output path")
    parser.add_argument(
        "--corpus",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "tests", "corpus"),
        help="corpus directory for the reparse workload",
    )
    args = parser.parse_args(argv)
    # The pipeline is recursive over term depth; full-size deep workloads
    # need far more C stack than the default 8 MiB, so all measurement runs
    # in a worker thread with a large explicit stack.
    outcome: list = []
    threading.stack_size(512 * 1024 * 1024)
    worker = threading.Thread(target=lambda: outcome.append(_run(args)))
    worker.start()
    worker.join()
    return outcome[0] if outcome else 1


def _run(args: argparse.Namespace) -> int:
    verify = args.check or args.smoke

    results = []
    for name, (_, full_n, smoke_n) in WORKLOADS.items():
        n = smoke_n if args.smoke else full_n
        results.append(run_workload(name, n, verify))
    if os.path.isdir(args.corpus):
        results.append(run_corpus(args.corpus, verify))

    header = (
        f"{'workload':<18} {'n':>7} {'dag_in':>8} {'dag_out':>8} "
        f"{'hit_rate':>8} {'build_s':>9} {'simp_s':>9}"
    )
    print(header)
    print("-" * len(header))
    for row in results:
        print(
            f"{row['workload']:<18} {row['n']:>7} {row['nodes']['dag_before']:>8} "
            f"{row['nodes']['dag_after']:>8} {row['intern']['hit_rate']:>8.3f} "
            f"{row['seconds']['build']:>9.4f} {row['seconds']['simplify']:>9.4f}"
        )

    payload = {
        "bench": "simplify",
        "mode": "smoke" if args.smoke else "full",
        "python": sys.version.split()[0],
        "results": results,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
