"""Process-level resource guards shared by every entry point.

The term pipeline (parse → typecheck → prepare → NNF → Tseitin) is
recursive over term depth, and generated scripts nest deeply — a 4000-long
xor chain recurses tens of thousands of frames through ``to_nnf``.  The
CLI used to band-aid this with ``sys.setrecursionlimit(1_000_000)``, which
left library callers (and portfolio worker processes) to crash with
``RecursionError`` on the very same scripts, while a million frames is
deep enough to exhaust the C stack and hard-crash CPython outright on
some platforms.

:func:`ensure_recursion_limit` is the one guard, applied where the
recursion actually lives: :meth:`repro.engine.Engine.run` (every solve
path, API or CLI, goes through it), the portfolio worker bootstrap, and
``python -m repro``.  It only ever *raises* the limit — a caller that
installed a higher one keeps it — and it is bounded: 100k Python frames
live on the heap (cheap in CPython ≥ 3.11) and cover every workload in
the corpus and benchmark suites with an order of magnitude to spare,
without handing runaway recursion enough rope to take the interpreter
down with it.
"""

from __future__ import annotations

import sys

#: Deep enough for every corpus/benchmark workload (the deepest, a
#: 20k-node simplify chain, stays well under half of it); bounded enough
#: that true runaway recursion still dies as a ``RecursionError`` instead
#: of a C-stack overflow.
DEFAULT_RECURSION_LIMIT = 100_000


def ensure_recursion_limit(limit: int = DEFAULT_RECURSION_LIMIT) -> int:
    """Raise the interpreter recursion limit to at least ``limit``.

    Never lowers an already-higher limit.  Returns the limit in effect
    after the call."""
    current = sys.getrecursionlimit()
    if current < limit:
        sys.setrecursionlimit(limit)
        return limit
    return current


__all__ = ["DEFAULT_RECURSION_LIMIT", "ensure_recursion_limit"]
