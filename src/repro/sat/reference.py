"""The retained object-based CDCL solver, kept as a differential oracle.

This is the pre-flat-arena implementation of :class:`repro.sat.Solver`,
byte-for-byte the search algorithm that shipped through PR 8: clauses as
``_Clause`` objects holding mutable literal lists, watch lists as Python
lists of clause objects, no blocker literals.  The production solver in
:mod:`repro.sat.solver` reimplements the same search on flat integer
arrays; this module exists so tests can cross-check the two cores on the
same inputs — identical verdicts, failed-assumption cores and
checker-accepted proofs — without trusting either implementation alone.

It is **not** exported from :mod:`repro.sat` and nothing in the engine
imports it; only the test suite and ad-hoc measurement scripts should.
The public surface mirrors :class:`repro.sat.Solver` exactly (``solve``,
``add_clause``, ``model``, ``failed_assumptions``, ``trail``, theory and
proof hooks), so the two are drop-in interchangeable.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from time import monotonic
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

from .solver import (
    RESTART_BASE,
    SAT,
    UNKNOWN,
    UNSAT,
    TheoryHook,
    TheoryLemma,
    luby,
)

if TYPE_CHECKING:  # event emission / proof logging are optional attachments
    from ..obs.events import EventLog
    from ..proof.log import ProofLog

_VAR_DECAY = 1.0 / 0.95
_CLA_DECAY = 1.0 / 0.999
_RESCALE_LIMIT = 1e100
_RESCALE_FACTOR = 1e-100
_CLA_RESCALE_LIMIT = 1e20
_CLA_RESCALE_FACTOR = 1e-20


class _Clause:
    """A clause: a mutable literal list whose first two entries are watched."""

    __slots__ = ("lits", "learned", "activity")

    def __init__(self, lits: list[int], learned: bool = False) -> None:
        self.lits = lits
        self.learned = learned
        self.activity = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "learnt" if self.learned else "clause"
        return f"<{kind} {self.lits}>"


class ReferenceSolver:
    """The object-based CDCL core (see the module docstring).

    Typical use::

        solver = ReferenceSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        assert solver.solve() == SAT
        assert solver.model[3] is True

    ``add_clause`` must be called at decision level 0 (i.e. before
    :meth:`solve`, or after it returned — the solver always backtracks to
    level 0 before returning).  :meth:`solve` may be called repeatedly;
    learned clauses persist between calls.
    """

    def __init__(self, num_vars: int = 0, config: Optional[object] = None) -> None:
        # The reference core is the executable spec of the *default*
        # strategy only; diversified configs belong to the production core.
        if config is not None and not getattr(config, "is_default", False):
            raise NotImplementedError(
                "ReferenceSolver implements only the default SolverConfig"
            )
        self._num_vars = 0
        # Indexed by variable; slot 0 is unused padding.
        self._values: list[int] = [0]  # 0 unassigned, 1 true, -1 false
        self._levels: list[int] = [0]
        self._reasons: list[Optional[_Clause]] = [None]
        self._activity: list[float] = [0.0]
        self._phase: list[bool] = [False]
        self._seen = bytearray(1)
        # Indexed by encoded literal: 2*v for +v, 2*v+1 for -v.
        self._watches: list[list[_Clause]] = [[], []]
        self._clauses: list[_Clause] = []
        self._learnts: list[_Clause] = []
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._trail_low = 0
        self._qhead = 0
        self._order: list[tuple[float, int]] = []  # lazy max-heap: (-activity, var)
        self._var_inc = 1.0
        self._cla_inc = 1.0
        self._unsat = False
        self._model: Optional[list[bool]] = None
        self._failed_assumptions: Optional[tuple[int, ...]] = None
        #: Theory callback consulted at propositional fixpoints (see
        #: :class:`TheoryHook`); ``None`` runs the solver purely
        #: propositionally.
        self.theory: Optional[TheoryHook] = None
        #: When set, the theory hook also runs at every decision-level
        #: fixpoint, not only at full assignments.
        self.theory_eager: bool = True
        #: Optional structured search-event log
        #: (:class:`repro.obs.events.EventLog`).  ``None`` (the default)
        #: keeps the search loop free of instrumentation beyond one
        #: ``is None`` test per emission site.
        self.events: Optional["EventLog"] = None
        #: Optional clause-proof log (:class:`repro.proof.ProofLog`).
        #: When attached *before any clause is added*, the solver records
        #: every input clause, theory lemma (with provenance), learned
        #: clause, deletion, and — at each ``unsat`` return — a concluding
        #: RUP step (the empty clause, or the negated failed-assumption
        #: core), so ``proof.snapshot(...)`` is independently checkable by
        #: :func:`repro.proof.check_proof`.
        self.proof: Optional["ProofLog"] = None
        #: Mirrors :attr:`repro.sat.Solver.stop_reason`: why the last
        #: :meth:`solve` returned :data:`UNKNOWN` (``"conflict-limit"``,
        #: ``"timeout"`` or ``"cancelled"``), ``None`` otherwise.
        self.stop_reason: Optional[str] = None
        #: Contract parity with the production core; the reference spec
        #: accepts the portfolio hooks but implements no clause sharing.
        self.on_restart = None
        self.share_max_lbd: Optional[int] = None
        self.share_var_cap: Optional[int] = None
        self._deadline: Optional[float] = None
        self._interrupt: Optional[Callable[[], bool]] = None
        self.stats: dict[str, int] = {
            "decisions": 0,
            "conflicts": 0,
            "propagations": 0,
            "restarts": 0,
            "learned": 0,
            "deleted": 0,
            "minimized": 0,
            "theory_checks": 0,
            "theory_lemmas": 0,
            "theory_conflicts": 0,
        }
        if num_vars:
            self.ensure_vars(num_vars)

    # -- variables ----------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Problem (non-learned) clauses currently attached."""
        return len(self._clauses)

    def new_var(self) -> int:
        """Allocate and return the next variable."""
        self._num_vars += 1
        var = self._num_vars
        self._values.append(0)
        self._levels.append(0)
        self._reasons.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        self._seen.append(0)
        self._watches.append([])
        self._watches.append([])
        heappush(self._order, (0.0, var))
        return var

    def ensure_vars(self, count: int) -> None:
        """Grow the variable pool to at least ``count`` variables."""
        while self._num_vars < count:
            self.new_var()

    # -- clause management --------------------------------------------------

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a problem clause (a disjunction of literals).

        Level-0 simplification applies: duplicate literals collapse,
        tautologies and already-satisfied clauses are dropped, false
        literals are removed.  Returns ``False`` when the formula became
        unsatisfiable (empty clause, or a unit clause whose propagation
        conflicts); the solver is then permanently in the unsat state.
        """
        if self._trail_lim:
            raise ValueError("clauses can only be added at decision level 0")
        if self._unsat:
            return False
        self._model = None
        lits = list(lits)
        if self.proof is not None:
            # Log the clause as shipped, before level-0 simplification:
            # the checker holds the original plus every logged unit, which
            # together subsume whatever simplified form gets attached.
            self.proof.log_input(lits)
        if lits:
            self.ensure_vars(max(abs(lit) for lit in lits))
        seen: set[int] = set()
        out: list[int] = []
        for lit in lits:
            if lit == 0:
                raise ValueError("0 is not a literal")
            if -lit in seen:
                return True  # tautology: contains both polarities
            if lit in seen:
                continue
            value = self._values[abs(lit)]
            value = value if lit > 0 else -value
            if value == 1:
                return True  # satisfied at level 0
            if value == -1:
                continue  # false at level 0: drop the literal
            seen.add(lit)
            out.append(lit)
        if not out:
            self._unsat = True
            return False
        if len(out) == 1:
            self._assign(out[0], None)
            if self._propagate() is not None:
                self._unsat = True
                return False
            return True
        clause = _Clause(out)
        self._clauses.append(clause)
        self._attach(clause)
        return True

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> bool:
        """Add many clauses; returns ``False`` once any addition does."""
        ok = True
        for lits in clauses:
            ok = self.add_clause(lits) and ok
        return ok

    def _attach(self, clause: _Clause) -> None:
        lits = clause.lits
        self._watches[self._windex(lits[0])].append(clause)
        self._watches[self._windex(lits[1])].append(clause)

    def _detach(self, clause: _Clause) -> None:
        lits = clause.lits
        self._watches[self._windex(lits[0])].remove(clause)
        self._watches[self._windex(lits[1])].remove(clause)

    @staticmethod
    def _windex(lit: int) -> int:
        return 2 * lit if lit > 0 else -2 * lit + 1

    # -- assignment / trail -------------------------------------------------

    @property
    def model(self) -> Optional[list[bool]]:
        """After a ``sat`` answer: variable values, indexed ``1..num_vars``
        (index 0 is padding).  ``None`` otherwise."""
        return self._model

    @property
    def failed_assumptions(self) -> Optional[tuple[int, ...]]:
        """After an ``unsat`` answer under assumptions: a subset of the
        assumptions that is already inconsistent with the clauses (empty
        when the clauses are unsatisfiable outright).  ``None`` before any
        solve and after ``sat``/``unknown``."""
        return self._failed_assumptions

    @property
    def trail(self) -> list[int]:
        """The assigned literals in assignment order (read-only view for
        theory hooks; do not mutate)."""
        return self._trail

    def trail_watermark(self) -> int:
        """Lowest trail length since the previous call — the prefix of
        :attr:`trail` guaranteed unchanged — then reset to the current
        length.  Theory hooks use this to synchronize in O(delta) per
        callback instead of rescanning the whole trail: positions below
        the watermark can only have changed through a backtrack, which
        lowers it."""
        mark = min(self._trail_low, len(self._trail))
        self._trail_low = len(self._trail)
        return mark

    def value(self, lit: int) -> int:
        """Current assignment of a literal: 1 true, -1 false, 0 unassigned."""
        value = self._values[abs(lit)]
        return value if lit > 0 else -value

    def level(self, var: int) -> int:
        """Decision level at which ``var`` was assigned (0 for facts)."""
        return self._levels[var]

    @property
    def num_learnts(self) -> int:
        """Learned clauses currently in the database."""
        return len(self._learnts)

    def export_cnf(self) -> tuple[int, list[tuple[int, ...]]]:
        """Snapshot the current problem as ``(num_vars, clauses)``.

        Includes level-0 facts (as unit clauses) and every attached
        problem clause — theory lemmas count as problem clauses; learned
        clauses are omitted.  Clauses satisfied or simplified away at
        addition time are not reconstructed.  Must be called at decision
        level 0 (i.e. outside :meth:`solve`).
        """
        if self._trail_lim:
            raise ValueError("export_cnf requires decision level 0")
        clauses: list[tuple[int, ...]] = [(lit,) for lit in self._trail]
        if self._unsat:
            clauses.append(())
        for clause in self._clauses:
            clauses.append(tuple(clause.lits))
        return self._num_vars, clauses

    def _assign(self, lit: int, reason: Optional[_Clause]) -> None:
        var = abs(lit)
        self._values[var] = 1 if lit > 0 else -1
        self._levels[var] = len(self._trail_lim)
        self._reasons[var] = reason
        self._trail.append(lit)

    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        values, phase, reasons = self._values, self._phase, self._reasons
        order, activity = self._order, self._activity
        for i in range(len(self._trail) - 1, bound - 1, -1):
            lit = self._trail[i]
            var = lit if lit > 0 else -lit
            values[var] = 0
            phase[var] = lit > 0  # phase saving
            reasons[var] = None
            heappush(order, (-activity[var], var))
        del self._trail[bound:]
        del self._trail_lim[level:]
        if bound < self._trail_low:
            self._trail_low = bound
        self._qhead = bound

    # -- propagation --------------------------------------------------------

    def _propagate(self) -> Optional[_Clause]:
        """Unit propagation to fixpoint; returns a conflicting clause or
        ``None``.  Maintains the watched-literal invariant."""
        values = self._values
        watches = self._watches
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.stats["propagations"] += 1
            false_lit = -lit
            watchers = watches[self._windex(false_lit)]
            i = j = 0
            count = len(watchers)
            while i < count:
                clause = watchers[i]
                i += 1
                lits = clause.lits
                # Normalise: the false literal sits at position 1.
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], false_lit
                first = lits[0]
                value = values[first] if first > 0 else -values[-first]
                if value == 1:
                    watchers[j] = clause
                    j += 1
                    continue
                for k in range(2, len(lits)):
                    other = lits[k]
                    other_value = values[other] if other > 0 else -values[-other]
                    if other_value != -1:
                        lits[1], lits[k] = other, false_lit
                        watches[self._windex(other)].append(clause)
                        break
                else:
                    # No replacement watch: the clause is unit or conflicting.
                    watchers[j] = clause
                    j += 1
                    if value == -1:
                        while i < count:  # keep the remaining watchers
                            watchers[j] = watchers[i]
                            j += 1
                            i += 1
                        del watchers[j:]
                        self._qhead = len(self._trail)
                        return clause
                    self._assign(first, clause)
                    continue
            del watchers[j:]
        return None

    # -- conflict analysis --------------------------------------------------

    def _analyze(self, conflict: _Clause) -> tuple[list[int], int]:
        """First-UIP conflict analysis.  Returns the learnt (asserting)
        clause — asserting literal first, a highest-level literal second —
        and the backtrack level."""
        learnt: list[int] = [0]
        seen = self._seen
        levels = self._levels
        trail = self._trail
        current_level = len(self._trail_lim)
        counter = 0
        p = 0
        reason_lits = conflict.lits
        index = len(trail)
        while True:
            for q in reason_lits:
                if q == p:
                    continue
                var = abs(q)
                if not seen[var] and levels[var] > 0:
                    seen[var] = 1
                    self._bump_var(var)
                    if levels[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while True:
                index -= 1
                if seen[abs(trail[index])]:
                    break
            p = trail[index]
            var = abs(p)
            seen[var] = 0
            counter -= 1
            if counter == 0:
                break
            reason = self._reasons[var]
            assert reason is not None, "UIP literal must have a reason"
            if reason.learned:
                self._bump_clause(reason)
            reason_lits = reason.lits
        learnt[0] = -p
        if conflict.learned:
            self._bump_clause(conflict)

        # Self-subsumption minimization: drop a literal whose reason's other
        # literals are all already in the clause (seen) or at level 0.
        kept = [learnt[0]]
        for q in learnt[1:]:
            reason = self._reasons[abs(q)]
            redundant = reason is not None
            if reason is not None:
                for r in reason.lits:
                    var = abs(r)
                    if var != abs(q) and not seen[var] and levels[var] > 0:
                        redundant = False
                        break
            if redundant:
                self.stats["minimized"] += 1
            else:
                kept.append(q)
        for q in learnt[1:]:
            seen[abs(q)] = 0
        learnt = kept

        if len(learnt) == 1:
            return learnt, 0
        max_i = 1
        for i in range(2, len(learnt)):
            if levels[abs(learnt[i])] > levels[abs(learnt[max_i])]:
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, levels[abs(learnt[1])]

    def _record(self, lits: list[int]) -> None:
        """Attach a learnt clause and assert its first literal."""
        self.stats["learned"] += 1
        if self.proof is not None:
            self.proof.log_rup(lits)
        if len(lits) == 1:
            self._assign(lits[0], None)
            return
        clause = _Clause(lits, learned=True)
        clause.activity = self._cla_inc
        self._learnts.append(clause)
        self._attach(clause)
        self._assign(lits[0], clause)

    def _analyze_final(self, p: int) -> tuple[int, ...]:
        """Assumption ``p`` is false under the current (assumption-only)
        trail: walk the reason graph backward and collect the assumptions
        that imply ``not p``.  Returns the failed core including ``p``."""
        out = [p]
        if not self._trail_lim:
            return tuple(out)
        seen = self._seen
        seen[abs(p)] = 1
        for index in range(len(self._trail) - 1, self._trail_lim[0] - 1, -1):
            lit = self._trail[index]
            var = abs(lit)
            if not seen[var]:
                continue
            reason = self._reasons[var]
            if reason is None:
                # A decision above level 0 during the assumption phase is
                # always an assumption literal itself.
                out.append(lit)
            else:
                for q in reason.lits:
                    qvar = abs(q)
                    if qvar != var and self._levels[qvar] > 0:
                        seen[qvar] = 1
            seen[var] = 0
        seen[abs(p)] = 0
        return tuple(out)

    def _proof_conclude(self, core: Sequence[int]) -> None:
        """Log the concluding RUP step of an ``unsat`` answer: the empty
        clause, or the negation of the failed-assumption core (RUP because
        the core's reason-graph derivation is a unit-propagation chain)."""
        if self.proof is not None:
            self.proof.log_rup(tuple(-lit for lit in core))

    # -- theory lemmas ------------------------------------------------------

    def _theory_check(self, final: bool) -> Optional[_Clause]:
        """Consult the theory hook and integrate its lemmas.  Returns a
        conflicting clause for the main loop to analyze, or ``None``; may
        set the global unsat flag (level-0 theory conflict)."""
        assert self.theory is not None
        self.stats["theory_checks"] += 1
        for lits in self.theory.on_check(self, final):
            self.stats["theory_lemmas"] += 1
            lemma = [int(lit) for lit in lits]
            if self.proof is not None:
                self.proof.log_lemma(lemma, getattr(lits, "source", None))
            if self.events is not None:
                self.events.emit("theory-lemma", size=len(lemma), final=final)
            conflict = self._integrate_lemma(lemma)
            if self._unsat:
                return None
            if conflict is not None:
                # Handle the first conflicting lemma; the hook regenerates
                # anything it still cares about at the next fixpoint.
                self.stats["theory_conflicts"] += 1
                return conflict
        return None

    def _integrate_lemma(self, lits: list[int]) -> Optional[_Clause]:
        """Attach a theory lemma mid-search, backjumping as needed.

        The lemma joins the problem clauses (theory lemmas are valid, so
        they survive database reduction).  A falsified lemma backjumps to
        its highest assignment level and is returned as the conflict to
        analyze; a unit lemma backjumps and asserts its literal; anything
        else attaches watching two non-false literals.
        """
        seen: set[int] = set()
        out: list[int] = []
        for lit in lits:
            if lit == 0:
                raise ValueError("0 is not a literal")
            self.ensure_vars(abs(lit))
            if -lit in seen:
                return None  # tautology
            if lit in seen:
                continue
            if self.value(lit) == -1 and self._levels[abs(lit)] == 0:
                continue  # false fact: drop the literal
            seen.add(lit)
            out.append(lit)
        if not out:
            self._unsat = True
            return None
        if len(out) == 1:
            self._cancel_until(0)
            unit = out[0]
            value = self.value(unit)
            if value == -1:
                self._unsat = True
            elif value == 0:
                self._assign(unit, None)
            return None
        false_lits = sorted(
            (lit for lit in out if self.value(lit) == -1),
            key=lambda lit: -self._levels[abs(lit)],
        )
        non_false = [lit for lit in out if self.value(lit) != -1]
        if len(non_false) >= 2:
            clause = _Clause(non_false + false_lits)
            self._clauses.append(clause)
            self._attach(clause)
            return None
        if len(non_false) == 1:
            unit = non_false[0]
            backjump = self._levels[abs(false_lits[0])]
            if not (self.value(unit) == 1 and self._levels[abs(unit)] <= backjump):
                self._cancel_until(backjump)
            clause = _Clause([unit] + false_lits)
            self._clauses.append(clause)
            self._attach(clause)
            if self.value(unit) == 0:
                self._assign(unit, clause)
            return None
        # Every literal is false: this lemma vetoes the current assignment.
        backjump = self._levels[abs(false_lits[0])]
        if backjump == 0:
            self._unsat = True
            return None
        self._cancel_until(backjump)
        clause = _Clause(false_lits)
        self._clauses.append(clause)
        self._attach(clause)
        return clause

    # -- activity -----------------------------------------------------------

    def _bump_var(self, var: int) -> None:
        activity = self._activity[var] + self._var_inc
        self._activity[var] = activity
        if activity > _RESCALE_LIMIT:
            scale = _RESCALE_FACTOR
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= scale
            self._var_inc *= scale
            self._order = [
                (-self._activity[v], v)
                for v in range(1, self._num_vars + 1)
                if self._values[v] == 0
            ]
            heapify(self._order)
        else:
            heappush(self._order, (-activity, var))

    def _bump_clause(self, clause: _Clause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > _CLA_RESCALE_LIMIT:
            for learnt in self._learnts:
                learnt.activity *= _CLA_RESCALE_FACTOR
            self._cla_inc *= _CLA_RESCALE_FACTOR

    def _decide(self) -> int:
        """Most active unassigned variable, or 0 when all are assigned."""
        while self._order:
            _, var = heappop(self._order)
            if self._values[var] == 0:
                return var
        for var in range(1, self._num_vars + 1):  # heap ran dry: safety scan
            if self._values[var] == 0:
                return var
        return 0

    # -- learned-clause reduction -------------------------------------------

    def _reduce_db(self) -> None:
        """Drop roughly the less active half of the learnt clauses, keeping
        binary clauses and clauses that are reasons on the current trail."""
        self._learnts.sort(key=lambda clause: clause.activity)
        locked = {id(reason) for reason in self._reasons if reason is not None}
        limit = len(self._learnts) // 2
        removed = 0
        kept: list[_Clause] = []
        for clause in self._learnts:
            if removed < limit and len(clause.lits) > 2 and id(clause) not in locked:
                self._detach(clause)
                if self.proof is not None:
                    self.proof.log_delete(tuple(clause.lits))
                removed += 1
            else:
                kept.append(clause)
        self._learnts = kept
        self.stats["deleted"] += removed

    # -- the main loop ------------------------------------------------------

    def _budget_stop(self) -> Optional[str]:
        """Why the search must stop now, or ``None``; polled at conflict
        and restart boundaries (mirrors the production core)."""
        if self._deadline is not None and monotonic() >= self._deadline:
            return "timeout"
        if self._interrupt is not None and self._interrupt():
            return "cancelled"
        return None

    def solve(
        self,
        conflict_limit: Optional[int] = None,
        assumptions: Sequence[int] = (),
        deadline: Optional[float] = None,
        interrupt: Optional[Callable[[], bool]] = None,
    ) -> str:
        """Decide the conjunction of all added clauses under ``assumptions``.

        Returns :data:`SAT` (a model is available via :attr:`model`),
        :data:`UNSAT` (with :attr:`failed_assumptions` populated when
        assumptions were involved), or :data:`UNKNOWN` when a budget ran
        out first — ``conflict_limit`` conflicts, the ``deadline``
        (:func:`time.monotonic`), or the ``interrupt`` callback; which one
        is recorded in :attr:`stop_reason`.  Always returns at decision
        level 0; learned clauses, activities and theory lemmas persist for
        the next call.
        """
        assumed = [int(lit) for lit in assumptions]
        for lit in assumed:
            if lit == 0:
                raise ValueError("0 is not a literal")
            self.ensure_vars(abs(lit))
        self.stop_reason = None
        self._deadline = deadline
        self._interrupt = interrupt
        self._failed_assumptions = None
        if self._unsat:
            self._failed_assumptions = ()
            self._proof_conclude(())
            return UNSAT
        self._model = None
        if self._propagate() is not None:
            self._unsat = True
            self._failed_assumptions = ()
            self._proof_conclude(())
            return UNSAT
        conflicts = 0
        restarts = 0
        restart_limit = RESTART_BASE * luby(1)
        conflicts_since_restart = 0
        max_learnts = max(len(self._clauses) // 3, 100)
        pending: Optional[_Clause] = None
        while True:
            conflict = pending if pending is not None else self._propagate()
            pending = None
            if conflict is None and self.theory is not None and self.theory_eager:
                conflict = self._theory_check(final=False)
                if self._unsat:
                    self._failed_assumptions = ()
                    self._cancel_until(0)
                    self._proof_conclude(())
                    return UNSAT
                if conflict is None and self._qhead < len(self._trail):
                    continue  # a theory lemma propagated: reach a fixpoint first
            if conflict is not None:
                conflicts += 1
                conflicts_since_restart += 1
                self.stats["conflicts"] += 1
                if self.events is not None:
                    self.events.emit(
                        "conflict",
                        level=len(self._trail_lim),
                        size=len(conflict.lits),
                    )
                if not self._trail_lim:
                    self._unsat = True
                    self._failed_assumptions = ()
                    self._proof_conclude(())
                    return UNSAT
                learnt, backtrack_level = self._analyze(conflict)
                if self.events is not None:
                    # LBD (literal block distance): distinct decision
                    # levels in the learnt clause, read out before the
                    # backjump invalidates the level array.
                    lbd = len({self._levels[abs(q)] for q in learnt})
                    self.events.emit(
                        "learn", size=len(learnt), lbd=lbd, backjump=backtrack_level
                    )
                self._cancel_until(backtrack_level)
                self._record(learnt)
                self._var_inc *= _VAR_DECAY
                self._cla_inc *= _CLA_DECAY
                if conflict_limit is not None and conflicts >= conflict_limit:
                    self.stop_reason = "conflict-limit"
                    self._cancel_until(0)
                    return UNKNOWN
                stop = self._budget_stop()
                if stop is not None:
                    self.stop_reason = stop
                    self._cancel_until(0)
                    return UNKNOWN
                continue
            if conflicts_since_restart >= restart_limit:
                restarts += 1
                conflicts_since_restart = 0
                restart_limit = RESTART_BASE * luby(restarts + 1)
                self.stats["restarts"] += 1
                if self.events is not None:
                    self.events.emit("restart", conflicts=conflicts)
                self._cancel_until(0)
                stop = self._budget_stop()
                if stop is not None:
                    self.stop_reason = stop
                    return UNKNOWN
                continue
            if len(self._learnts) - len(self._trail) >= max_learnts:
                self._reduce_db()
            if len(self._trail_lim) < len(assumed):
                # Decide pending assumptions first, one pseudo-level each.
                lit = assumed[len(self._trail_lim)]
                value = self.value(lit)
                if value == -1:
                    self._failed_assumptions = self._analyze_final(lit)
                    self._cancel_until(0)
                    self._proof_conclude(self._failed_assumptions)
                    return UNSAT
                self._trail_lim.append(len(self._trail))
                if value == 0:
                    self._assign(lit, None)
                continue
            var = self._decide()
            if var == 0:
                if self.theory is not None:
                    num_vars_before = self._num_vars
                    conflict = self._theory_check(final=True)
                    if self._unsat:
                        self._failed_assumptions = ()
                        self._cancel_until(0)
                        self._proof_conclude(())
                        return UNSAT
                    if conflict is not None:
                        pending = conflict
                        continue
                    if self._qhead < len(self._trail):
                        continue  # lemma propagations must settle first
                    if self._num_vars > num_vars_before:
                        continue  # lemmas introduced fresh variables: decide them
                self._model = [False] + [
                    self._values[v] == 1 for v in range(1, self._num_vars + 1)
                ]
                self._cancel_until(0)
                return SAT
            self.stats["decisions"] += 1
            if self.events is not None:
                self.events.emit("decision", var=var, level=len(self._trail_lim) + 1)
            self._trail_lim.append(len(self._trail))
            self._assign(var if self._phase[var] else -var, None)


__all__ = ["ReferenceSolver"]
