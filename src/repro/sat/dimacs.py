"""DIMACS CNF reading and writing.

The interchange format every SAT tool speaks: a ``p cnf <vars> <clauses>``
header, then whitespace-separated literals with each clause terminated by
``0``.  ``c`` lines are comments; a ``%`` token ends the file (SATLIB
convention).  :func:`from_dimacs` is the inverse of :func:`to_dimacs`:
``from_dimacs(to_dimacs(n, clauses)) == (n, [tuple(c) for c in clauses])``.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def to_dimacs(
    num_vars: int,
    clauses: Iterable[Sequence[int]],
    comments: Iterable[str] = (),
) -> str:
    """Render a CNF formula in DIMACS format (with trailing newline)."""
    clause_list = [tuple(clause) for clause in clauses]
    lines = [f"c {comment}" for comment in comments]
    lines.append(f"p cnf {num_vars} {len(clause_list)}")
    for clause in clause_list:
        for lit in clause:
            if lit == 0 or abs(lit) > num_vars:
                raise ValueError(f"literal {lit} out of range for {num_vars} variable(s)")
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"


def from_dimacs(text: str) -> tuple[int, list[tuple[int, ...]]]:
    """Parse DIMACS CNF text into ``(num_vars, clauses)``.

    Comment lines, blank lines, a trailing ``%`` end marker and clauses
    spanning multiple lines are all accepted; literals beyond the declared
    variable count, a missing header, or an unterminated final clause are
    rejected with :class:`ValueError`.
    """
    num_vars: int | None = None
    num_clauses: int | None = None
    clauses: list[tuple[int, ...]] = []
    current: list[int] = []
    done = False
    for line_number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("c"):
            continue
        if stripped.startswith("p"):
            if num_vars is not None:
                raise ValueError(f"line {line_number}: duplicate DIMACS header")
            fields = stripped.split()
            if len(fields) != 4 or fields[1] != "cnf":
                raise ValueError(f"line {line_number}: malformed header {stripped!r}")
            num_vars, num_clauses = int(fields[2]), int(fields[3])
            if num_vars < 0 or num_clauses < 0:
                raise ValueError(f"line {line_number}: negative header counts")
            continue
        if num_vars is None:
            raise ValueError(f"line {line_number}: clause before 'p cnf' header")
        for token in stripped.split():
            if token == "%":
                done = True
                break
            try:
                lit = int(token)
            except ValueError:
                raise ValueError(f"line {line_number}: bad literal {token!r}") from None
            if lit == 0:
                clauses.append(tuple(current))
                current.clear()
            elif abs(lit) > num_vars:
                raise ValueError(
                    f"line {line_number}: literal {lit} exceeds declared {num_vars} variable(s)"
                )
            else:
                current.append(lit)
        if done:
            break
    if num_vars is None:
        raise ValueError("missing 'p cnf' header")
    if current:
        raise ValueError("unterminated final clause (missing trailing 0)")
    if num_clauses is not None and num_clauses != len(clauses):
        raise ValueError(
            f"header declares {num_clauses} clause(s), found {len(clauses)}"
        )
    return num_vars, clauses


__all__ = ["to_dimacs", "from_dimacs"]
