"""The propositional satisfiability core.

* :mod:`repro.sat.solver` — a CDCL solver: two-watched-literal unit
  propagation, first-UIP conflict-clause learning, VSIDS-style variable
  activity with exponential decay, phase saving, Luby restarts and
  activity-driven learned-clause reduction.
* :mod:`repro.sat.dimacs` — DIMACS CNF export/import so formulas can be
  cross-checked against external solvers and test fixtures.

Variables are positive integers ``1..n``; a *literal* is ``+v`` (the
variable) or ``-v`` (its negation), exactly the DIMACS convention.  The
solver knows nothing about terms: :mod:`repro.smtlib.cnf` lowers boolean
term skeletons to this representation and :mod:`repro.engine` maps models
back to SMT-LIB constants.
"""

from .config import DEFAULT_CONFIG, SolverConfig
from .dimacs import from_dimacs, to_dimacs
from .solver import SAT, UNKNOWN, UNSAT, Solver, TheoryHook, TheoryLemma, luby

__all__ = [
    "Solver",
    "SolverConfig",
    "DEFAULT_CONFIG",
    "TheoryHook",
    "TheoryLemma",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "luby",
    "to_dimacs",
    "from_dimacs",
]
