"""A CDCL (conflict-driven clause learning) propositional solver.

The solver is a faithful, compact rendition of the modern SAT loop:

* **Two-watched-literal propagation** — every clause with at least two
  literals watches exactly two of them, kept in the first two slots of
  its literal block.  The *watched-literal invariant*: whenever a clause
  is not satisfied, its two watched literals are non-false, so only
  clauses watching a literal that just became false need visiting, and
  backtracking never touches the watch lists.  Each watch entry carries a
  *blocker* literal (the other watched literal when the entry was made):
  when the blocker is currently true the clause is satisfied and is
  skipped without touching its literals at all.  Binary clauses live in
  dedicated watch lists — their watches never move and the partner
  literal is all propagation needs, so the binary loop is read-only.
* **First-UIP learning** — on conflict, resolution over the implication
  graph stops at the first unique implication point of the current decision
  level, yielding an asserting clause; a cheap self-subsumption pass then
  removes literals whose reasons are subsumed by the clause itself.
* **VSIDS-style activity** — variables involved in conflicts are bumped and
  all activities decay geometrically (by bumping with a growing increment);
  decisions pick the most active unassigned variable via a lazy max-heap.
  Decision phases are saved across backtracking.
* **Luby restarts** — the solver restarts after ``RESTART_BASE * luby(i)``
  conflicts, the universally optimal strategy of Luby, Sinclair and
  Zuckerman.
* **Learned-clause reduction** — when the learned-clause database outgrows
  its budget, the less active half is dropped (binary and reason clauses
  are kept).

**Memory layout.**  The solver stores no per-clause Python objects.  All
clause literals live in one flat integer arena; a clause is identified
by its *reference* — the arena offset of its two-word header::

    arena:  ... | size | flags | lit0 | lit1 | lit2 ... | size | flags | ...
                  ^ref                                     ^next ref

``lit0``/``lit1`` are the watched positions.  ``flags`` is a bit set
(bit 0: learned, bit 1: deleted).  Reference ``0`` is reserved (the arena
starts with a sentinel word) and doubles as "no clause" everywhere a
clause reference is optional — conflict returns, reason slots.  The
arena is held as a plain Python list — flat machine-word payload, but
CPython indexes lists faster than typed arrays because small ints come
back as cached objects instead of being re-boxed per read;
:meth:`Solver.arena_snapshot` exports the same words as a compact
``array('i')`` for hashing or shipping across processes (the
prerequisite for the portfolio/service roadmap items).

Watch lists are lists of ``(clause ref, blocker literal)`` tuples —
iterated directly by the propagation loop (CPython's fastest scan) and
detached by swap-remove (O(1) per removal, no ``list.remove`` scan); the
scan stays read-only until some watch actually migrates, and only then
compacts the list in place MiniSat-style from the migration point.
Assignment values and watch-list heads are *literal-indexed*
tables: a table of capacity ``C > 2·num_vars`` holds literal ``+v`` at
index ``v`` and literal ``-v`` at index ``C - v``, so Python's negative
indexing turns ``values[lit]`` into a single branch-free lookup for
either polarity (tables rebuild when the variable count outgrows half
the capacity, amortized O(1) per variable).  Levels, reasons, saved
phases and the conflict-analysis ``seen`` marks are parallel per-variable
vectors; variable activity is an ``array('d')``.  Deleted clauses leave
holes in the arena that a mark-and-compact pass
(:meth:`Solver._collect_garbage`) reclaims once more than half the arena
is garbage.

The solver is *incremental* — the DPLL(T) engine drives it through three
extensions of the classic loop:

* **Assumptions** — ``solve(assumptions=[...])`` decides the given
  literals first, one pseudo-decision level each, before any free
  decision.  When an assumption cannot hold, the answer is ``unsat`` and
  :attr:`failed_assumptions` holds a subset of the assumptions that is
  already inconsistent (the *final-conflict* core, from a reason-graph
  walk).  Assumption failure is not permanent: clauses and new
  assumptions may follow.
* **Clause addition between solves** — :meth:`add_clause` may be called
  after any :meth:`solve` return; new clauses attach to the live watch
  lists and learned clauses persist, so repeated solving resumes instead
  of restarting.
* **Theory hook** — a :class:`TheoryHook` attached via :attr:`theory` is
  invoked at propositional fixpoints (every one when :attr:`theory_eager`
  is set, and always at a *full* assignment before ``sat`` is declared).
  The hook returns *lemma clauses* which the solver integrates mid-search
  with proper backjumping: a falsified lemma becomes the next conflict to
  analyze, a unit lemma backjumps and propagates, and anything else simply
  attaches.  Lemmas are theory-valid, so they join the problem clauses
  and are never deleted by database reduction.

Variables are ``1..n``; literals are signed non-zero integers (DIMACS
convention).  The solver is deterministic: the same clauses added in the
same order always produce the same answer, model and statistics.  The
pre-arena object-based implementation is retained as
:class:`repro.sat.reference.ReferenceSolver` and the test suite
cross-checks the two cores on seeded instances.
"""

from __future__ import annotations

from array import array
from heapq import heapify, heappop, heappush
from random import Random
from time import monotonic
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

from .config import DEFAULT_CONFIG, SolverConfig

if TYPE_CHECKING:  # event emission / proof logging are optional attachments
    from ..obs.events import EventLog
    from ..proof.log import ProofLog

#: Answers returned by :meth:`Solver.solve`.
SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"

#: Conflicts per restart unit; the i-th restart happens after
#: ``RESTART_BASE * luby(i)`` conflicts.
RESTART_BASE = 64

_VAR_DECAY = 1.0 / 0.95
_CLA_DECAY = 1.0 / 0.999
_RESCALE_LIMIT = 1e100
_RESCALE_FACTOR = 1e-100
_CLA_RESCALE_LIMIT = 1e20
_CLA_RESCALE_FACTOR = 1e-20

#: Arena header flag bits (the word at ``ref + 1``).
_LEARNED_BIT = 1
_DELETED_BIT = 2

#: Words of arena overhead per clause: the ``size`` and ``flags`` header.
_HEADER_WORDS = 2

#: Initial capacity of the literal-indexed tables (must exceed twice the
#: variable count; doubles on demand).
_MIN_LIT_CAPACITY = 16

#: "No clause": the arena begins with a sentinel word so offset 0 never
#: addresses a real header, making 0 a safe null for reasons/conflicts.
NO_CLAUSE = 0


def luby(i: int) -> int:
    """The i-th element (1-indexed) of the Luby sequence
    ``1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...``."""
    if i < 1:
        raise ValueError("luby is 1-indexed")
    while True:
        k = i.bit_length()
        if i + 1 == 1 << k:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1
        # i was strictly between 2^(k-1)-1 and 2^k-1: recurse on the tail.


class TheoryHook:
    """Theory-solver callback consulted at propositional fixpoints.

    Subclass and attach via :attr:`Solver.theory`.  :meth:`on_check` runs
    whenever unit propagation reaches a fixpoint without conflict —
    always when the assignment is *full* (``final=True``, the last gate
    before the solver answers ``sat``), and additionally at every
    decision level when :attr:`Solver.theory_eager` is set.  It may read
    the solver's :attr:`~Solver.trail` and :meth:`~Solver.value` and must
    return lemma clauses (iterables of literals) that are valid in the
    theory; returning a clause falsified by the current assignment is the
    way to veto it.  The solver integrates each lemma with backjumping
    and re-runs propagation, so a hook is re-consulted only after its
    lemmas changed the search.
    """

    def on_check(self, solver: "Solver", final: bool) -> Iterable[Sequence[int]]:
        return ()


class TheoryLemma(list):
    """A lemma clause that carries provenance.

    Theory hooks may return plain literal sequences; returning a
    :class:`TheoryLemma` instead lets the proof log record which plugin's
    explanation produced the clause (the ``lemma`` step's ``source``)."""

    __slots__ = ("source",)

    def __init__(self, lits: Iterable[int] = (), source: Optional[str] = None) -> None:
        super().__init__(lits)
        self.source = source


class Solver:
    """A CDCL solver over integer literals, on flat array storage.

    Typical use::

        solver = Solver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        assert solver.solve() == SAT
        assert solver.model[3] is True

    ``add_clause`` must be called at decision level 0 (i.e. before
    :meth:`solve`, or after it returned — the solver always backtracks to
    level 0 before returning).  :meth:`solve` may be called repeatedly;
    learned clauses persist between calls.
    """

    def __init__(
        self, num_vars: int = 0, config: Optional[SolverConfig] = None
    ) -> None:
        #: Search-strategy knobs (see :class:`~repro.sat.SolverConfig`).
        #: The default config reproduces the historical solver bit for
        #: bit — no RNG is constructed and every branch below compiles to
        #: the pre-config behavior.
        self.config = config if config is not None else DEFAULT_CONFIG
        self._rng: Optional[Random] = (
            Random(self.config.seed) if self.config.needs_rng else None
        )
        self._var_decay_mult = 1.0 / self.config.var_decay
        self._phase_true_init = self.config.phase_init == "true"
        self._num_vars = 0
        # Literal-indexed tables (capacity > 2*num_vars): literal +v at
        # index v, literal -v at index capacity-v, so plain values[lit]
        # resolves either polarity in one lookup via Python's negative
        # indexing.  values holds 0 unassigned / 1 true / -1 false *of
        # that literal*; _watches/_bwatches hold the per-literal lists of
        # (ref, blocker) watch tuples (binary clauses separate from
        # longer ones).
        self._values: list[int] = [0] * _MIN_LIT_CAPACITY
        self._watches: list[list[tuple[int, int]]] = [
            [] for _ in range(_MIN_LIT_CAPACITY)
        ]
        self._bwatches: list[list[tuple[int, int]]] = [
            [] for _ in range(_MIN_LIT_CAPACITY)
        ]
        # Parallel per-variable vectors; slot 0 is unused padding.
        self._levels: list[int] = [0]
        self._reasons: list[int] = [NO_CLAUSE]  # clause refs; 0 = no reason
        self._activity = array("d", (0.0,))
        self._phase = bytearray(1)
        self._seen = bytearray(1)
        # All clause literals, with two header words (size, flags) per
        # clause; a clause *ref* is the offset of its header.  The
        # sentinel word keeps 0 free to mean "no clause".
        self._arena: list[int] = [0]
        #: Arena words occupied by deleted clauses (headers included).
        self._garbage_words = 0
        self._clauses: list[int] = []  # problem-clause refs
        self._learnts: list[int] = []  # learned-clause refs
        self._cla_activity: dict[int, float] = {}  # learned ref -> activity
        self._cla_lbd: dict[int, int] = {}  # learned ref -> literal block distance
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._trail_low = 0
        self._qhead = 0
        self._order: list[tuple[float, int]] = []  # lazy max-heap: (-activity, var)
        self._var_inc = 1.0
        self._cla_inc = 1.0
        self._unsat = False
        self._model: Optional[list[bool]] = None
        self._failed_assumptions: Optional[tuple[int, ...]] = None
        #: Theory callback consulted at propositional fixpoints (see
        #: :class:`TheoryHook`); ``None`` runs the solver purely
        #: propositionally.
        self.theory: Optional[TheoryHook] = None
        #: When set, the theory hook also runs at every decision-level
        #: fixpoint, not only at full assignments.
        self.theory_eager: bool = True
        #: Optional structured search-event log
        #: (:class:`repro.obs.events.EventLog`).  ``None`` (the default)
        #: keeps the search loop free of instrumentation beyond one
        #: ``is None`` test per emission site.
        self.events: Optional["EventLog"] = None
        #: Optional clause-proof log (:class:`repro.proof.ProofLog`).
        #: When attached *before any clause is added*, the solver records
        #: every input clause, theory lemma (with provenance), learned
        #: clause, deletion, and — at each ``unsat`` return — a concluding
        #: RUP step (the empty clause, or the negated failed-assumption
        #: core), so ``proof.snapshot(...)`` is independently checkable by
        #: :func:`repro.proof.check_proof`.
        self.proof: Optional["ProofLog"] = None
        #: Why the last :meth:`solve` returned :data:`UNKNOWN` —
        #: ``"conflict-limit"``, ``"timeout"`` or ``"cancelled"``;
        #: ``None`` after a definitive answer.
        self.stop_reason: Optional[str] = None
        #: Hook invoked at every restart boundary, with the trail already
        #: unwound to level 0 — the safe point for cooperative work: the
        #: portfolio runner drains/imports shared clauses here.  The hook
        #: may call :meth:`import_clauses`; a level-0 conflict it causes
        #: is noticed immediately after the hook returns.
        self.on_restart: Optional[Callable[["Solver"], None]] = None
        #: Learned-clause sharing (portfolio): when ``share_max_lbd`` is
        #: set, learned clauses with at most that LBD, at most
        #: ``share_max_size`` literals and no variable above
        #: ``share_var_cap`` are buffered for :meth:`drain_exported`.
        #: The cap keeps sharing *input-safe*: variables allocated before
        #: the search are numbered identically in every worker (the
        #: encoding pipeline is deterministic), while variables minted
        #: mid-search (theory-lemma atoms) diverge per trajectory and
        #: must never cross process boundaries.
        self.share_max_lbd: Optional[int] = None
        self.share_max_size: int = 8
        self.share_var_cap: Optional[int] = None
        self._share_out: list[tuple[int, ...]] = []
        self._imported: set[tuple[int, ...]] = set()
        self._deadline: Optional[float] = None
        self._interrupt: Optional[Callable[[], bool]] = None
        self.stats: dict[str, int] = {
            "decisions": 0,
            "conflicts": 0,
            "propagations": 0,
            "restarts": 0,
            "learned": 0,
            "deleted": 0,
            "minimized": 0,
            "theory_checks": 0,
            "theory_lemmas": 0,
            "theory_conflicts": 0,
            "blocker_skips": 0,
            "arena_collections": 0,
            "random_decisions": 0,
            "shared_exported": 0,
            "shared_imported": 0,
        }
        if num_vars:
            self.ensure_vars(num_vars)

    # -- variables ----------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Problem (non-learned) clauses currently attached."""
        return len(self._clauses)

    def new_var(self) -> int:
        """Allocate and return the next variable."""
        self._num_vars += 1
        var = self._num_vars
        if 2 * var >= len(self._values):
            self._grow_literal_tables()
        self._levels.append(0)
        self._reasons.append(NO_CLAUSE)
        self._activity.append(0.0)
        if self._phase_true_init:
            self._phase.append(1)
        elif self._rng is not None and self.config.phase_init == "random":
            self._phase.append(self._rng.getrandbits(1))
        else:
            self._phase.append(0)
        self._seen.append(0)
        heappush(self._order, (0.0, var))
        return var

    def ensure_vars(self, count: int) -> None:
        """Grow the variable pool to at least ``count`` variables."""
        while self._num_vars < count:
            self.new_var()

    def _grow_literal_tables(self) -> None:
        """Double the capacity of the literal-indexed tables.

        The negative-literal half sits at the *end* of each table, so a
        plain append would shift its meaning; instead the tables are
        rebuilt with both halves re-anchored.  Amortized O(1) per
        variable."""
        n = self._num_vars
        capacity = max(_MIN_LIT_CAPACITY, 2 * len(self._values))
        while capacity <= 2 * n:
            capacity *= 2
        values = [0] * capacity
        watches: list[list[int]] = [[] for _ in range(capacity)]
        bwatches: list[list[int]] = [[] for _ in range(capacity)]
        for v in range(1, n):  # the var being added has no state yet
            values[v] = self._values[v]
            values[-v] = self._values[-v]
            watches[v] = self._watches[v]
            watches[-v] = self._watches[-v]
            bwatches[v] = self._bwatches[v]
            bwatches[-v] = self._bwatches[-v]
        self._values = values
        self._watches = watches
        self._bwatches = bwatches

    # -- the clause arena ---------------------------------------------------

    def arena_size(self) -> tuple[int, int]:
        """``(live words, garbage words)`` of the clause arena — the
        sentinel and live headers/literals versus words awaiting
        compaction.  Introspection for tests and debugging."""
        return len(self._arena) - self._garbage_words, self._garbage_words

    def arena_snapshot(self) -> array:
        """The clause arena as a compact ``array('i')`` — a
        position-independent flat copy (refs are offsets into it) cheap
        to hash, diff, or ship to another process."""
        return array("i", self._arena)

    def clause_lits(self, ref: int) -> tuple[int, ...]:
        """The literal block of a clause reference (tests/debugging)."""
        arena = self._arena
        base = ref + _HEADER_WORDS
        return tuple(arena[base : base + arena[ref]])

    def _alloc(self, lits: list[int], learned: bool) -> int:
        """Append a clause block to the arena; returns its reference."""
        arena = self._arena
        ref = len(arena)
        arena.append(len(lits))
        arena.append(_LEARNED_BIT if learned else 0)
        arena.extend(lits)
        return ref

    def watcher_refs(self, lit: int) -> list[int]:
        """Clause refs currently watching ``lit``, binary watchers first
        (tests/debugging)."""
        return [entry[0] for entry in self._bwatches[lit]] + [
            entry[0] for entry in self._watches[lit]
        ]

    # -- clause management --------------------------------------------------

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a problem clause (a disjunction of literals).

        Level-0 simplification applies: duplicate literals collapse,
        tautologies and already-satisfied clauses are dropped, false
        literals are removed.  Returns ``False`` when the formula became
        unsatisfiable (empty clause, or a unit clause whose propagation
        conflicts); the solver is then permanently in the unsat state.
        """
        if self._trail_lim:
            raise ValueError("clauses can only be added at decision level 0")
        if self._unsat:
            return False
        self._model = None
        lits = list(lits)
        if self.proof is not None:
            # Log the clause as shipped, before level-0 simplification:
            # the checker holds the original plus every logged unit, which
            # together subsume whatever simplified form gets attached.
            self.proof.log_input(lits)
        if lits:
            self.ensure_vars(max(abs(lit) for lit in lits))
        seen: set[int] = set()
        out: list[int] = []
        for lit in lits:
            if lit == 0:
                raise ValueError("0 is not a literal")
            if -lit in seen:
                return True  # tautology: contains both polarities
            if lit in seen:
                continue
            value = self._values[lit]
            if value == 1:
                return True  # satisfied at level 0
            if value == -1:
                continue  # false at level 0: drop the literal
            seen.add(lit)
            out.append(lit)
        if not out:
            self._unsat = True
            return False
        if len(out) == 1:
            self._assign(out[0], NO_CLAUSE)
            if self._propagate() != NO_CLAUSE:
                self._unsat = True
                return False
            return True
        ref = self._alloc(out, learned=False)
        self._clauses.append(ref)
        self._attach(ref)
        return True

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> bool:
        """Add many clauses; returns ``False`` once any addition does."""
        ok = True
        for lits in clauses:
            ok = self.add_clause(lits) and ok
        return ok

    # -- learned-clause sharing (portfolio) ---------------------------------

    def drain_exported(self) -> list[tuple[int, ...]]:
        """Clauses learned since the last drain that passed the sharing
        filter (LBD/size/variable caps).  Empty unless ``share_max_lbd``
        is set."""
        out, self._share_out = self._share_out, []
        return out

    def import_clauses(
        self, clauses: Iterable[Sequence[int]], source: str = "portfolio"
    ) -> int:
        """Integrate clauses learned by another solver of the *same*
        formula (same variable numbering below the sharing cap).

        Must be called at decision level 0 — the :attr:`on_restart` hook
        is the intended site.  Each clause joins the problem clauses like
        a theory lemma (valid, never deleted) and is recorded in the
        proof log as a ``lemma`` step with ``source`` provenance, keeping
        the log independently checkable: imports are axioms certified by
        the exporting worker's own proof.  Duplicate imports are skipped.
        Returns the number of clauses integrated; may set the permanent
        unsat flag (a level-0 conflict is a genuine refutation).
        """
        if self._trail_lim:
            raise ValueError("clauses can only be imported at decision level 0")
        imported = 0
        for lits in clauses:
            key = tuple(sorted(lits))
            if key in self._imported or self._unsat:
                continue
            self._imported.add(key)
            clause = [int(lit) for lit in lits]
            if self.proof is not None:
                self.proof.log_lemma(clause, source)
            self._integrate_lemma(clause)
            imported += 1
        if imported:
            self.stats["shared_imported"] += imported
        return imported

    def _attach(self, ref: int) -> None:
        """Watch the clause's first two literals, each entry carrying the
        *other* watched literal as its blocker.  Binary clauses go to the
        dedicated binary watch lists."""
        arena = self._arena
        base = ref + _HEADER_WORDS
        first, second = arena[base], arena[base + 1]
        watches = self._bwatches if arena[ref] == 2 else self._watches
        watches[first].append((ref, second))
        watches[second].append((ref, first))

    def _detach(self, ref: int) -> None:
        """Remove the clause from both watch lists by swap-remove: the
        matching ``(ref, blocker)`` entry is overwritten with the list's
        last entry and the tail popped — no ``list.remove`` shifting."""
        arena = self._arena
        base = ref + _HEADER_WORDS
        watches = self._bwatches if arena[ref] == 2 else self._watches
        for position in (base, base + 1):
            watchers = watches[arena[position]]
            for i, entry in enumerate(watchers):
                if entry[0] == ref:
                    watchers[i] = watchers[-1]
                    watchers.pop()
                    break

    # -- assignment / trail -------------------------------------------------

    @property
    def model(self) -> Optional[list[bool]]:
        """After a ``sat`` answer: variable values, indexed ``1..num_vars``
        (index 0 is padding).  ``None`` otherwise."""
        return self._model

    @property
    def failed_assumptions(self) -> Optional[tuple[int, ...]]:
        """After an ``unsat`` answer under assumptions: a subset of the
        assumptions that is already inconsistent with the clauses (empty
        when the clauses are unsatisfiable outright).  ``None`` before any
        solve and after ``sat``/``unknown``."""
        return self._failed_assumptions

    @property
    def trail(self) -> list[int]:
        """The assigned literals in assignment order (read-only view for
        theory hooks; do not mutate)."""
        return self._trail

    def trail_watermark(self) -> int:
        """Lowest trail length since the previous call — the prefix of
        :attr:`trail` guaranteed unchanged — then reset to the current
        length.  Theory hooks use this to synchronize in O(delta) per
        callback instead of rescanning the whole trail: positions below
        the watermark can only have changed through a backtrack, which
        lowers it."""
        mark = min(self._trail_low, len(self._trail))
        self._trail_low = len(self._trail)
        return mark

    def value(self, lit: int) -> int:
        """Current assignment of a literal: 1 true, -1 false, 0 unassigned."""
        return self._values[lit]

    def level(self, var: int) -> int:
        """Decision level at which ``var`` was assigned (0 for facts)."""
        return self._levels[var]

    @property
    def num_learnts(self) -> int:
        """Learned clauses currently in the database."""
        return len(self._learnts)

    def export_cnf(self) -> tuple[int, list[tuple[int, ...]]]:
        """Snapshot the current problem as ``(num_vars, clauses)``.

        Includes level-0 facts (as unit clauses) and every attached
        problem clause — theory lemmas count as problem clauses; learned
        clauses are omitted.  Clauses satisfied or simplified away at
        addition time are not reconstructed.  Must be called at decision
        level 0 (i.e. outside :meth:`solve`).
        """
        if self._trail_lim:
            raise ValueError("export_cnf requires decision level 0")
        clauses: list[tuple[int, ...]] = [(lit,) for lit in self._trail]
        if self._unsat:
            clauses.append(())
        for ref in self._clauses:
            clauses.append(self.clause_lits(ref))
        return self._num_vars, clauses

    def _assign(self, lit: int, reason: int) -> None:
        var = lit if lit > 0 else -lit
        self._values[lit] = 1
        self._values[-lit] = -1
        self._levels[var] = len(self._trail_lim)
        self._reasons[var] = reason
        self._trail.append(lit)

    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        values, phase, reasons = self._values, self._phase, self._reasons
        order, activity = self._order, self._activity
        for i in range(len(self._trail) - 1, bound - 1, -1):
            lit = self._trail[i]
            var = lit if lit > 0 else -lit
            values[var] = 0
            values[-var] = 0
            phase[var] = 1 if lit > 0 else 0  # phase saving
            reasons[var] = NO_CLAUSE
            heappush(order, (-activity[var], var))
        del self._trail[bound:]
        del self._trail_lim[level:]
        if bound < self._trail_low:
            self._trail_low = bound
        self._qhead = bound

    # -- propagation --------------------------------------------------------

    def _propagate(self) -> int:
        """Unit propagation to fixpoint; returns a conflicting clause ref
        or :data:`NO_CLAUSE`.  Maintains the watched-literal invariant.

        The hot loop works on hoisted locals and assigns inline (bypassing
        :meth:`_assign`): within one call the decision level is fixed, so
        level bookkeeping hoists out of the loop entirely.  For each trail
        literal the read-only binary loop runs first — binary watch entries
        carry the partner literal, so propagation never touches the arena.
        The long-clause loop then iterates tuple entries directly (the
        fastest scan CPython offers) and materialises a replacement
        ``keep`` list lazily, only once some entry actually moves or has
        its blocker refreshed — a scan where every blocker hits writes
        nothing at all.
        """
        values = self._values
        watches = self._watches
        bwatches = self._bwatches
        arena = self._arena
        trail = self._trail
        levels = self._levels
        reasons = self._reasons
        level = len(self._trail_lim)
        qhead = self._qhead
        propagated = 0
        skips = 0
        conflict = NO_CLAUSE
        while qhead < len(trail):
            lit = trail[qhead]
            qhead += 1
            propagated += 1
            false_lit = -lit
            for bref, other in bwatches[false_lit]:
                value = values[other]
                if value == 1:
                    skips += 1
                    continue
                if value == -1:
                    qhead = len(trail)
                    conflict = bref
                    break
                var = other if other > 0 else -other
                values[other] = 1
                values[-other] = -1
                levels[var] = level
                reasons[var] = bref
                trail.append(other)
            if conflict != NO_CLAUSE:
                break
            watchers = watches[false_lit]
            migrated = None
            # Phase 1: a pure read-only scan — no index bookkeeping, no
            # list writes.  Blocker hits, unit propagations and conflicts
            # all keep the entry in place; only an actual watch migration
            # (entry leaves this list) forces writes, at which point the
            # entry's position is recovered by identity (`list.index`
            # short-circuits on pointer equality) and the scan switches
            # to the in-place compacting phase 2.
            for entry in watchers:
                if values[entry[1]] == 1:
                    # The blocker satisfies the clause: keep the entry
                    # without touching the clause's literal block.
                    skips += 1
                    continue
                ref = entry[0]
                base = ref + _HEADER_WORDS
                # Normalise: the false literal sits in the second slot.
                if arena[base] == false_lit:
                    arena[base] = arena[base + 1]
                    arena[base + 1] = false_lit
                first = arena[base]
                value = values[first]
                if value == 1:
                    continue  # satisfied by its first watch: keep as-is
                end = base + arena[ref]
                for k in range(base + 2, end):
                    if values[arena[k]] != -1:
                        migrated = entry
                        break
                else:
                    # No replacement watch: the clause is unit or conflicting.
                    if value == -1:
                        qhead = len(trail)
                        conflict = ref
                        break
                    var = first if first > 0 else -first
                    values[first] = 1
                    values[-first] = -1
                    levels[var] = level
                    reasons[var] = ref
                    trail.append(first)
                    continue
                break
            if migrated is not None:
                # Phase 2: compact in place from the migrating entry on,
                # refreshing blockers as a side effect of the rewrite.
                count = len(watchers)
                i = j = watchers.index(migrated)
                while i < count:
                    entry = watchers[i]
                    i += 1
                    if values[entry[1]] == 1:
                        watchers[j] = entry
                        j += 1
                        skips += 1
                        continue
                    ref = entry[0]
                    base = ref + _HEADER_WORDS
                    if arena[base] == false_lit:
                        arena[base] = arena[base + 1]
                        arena[base + 1] = false_lit
                    first = arena[base]
                    value = values[first]
                    if value == 1:
                        watchers[j] = (ref, first)
                        j += 1
                        continue
                    end = base + arena[ref]
                    for k in range(base + 2, end):
                        other = arena[k]
                        if values[other] != -1:
                            arena[base + 1] = other
                            arena[k] = false_lit
                            watches[other].append((ref, first))
                            break
                    else:
                        watchers[j] = entry
                        j += 1
                        if value == -1:
                            while i < count:  # keep the remaining watchers
                                watchers[j] = watchers[i]
                                j += 1
                                i += 1
                            qhead = len(trail)
                            conflict = ref
                            break
                        var = first if first > 0 else -first
                        values[first] = 1
                        values[-first] = -1
                        levels[var] = level
                        reasons[var] = ref
                        trail.append(first)
                del watchers[j:]
            if conflict != NO_CLAUSE:
                break
        self._qhead = qhead
        self.stats["propagations"] += propagated
        if skips:
            self.stats["blocker_skips"] += skips
        return conflict

    # -- conflict analysis --------------------------------------------------

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """First-UIP conflict analysis.  Returns the learnt (asserting)
        clause — asserting literal first, a highest-level literal second —
        and the backtrack level."""
        learnt: list[int] = [0]
        seen = self._seen
        levels = self._levels
        trail = self._trail
        arena = self._arena
        activity = self._activity
        var_inc = self._var_inc
        current_level = len(self._trail_lim)
        counter = 0
        p = 0
        reason_base = conflict + _HEADER_WORDS
        reason_lits = arena[reason_base : reason_base + arena[conflict]]
        index = len(trail)
        while True:
            for q in reason_lits:
                if q == p:
                    continue
                var = q if q > 0 else -q
                if not seen[var] and levels[var] > 0:
                    seen[var] = 1
                    # Every bumped variable is assigned (it sits on the
                    # trail or in the conflict), so no heap entry is due
                    # yet: `_cancel_until` pushes it with its then-current
                    # activity the moment it becomes decidable again.
                    bumped = activity[var] + var_inc
                    if bumped > _RESCALE_LIMIT:  # rare: rescale via the slow path
                        self._bump_var(var)
                        var_inc = self._var_inc
                    else:
                        activity[var] = bumped
                    if levels[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while True:
                index -= 1
                p = trail[index]
                if seen[p if p > 0 else -p]:
                    break
            var = p if p > 0 else -p
            seen[var] = 0
            counter -= 1
            if counter == 0:
                break
            reason = self._reasons[var]
            assert reason != NO_CLAUSE, "UIP literal must have a reason"
            if arena[reason + 1] & _LEARNED_BIT:
                self._bump_clause(reason)
            reason_base = reason + _HEADER_WORDS
            reason_lits = arena[reason_base : reason_base + arena[reason]]
        learnt[0] = -p
        if arena[conflict + 1] & _LEARNED_BIT:
            self._bump_clause(conflict)

        # Self-subsumption minimization: drop a literal whose reason's other
        # literals are all already in the clause (seen) or at level 0 —
        # the same local pass as the reference core, so seeded runs learn
        # the same clauses.  The shrunk clause is derived by one more
        # resolution step, so it stays RUP for the proof log.
        reasons = self._reasons
        kept = [learnt[0]]
        for q in learnt[1:]:
            qvar = q if q > 0 else -q
            reason = reasons[qvar]
            redundant = reason != NO_CLAUSE
            if redundant:
                rbase = reason + _HEADER_WORDS
                for r in arena[rbase : rbase + arena[reason]]:
                    rvar = r if r > 0 else -r
                    if rvar != qvar and not seen[rvar] and levels[rvar] > 0:
                        redundant = False
                        break
            if redundant:
                self.stats["minimized"] += 1
            else:
                kept.append(q)
        for q in learnt[1:]:
            seen[q if q > 0 else -q] = 0
        learnt = kept

        if len(learnt) == 1:
            return learnt, 0
        max_i = 1
        for i in range(2, len(learnt)):
            if levels[abs(learnt[i])] > levels[abs(learnt[max_i])]:
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, levels[abs(learnt[1])]

    def _record(self, lits: list[int], lbd: int) -> None:
        """Attach a learnt clause and assert its first literal."""
        self.stats["learned"] += 1
        if self.proof is not None:
            self.proof.log_rup(lits)
        if (
            self.share_max_lbd is not None
            and lbd <= self.share_max_lbd
            and len(lits) <= self.share_max_size
        ):
            cap = self.share_var_cap
            if cap is None or all(-cap <= lit <= cap for lit in lits):
                self._share_out.append(tuple(lits))
                self.stats["shared_exported"] += 1
        if len(lits) == 1:
            self._assign(lits[0], NO_CLAUSE)
            return
        ref = self._alloc(lits, learned=True)
        self._cla_activity[ref] = self._cla_inc
        self._cla_lbd[ref] = lbd
        self._learnts.append(ref)
        self._attach(ref)
        self._assign(lits[0], ref)

    def _analyze_final(self, p: int) -> tuple[int, ...]:
        """Assumption ``p`` is false under the current (assumption-only)
        trail: walk the reason graph backward and collect the assumptions
        that imply ``not p``.  Returns the failed core including ``p``."""
        out = [p]
        if not self._trail_lim:
            return tuple(out)
        seen = self._seen
        arena = self._arena
        seen[abs(p)] = 1
        for index in range(len(self._trail) - 1, self._trail_lim[0] - 1, -1):
            lit = self._trail[index]
            var = lit if lit > 0 else -lit
            if not seen[var]:
                continue
            reason = self._reasons[var]
            if reason == NO_CLAUSE:
                # A decision above level 0 during the assumption phase is
                # always an assumption literal itself.
                out.append(lit)
            else:
                base = reason + _HEADER_WORDS
                for q in arena[base : base + arena[reason]]:
                    qvar = q if q > 0 else -q
                    if qvar != var and self._levels[qvar] > 0:
                        seen[qvar] = 1
            seen[var] = 0
        seen[abs(p)] = 0
        return tuple(out)

    def _proof_conclude(self, core: Sequence[int]) -> None:
        """Log the concluding RUP step of an ``unsat`` answer: the empty
        clause, or the negation of the failed-assumption core (RUP because
        the core's reason-graph derivation is a unit-propagation chain)."""
        if self.proof is not None:
            self.proof.log_rup(tuple(-lit for lit in core))

    # -- theory lemmas ------------------------------------------------------

    def _theory_check(self, final: bool) -> int:
        """Consult the theory hook and integrate its lemmas.  Returns a
        conflicting clause ref for the main loop to analyze, or
        :data:`NO_CLAUSE`; may set the global unsat flag (level-0 theory
        conflict)."""
        assert self.theory is not None
        self.stats["theory_checks"] += 1
        for lits in self.theory.on_check(self, final):
            self.stats["theory_lemmas"] += 1
            lemma = [int(lit) for lit in lits]
            if self.proof is not None:
                self.proof.log_lemma(lemma, getattr(lits, "source", None))
            if self.events is not None:
                self.events.emit("theory-lemma", size=len(lemma), final=final)
            conflict = self._integrate_lemma(lemma)
            if self._unsat:
                return NO_CLAUSE
            if conflict != NO_CLAUSE:
                # Handle the first conflicting lemma; the hook regenerates
                # anything it still cares about at the next fixpoint.
                self.stats["theory_conflicts"] += 1
                return conflict
        return NO_CLAUSE

    def _integrate_lemma(self, lits: list[int]) -> int:
        """Attach a theory lemma mid-search, backjumping as needed.

        The lemma joins the problem clauses (theory lemmas are valid, so
        they survive database reduction).  A falsified lemma backjumps to
        its highest assignment level and is returned as the conflict to
        analyze; a unit lemma backjumps and asserts its literal; anything
        else attaches watching two non-false literals.
        """
        seen: set[int] = set()
        out: list[int] = []
        for lit in lits:
            if lit == 0:
                raise ValueError("0 is not a literal")
            self.ensure_vars(abs(lit))
            if -lit in seen:
                return NO_CLAUSE  # tautology
            if lit in seen:
                continue
            if self._values[lit] == -1 and self._levels[abs(lit)] == 0:
                continue  # false fact: drop the literal
            seen.add(lit)
            out.append(lit)
        if not out:
            self._unsat = True
            return NO_CLAUSE
        if len(out) == 1:
            self._cancel_until(0)
            unit = out[0]
            value = self._values[unit]
            if value == -1:
                self._unsat = True
            elif value == 0:
                self._assign(unit, NO_CLAUSE)
            return NO_CLAUSE
        false_lits = sorted(
            (lit for lit in out if self._values[lit] == -1),
            key=lambda lit: -self._levels[abs(lit)],
        )
        non_false = [lit for lit in out if self._values[lit] != -1]
        if len(non_false) >= 2:
            ref = self._alloc(non_false + false_lits, learned=False)
            self._clauses.append(ref)
            self._attach(ref)
            return NO_CLAUSE
        if len(non_false) == 1:
            unit = non_false[0]
            backjump = self._levels[abs(false_lits[0])]
            if not (self._values[unit] == 1 and self._levels[abs(unit)] <= backjump):
                self._cancel_until(backjump)
            ref = self._alloc([unit] + false_lits, learned=False)
            self._clauses.append(ref)
            self._attach(ref)
            if self._values[unit] == 0:
                self._assign(unit, ref)
            return NO_CLAUSE
        # Every literal is false: this lemma vetoes the current assignment.
        backjump = self._levels[abs(false_lits[0])]
        if backjump == 0:
            self._unsat = True
            return NO_CLAUSE
        self._cancel_until(backjump)
        ref = self._alloc(false_lits, learned=False)
        self._clauses.append(ref)
        self._attach(ref)
        return ref

    # -- activity -----------------------------------------------------------

    def _bump_var(self, var: int) -> None:
        activity = self._activity[var] + self._var_inc
        self._activity[var] = activity
        if activity > _RESCALE_LIMIT:
            scale = _RESCALE_FACTOR
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= scale
            self._var_inc *= scale
            self._order = [
                (-self._activity[v], v)
                for v in range(1, self._num_vars + 1)
                if self._values[v] == 0
            ]
            heapify(self._order)
        else:
            heappush(self._order, (-activity, var))

    def _bump_clause(self, ref: int) -> None:
        activity = self._cla_activity.get(ref, 0.0) + self._cla_inc
        self._cla_activity[ref] = activity
        if activity > _CLA_RESCALE_LIMIT:
            for learnt in self._learnts:
                self._cla_activity[learnt] = (
                    self._cla_activity.get(learnt, 0.0) * _CLA_RESCALE_FACTOR
                )
            self._cla_inc *= _CLA_RESCALE_FACTOR

    def _decide(self) -> int:
        """Most active unassigned variable, or 0 when all are assigned."""
        while self._order:
            _, var = heappop(self._order)
            if self._values[var] == 0:
                return var
        for var in range(1, self._num_vars + 1):  # heap ran dry: safety scan
            if self._values[var] == 0:
                return var
        return 0

    def _random_unassigned(self, rng: Random) -> int:
        """A random unassigned variable via a few probes, or 0 to fall back
        to VSIDS.  Probing keeps the noisy-decision path O(1); when most
        variables are assigned the probes miss and the caller's VSIDS pick
        (which must scan anyway) takes over."""
        num_vars = self._num_vars
        if num_vars == 0:
            return 0
        values = self._values
        for _ in range(8):
            var = rng.randint(1, num_vars)
            if values[var] == 0:
                return var
        return 0

    # -- learned-clause reduction -------------------------------------------

    def _reduce_db(self) -> None:
        """Drop roughly the less active half of the learnt clauses, keeping
        binary clauses and clauses that are reasons on the current trail.

        Retention is by clause activity, like the reference core —
        LBD-ordered deletion (Glucose-style) was measured here and lost
        badly on structured instances (pigeonhole: 3.7x more conflicts),
        so LBD is recorded per clause (:attr:`_cla_lbd`, surfaced in
        ``learn`` events) but does not drive deletion."""
        activities = self._cla_activity
        arena = self._arena
        self._learnts.sort(key=lambda ref: activities.get(ref, 0.0))
        locked = set(self._reasons)
        limit = len(self._learnts) // 2
        removed = 0
        kept: list[int] = []
        for ref in self._learnts:
            if removed < limit and arena[ref] > 2 and ref not in locked:
                self._delete_clause(ref)
                removed += 1
            else:
                kept.append(ref)
        self._learnts = kept
        self.stats["deleted"] += removed
        if self._garbage_words * 2 > len(self._arena):
            self._collect_garbage()

    def _delete_clause(self, ref: int) -> None:
        """Detach a learned clause and mark its arena block as garbage."""
        self._detach(ref)
        if self.proof is not None:
            self.proof.log_delete(self.clause_lits(ref))
        self._arena[ref + 1] |= _DELETED_BIT
        self._garbage_words += self._arena[ref] + _HEADER_WORDS
        self._cla_activity.pop(ref, None)
        self._cla_lbd.pop(ref, None)

    def _collect_garbage(self) -> None:
        """Compact the arena: copy live clause blocks into a fresh arena
        and remap every reference (clause lists, watch pairs, reasons,
        activities).  Runs when over half the arena is deleted blocks;
        safe at any decision level because trail reasons are remapped."""
        old = self._arena
        fresh: list[int] = [0]
        remap: dict[int, int] = {NO_CLAUSE: NO_CLAUSE}
        for refs in (self._clauses, self._learnts):
            for ref in refs:
                new_ref = len(fresh)
                remap[ref] = new_ref
                fresh.extend(old[ref : ref + _HEADER_WORDS + old[ref]])
        self._arena = fresh
        self._garbage_words = 0
        self._clauses = [remap[ref] for ref in self._clauses]
        self._learnts = [remap[ref] for ref in self._learnts]
        self._cla_activity = {
            remap[ref]: activity for ref, activity in self._cla_activity.items()
        }
        self._cla_lbd = {remap[ref]: lbd for ref, lbd in self._cla_lbd.items()}
        self._reasons = [remap[ref] for ref in self._reasons]
        for watch_lists in (self._watches, self._bwatches):
            for watchers in watch_lists:
                for i, entry in enumerate(watchers):
                    watchers[i] = (remap[entry[0]], entry[1])
        self.stats["arena_collections"] += 1

    # -- the main loop ------------------------------------------------------

    def _restart_interval(self, restarts: int) -> int:
        """Conflicts until restart number ``restarts + 1`` fires, under the
        configured series (Luby by default, geometric for portfolio
        diversification)."""
        cfg = self.config
        if cfg.restart == "geometric":
            return int(cfg.restart_base * cfg.restart_factor**restarts)
        return cfg.restart_base * luby(restarts + 1)

    def _budget_stop(self) -> Optional[str]:
        """Why the search must stop now (``"timeout"``/``"cancelled"``),
        or ``None`` to keep going.  Polled at conflict and restart
        boundaries, before final theory checks, and every few hundred
        decisions — cheap enough per call that propagation dominates."""
        if self._deadline is not None and monotonic() >= self._deadline:
            return "timeout"
        if self._interrupt is not None and self._interrupt():
            return "cancelled"
        return None

    def solve(
        self,
        conflict_limit: Optional[int] = None,
        assumptions: Sequence[int] = (),
        deadline: Optional[float] = None,
        interrupt: Optional[Callable[[], bool]] = None,
    ) -> str:
        """Decide the conjunction of all added clauses under ``assumptions``.

        Returns :data:`SAT` (a model is available via :attr:`model`),
        :data:`UNSAT` (with :attr:`failed_assumptions` populated when
        assumptions were involved), or :data:`UNKNOWN` when a budget ran
        out first — ``conflict_limit`` conflicts, the ``deadline`` (a
        :func:`time.monotonic` instant), or the ``interrupt`` callback
        returning true (the portfolio cancellation hook).  Which budget
        fired is recorded in :attr:`stop_reason` (``"conflict-limit"``,
        ``"timeout"`` or ``"cancelled"``).  Always returns at decision
        level 0 — including when unwound by ``KeyboardInterrupt``/SIGTERM,
        so an interrupted solver stays reusable; learned clauses,
        activities and theory lemmas persist for the next call.
        """
        assumed = [int(lit) for lit in assumptions]
        for lit in assumed:
            if lit == 0:
                raise ValueError("0 is not a literal")
            self.ensure_vars(abs(lit))
        self.stop_reason = None
        self._deadline = deadline
        self._interrupt = interrupt
        if self.share_max_lbd is not None and self.share_var_cap is None:
            # Input-safe export cap: variables allocated so far are numbered
            # deterministically across workers running the same script.
            self.share_var_cap = self._num_vars
        self._failed_assumptions = None
        if self._unsat:
            self._failed_assumptions = ()
            self._proof_conclude(())
            return UNSAT
        self._model = None
        if self._propagate() != NO_CLAUSE:
            self._unsat = True
            self._failed_assumptions = ()
            self._proof_conclude(())
            return UNSAT
        try:
            return self._search(conflict_limit, assumed)
        except BaseException:
            # KeyboardInterrupt / SIGTERM-raised exceptions can land at any
            # bytecode boundary mid-search.  Unwind to the assumption-free
            # root so the solver (and its owning engine) stays reusable —
            # the next solve() answers the same query correctly.
            self._cancel_until(0)
            raise

    def _search(self, conflict_limit: Optional[int], assumed: list[int]) -> str:
        """CDCL search loop; factored out so :meth:`solve` can guarantee
        the level-0 unwind on abnormal exits."""
        conflicts = 0
        restarts = 0
        restart_limit = self._restart_interval(0)
        conflicts_since_restart = 0
        max_learnts = max(len(self._clauses) // 3, 100)
        pending = NO_CLAUSE
        rng = self._rng
        random_decision_freq = self.config.random_decision_freq
        random_polarity_freq = self.config.random_polarity_freq
        decisions_since_poll = 0
        while True:
            conflict = pending if pending != NO_CLAUSE else self._propagate()
            pending = NO_CLAUSE
            if conflict == NO_CLAUSE and self.theory is not None and self.theory_eager:
                conflict = self._theory_check(final=False)
                if self._unsat:
                    self._failed_assumptions = ()
                    self._cancel_until(0)
                    self._proof_conclude(())
                    return UNSAT
                if conflict == NO_CLAUSE and self._qhead < len(self._trail):
                    continue  # a theory lemma propagated: reach a fixpoint first
            if conflict != NO_CLAUSE:
                conflicts += 1
                conflicts_since_restart += 1
                self.stats["conflicts"] += 1
                if self.events is not None:
                    self.events.emit(
                        "conflict",
                        level=len(self._trail_lim),
                        size=self._arena[conflict],
                    )
                if not self._trail_lim:
                    self._unsat = True
                    self._failed_assumptions = ()
                    self._proof_conclude(())
                    return UNSAT
                learnt, backtrack_level = self._analyze(conflict)
                # LBD (literal block distance): distinct decision levels
                # in the learnt clause, read out before the backjump
                # invalidates the level array.  Deletion is activity-based
                # (see :meth:`_reduce_db`), so LBD is observability-only —
                # computed when an event log is listening.
                lbd = 0
                if self.events is not None or self.share_max_lbd is not None:
                    lbd = len({self._levels[abs(q)] for q in learnt})
                if self.events is not None:
                    self.events.emit(
                        "learn", size=len(learnt), lbd=lbd, backjump=backtrack_level
                    )
                self._cancel_until(backtrack_level)
                self._record(learnt, lbd)
                self._var_inc *= self._var_decay_mult
                self._cla_inc *= _CLA_DECAY
                if conflict_limit is not None and conflicts >= conflict_limit:
                    self.stop_reason = "conflict-limit"
                    self._cancel_until(0)
                    return UNKNOWN
                stop = self._budget_stop()
                if stop is not None:
                    self.stop_reason = stop
                    self._cancel_until(0)
                    return UNKNOWN
                continue
            if conflicts_since_restart >= restart_limit:
                restarts += 1
                conflicts_since_restart = 0
                restart_limit = self._restart_interval(restarts)
                self.stats["restarts"] += 1
                if self.events is not None:
                    self.events.emit("restart", conflicts=conflicts)
                self._cancel_until(0)
                stop = self._budget_stop()
                if stop is not None:
                    self.stop_reason = stop
                    return UNKNOWN
                if self.on_restart is not None:
                    # Portfolio hook: drain/import shared clauses while the
                    # trail is at level 0, where imports are always sound.
                    self.on_restart(self)
                    if self._unsat:
                        self._failed_assumptions = ()
                        self._proof_conclude(())
                        return UNSAT
                continue
            if len(self._learnts) - len(self._trail) >= max_learnts:
                self._reduce_db()
            if len(self._trail_lim) < len(assumed):
                # Decide pending assumptions first, one pseudo-level each.
                lit = assumed[len(self._trail_lim)]
                value = self._values[lit]
                if value == -1:
                    self._failed_assumptions = self._analyze_final(lit)
                    self._cancel_until(0)
                    self._proof_conclude(self._failed_assumptions)
                    return UNSAT
                self._trail_lim.append(len(self._trail))
                if value == 0:
                    self._assign(lit, NO_CLAUSE)
                continue
            var = 0
            if rng is not None and random_decision_freq > 0.0:
                if rng.random() < random_decision_freq:
                    var = self._random_unassigned(rng)
                    if var:
                        self.stats["random_decisions"] += 1
            if var == 0:
                var = self._decide()
            if var == 0:
                if self.theory is not None:
                    stop = self._budget_stop()
                    if stop is not None:
                        self.stop_reason = stop
                        self._cancel_until(0)
                        return UNKNOWN
                    num_vars_before = self._num_vars
                    conflict = self._theory_check(final=True)
                    if self._unsat:
                        self._failed_assumptions = ()
                        self._cancel_until(0)
                        self._proof_conclude(())
                        return UNSAT
                    if conflict != NO_CLAUSE:
                        pending = conflict
                        continue
                    if self._qhead < len(self._trail):
                        continue  # lemma propagations must settle first
                    if self._num_vars > num_vars_before:
                        continue  # lemmas introduced fresh variables: decide them
                self._model = [False] + [
                    self._values[v] == 1 for v in range(1, self._num_vars + 1)
                ]
                self._cancel_until(0)
                return SAT
            decisions_since_poll += 1
            if decisions_since_poll >= 256:
                # Conflict-free stretches (easy satisfiable instances) would
                # otherwise never see the deadline/cancel flag.
                decisions_since_poll = 0
                stop = self._budget_stop()
                if stop is not None:
                    self.stop_reason = stop
                    self._cancel_until(0)
                    return UNKNOWN
            self.stats["decisions"] += 1
            if self.events is not None:
                self.events.emit("decision", var=var, level=len(self._trail_lim) + 1)
            self._trail_lim.append(len(self._trail))
            phase = self._phase[var]
            if (
                rng is not None
                and random_polarity_freq > 0.0
                and rng.random() < random_polarity_freq
            ):
                phase = rng.getrandbits(1)
            self._assign(var if phase else -var, NO_CLAUSE)


__all__ = [
    "Solver",
    "TheoryHook",
    "TheoryLemma",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "RESTART_BASE",
    "NO_CLAUSE",
    "luby",
]
