"""Solver configuration: the diversification surface of the CDCL core.

A :class:`SolverConfig` bundles the search-strategy knobs that make two
solvers take *different trajectories through the same search space* while
deciding the same formula:

* ``seed`` / ``random_decision_freq`` / ``random_polarity_freq`` — a
  deterministic RNG that occasionally overrides the VSIDS pick or the
  saved-phase polarity.  Noise is the classic portfolio diversifier: on
  instances where trajectory luck dominates (phase-transition 3-SAT), two
  seeds can differ by orders of magnitude in conflicts.
* ``phase_init`` — the polarity a variable gets before phase saving has
  anything to save: ``"false"`` (MiniSat's default, and this solver's
  historical behavior), ``"true"``, or ``"random"`` (seeded).
* ``restart`` — the restart series: ``"luby"`` (the universally optimal
  Luby–Sinclair–Zuckerman schedule) or ``"geometric"``
  (``restart_base * restart_factor^i``, aggressive early / patient late).
* ``var_decay`` — the VSIDS decay factor; lower values chase recent
  conflicts harder, higher values keep long-term structure.

``SolverConfig()`` *is* the solver's historical behavior bit for bit: no
RNG is even constructed, so a default-config solver stays deterministic
and byte-identical to the pre-config core.  :meth:`SolverConfig.portfolio`
builds the diversified lineup the portfolio runner races — worker 0 always
runs the default config, so the portfolio's answer set always contains the
sequential engine's trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

#: Valid ``phase_init`` values.
PHASE_CHOICES = ("false", "true", "random")
#: Valid ``restart`` series names.
RESTART_CHOICES = ("luby", "geometric")


@dataclass(frozen=True)
class SolverConfig:
    """Immutable search-strategy knobs for one :class:`~repro.sat.Solver`.

    The default instance reproduces the historical solver exactly; every
    field is validated at construction so a typo'd config fails loudly
    instead of silently racing a default worker."""

    #: Display name, used for portfolio win attribution and metrics.
    name: str = "default"
    #: RNG seed for the noise knobs; ``None`` with zero frequencies means
    #: no RNG is constructed at all (the fully deterministic default).
    seed: Optional[int] = None
    #: Initial decision polarity before phase saving kicks in.
    phase_init: str = "false"
    #: Restart series: ``"luby"`` or ``"geometric"``.
    restart: str = "luby"
    #: Conflicts per restart unit (scales either series).
    restart_base: int = 64
    #: Growth factor of the geometric series (ignored for luby).
    restart_factor: float = 1.5
    #: VSIDS decay factor in (0, 1); activities are bumped by a growing
    #: increment that multiplies by ``1/var_decay`` per conflict.
    var_decay: float = 0.95
    #: Probability that a decision picks a uniformly random unassigned
    #: variable instead of the VSIDS maximum.
    random_decision_freq: float = 0.0
    #: Probability that a decision's polarity is drawn from the RNG
    #: instead of the saved phase.
    random_polarity_freq: float = 0.0

    def __post_init__(self) -> None:
        if self.phase_init not in PHASE_CHOICES:
            raise ValueError(
                f"phase_init must be one of {PHASE_CHOICES}, got {self.phase_init!r}"
            )
        if self.restart not in RESTART_CHOICES:
            raise ValueError(
                f"restart must be one of {RESTART_CHOICES}, got {self.restart!r}"
            )
        if self.restart_base < 1:
            raise ValueError("restart_base must be positive")
        if self.restart_factor <= 1.0:
            raise ValueError("restart_factor must exceed 1")
        if not 0.0 < self.var_decay < 1.0:
            raise ValueError("var_decay must lie strictly between 0 and 1")
        for freq_name in ("random_decision_freq", "random_polarity_freq"):
            freq = getattr(self, freq_name)
            if not 0.0 <= freq <= 1.0:
                raise ValueError(f"{freq_name} must lie in [0, 1]")
        if self.needs_rng and self.seed is None:
            raise ValueError(
                "randomized knobs (phase_init='random', random_*_freq > 0) "
                "require an explicit seed — portfolio runs must be replayable"
            )

    @property
    def needs_rng(self) -> bool:
        """True when any knob draws random numbers."""
        return (
            self.phase_init == "random"
            or self.random_decision_freq > 0.0
            or self.random_polarity_freq > 0.0
        )

    @property
    def is_default(self) -> bool:
        """True when the config reproduces the historical solver."""
        return self == SolverConfig(name=self.name)

    @classmethod
    def portfolio(cls, count: int) -> tuple["SolverConfig", ...]:
        """The diversified lineup for a ``count``-worker portfolio.

        Worker 0 is always the default config (so racing can never lose a
        verdict the sequential engine would have found); the next few
        slots are hand-picked classic diversifiers (opposite phase,
        geometric restarts, decision noise, slow decay); further slots
        cycle seeded noise variants.  Deterministic: the same ``count``
        always yields the same tuple."""
        if count < 1:
            raise ValueError("a portfolio needs at least one worker")
        lineup = [
            cls(),
            cls(
                name="phase-true/geometric",
                phase_init="true",
                restart="geometric",
                restart_base=100,
            ),
            cls(
                name="noisy/seed1",
                seed=1,
                phase_init="random",
                random_decision_freq=0.05,
                random_polarity_freq=0.02,
            ),
            cls(name="slow-decay/luby256", var_decay=0.99, restart_base=256),
        ]
        seed = 2
        while len(lineup) < count:
            lineup.append(
                cls(
                    name=f"noisy/seed{seed}",
                    seed=seed,
                    phase_init="random",
                    random_decision_freq=0.02 * (1 + seed % 3),
                    random_polarity_freq=0.05,
                    restart="geometric" if seed % 2 else "luby",
                    restart_base=64 + 32 * (seed % 4),
                )
            )
            seed += 1
        return tuple(lineup[:count])

    def with_name(self, name: str) -> "SolverConfig":
        """A copy under a different display name."""
        return replace(self, name=name)


#: Module-level default, shared so hot paths can test identity.
DEFAULT_CONFIG = SolverConfig()

__all__ = ["SolverConfig", "DEFAULT_CONFIG", "PHASE_CHOICES", "RESTART_CHOICES"]
