"""Parallel portfolio solving: race diversified solver configurations.

A portfolio runs the *same* script under N different
:class:`~repro.sat.SolverConfig` strategies, one worker process each, and
returns the first definitive answer.  On the hardest instances,
single-trajectory luck dominates wall clock (PR 9 measured phase-transition
3-SAT swinging 0.07×–3.4× run to run), so racing diverse trajectories wins
whenever *any* lineup member gets lucky — the classic ppfolio/Plingeling
result, reproduced here at the script level.

Worker protocol
---------------

The parent renders the (already parsed) script back to SMT-LIB text and
forks one worker per config.  Each worker bootstraps its own
:class:`~repro.engine.Engine` (recursion guard included), re-parses and
solves under its config, and ships the full pickled
:class:`~repro.engine.ScriptResult` — verdicts, models, proofs, stats —
plus a metrics snapshot back through a result queue.  Shipping text
instead of the pickled term DAG keeps the protocol independent of the
multiprocessing start method and makes the worker input auditable.

Cancellation is cooperative: every worker polls a shared
:class:`multiprocessing.Event` through the SAT core's ``interrupt`` hook
(checked at conflict, restart and theory-check boundaries), so losers
unwind their trails and exit cleanly; ``terminate()`` is a last resort for
workers that stop responding.  A wall-clock ``timeout`` doubles as each
worker's engine deadline, so on expiry the workers stop *themselves* and
report ``unknown``/``timeout`` results the parent can still use.

Clause sharing (optional)
-------------------------

With ``share_clauses=True`` each worker exports its short low-LBD learnt
clauses (over the deterministically-numbered input variables only — see
:attr:`~repro.sat.Solver.share_var_cap`) to an outbox queue; a relay
thread in the parent broadcasts them to every other worker's inbox, and
workers import at restart boundaries as ``portfolio``-provenance lemmas.
Imports are logged as lemma proof steps, so an importing winner's unsat
proof remains independently checkable.

Observability
-------------

The parent's :class:`~repro.obs.Observability` bundle (when given)
receives one metric source per worker (``portfolio.w<i>.*`` — the
worker's final namespaced snapshot plus its status), a ``portfolio.*``
win-attribution source, and a ``portfolio-race`` span when tracing.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
from dataclasses import dataclass, field
from time import monotonic
from typing import Optional, Sequence, Union

from .engine import ScriptResult
from .errors import SolverError
from .limits import ensure_recursion_limit
from .obs import Observability
from .obs.spans import set_current_tracer, trace_span
from .sat import Solver, SolverConfig
from .smtlib.script import Script

#: Seconds granted after the deadline for self-stopped workers to deliver
#: their ``unknown``/``timeout`` results before the parent gives up on them.
_GRACE_SECONDS = 10.0
#: Seconds a cancelled worker gets to exit cleanly before ``terminate()``.
_JOIN_SECONDS = 5.0
#: Default LBD bound for exported clauses when sharing is enabled.
_SHARE_MAX_LBD = 4
#: Bounded inbox depth per worker; overflowing batches are dropped (sharing
#: is an optimization, never a correctness dependency).
_INBOX_DEPTH = 64


@dataclass(frozen=True)
class WorkerReport:
    """What one portfolio worker did, for attribution and debugging."""

    index: int
    config: SolverConfig
    #: ``"won"`` — delivered the winning result; ``"answered"`` — finished
    #: but lost (or answered ``unknown``); ``"cancelled"`` — stopped
    #: cooperatively after the race was decided; ``"terminated"`` — had to
    #: be killed; ``"error"`` — raised (message in :attr:`error`).
    status: str
    #: Worker-side wall clock in seconds, when the worker reported one.
    elapsed: Optional[float] = None
    error: Optional[str] = None
    #: The worker's final metrics snapshot (namespaced counters), when
    #: the worker reported one.
    metrics: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class PortfolioOutcome:
    """The race's result plus per-worker attribution."""

    #: The winning worker's full script result (verdicts, models, proofs).
    result: ScriptResult
    #: Index of the winning worker (``reports[winner]`` has its config).
    winner: int
    #: One report per worker, in lineup order.
    reports: tuple[WorkerReport, ...]
    #: Parent-side wall clock for the whole race, in seconds.
    elapsed: float

    @property
    def winner_config(self) -> SolverConfig:
        return self.reports[self.winner].config


def _definitive(result: ScriptResult) -> bool:
    """True when every ``check-sat`` answered ``sat`` or ``unsat``."""
    checks = result.check_results
    return bool(checks) and all(
        check.answer in ("sat", "unsat") for check in checks
    )


def _share_hook(index, outbox, inbox):
    """Build the restart-boundary callback that exports/imports clauses.

    Runs inside the worker with the solver at decision level 0 (the only
    point where imports are unconditionally sound)."""

    def hook(solver: Solver) -> None:
        exported = solver.drain_exported()
        if exported:
            try:
                outbox.put_nowait((index, exported))
            except queue.Full:
                pass
        while True:
            try:
                sender, batch = inbox.get_nowait()
            except queue.Empty:
                break
            if sender != index:
                solver.import_clauses(batch, source="portfolio")

    return hook


def _worker_main(
    index: int,
    config: SolverConfig,
    script_text: str,
    conflict_limit: Optional[int],
    timeout: Optional[float],
    produce_proofs: bool,
    produce_unsat_cores: bool,
    cancel,
    results,
    outbox,
    inbox,
) -> None:
    """Worker entry point: solve the script under ``config`` and report.

    Must stay a module-level function so every multiprocessing start
    method can import it."""
    ensure_recursion_limit()
    started = monotonic()
    try:
        # Imports deferred so a fork-started worker does no extra work and
        # a spawn-started one initializes exactly what it needs.
        from .engine import Engine
        from .smtlib.parser import parse_script

        on_restart = None
        share_max_lbd = None
        if outbox is not None:
            on_restart = _share_hook(index, outbox, inbox)
            share_max_lbd = _SHARE_MAX_LBD
        engine = Engine(
            conflict_limit=conflict_limit,
            produce_proofs=produce_proofs,
            produce_unsat_cores=produce_unsat_cores,
            config=config,
            timeout=timeout,
            interrupt=cancel.is_set,
            on_restart=on_restart,
            share_max_lbd=share_max_lbd,
        )
        result = engine.run(parse_script(script_text))
        snapshot = engine.metrics.snapshot()
        results.put((index, "ok", result, snapshot, monotonic() - started))
    except BaseException as exc:  # report, never hang the race
        message = f"{type(exc).__name__}: {exc}"
        try:
            results.put((index, "error", message, {}, monotonic() - started))
        except Exception:
            pass


def _relay(outbox, inboxes, stop: threading.Event) -> None:
    """Parent-side broadcast loop: every exported batch goes to every
    other worker's inbox.  Full inboxes drop the batch — sharing is
    best-effort."""
    while not stop.is_set():
        try:
            sender, batch = outbox.get(timeout=0.1)
        except (queue.Empty, OSError, EOFError):
            continue
        for i, inbox in enumerate(inboxes):
            if i != sender:
                try:
                    inbox.put_nowait((sender, batch))
                except queue.Full:
                    pass


def solve_portfolio(
    source: Union[str, Script],
    workers: int = 2,
    *,
    configs: Optional[Sequence[SolverConfig]] = None,
    conflict_limit: Optional[int] = None,
    timeout: Optional[float] = None,
    obs: Optional[Observability] = None,
    produce_proofs: bool = False,
    produce_unsat_cores: bool = False,
    share_clauses: bool = False,
) -> PortfolioOutcome:
    """Race ``workers`` diversified solver processes over one script.

    The first worker whose whole script finishes with only definitive
    answers (``sat``/``unsat`` on every ``check-sat``) wins; the rest are
    cancelled cooperatively.  If no worker is definitive (conflict limit
    or ``timeout`` exhausted everywhere), the first completed result is
    returned so callers still see per-check ``unknown`` reasons.  Raises
    :class:`~repro.errors.SolverError` only when *no* worker produced a
    result at all.

    ``configs`` overrides the default :meth:`SolverConfig.portfolio`
    lineup (its length then sets the worker count).  Remaining keywords
    mirror :func:`repro.engine.solve_script`.
    """
    if configs is not None:
        lineup = tuple(configs)
        workers = len(lineup)
    else:
        lineup = SolverConfig.portfolio(workers)
    if not lineup:
        raise ValueError("a portfolio needs at least one worker")
    if isinstance(source, Script):
        from .smtlib.printer import script_to_smtlib

        script_text = script_to_smtlib(source)
    else:
        # Parse in the parent so syntax errors surface once, here, rather
        # than as N identical worker failures.
        from .smtlib.parser import parse_script

        parse_script(source)
        script_text = source

    bundle = obs if obs is not None else Observability()
    tracer = bundle.tracer
    previous = set_current_tracer(tracer) if tracer is not None else None
    try:
        with trace_span("portfolio-race"):
            outcome = _race(
                lineup,
                script_text,
                conflict_limit,
                timeout,
                produce_proofs,
                produce_unsat_cores,
                share_clauses,
            )
    finally:
        if tracer is not None:
            set_current_tracer(previous)
    _register_metrics(bundle, outcome)
    return outcome


def _race(
    lineup: tuple[SolverConfig, ...],
    script_text: str,
    conflict_limit: Optional[int],
    timeout: Optional[float],
    produce_proofs: bool,
    produce_unsat_cores: bool,
    share_clauses: bool,
) -> PortfolioOutcome:
    ctx = multiprocessing.get_context()
    cancel = ctx.Event()
    results = ctx.Queue()
    outbox = ctx.Queue() if share_clauses and len(lineup) > 1 else None
    inboxes = (
        [ctx.Queue(maxsize=_INBOX_DEPTH) for _ in lineup]
        if outbox is not None
        else [None] * len(lineup)
    )
    procs = [
        ctx.Process(
            target=_worker_main,
            args=(
                index,
                config,
                script_text,
                conflict_limit,
                timeout,
                produce_proofs,
                produce_unsat_cores,
                cancel,
                results,
                outbox,
                inboxes[index],
            ),
            name=f"portfolio-w{index}",
        )
        for index, config in enumerate(lineup)
    ]
    relay_stop = threading.Event()
    relay_thread = None
    if outbox is not None:
        relay_thread = threading.Thread(
            target=_relay, args=(outbox, inboxes, relay_stop), daemon=True
        )

    started = monotonic()
    deadline = started + timeout if timeout is not None else None
    reported: dict[int, tuple[str, object, dict, float]] = {}
    winner: Optional[int] = None
    try:
        for proc in procs:
            proc.start()
        if relay_thread is not None:
            relay_thread.start()
        pending = set(range(len(procs)))
        while pending:
            try:
                index, status, payload, snapshot, elapsed = results.get(
                    timeout=0.2
                )
            except queue.Empty:
                if deadline is not None and monotonic() > deadline + _GRACE_SECONDS:
                    break
                if not any(procs[i].is_alive() for i in pending):
                    # Every unreported worker is already dead; one final
                    # drain catches results still in the queue's pipe.
                    try:
                        index, status, payload, snapshot, elapsed = results.get(
                            timeout=1.0
                        )
                    except queue.Empty:
                        break
                else:
                    continue
            pending.discard(index)
            reported[index] = (status, payload, snapshot, elapsed)
            if status == "ok" and _definitive(payload):
                winner = index
                break
    finally:
        cancel.set()
        race_elapsed = monotonic() - started
        # Drain any results that arrived while we were deciding, so late
        # finishers show up as "answered" rather than "cancelled".
        while True:
            try:
                index, status, payload, snapshot, elapsed = results.get_nowait()
            except (queue.Empty, OSError, EOFError):
                break
            reported.setdefault(index, (status, payload, snapshot, elapsed))
        terminated: set[int] = set()
        launched = [proc for proc in procs if proc.ident is not None]
        join_deadline = monotonic() + _JOIN_SECONDS
        for proc in launched:
            proc.join(timeout=max(0.0, join_deadline - monotonic()))
        for index, proc in enumerate(procs):
            if proc.ident is not None and proc.is_alive():
                proc.terminate()
                terminated.add(index)
        for proc in launched:
            if proc.is_alive():
                proc.join(timeout=_JOIN_SECONDS)
            try:
                proc.close()
            except ValueError:
                pass  # refused to die even after terminate(); leak the handle
        relay_stop.set()
        if relay_thread is not None:
            relay_thread.join(timeout=2.0)
        for q in [results, outbox, *inboxes]:
            if q is not None:
                q.cancel_join_thread()
                q.close()

    if winner is None:
        # No definitive answer: fall back to the first completed result so
        # per-check unknown reasons (timeout/conflict-limit) still surface.
        for index in sorted(reported):
            if reported[index][0] == "ok":
                winner = index
                break
    if winner is None:
        errors = "; ".join(
            f"w{index}: {reported[index][1]}"
            for index in sorted(reported)
            if reported[index][0] == "error"
        )
        raise SolverError(
            "portfolio produced no result"
            + (f" — worker errors: {errors}" if errors else "")
        )

    reports = []
    for index, config in enumerate(lineup):
        if index in reported:
            status, payload, snapshot, elapsed = reported[index]
            if status == "error":
                reports.append(
                    WorkerReport(index, config, "error", elapsed, str(payload))
                )
            else:
                label = "won" if index == winner else "answered"
                reports.append(
                    WorkerReport(index, config, label, elapsed, None, snapshot)
                )
        elif index in terminated:
            reports.append(WorkerReport(index, config, "terminated"))
        else:
            reports.append(WorkerReport(index, config, "cancelled"))
    return PortfolioOutcome(
        result=reported[winner][1],
        winner=winner,
        reports=tuple(reports),
        elapsed=race_elapsed,
    )


def _register_metrics(bundle: Observability, outcome: PortfolioOutcome) -> None:
    """Expose the race under the parent metrics registry:
    ``portfolio.*`` win attribution and ``portfolio.w<i>.*`` per-worker
    final counters."""
    metrics = bundle.metrics
    metrics.unregister_prefix("portfolio")
    winner = outcome.reports[outcome.winner]
    attribution = {
        "workers": len(outcome.reports),
        "winner": outcome.winner,
        f"wins.{winner.config.name}": 1,
        "cancelled": sum(
            1 for r in outcome.reports if r.status in ("cancelled", "terminated")
        ),
        "errors": sum(1 for r in outcome.reports if r.status == "error"),
        "elapsed_ms": int(outcome.elapsed * 1000),
    }
    metrics.register_source(
        "portfolio", lambda: attribution, gauges=("workers", "winner", "elapsed_ms")
    )
    for report in outcome.reports:
        source = dict(report.metrics)
        source["won"] = 1 if report.index == outcome.winner else 0
        metrics.register_source(
            f"portfolio.w{report.index}", lambda src=source: src
        )


__all__ = [
    "PortfolioOutcome",
    "WorkerReport",
    "solve_portfolio",
]
