"""Script execution: run SMT-LIB commands and *decide* ``check-sat``.

The engine executes a :class:`~repro.smtlib.script.Script` command by
command, maintaining the assertion stack (``push``/``pop``), the scoped
``define-fun`` table and the declared constants.  Each ``check-sat`` runs
the solving pipeline:

1. **Inline** ``define-fun`` applications (beta reduction over the
   hash-consed DAG) and **expand** ``let`` binders, so the remaining term
   mentions declared symbols only.
2. **Simplify** via :func:`repro.smtlib.simplify.simplify` — this is where
   the PR-2 evaluator pre-folds ground theory atoms (``(< 1 2)`` → ``true``)
   through the shared literal operator table.
3. **NNF** via :func:`repro.smtlib.simplify.to_nnf` (polarity-tracked, so
   shared DAG nodes stay shared), then **Tseitin-encode** the boolean
   skeleton (:mod:`repro.smtlib.cnf`) and run the CDCL solver
   (:mod:`repro.sat`).

Answer semantics keep the engine *sound*:

* ``unsat`` is reported whenever the CNF is unsatisfiable.  Theory atoms
  (``(< x y)``, uninterpreted applications, quantified subterms) are
  abstracted to fresh propositional variables — an over-approximation of
  satisfiability, so propositional unsatisfiability implies real
  unsatisfiability.
* ``sat`` is reported (with a model) only when the skeleton is genuinely
  propositional: every atom is a boolean :class:`Symbol` and every free
  symbol of the asserted terms is ``Bool``-sorted.  The model then makes
  :func:`repro.smtlib.evaluate.evaluate` return ``true`` on every asserted
  term — the oracle the test suite enforces.
* Anything else (a propositionally satisfiable abstraction of theory
  structure, or an exhausted conflict budget) is ``unknown``.

``define-fun`` expansion substitutes by name and is not capture-avoiding
against quantifiers inside definition bodies; the engine targets
quantifier-free skeletons, where no capture can occur.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from .errors import SolverError
from .sat import UNKNOWN, UNSAT, Solver
from .smtlib.cnf import TseitinEncoder
from .smtlib.parser import parse_script
from .smtlib.printer import constant_to_smtlib, symbol_to_smtlib, term_to_smtlib
from .smtlib.script import (
    Assert,
    CheckSat,
    Command,
    DeclareConst,
    DeclareFun,
    DefineFun,
    Exit,
    GetModel,
    GetValue,
    Pop,
    Push,
    Script,
)
from .smtlib.evaluate import evaluate
from .smtlib.simplify import simplify, to_nnf
from .smtlib.sorts import BOOL, Sort
from .smtlib.terms import (
    FALSE,
    TRUE,
    Apply,
    Constant,
    Let,
    Quantifier,
    Symbol,
    Term,
    bool_const,
    substitute,
)


@dataclass
class CheckSatResult:
    """The outcome of one ``(check-sat)``.

    ``assertions`` are the asserted terms active at the check, with
    ``define-fun`` applications inlined and ``let`` binders expanded —
    exactly the terms a ``sat`` model is guaranteed to satisfy under
    :func:`~repro.smtlib.evaluate.evaluate`.  ``reason`` explains an
    ``unknown`` answer.  ``stats`` carries solver counters plus the CNF
    shape (``vars``, ``clauses``, ``atoms``).
    """

    answer: str
    model: Optional[dict[str, Constant]] = None
    assertions: tuple[Term, ...] = ()
    reason: Optional[str] = None
    stats: dict[str, int] = field(default_factory=dict)


@dataclass
class ScriptResult:
    """Everything one script run produced: per-``check-sat`` results and
    the printable solver output (one entry per output-producing command)."""

    check_results: list[CheckSatResult] = field(default_factory=list)
    output: list[str] = field(default_factory=list)

    @property
    def answers(self) -> list[str]:
        return [result.answer for result in self.check_results]


class _Frame:
    """One assertion-stack level: assertions plus scoped declarations."""

    __slots__ = ("assertions", "definitions", "consts")

    def __init__(self) -> None:
        self.assertions: list[Term] = []
        self.definitions: dict[str, DefineFun] = {}
        self.consts: dict[str, Sort] = {}


class Engine:
    """Executes scripts; one instance per run (:meth:`run` resets state).

    ``conflict_limit`` bounds the CDCL search per ``check-sat``; when
    exhausted the answer is ``unknown`` with reason ``conflict-limit``.
    """

    def __init__(self, conflict_limit: Optional[int] = None) -> None:
        self._conflict_limit = conflict_limit
        self._frames: list[_Frame] = [_Frame()]
        self._last: Optional[CheckSatResult] = None

    # -- command loop -------------------------------------------------------

    def run(self, script: Script) -> ScriptResult:
        """Execute every command of ``script`` and collect the results."""
        self._frames = [_Frame()]
        self._last = None
        result = ScriptResult()
        for command in script.commands:
            if isinstance(command, Exit):
                break
            self._execute(command, result)
        return result

    def _execute(self, command: Command, result: ScriptResult) -> None:
        if isinstance(command, Assert):
            self._frames[-1].assertions.append(command.term)
        elif isinstance(command, CheckSat):
            check = self._check_sat()
            self._last = check
            result.check_results.append(check)
            result.output.append(check.answer)
        elif isinstance(command, GetModel):
            result.output.append(self._get_model())
        elif isinstance(command, GetValue):
            result.output.append(self._get_value(command.terms))
        elif isinstance(command, Push):
            for _ in range(command.levels):
                self._frames.append(_Frame())
        elif isinstance(command, Pop):
            if command.levels >= len(self._frames):
                raise SolverError(
                    f"cannot pop {command.levels} level(s) at depth {len(self._frames)}"
                )
            del self._frames[len(self._frames) - command.levels :]
        elif isinstance(command, DefineFun):
            self._frames[-1].definitions[command.name] = command
        elif isinstance(command, DeclareConst):
            self._frames[-1].consts[command.name] = command.sort
        elif isinstance(command, DeclareFun):
            if not command.params:
                self._frames[-1].consts[command.name] = command.result
        # set-logic / set-option / set-info / declare-sort need no action.

    # -- the check-sat pipeline ---------------------------------------------

    def _check_sat(self) -> CheckSatResult:
        definitions: dict[str, DefineFun] = {}
        for frame in self._frames:
            definitions.update(frame.definitions)
        inline_memo: dict[tuple[Term, frozenset[str]], Term] = {}
        let_memo: dict[Term, Term] = {}
        prepared: list[Term] = []
        for frame in self._frames:
            for term in frame.assertions:
                term = _inline_definitions(term, definitions, frozenset(), inline_memo)
                term = _expand_lets(term, let_memo)
                prepared.append(term)
        prepared_tuple = tuple(prepared)

        simplified = [simplify(term) for term in prepared]
        if any(term is FALSE for term in simplified):
            stats = dict.fromkeys(Solver().stats, 0)
            stats.update(vars=0, clauses=0, atoms=0, trivial=1)
            return CheckSatResult("unsat", assertions=prepared_tuple, stats=stats)
        active = [term for term in simplified if term is not TRUE]

        encoder = TseitinEncoder()
        for term in active:
            encoder.assert_term(to_nnf(term))
        formula = encoder.formula

        solver = Solver(formula.num_vars)
        for clause in formula.clauses:
            solver.add_clause(clause)
        answer = solver.solve(self._conflict_limit)
        stats = dict(solver.stats)
        stats.update(
            vars=formula.num_vars,
            clauses=len(formula.clauses),
            atoms=formula.num_atoms,
        )

        if answer == UNSAT:
            return CheckSatResult("unsat", assertions=prepared_tuple, stats=stats)
        if answer == UNKNOWN:
            return CheckSatResult(
                "unknown",
                assertions=prepared_tuple,
                reason="conflict-limit",
                stats=stats,
            )

        # Propositionally satisfiable.  Only claim real satisfiability when
        # the problem was genuinely propositional.
        abstract = [atom for atom in formula.atom_vars if not isinstance(atom, Symbol)]
        if abstract:
            return CheckSatResult(
                "unknown",
                assertions=prepared_tuple,
                reason="abstracted-atoms",
                stats=stats,
            )
        free: dict[str, Sort] = {}
        for term in prepared:
            free.update(term.free_symbols())
        if any(sort != BOOL for sort in free.values()):
            return CheckSatResult(
                "unknown",
                assertions=prepared_tuple,
                reason="non-boolean-symbols",
                stats=stats,
            )

        assert solver.model is not None
        model: dict[str, Constant] = {}
        for atom, var in formula.atom_vars.items():
            assert isinstance(atom, Symbol)
            model[atom.name] = bool_const(solver.model[var])
        # Symbols the simplifier eliminated are don't-cares; declared
        # boolean constants the assertions never mention likewise.
        for name in free:
            model.setdefault(name, FALSE)
        for frame in self._frames:
            for name, sort in frame.consts.items():
                if sort == BOOL:
                    model.setdefault(name, FALSE)
        return CheckSatResult("sat", model=model, assertions=prepared_tuple, stats=stats)

    # -- model queries ------------------------------------------------------

    def _get_model(self) -> str:
        if self._last is None or self._last.model is None:
            return '(error "no model available: last check-sat was not sat")'
        lines = ["(model"]
        for name in sorted(self._last.model):
            value = self._last.model[name]
            lines.append(
                f"  (define-fun {symbol_to_smtlib(name)} () Bool"
                f" {constant_to_smtlib(value)})"
            )
        lines.append(")")
        return "\n".join(lines)

    def _get_value(self, terms: tuple[Term, ...]) -> str:
        if self._last is None or self._last.model is None:
            return '(error "no model available: last check-sat was not sat")'
        definitions: dict[str, DefineFun] = {}
        for frame in self._frames:
            definitions.update(frame.definitions)
        inline_memo: dict[tuple[Term, frozenset[str]], Term] = {}
        let_memo: dict[Term, Term] = {}
        pairs = []
        for term in terms:
            prepared = _expand_lets(
                _inline_definitions(term, definitions, frozenset(), inline_memo), let_memo
            )
            try:
                value = evaluate(prepared, self._last.model)
            except Exception as exc:  # noqa: BLE001 - reported, not swallowed
                return f'(error "cannot evaluate {term_to_smtlib(term)}: {exc}")'
            pairs.append(f"({term_to_smtlib(term)} {constant_to_smtlib(value)})")
        return "({})".format(" ".join(pairs))


# ---------------------------------------------------------------------------
# Definition inlining and let expansion.
# ---------------------------------------------------------------------------


def _inline_definitions(
    term: Term,
    definitions: dict[str, DefineFun],
    shadowed: frozenset[str],
    memo: dict[tuple[Term, frozenset[str]], Term],
) -> Term:
    """Beta-reduce every application (or nullary occurrence) of a defined
    function.  ``shadowed`` holds binder names that hide same-named
    definitions below them."""
    if not definitions:
        return term
    key = (term, shadowed)
    cached = memo.get(key)
    if cached is not None:
        return cached
    result = _inline_node(term, definitions, shadowed, memo)
    memo[key] = result
    return result


def _inline_node(
    term: Term,
    definitions: dict[str, DefineFun],
    shadowed: frozenset[str],
    memo: dict[tuple[Term, frozenset[str]], Term],
) -> Term:
    if isinstance(term, Constant):
        return term
    if isinstance(term, Symbol):
        definition = definitions.get(term.name)
        if definition is not None and not definition.params and term.name not in shadowed:
            return _inline_definitions(definition.body, definitions, frozenset(), memo)
        return term
    if isinstance(term, Apply):
        rewritten = []
        for arg in term.args:
            rewritten.append(_inline_definitions(arg, definitions, shadowed, memo))
        args = tuple(rewritten)
        definition = definitions.get(term.op)
        if definition is not None and not term.indices and term.op not in shadowed:
            body = _inline_definitions(definition.body, definitions, frozenset(), memo)
            mapping = {name: arg for (name, _), arg in zip(definition.params, args)}
            return substitute(body, mapping)
        if args == term.args:
            return term
        return Apply(term.op, args, term.sort, term.indices)
    if isinstance(term, Quantifier):
        inner = shadowed | {name for name, _ in term.bindings}
        body = _inline_definitions(term.body, definitions, inner, memo)
        if body is term.body:
            return term
        return Quantifier(term.kind, term.bindings, body)
    if isinstance(term, Let):
        bindings = tuple(
            (name, _inline_definitions(value, definitions, shadowed, memo))
            for name, value in term.bindings
        )
        inner = shadowed | {name for name, _ in term.bindings}
        body = _inline_definitions(term.body, definitions, inner, memo)
        return Let(bindings, body)
    raise TypeError(f"unknown term node: {term!r}")


def _expand_lets(term: Term, memo: dict[Term, Term]) -> Term:
    """Substitute every ``let`` binder away (parallel-let semantics)."""
    cached = memo.get(term)
    if cached is not None:
        return cached
    if isinstance(term, (Constant, Symbol)):
        result: Term = term
    elif isinstance(term, Apply):
        rewritten = []
        for arg in term.args:
            rewritten.append(_expand_lets(arg, memo))
        args = tuple(rewritten)
        result = term if args == term.args else Apply(term.op, args, term.sort, term.indices)
    elif isinstance(term, Quantifier):
        body = _expand_lets(term.body, memo)
        result = term if body is term.body else Quantifier(term.kind, term.bindings, body)
    elif isinstance(term, Let):
        mapping = {
            name: _expand_lets(value, memo) for name, value in term.bindings
        }
        body = _expand_lets(term.body, memo)
        result = substitute(body, mapping)
    else:
        raise TypeError(f"unknown term node: {term!r}")
    memo[term] = result
    return result


# ---------------------------------------------------------------------------
# Public entry points.
# ---------------------------------------------------------------------------


def run_script(
    source: Union[str, Script], conflict_limit: Optional[int] = None
) -> ScriptResult:
    """Parse (when given text) and execute a script; return the full
    :class:`ScriptResult` including printable output."""
    script = parse_script(source) if isinstance(source, str) else source
    return Engine(conflict_limit=conflict_limit).run(script)


def solve_script(
    source: Union[str, Script], conflict_limit: Optional[int] = None
) -> list[CheckSatResult]:
    """Execute a script and return one :class:`CheckSatResult` per
    ``(check-sat)``, in script order."""
    return run_script(source, conflict_limit=conflict_limit).check_results


__all__ = [
    "CheckSatResult",
    "ScriptResult",
    "Engine",
    "run_script",
    "solve_script",
]
