"""The persistent atom ↔ SAT-variable registry.

One :class:`AtomRegistry` lives for the whole life of an
:class:`~repro.engine.Engine`: it wraps a single
:class:`~repro.smtlib.cnf.TseitinEncoder` whose node → literal memo and
variable counter survive across ``check-sat`` calls.  Because terms are
hash-consed, re-encoding an unchanged assertion is a dictionary hit — the
second ``check-sat`` on the same assertion set performs *zero* Tseitin
work, which is exactly the invariant the incremental tests assert through
the ``tseitin_new_vars`` / ``tseitin_new_clauses`` statistics.

The registry also allocates frame *selector* variables from the same
space, so solver, encoder and engine agree on one numbering, and exposes
``atom_vars`` — the stable atom → variable map the engine inverts (over
the owned subset) for the theory hook.
"""

from __future__ import annotations

from ..smtlib.cnf import TseitinEncoder
from ..smtlib.terms import Term


class AtomRegistry:
    """Stable atom ↔ variable mapping plus incremental clause draining."""

    def __init__(self) -> None:
        self._encoder = TseitinEncoder()
        self._clause_cursor = 0

    @property
    def num_vars(self) -> int:
        """Variables allocated so far (atoms, auxiliaries and selectors)."""
        return self._encoder.formula.num_vars

    @property
    def atom_vars(self) -> dict[Term, int]:
        """Atom term → variable, for every atom ever encoded."""
        return self._encoder.formula.atom_vars

    def encode(self, term: Term) -> int:
        """The root literal for a boolean term (memoized across checks)."""
        return self._encoder.encode(term)

    def new_selector(self) -> int:
        """A fresh selector variable in the shared numbering."""
        return self._encoder.new_var()

    def drain_clauses(self) -> list[tuple[int, ...]]:
        """Gate clauses produced since the previous drain."""
        clauses = self._encoder.formula.clauses
        fresh = clauses[self._clause_cursor :]
        self._clause_cursor = len(clauses)
        return fresh


__all__ = ["AtomRegistry"]
