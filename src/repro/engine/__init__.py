"""Script execution: the DPLL(T) engine.

The engine layer is split by responsibility:

* :mod:`repro.engine.context` — assertion-stack :class:`Frame` bookkeeping
  and term preparation (``define-fun`` inlining, ``let`` expansion,
  n-ary equality expansion, arithmetic equality/chain splitting).
* :mod:`repro.engine.atoms` — the persistent atom ↔ SAT-variable
  registry wrapping one long-lived Tseitin encoder, so unchanged
  assertions are never re-encoded across ``check-sat`` calls.
* :mod:`repro.engine.solve` — :class:`Engine` itself: the incremental
  CDCL(T) loop with selector-literal ``push``/``pop``, the theory-hook
  adapter, model assembly and validation.
* :mod:`repro.engine.result` — :class:`CheckSatResult` /
  :class:`ScriptResult`.

``python -m repro`` is the CLI front end.
"""

from .result import CheckSatResult, ScriptResult
from .solve import Engine, run_script, solve_script

__all__ = [
    "CheckSatResult",
    "ScriptResult",
    "Engine",
    "run_script",
    "solve_script",
]
