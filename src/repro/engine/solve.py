"""The incremental CDCL(T) solve loop.

:class:`Engine` executes a script command by command.  Unlike the PR-3
monolith it keeps **one** SAT solver and **one** Tseitin encoder alive for
the whole run:

* Every assertion-stack frame owns a *selector* variable; an assertion in
  frame ``i`` is encoded once as the guarded clause ``(¬sel_i ∨ root)``
  and every ``check-sat`` solves under the assumptions ``sel_0 … sel_k``
  of the live frames.  ``pop`` retires a frame by adding the permanent
  unit ``¬sel_i`` — its clauses become vacuous, while learned clauses
  (which may mention selectors) stay valid and keep pruning later checks.
* The encoder's node → literal memo is keyed on hash-consed terms, so a
  ``check-sat`` after ``push``/``pop`` re-encodes **nothing** for
  unchanged assertions (the ``tseitin_new_vars`` statistic is 0).
* Theory reasoning is layered in through :class:`repro.sat.TheoryHook`:
  the hook keeps a :class:`~repro.theory.TheoryComposite` — linear
  arithmetic (:class:`~repro.theory.ArithTheory`) routed ahead of
  congruence closure (:class:`~repro.theory.EufTheory`) — synchronized
  with the SAT trail via per-literal checkpoints (``push`` on assert,
  ``pop`` on backtrack) and translates theory conflicts into blocking
  clauses over the atom variables.

Answer semantics stay *sound*:

* ``unsat`` — the guarded CNF plus theory lemmas is unsatisfiable under
  the live selectors.  Atoms no theory owns are abstracted (an
  over-approximation), so propositional unsatisfiability implies real
  unsatisfiability.
* ``sat`` — only when every atom of the live assertions is either a
  boolean symbol (decided by the SAT core) or owned by a theory plugin,
  *and* the assembled model — boolean values, rational/integer simplex
  values, congruence-class values and uninterpreted-function graphs —
  makes
  :func:`~repro.smtlib.evaluate.evaluate` return ``true`` on every live
  assertion.  The validation runs inside the engine; a model that cannot
  be built or checked demotes the answer to ``unknown``.
* anything else — ``unknown`` with a reason (``abstracted-atoms``,
  ``conflict-limit``, ``timeout``, ``cancelled``,
  ``branch-budget-exhausted``, ``model-construction-failed``,
  ``model-validation-failed``).
"""

from __future__ import annotations

from time import monotonic
from typing import Callable, Iterable, Optional, Sequence, Union

from ..errors import EvaluationError, SolverError
from ..limits import ensure_recursion_limit
from ..obs import Observability
from ..obs.events import EventLog
from ..obs.metrics import MetricsRegistry
from ..obs.profile import phase_totals
from ..obs.spans import get_current_tracer, set_current_tracer, trace_span
from ..proof.log import INPUT, Proof, ProofLog, ProofStep
from ..sat import SAT, UNKNOWN, UNSAT, Solver, SolverConfig, TheoryHook, TheoryLemma
from ..sat.dimacs import to_dimacs
from ..smtlib.cnf import skeleton_atoms
from ..smtlib.evaluate import FunctionInterpretation, evaluate
from ..smtlib.parser import parse_script
from ..smtlib.printer import (
    constant_to_smtlib,
    sort_to_smtlib,
    symbol_to_smtlib,
    term_to_smtlib,
)
from ..smtlib.script import (
    Assert,
    CheckSat,
    Command,
    DeclareConst,
    DeclareFun,
    DefineFun,
    Exit,
    GetModel,
    GetUnsatCore,
    GetValue,
    Pop,
    Push,
    Script,
    SetInfo,
    SetOption,
)
from ..smtlib.simplify import simplify, to_nnf
from ..smtlib.sorts import BOOL, Sort
from ..smtlib.terms import (
    FALSE,
    TRUE,
    Apply,
    Constant,
    Symbol,
    Term,
    bool_const,
    intern_stats,
)
from ..theory import (
    ArithTheory,
    ArraysState,
    ArraysTheory,
    BvBlaster,
    EufTheory,
    SortValueAllocator,
    Theory,
    TheoryComposite,
)
from .atoms import AtomRegistry
from .context import (
    Frame,
    expand_arithmetic,
    expand_equalities,
    expand_lets,
    inline_definitions,
)
from .result import CheckSatResult, ScriptResult


class _TheorySync(TheoryHook):
    """Keeps a :class:`Theory` synchronized with the SAT trail.

    The hook re-reads the trail at every callback, pops the theory to the
    longest common prefix with what it asserted last time (per-literal
    checkpoints make this exact), asserts the new suffix, and converts
    any :class:`~repro.theory.TheoryConflict` into a blocking clause over
    the atom variables.
    """

    def __init__(
        self,
        theory: Theory,
        var_to_atom: dict[int, Term],
        atom_vars: dict[Term, int],
        events: Optional[EventLog] = None,
        encode_atom: Optional[Callable[[Term], int]] = None,
    ) -> None:
        self._theory = theory
        self._var_to_atom = var_to_atom
        self._atom_vars = atom_vars
        self._events = events
        self._encode_atom = encode_atom
        self._synced: list[int] = []

    def on_check(self, solver: Solver, final: bool) -> Iterable[Sequence[int]]:
        # One merged span per search: the hook fires at every
        # decision-level fixpoint, so distinct spans would explode.
        with trace_span("theory-check", merge=True):
            return self._sync_and_check(solver, final)

    def _sync_and_check(
        self, solver: Solver, final: bool
    ) -> Iterable[Sequence[int]]:
        trail = solver.trail
        synced = self._synced
        # The solver's low watermark bounds how far the trail can have
        # been rewound since the last callback, so synchronization costs
        # O(popped + appended), not a prefix rescan per fixpoint.
        keep = min(len(synced), solver.trail_watermark())
        if keep < len(synced):
            self._theory.pop(len(synced) - keep)
            del synced[keep:]
        conflict = None
        for lit in trail[len(synced) :]:
            self._theory.push()
            synced.append(lit)
            atom = self._var_to_atom.get(abs(lit))
            if atom is not None:
                conflict = self._theory.assert_literal(atom, lit > 0)
                if conflict is not None:
                    break
        if conflict is None and final:
            conflict = self._theory.check()
            if conflict is None:
                # Lazy instantiation: valid clauses the theory wants the
                # SAT core to case-split on (new atoms encode on the fly).
                return self._lemma_clauses()
        if conflict is None:
            return ()
        clause = []
        for atom, positive in conflict.literals:
            var = self._atom_vars[atom]
            clause.append(-var if positive else var)
        if self._events is not None:
            self._events.emit(
                "theory-conflict",
                plugin=conflict.source or self._theory.name,
                size=len(clause),
            )
        # TheoryLemma tags the clause with its plugin so proof logging
        # records the lemma's provenance (a plain list works identically
        # when no proof log is attached).
        return (TheoryLemma(clause, source=conflict.source or self._theory.name),)

    def _lemma_clauses(self) -> list[TheoryLemma]:
        lemmas = self._theory.pending_lemmas()
        if not lemmas:
            return []
        clauses: list[TheoryLemma] = []
        for lemma in lemmas:
            clause = []
            for atom, positive in lemma.literals:
                var = self._atom_vars.get(atom)
                if var is None:
                    assert self._encode_atom is not None, (
                        "theory emitted a lemma over a new atom but the "
                        "engine provided no encoder"
                    )
                    var = self._encode_atom(atom)
                    if self._theory.owns_atom(atom):
                        # Future syncs must route the new atom's trail
                        # literals back to the theory.
                        self._var_to_atom[var] = atom
                clause.append(var if positive else -var)
            clauses.append(
                TheoryLemma(clause, source=lemma.source or self._theory.name)
            )
        return clauses


class Engine:
    """Executes scripts; one instance per run (:meth:`run` resets state).

    ``conflict_limit`` bounds the CDCL search per ``check-sat`` (exhausted
    → ``unknown`` with reason ``conflict-limit``).  ``theory_eager``
    controls whether the theory hook runs at every decision-level
    fixpoint (the default) or only at full assignments.  ``obs`` plugs an
    :class:`~repro.obs.Observability` bundle in: its metrics registry
    absorbs the SAT-core, theory-plugin, intern-table and engine counters
    under one namespace; its tracer (when present) is installed for the
    duration of :meth:`run` and records per-phase spans; its event log
    (when present) receives the structured search events.  Without an
    explicit bundle the engine still keeps a metrics registry (cheap:
    plain-dict sources, no hot-path indirection) but traces and logs
    nothing.

    ``produce_proofs`` attaches a :class:`~repro.proof.ProofLog` to the
    SAT core so every ``unsat`` :class:`CheckSatResult` carries a
    checkable clause proof (``(set-option :produce-proofs true)`` before
    the first clause ships does the same).  ``produce_unsat_cores``
    enables ``:named``-assertion core extraction and ``(get-unsat-core)``
    (equivalent to ``(set-option :produce-unsat-cores true)``, which may
    also toggle it mid-script).

    ``config`` selects the SAT core's search strategy (see
    :class:`~repro.sat.SolverConfig`; the default reproduces the
    historical behavior exactly).  ``timeout`` is a wall-clock budget in
    seconds for the whole :meth:`run` — once it expires, in-flight and
    subsequent ``check-sat`` commands answer ``unknown`` with reason
    ``timeout``.  ``interrupt`` is a zero-argument callable polled at
    search boundaries; returning true stops the current search with
    reason ``cancelled`` (the portfolio's cooperative-cancellation hook).
    ``on_restart``/``share_max_lbd`` wire up learned-clause sharing: the
    callback fires at every restart with the solver at decision level 0,
    and a non-``None`` LBD bound turns on export of short learnt clauses
    over input-safe variables (see :meth:`~repro.sat.Solver.drain_exported`).
    """

    def __init__(
        self,
        conflict_limit: Optional[int] = None,
        theory_eager: bool = True,
        obs: Optional[Observability] = None,
        produce_proofs: bool = False,
        produce_unsat_cores: bool = False,
        config: Optional[SolverConfig] = None,
        timeout: Optional[float] = None,
        interrupt: Optional[Callable[[], bool]] = None,
        on_restart: Optional[Callable[[Solver], None]] = None,
        share_max_lbd: Optional[int] = None,
    ) -> None:
        self._conflict_limit = conflict_limit
        self._theory_eager = theory_eager
        self._obs = obs if obs is not None else Observability()
        self._produce_proofs = produce_proofs
        self._produce_cores_default = produce_unsat_cores
        self._config = config
        self._timeout = timeout
        self._interrupt = interrupt
        self._on_restart = on_restart
        self._share_max_lbd = share_max_lbd
        self._deadline: Optional[float] = None
        self._reset()

    def _reset(self) -> None:
        self._frames: list[Frame] = [Frame()]
        self._solver = Solver(config=self._config)
        self._solver.events = self._obs.events
        self._solver.on_restart = self._on_restart
        self._solver.share_max_lbd = self._share_max_lbd
        self._registry = AtomRegistry()
        # The blaster and the array-lemma state outlive individual checks:
        # blasted circuits are memoized on hash-consed terms, and emitted
        # case-split lemmas are permanent clauses that must not re-ship.
        self._bv = BvBlaster()
        self._arrays_state = ArraysState()
        self._array_atom_memo: dict[Term, bool] = {}
        self._clauses_shipped = 0
        self._guard_clauses = 0
        self._retired_selectors = 0
        self._checks_run = 0
        self._last: Optional[CheckSatResult] = None
        self._status: Optional[str] = None
        self._produce_cores = self._produce_cores_default
        metrics = self._obs.metrics
        metrics.unregister_prefix("proof")
        if self._produce_proofs:
            self._enable_proofs()
        metrics.register_source("sat", lambda: self._solver.stats)
        metrics.register_source("intern", intern_stats, gauges=("live",))
        metrics.register_source(
            "engine",
            self._engine_counters,
            gauges=("vars", "learned_db", "frames"),
        )

    def _enable_proofs(self) -> None:
        """Attach a proof log to the SAT core (idempotent).

        Raises :class:`~repro.errors.SolverError` once clauses have
        shipped: a proof must cover every clause the solver ever saw, so
        late enabling would certify against an incomplete axiom set."""
        if self._solver.proof is not None:
            return
        if self._clauses_shipped:
            raise SolverError(
                ":produce-proofs must be enabled before the first check-sat "
                "ships clauses to the solver"
            )
        self._solver.proof = ProofLog()
        self._obs.metrics.register_source("proof", self._proof_counters)

    def _proof_counters(self) -> dict[str, int]:
        proof = self._solver.proof
        return proof.stats if proof is not None else {}

    def _engine_counters(self) -> dict[str, int]:
        return {
            "clauses_shipped": self._clauses_shipped,
            "guard_clauses": self._guard_clauses,
            "retired_selectors": self._retired_selectors,
            "checks": self._checks_run,
            "vars": self._registry.num_vars,
            "learned_db": self._solver.num_learnts,
            "frames": len(self._frames),
        }

    # -- introspection -------------------------------------------------------

    @property
    def obs(self) -> Observability:
        """The engine's observability bundle (always present)."""
        return self._obs

    @property
    def metrics(self) -> MetricsRegistry:
        """The unified metrics registry; ``snapshot()`` gives every
        counter namespaced (``sat.*``, ``theory.*``, ``intern.*``,
        ``engine.*``)."""
        return self._obs.metrics

    @property
    def solver(self) -> Solver:
        """The persistent SAT core (live across ``check-sat`` calls)."""
        return self._solver

    @property
    def registry(self) -> AtomRegistry:
        """The persistent atom ↔ variable registry."""
        return self._registry

    @property
    def expected_status(self) -> Optional[str]:
        """The pending ``(set-info :status ...)`` value, if any.

        Following the benchmark convention, an annotation applies to the
        *next* ``check-sat`` (multi-query scripts re-annotate before each
        query); the check consumes it.
        """
        return self._status

    def dimacs(self, comments: Iterable[str] = ()) -> str:
        """The current solver CNF (gates, guards, facts and theory
        lemmas) in DIMACS format."""
        num_vars, clauses = self._solver.export_cnf()
        return to_dimacs(max(num_vars, self._registry.num_vars), clauses, comments)

    # -- command loop -------------------------------------------------------

    def run(self, script: Script) -> ScriptResult:
        """Execute every command of ``script`` and collect the results."""
        # The term pipeline recurses over term depth; guard here so every
        # caller (API, CLI, portfolio worker) gets the same headroom.
        ensure_recursion_limit()
        self._reset()
        if self._timeout is not None:
            self._deadline = monotonic() + self._timeout
        result = ScriptResult()
        tracer = self._obs.tracer
        previous = set_current_tracer(tracer) if tracer is not None else None
        try:
            for command in script.commands:
                if isinstance(command, Exit):
                    break
                self._execute(command, result)
        finally:
            if tracer is not None:
                set_current_tracer(previous)
        return result

    def _execute(self, command: Command, result: ScriptResult) -> None:
        if isinstance(command, Assert):
            frame = self._frames[-1]
            frame.assertions.append(command.term)
            frame.names.append(command.name)
            if command.name is not None:
                # The label aliases its term (SMT-LIB 2.6 §4.1.5), so
                # later occurrences of the name inline to the term.
                frame.definitions[command.name] = DefineFun(
                    command.name, (), BOOL, command.term
                )
        elif isinstance(command, CheckSat):
            check = self._check_sat()
            self._last = check
            result.check_results.append(check)
            result.output.append(check.answer)
        elif isinstance(command, GetModel):
            result.output.append(self._get_model())
        elif isinstance(command, GetUnsatCore):
            result.output.append(self._get_unsat_core())
        elif isinstance(command, GetValue):
            result.output.append(self._get_value(command.terms))
        elif isinstance(command, Push):
            for _ in range(command.levels):
                self._frames.append(Frame())
            if self._obs.events is not None:
                self._obs.events.emit(
                    "push", levels=command.levels, depth=len(self._frames)
                )
        elif isinstance(command, Pop):
            if command.levels >= len(self._frames):
                raise SolverError(
                    f"cannot pop {command.levels} level(s) at depth {len(self._frames)}"
                )
            for frame in self._frames[len(self._frames) - command.levels :]:
                if frame.selector is not None:
                    # Retire the frame: its guarded clauses become vacuous.
                    self._retired_selectors += 1
                    self._add_clause((-frame.selector,))
                for _name, selector in frame.named:
                    # Named assertions carry their own selector; retire
                    # those too so popped labels leave future cores.
                    self._retired_selectors += 1
                    self._add_clause((-selector,))
            del self._frames[len(self._frames) - command.levels :]
            if self._obs.events is not None:
                self._obs.events.emit(
                    "pop", levels=command.levels, depth=len(self._frames)
                )
        elif isinstance(command, DefineFun):
            self._frames[-1].definitions[command.name] = command
        elif isinstance(command, DeclareConst):
            self._frames[-1].consts[command.name] = command.sort
        elif isinstance(command, DeclareFun):
            if command.params:
                self._frames[-1].funs[command.name] = command.signature
            else:
                self._frames[-1].consts[command.name] = command.result
        elif isinstance(command, SetOption):
            if command.keyword == ":produce-unsat-cores":
                if command.value in ("true", "false"):
                    self._produce_cores = command.value == "true"
            elif command.keyword == ":produce-proofs":
                if command.value == "true":
                    self._enable_proofs()
                elif command.value == "false":
                    self._solver.proof = None
        elif isinstance(command, SetInfo):
            if command.keyword == ":status" and command.value in (
                "sat",
                "unsat",
                "unknown",
            ):
                self._status = command.value
        # set-logic / other set-option/set-info / declare-sort: no action.

    # -- incremental encoding ------------------------------------------------

    def _add_clause(self, clause: Sequence[int]) -> None:
        self._clauses_shipped += 1
        self._solver.add_clause(clause)

    def _prepare_frames(self) -> None:
        """Inline/expand/simplify assertions added since the last check."""
        definitions: dict[str, DefineFun] = {}
        for frame in self._frames:
            definitions.update(frame.definitions)
        inline_memo: dict[tuple[Term, frozenset[str]], Term] = {}
        let_memo: dict[Term, Term] = {}
        eq_memo: dict[Term, Term] = {}
        arith_memo: dict[Term, Term] = {}
        for frame in self._frames:
            while len(frame.prepared) < len(frame.assertions):
                term = frame.assertions[len(frame.prepared)]
                term = inline_definitions(term, definitions, frozenset(), inline_memo)
                term = expand_lets(term, let_memo)
                term = expand_equalities(term, eq_memo)
                term = expand_arithmetic(term, arith_memo)
                frame.prepared.append(term)
                with trace_span("simplify", merge=True):
                    frame.simplified.append(simplify(term))

    def _encode_frames(self) -> tuple[int, int, int]:
        """Encode assertions added since the last check; returns the
        ``(new roots, new vars, new clauses)`` statistics triple.

        ``new clauses`` counts only the drained Tseitin gate clauses —
        the per-assertion selector guards ``(¬sel ∨ root)`` are engine
        bookkeeping, tallied separately as ``engine.guard_clauses`` (the
        pre-registry plumbing folded them into ``tseitin_new_clauses``,
        overstating the encoder's output by one clause per root).
        """
        vars_before = self._registry.num_vars
        new_roots = 0
        new_clauses = 0
        for frame in self._frames:
            if frame.selector is None:
                frame.selector = self._registry.new_selector()
            while frame.encoded < len(frame.simplified):
                index = frame.encoded
                term = frame.simplified[index]
                frame.encoded += 1
                if term is TRUE or term is FALSE:
                    # TRUE constrains nothing; FALSE short-circuits in
                    # _check_sat before the solver ever runs.
                    frame.atom_lists.append(())
                    continue
                with trace_span("blast", merge=True):
                    term = self._bv.rewrite(term)
                if term is TRUE:
                    # The whole assertion folded away during blasting.
                    frame.atom_lists.append(())
                    continue
                # A blast to FALSE still encodes: the check already passed
                # the trivial-FALSE gate, so unsatisfiability must surface
                # through the solver (keeping the proof machinery uniform).
                nnf = to_nnf(term)
                root = self._registry.encode(nnf)
                frame.atom_lists.append(tuple(skeleton_atoms(nnf)))
                new_roots += 1
                for clause in self._registry.drain_clauses():
                    self._add_clause(clause)
                    new_clauses += 1
                name = frame.names[index]
                guard = frame.selector
                if name is not None:
                    # A named assertion is guarded by its own selector,
                    # assumed alongside the frame selectors, so the failed
                    # assumptions of an unsat answer name the core exactly.
                    guard = self._registry.new_selector()
                    frame.named.append((name, guard))
                self._guard_clauses += 1
                self._add_clause((-guard, root))
        self._solver.ensure_vars(self._registry.num_vars)
        return (new_roots, self._registry.num_vars - vars_before, new_clauses)

    def _encode_lemma_atom(self, atom: Term) -> int:
        """Allocate a SAT variable for an atom a theory lemma introduced
        mid-search.  Lemma atoms are always leaves (equalities, predicate
        applications), so encoding allocates a variable and no gate
        clauses; the assertion guards that invariant."""
        if self._share_max_lbd is not None:
            # Mid-search lemma atoms are the first point where variable
            # numbering can diverge between portfolio workers (which
            # trajectory hits which lemma first is config-dependent), so
            # clamp the clause-sharing export cap to the variables that
            # were allocated deterministically before this one.
            cap = self._solver.share_var_cap
            current = self._registry.num_vars
            if cap is None or cap > current:
                self._solver.share_var_cap = current
        var = self._registry.encode(atom)
        gates = self._registry.drain_clauses()
        assert not gates, "theory lemmas must range over atomic literals"
        self._solver.ensure_vars(self._registry.num_vars)
        return var

    def _mentions_arrays(self, atom: Term) -> bool:
        """True when the atom contains array structure (memoized)."""
        cached = self._array_atom_memo.get(atom)
        if cached is None:
            cached = any(
                node.sort.name == "Array"
                or (
                    isinstance(node, Apply)
                    and not node.indices
                    and node.op in ("select", "store")
                )
                for node in atom.walk()
            )
            self._array_atom_memo[atom] = cached
        return cached

    # -- the check-sat pipeline ---------------------------------------------

    @staticmethod
    def _legacy_stats(delta: dict[str, int]) -> dict[str, int]:
        """Flatten a namespaced metrics delta into the pre-registry
        ``CheckSatResult.stats`` key shape: ``sat.X`` → ``X`` and
        ``theory.<plugin>.X`` → ``<plugin>_X``.  ``intern.*`` and
        ``engine.*`` are registry-era additions with no legacy alias."""
        stats: dict[str, int] = {}
        for key, value in delta.items():
            if key.startswith("sat."):
                stats[key[4:]] = value
            elif key.startswith("theory."):
                plugin, _, counter = key[7:].partition(".")
                stats[f"{plugin}_{counter}"] = value
        return stats

    def _check_sat(self) -> CheckSatResult:
        index = self._checks_run
        events = self._obs.events
        if events is not None:
            events.emit("check-begin", index=index)
        tracer = get_current_tracer()
        if tracer is None:
            check = self._check_sat_inner()
        else:
            handle = tracer.span("check-sat")
            with handle:
                check = self._check_sat_inner()
            for path, row in phase_totals([handle.span]).items():
                if path == "check-sat":
                    check.phases["total"] = row["ns"]
                else:
                    check.phases[path.removeprefix("check-sat/")] = row["ns"]
        if events is not None:
            if check.answer == "unknown" and check.reason is not None:
                events.emit("unknown", index=index, reason=check.reason)
            events.emit("check-end", index=index, answer=check.answer)
        return check

    def _check_sat_inner(self) -> CheckSatResult:
        expected, self._status = self._status, None
        metrics = self._obs.metrics
        # Theory plugins are per-check; drop last check's sources so the
        # snapshot delta reports this check's plugins from zero.
        metrics.unregister_prefix("theory.")
        # The blaster is engine-lived (its memo must survive push/pop), so
        # it re-registers before the snapshot: the delta then reports this
        # check's blasting increments, like any persistent source.
        metrics.register_source("theory.bv", lambda: self._bv.stats)
        before = metrics.snapshot()
        # Increment after the snapshot so each check's delta shows
        # ``engine.checks == 1`` rather than a stale zero.
        self._checks_run += 1
        with trace_span("prepare"):
            self._prepare_frames()
        active_prepared = tuple(
            term for frame in self._frames for term in frame.prepared
        )

        if any(
            term is FALSE for frame in self._frames for term in frame.simplified
        ):
            # Nothing ran, so the delta is all-zero for the solver
            # counters — exactly the legacy zero-fill shape.
            delta = metrics.delta(before)
            stats = self._legacy_stats(delta)
            stats.update(
                vars=0,
                clauses=0,
                atoms=0,
                trivial=1,
                tseitin_new_vars=0,
                tseitin_new_clauses=0,
                encoded_assertions=0,
                learned_db=self._solver.num_learnts,
            )
            proof, core = self._trivial_unsat_artifacts()
            return CheckSatResult(
                "unsat",
                assertions=active_prepared,
                stats=stats,
                expected=expected,
                metrics=delta,
                proof=proof,
                unsat_core=core,
            )

        with trace_span("encode"):
            new_roots, new_vars, new_clauses = self._encode_frames()
        active_atoms: list[Term] = []
        seen_atoms: set[Term] = set()
        for frame in self._frames:
            for atoms in frame.atom_lists:
                for atom in atoms:
                    if atom not in seen_atoms:
                        seen_atoms.add(atom)
                        active_atoms.append(atom)

        uninterpreted = frozenset(
            name for frame in self._frames for name in frame.funs
        )
        # Theory dispatch: arithmetic first (numeric comparisons are
        # never uninterpreted structure), then congruence closure; the
        # composite routes each atom to the first plugin owning it.  When
        # any live atom carries array structure the congruence plugin is
        # the arrays extension (one e-graph subsuming EUF) — a separate
        # plugin would not see the index equalities closure needs.
        closure: Theory
        if any(self._mentions_arrays(atom) for atom in active_atoms):
            closure = ArraysTheory(
                uninterpreted=uninterpreted, state=self._arrays_state
            )
        else:
            closure = EufTheory(uninterpreted=uninterpreted)
        theory: Optional[Theory] = TheoryComposite((ArithTheory(), closure))
        owned: list[Term] = []
        unowned: list[Term] = []
        for atom in active_atoms:
            if isinstance(atom, Symbol) and atom.sort == BOOL:
                continue  # the SAT core owns plain boolean symbols
            if theory.owns_atom(atom):
                owned.append(atom)
            else:
                unowned.append(atom)
        if owned:
            atom_vars = self._registry.atom_vars
            var_to_atom = {atom_vars[atom]: atom for atom in owned}
            self._solver.theory = _TheorySync(
                theory,
                var_to_atom,
                atom_vars,
                self._obs.events,
                encode_atom=self._encode_lemma_atom,
            )
            self._solver.theory_eager = self._theory_eager
        else:
            theory = None
            self._solver.theory = None
        if theory is not None:
            # Register after the `before` snapshot: the plugins are fresh,
            # so the delta reports their counters as absolute per-check
            # values (what the legacy prefix-merge reported).
            theory.register_metrics(metrics)

        # _encode_frames allocated every selector; the filter is for typing.
        selectors = [
            frame.selector for frame in self._frames if frame.selector is not None
        ]
        named_live = [
            (name, selector)
            for frame in self._frames
            for name, selector in frame.named
        ]
        assumptions = selectors + [selector for _name, selector in named_live]
        with trace_span("search"):
            answer = self._solver.solve(
                conflict_limit=self._conflict_limit,
                assumptions=assumptions,
                deadline=self._deadline,
                interrupt=self._interrupt,
            )
        delta = metrics.delta(before)
        stats = self._legacy_stats(delta)
        stats.update(
            vars=self._registry.num_vars,
            clauses=self._clauses_shipped,
            atoms=len(active_atoms),
            trivial=0,
            tseitin_new_vars=new_vars,
            tseitin_new_clauses=new_clauses,
            encoded_assertions=new_roots,
            learned_db=self._solver.num_learnts,
        )

        def outcome(
            kind: str,
            reason: Optional[str] = None,
            model: Optional[dict[str, Constant]] = None,
            fun_interps: Optional[dict[str, FunctionInterpretation]] = None,
            proof: Optional[Proof] = None,
            unsat_core: Optional[tuple[str, ...]] = None,
        ) -> CheckSatResult:
            return CheckSatResult(
                kind,
                model=model,
                fun_interps=fun_interps,
                assertions=active_prepared,
                reason=reason,
                stats=stats,
                expected=expected,
                metrics=delta,
                proof=proof,
                unsat_core=unsat_core,
            )

        if answer == UNSAT:
            failed = self._solver.failed_assumptions or ()
            core: Optional[tuple[str, ...]] = None
            if self._produce_cores:
                failed_set = set(failed)
                core = tuple(
                    name for name, selector in named_live if selector in failed_set
                )
            proof: Optional[Proof] = None
            if self._solver.proof is not None:
                # The conclusion is the negated failed-assumption core —
                # exactly the solver's concluding RUP step, so the
                # snapshot is checkable as-is.
                with trace_span("proof"):
                    proof = self._solver.proof.snapshot(
                        tuple(-lit for lit in failed)
                    )
            return outcome("unsat", proof=proof, unsat_core=core)
        if answer == UNKNOWN:
            return outcome(
                "unknown", reason=self._solver.stop_reason or "conflict-limit"
            )
        assert answer == SAT
        if unowned:
            return outcome("unknown", reason="abstracted-atoms")

        with trace_span("model"):
            model, fun_interps, failure = self._build_model(theory, active_atoms)
        if failure is not None:
            return outcome("unknown", reason=failure)
        assert model is not None
        with trace_span("validate"):
            try:
                for term in active_prepared:
                    if evaluate(term, model, fun_interps) is not TRUE:
                        return outcome("unknown", reason="model-validation-failed")
            except EvaluationError:
                return outcome("unknown", reason="model-validation-failed")
        return outcome("sat", model=model, fun_interps=fun_interps)

    def _trivial_unsat_artifacts(
        self,
    ) -> tuple[Optional[Proof], Optional[tuple[str, ...]]]:
        """Proof and core for a check short-circuited by a ``FALSE``
        assertion (nothing was encoded or solved).

        The shared incremental proof log is left untouched — a popped
        ``FALSE`` frame must not poison later checks' proofs — so the
        proof is a standalone one-step argument: the simplified assertion
        *is* the empty clause.  The core is the first ``FALSE`` named
        assertion's label, or empty when an unnamed assertion is already
        ``FALSE`` on its own (the background alone is unsat)."""
        proof: Optional[Proof] = None
        if self._solver.proof is not None:
            proof = Proof(
                (ProofStep(INPUT, (), source="assert-false"),), conclusion=()
            )
        if not self._produce_cores:
            return proof, None
        named_false: Optional[str] = None
        for frame in self._frames:
            for index, term in enumerate(frame.simplified):
                if term is not FALSE:
                    continue
                name = frame.names[index]
                if name is None:
                    return proof, ()
                if named_false is None:
                    named_false = name
        return proof, (named_false,) if named_false is not None else ()

    def _build_model(
        self,
        theory: Optional[Theory],
        active_atoms: list[Term],
    ) -> tuple[
        Optional[dict[str, Constant]],
        dict[str, FunctionInterpretation],
        Optional[str],
    ]:
        """Assemble the script-level model from the SAT assignment, the
        theory's congruence classes and per-sort default values."""
        sat_model = self._solver.model
        assert sat_model is not None
        atom_vars = self._registry.atom_vars
        model: dict[str, Constant] = {}
        for atom in active_atoms:
            if isinstance(atom, Symbol) and atom.sort == BOOL:
                model[atom.name] = bool_const(sat_model[atom_vars[atom]])
        allocator = SortValueAllocator()
        free: dict[str, Sort] = {}
        for frame in self._frames:
            for term in frame.prepared:
                free.update(term.free_symbols())
        # Bit-vector symbols live in the model as their blasted bits;
        # decode them to word values (and drop the bits) before anything
        # defaults them.  Reserving the decoded constants keeps values
        # minted for other symbols of the same sort distinct from them.
        declared = {
            name for frame in self._frames for name in frame.consts
        }
        decoded: dict[str, Constant] = {}
        for name, value in self._bv.decode(model).items():
            if name in free or name in declared:
                decoded[name] = value
                allocator.reserve(value)
        for name in list(model):
            if self._bv.is_bit(name):
                del model[name]
        fun_interps: dict[str, FunctionInterpretation] = {}
        if theory is not None:
            theory_model = theory.model(allocator)
            if theory_model is None:
                reason = theory.incomplete_reason() or "model-construction-failed"
                return None, {}, reason
            model.update(theory_model.values)
            fun_interps = theory_model.functions
        # Decoded words override any congruence-class value for the same
        # symbol: the bits are hard SAT constraints, and validation will
        # catch a genuine circuit/e-graph disagreement.
        model.update(decoded)
        # A declared function whose every occurrence simplified away (a
        # trivial atom such as (= (f a) (f a))) never reaches the theory,
        # yet validation evaluates the *prepared* assertions, which still
        # apply it: give it an unconstrained default interpretation.
        for frame in self._frames:
            for name, signature in frame.funs.items():
                if name in fun_interps:
                    continue
                if signature.result == BOOL:
                    default: Optional[Constant] = FALSE
                else:
                    default = allocator.fresh(signature.result)
                    if default is None:
                        return None, {}, "model-construction-failed"
                fun_interps[name] = FunctionInterpretation({}, default)
        # The builtin ``select`` can drop out the same way (every read
        # sat inside a trivial atom): validation still evaluates it, so
        # back it with an unconstrained graph over the element sort.
        if "select" not in fun_interps:
            for frame in self._frames:
                for term in frame.prepared:
                    for node in term.walk():
                        if (
                            isinstance(node, Apply)
                            and node.op == "select"
                            and not node.indices
                        ):
                            if node.sort == BOOL:
                                select_default: Optional[Constant] = FALSE
                            else:
                                select_default = allocator.fresh(node.sort)
                            if select_default is not None:
                                fun_interps["select"] = FunctionInterpretation(
                                    {}, select_default
                                )
                            break
                    if "select" in fun_interps:
                        break
                if "select" in fun_interps:
                    break
        for name, sort in free.items():
            if name in model:
                continue
            if self._bv.is_bit(name):
                continue
            if sort == BOOL:
                model[name] = FALSE
                continue
            value = allocator.fresh(sort)
            if value is None:
                return None, {}, "model-construction-failed"
            model[name] = value
        # Declared-but-unused constants are don't-cares; give them values
        # anyway so (get-model) is total over the declarations.
        for frame in self._frames:
            for name, sort in frame.consts.items():
                if name in model:
                    continue
                if sort == BOOL:
                    model[name] = FALSE
                else:
                    value = allocator.fresh(sort)
                    if value is not None:
                        model[name] = value
        return model, fun_interps, None

    # -- model queries ------------------------------------------------------

    def _get_model(self) -> str:
        if self._last is None or self._last.model is None:
            return '(error "no model available: last check-sat was not sat")'
        lines = ["(model"]
        for name in sorted(self._last.model):
            value = self._last.model[name]
            lines.append(
                f"  (define-fun {symbol_to_smtlib(name)} ()"
                f" {sort_to_smtlib(value.sort)} {constant_to_smtlib(value)})"
            )
        for name in sorted(self._last.fun_interps or ()):
            rendered = self._render_interpretation(
                name, (self._last.fun_interps or {})[name]
            )
            if rendered is not None:
                lines.append(rendered)
        lines.append(")")
        return "\n".join(lines)

    def _render_interpretation(
        self, name: str, interp: FunctionInterpretation
    ) -> Optional[str]:
        signature = None
        for frame in self._frames:
            signature = frame.funs.get(name, signature)
        if signature is None:
            return None
        params = [f"x!{index}" for index in range(len(signature.params))]
        header = " ".join(
            f"({param} {sort_to_smtlib(sort)})"
            for param, sort in zip(params, signature.params)
        )
        body = constant_to_smtlib(interp.default)
        entries = sorted(
            interp.entries.items(),
            key=lambda item: tuple(constant_to_smtlib(c) for c in item[0]),
            reverse=True,
        )
        for key, value in entries:
            tests = [
                f"(= {param} {constant_to_smtlib(constant)})"
                for param, constant in zip(params, key)
            ]
            condition = tests[0] if len(tests) == 1 else "(and {})".format(" ".join(tests))
            body = f"(ite {condition} {constant_to_smtlib(value)} {body})"
        return (
            f"  (define-fun {symbol_to_smtlib(name)} ({header})"
            f" {sort_to_smtlib(signature.result)} {body})"
        )

    def _get_unsat_core(self) -> str:
        if not self._produce_cores:
            return (
                '(error "unsat cores are not enabled:'
                ' (set-option :produce-unsat-cores true)")'
            )
        if (
            self._last is None
            or self._last.answer != "unsat"
            or self._last.unsat_core is None
        ):
            return '(error "no unsat core available: last check-sat was not unsat")'
        return "({})".format(
            " ".join(symbol_to_smtlib(name) for name in self._last.unsat_core)
        )

    def _get_value(self, terms: tuple[Term, ...]) -> str:
        if self._last is None or self._last.model is None:
            return '(error "no model available: last check-sat was not sat")'
        definitions: dict[str, DefineFun] = {}
        for frame in self._frames:
            definitions.update(frame.definitions)
        inline_memo: dict[tuple[Term, frozenset[str]], Term] = {}
        let_memo: dict[Term, Term] = {}
        pairs = []
        for term in terms:
            prepared = expand_lets(
                inline_definitions(term, definitions, frozenset(), inline_memo),
                let_memo,
            )
            try:
                value = evaluate(prepared, self._last.model, self._last.fun_interps)
            except Exception as exc:  # noqa: BLE001 - reported, not swallowed
                return f'(error "cannot evaluate {term_to_smtlib(term)}: {exc}")'
            pairs.append(f"({term_to_smtlib(term)} {constant_to_smtlib(value)})")
        return "({})".format(" ".join(pairs))


# ---------------------------------------------------------------------------
# Public entry points.
# ---------------------------------------------------------------------------


def run_script(
    source: Union[str, Script],
    conflict_limit: Optional[int] = None,
    *,
    obs: Optional[Observability] = None,
    trace: Optional[Union[str, "EventLog"]] = None,
    produce_proofs: bool = False,
    produce_unsat_cores: bool = False,
    config: Optional[SolverConfig] = None,
    timeout: Optional[float] = None,
    portfolio: Optional[int] = None,
    share_clauses: bool = False,
) -> ScriptResult:
    """Parse (when given text) and execute a script; return the full
    :class:`ScriptResult` including printable output.

    ``obs`` supplies an observability bundle (see :class:`Engine`);
    ``trace`` is a convenience: a path (an :class:`EventLog` is opened,
    written and closed around the run) or an open log (shared across
    calls, left open).  Passing ``trace`` without ``obs`` also turns
    span tracing on, so ``ScriptResult.phases`` and each check's
    ``phases`` are populated alongside the JSONL events.
    ``produce_proofs``/``produce_unsat_cores`` enable certification
    artifacts from the outside, exactly like the corresponding
    ``set-option`` commands at the top of the script.

    ``config`` and ``timeout`` pass through to :class:`Engine`.
    ``portfolio`` (≥ 2) instead races that many diversified solver
    processes and returns the winner's result (see
    :func:`repro.portfolio.solve_portfolio`); ``share_clauses`` turns on
    learned-clause sharing between the workers.  ``trace`` and ``config``
    are sequential-only and rejected under ``portfolio``.
    """
    if portfolio is not None and portfolio > 1:
        if trace is not None or config is not None:
            raise ValueError(
                "trace= and config= are sequential-only; the portfolio "
                "runner manages per-worker configs and observability"
            )
        from ..portfolio import solve_portfolio

        return solve_portfolio(
            source,
            workers=portfolio,
            conflict_limit=conflict_limit,
            timeout=timeout,
            obs=obs,
            produce_proofs=produce_proofs,
            produce_unsat_cores=produce_unsat_cores,
            share_clauses=share_clauses,
        ).result
    own_log: Optional[EventLog] = None
    if trace is not None:
        if isinstance(trace, EventLog):
            log = trace
        else:
            log = own_log = EventLog(trace)
        if obs is None:
            obs = Observability.tracing(events=log)
        elif obs.events is None:
            obs.events = log
    engine = Engine(
        conflict_limit=conflict_limit,
        obs=obs,
        produce_proofs=produce_proofs,
        produce_unsat_cores=produce_unsat_cores,
        config=config,
        timeout=timeout,
    )
    tracer = engine.obs.tracer
    previous = set_current_tracer(tracer) if tracer is not None else None
    try:
        if isinstance(source, str):
            with trace_span("parse"):
                script = parse_script(source)
        else:
            script = source
        result = engine.run(script)
    finally:
        if tracer is not None:
            set_current_tracer(previous)
        if own_log is not None:
            own_log.close()
    if tracer is not None:
        result.phases = {
            path: row["ns"] for path, row in phase_totals(tracer).items()
        }
    return result


def solve_script(
    source: Union[str, Script],
    conflict_limit: Optional[int] = None,
    *,
    obs: Optional[Observability] = None,
    trace: Optional[Union[str, "EventLog"]] = None,
    produce_proofs: bool = False,
    produce_unsat_cores: bool = False,
    config: Optional[SolverConfig] = None,
    timeout: Optional[float] = None,
    portfolio: Optional[int] = None,
    share_clauses: bool = False,
) -> list[CheckSatResult]:
    """Execute a script and return one :class:`CheckSatResult` per
    ``(check-sat)``, in script order.  Keyword arguments as in
    :func:`run_script`."""
    return run_script(
        source,
        conflict_limit=conflict_limit,
        obs=obs,
        trace=trace,
        produce_proofs=produce_proofs,
        produce_unsat_cores=produce_unsat_cores,
        config=config,
        timeout=timeout,
        portfolio=portfolio,
        share_clauses=share_clauses,
    ).check_results


__all__ = ["Engine", "run_script", "solve_script"]
