"""Result shapes produced by script execution."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..proof.log import Proof
from ..smtlib.evaluate import FunctionInterpretation
from ..smtlib.terms import Constant, Term


@dataclass
class CheckSatResult:
    """The outcome of one ``(check-sat)``.

    ``assertions`` are the asserted terms active at the check, with
    ``define-fun`` applications inlined, ``let`` binders expanded and
    n-ary (dis)equalities over non-boolean terms expanded to binary form —
    exactly the terms a ``sat`` model is guaranteed to satisfy under
    :func:`~repro.smtlib.evaluate.evaluate` (pass ``fun_interps`` as its
    ``funs`` argument when uninterpreted functions are involved).
    ``reason`` explains an ``unknown`` answer.  ``stats`` carries
    per-check solver counters, CNF shape (``vars``, ``clauses``,
    ``atoms``), incremental-encoding counters (``tseitin_new_vars``,
    ``tseitin_new_clauses``, ``encoded_assertions``) and per-plugin
    theory counters (``euf_*``: merges, conflicts ...; ``arith_*``:
    pivots, branches ...).  ``expected`` records the script's
    ``(set-info :status ...)`` annotation, when present.

    ``metrics`` is the same information through the unified registry: a
    namespaced per-check snapshot delta (``sat.conflicts``,
    ``theory.arith.pivots``, ``intern.hits``, ``engine.guard_clauses``
    ...) — ``stats`` is derived from it and kept for backward
    compatibility.  ``phases`` carries per-phase wall-clock in
    nanoseconds keyed by span path (``prepare``, ``search``,
    ``search/theory-check`` ...) when the engine ran with a tracer, else
    it is empty.

    For an ``unsat`` answer two certification artifacts may be present:
    ``proof`` (when the engine ran with proof production on) is the
    DRAT-style clause proof, checkable with
    :func:`repro.proof.check_proof`; ``unsat_core`` (when unsat cores
    were enabled) is the subset of ``:named`` assertion labels whose
    assertions — together with the unnamed background — are already
    unsatisfiable, in assertion order.
    """

    answer: str
    model: Optional[dict[str, Constant]] = None
    fun_interps: Optional[dict[str, FunctionInterpretation]] = None
    assertions: tuple[Term, ...] = ()
    reason: Optional[str] = None
    stats: dict[str, int] = field(default_factory=dict)
    expected: Optional[str] = None
    metrics: dict[str, int] = field(default_factory=dict)
    phases: dict[str, int] = field(default_factory=dict)
    proof: Optional[Proof] = None
    unsat_core: Optional[tuple[str, ...]] = None

    @property
    def contradicts_expected(self) -> bool:
        """True when a definite answer contradicts the ``:status``
        annotation (an ``unknown`` answer never contradicts anything)."""
        return (
            self.expected in ("sat", "unsat")
            and self.answer in ("sat", "unsat")
            and self.answer != self.expected
        )


@dataclass
class ScriptResult:
    """Everything one script run produced: per-``check-sat`` results and
    the printable solver output (one entry per output-producing command).
    ``phases`` aggregates whole-run per-phase wall-clock (nanoseconds by
    span path, including ``parse`` when the run went through
    :func:`~repro.engine.solve.run_script` with tracing on)."""

    check_results: list[CheckSatResult] = field(default_factory=list)
    output: list[str] = field(default_factory=list)
    phases: dict[str, int] = field(default_factory=dict)

    @property
    def answers(self) -> list[str]:
        return [result.answer for result in self.check_results]

    @property
    def status_mismatches(self) -> list[int]:
        """Indices of check-sat results contradicting their ``:status``."""
        return [
            index
            for index, result in enumerate(self.check_results)
            if result.contradicts_expected
        ]


__all__ = ["CheckSatResult", "ScriptResult"]
