"""Assertion-stack frames and term preparation.

One :class:`Frame` per assertion-stack level holds the raw asserted
terms, their *prepared* and *simplified* forms (computed once, cached for
every later ``check-sat``), the declarations scoped to the level, and the
frame's SAT *selector* variable — the assumption literal that activates
the frame's clauses in the shared incremental solver.

Preparation is the term-level pipeline that runs **before** encoding:

1. :func:`inline_definitions` — beta-reduce ``define-fun`` applications.
2. :func:`expand_lets` — substitute ``let`` binders away (parallel
   semantics).
3. :func:`expand_equalities` — rewrite n-ary ``=`` / ``distinct`` over
   non-boolean terms into conjunctions of *binary* equalities (negated
   for ``distinct``), so the theory layer only ever sees binary equality
   atoms.  Boolean ``=``/``distinct`` are CNF connectives and stay as-is.
4. :func:`expand_arithmetic` — split pure-linear ``=`` into
   ``<=``/``>=`` bound pairs (NNF turns their negation into a
   disjunction of strict inequalities, so the SAT core case-splits
   disequalities for the convex simplex) and chained comparisons into
   binary conjunctions.

``define-fun`` expansion substitutes by name and is not capture-avoiding
against quantifiers inside definition bodies; the engine targets
quantifier-free skeletons, where no capture can occur.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..smtlib.linarith import difference_form
from ..smtlib.script import DefineFun, FunSignature
from ..smtlib.sorts import BOOL, INT, REAL, Sort
from ..smtlib.terms import (
    Apply,
    Constant,
    Let,
    Quantifier,
    Symbol,
    Term,
    negate,
    substitute,
)


class Frame:
    """One assertion-stack level: assertions, their cached prepared forms,
    scoped declarations and the frame's selector variable."""

    __slots__ = (
        "assertions",
        "names",
        "prepared",
        "simplified",
        "atom_lists",
        "encoded",
        "definitions",
        "consts",
        "funs",
        "selector",
        "named",
    )

    def __init__(self) -> None:
        self.assertions: list[Term] = []
        #: Parallel to ``assertions``: the ``:named`` label, or ``None``.
        self.names: list[Optional[str]] = []
        self.prepared: list[Term] = []
        self.simplified: list[Term] = []
        self.atom_lists: list[tuple[Term, ...]] = []
        self.encoded = 0
        self.definitions: dict[str, DefineFun] = {}
        self.consts: dict[str, Sort] = {}
        self.funs: dict[str, FunSignature] = {}
        self.selector: Optional[int] = None
        #: ``(label, selector)`` per encoded named assertion.  Named
        #: assertions get their own selector on top of the frame's, so a
        #: failed-assumption core maps straight back to labels; popping
        #: the frame retires these selectors alongside the frame's own.
        self.named: list[tuple[str, int]] = []


# ---------------------------------------------------------------------------
# Definition inlining and let expansion.
# ---------------------------------------------------------------------------


def inline_definitions(
    term: Term,
    definitions: dict[str, DefineFun],
    shadowed: frozenset[str],
    memo: dict[tuple[Term, frozenset[str]], Term],
) -> Term:
    """Beta-reduce every application (or nullary occurrence) of a defined
    function.  ``shadowed`` holds binder names that hide same-named
    definitions below them."""
    if not definitions:
        return term
    key = (term, shadowed)
    cached = memo.get(key)
    if cached is not None:
        return cached
    result = _inline_node(term, definitions, shadowed, memo)
    memo[key] = result
    return result


def _inline_node(
    term: Term,
    definitions: dict[str, DefineFun],
    shadowed: frozenset[str],
    memo: dict[tuple[Term, frozenset[str]], Term],
) -> Term:
    if isinstance(term, Constant):
        return term
    if isinstance(term, Symbol):
        definition = definitions.get(term.name)
        if definition is not None and not definition.params and term.name not in shadowed:
            return inline_definitions(definition.body, definitions, frozenset(), memo)
        return term
    if isinstance(term, Apply):
        rewritten = []
        for arg in term.args:
            rewritten.append(inline_definitions(arg, definitions, shadowed, memo))
        args = tuple(rewritten)
        definition = definitions.get(term.op)
        if definition is not None and not term.indices and term.op not in shadowed:
            body = inline_definitions(definition.body, definitions, frozenset(), memo)
            mapping = {name: arg for (name, _), arg in zip(definition.params, args)}
            return substitute(body, mapping)
        if args == term.args:
            return term
        return Apply(term.op, args, term.sort, term.indices)
    if isinstance(term, Quantifier):
        inner = shadowed | {name for name, _ in term.bindings}
        body = inline_definitions(term.body, definitions, inner, memo)
        if body is term.body:
            return term
        return Quantifier(term.kind, term.bindings, body)
    if isinstance(term, Let):
        bindings = tuple(
            (name, inline_definitions(value, definitions, shadowed, memo))
            for name, value in term.bindings
        )
        inner = shadowed | {name for name, _ in term.bindings}
        body = inline_definitions(term.body, definitions, inner, memo)
        return Let(bindings, body)
    raise TypeError(f"unknown term node: {term!r}")


def expand_lets(term: Term, memo: dict[Term, Term]) -> Term:
    """Substitute every ``let`` binder away (parallel-let semantics)."""
    cached = memo.get(term)
    if cached is not None:
        return cached
    if isinstance(term, (Constant, Symbol)):
        result: Term = term
    elif isinstance(term, Apply):
        rewritten = []
        for arg in term.args:
            rewritten.append(expand_lets(arg, memo))
        args = tuple(rewritten)
        result = term if args == term.args else Apply(term.op, args, term.sort, term.indices)
    elif isinstance(term, Quantifier):
        body = expand_lets(term.body, memo)
        result = term if body is term.body else Quantifier(term.kind, term.bindings, body)
    elif isinstance(term, Let):
        mapping = {
            name: expand_lets(value, memo) for name, value in term.bindings
        }
        body = expand_lets(term.body, memo)
        result = substitute(body, mapping)
    else:
        raise TypeError(f"unknown term node: {term!r}")
    memo[term] = result
    return result


# ---------------------------------------------------------------------------
# Equality expansion (theory preparation).
# ---------------------------------------------------------------------------


def _expand_bottom_up(
    term: Term,
    memo: dict[Term, Term],
    rewrite_apply: Callable[[Apply, tuple[Term, ...]], Term],
) -> Term:
    """The memoized bottom-up traversal shared by the expansion passes:
    children rewrite first, then ``rewrite_apply`` sees each ``Apply``
    node with its rewritten arguments; ``Quantifier``/``Let`` rebuild
    with structure sharing (unchanged nodes return ``is``-identical)."""
    cached = memo.get(term)
    if cached is not None:
        return cached
    if isinstance(term, (Constant, Symbol)):
        result: Term = term
    elif isinstance(term, Apply):
        rewritten = []
        for arg in term.args:
            rewritten.append(_expand_bottom_up(arg, memo, rewrite_apply))
        result = rewrite_apply(term, tuple(rewritten))
    elif isinstance(term, Quantifier):
        body = _expand_bottom_up(term.body, memo, rewrite_apply)
        result = term if body is term.body else Quantifier(term.kind, term.bindings, body)
    elif isinstance(term, Let):
        bindings = tuple(
            (name, _expand_bottom_up(value, memo, rewrite_apply))
            for name, value in term.bindings
        )
        body = _expand_bottom_up(term.body, memo, rewrite_apply)
        if body is term.body and all(
            new is old for (_, new), (_, old) in zip(bindings, term.bindings)
        ):
            result = term
        else:
            result = Let(bindings, body)
    else:
        raise TypeError(f"unknown term node: {term!r}")
    memo[term] = result
    return result


def _rebuild(term: Apply, args: tuple[Term, ...]) -> Term:
    return term if args == term.args else Apply(term.op, args, term.sort, term.indices)


def expand_arithmetic(term: Term, memo: dict[Term, Term]) -> Term:
    """Normalize arithmetic atoms for the simplex theory.

    * A binary ``=`` whose difference is linear over Int/Real symbols
      becomes ``(and (<= a b) (>= a b))`` — asserted positively the two
      bounds pin the value, and under negation NNF turns the conjunction
      into a disjunction of *strict* inequalities, letting the SAT core
      case-split disequalities so the (convex) simplex never sees them.
      Equalities that are not linear (uninterpreted applications,
      ``div``/``mod`` ...) are left for EUF.
    * A chained comparison ``(< a b c)`` becomes the conjunction of its
      adjacent binary pairs, so the theory's atom vocabulary is binary
      only (mirroring what :func:`expand_equalities` does for ``=``).

    Runs after :func:`expand_equalities` (which reduces n-ary ``=`` and
    ``distinct`` to binary equalities first).
    """
    return _expand_bottom_up(term, memo, _arithmetic_rule)


def _arithmetic_rule(term: Apply, args: tuple[Term, ...]) -> Term:
    if (
        term.op == "="
        and len(args) == 2
        and args[0].sort in (INT, REAL)
        and difference_form(args[0], args[1]) is not None
    ):
        return Apply(
            "and",
            (Apply("<=", args, BOOL), Apply(">=", args, BOOL)),
            BOOL,
        )
    if term.op in ("<", "<=", ">", ">=") and len(args) > 2:
        pairs = tuple(
            Apply(term.op, (left, right), BOOL)
            for left, right in zip(args, args[1:])
        )
        return Apply("and", pairs, BOOL)
    return _rebuild(term, args)


def expand_equalities(term: Term, memo: dict[Term, Term]) -> Term:
    """Rewrite n-ary ``=``/``distinct`` over non-boolean arguments into
    boolean structure over *binary* equalities.

    ``(= a b c)`` becomes ``(and (= a b) (= b c))``; ``(distinct a b c)``
    becomes the conjunction of ``(not (= x y))`` over all pairs; binary
    ``distinct`` becomes a single negated equality.  Logically equivalent
    in every theory, and it normalizes the atom vocabulary so the EUF
    plugin only handles binary equalities.
    """
    return _expand_bottom_up(term, memo, _equality_rule)


def _equality_rule(term: Apply, args: tuple[Term, ...]) -> Term:
    if (
        term.op in ("=", "distinct")
        and args
        and args[0].sort != BOOL
        and (len(args) > 2 or term.op == "distinct")
    ):
        if term.op == "=":
            parts = [
                Apply("=", (left, right), BOOL)
                for left, right in zip(args, args[1:])
            ]
        else:
            parts = [
                negate(Apply("=", (args[i], args[j]), BOOL))
                for i in range(len(args))
                for j in range(i + 1, len(args))
            ]
        return parts[0] if len(parts) == 1 else Apply("and", tuple(parts), BOOL)
    return _rebuild(term, args)


__all__ = [
    "Frame",
    "inline_definitions",
    "expand_lets",
    "expand_equalities",
    "expand_arithmetic",
]
