"""Assertion-stack frames and term preparation.

One :class:`Frame` per assertion-stack level holds the raw asserted
terms, their *prepared* and *simplified* forms (computed once, cached for
every later ``check-sat``), the declarations scoped to the level, and the
frame's SAT *selector* variable — the assumption literal that activates
the frame's clauses in the shared incremental solver.

Preparation is the term-level pipeline that runs **before** encoding:

1. :func:`inline_definitions` — beta-reduce ``define-fun`` applications.
2. :func:`expand_lets` — substitute ``let`` binders away (parallel
   semantics).
3. :func:`expand_equalities` — rewrite n-ary ``=`` / ``distinct`` over
   non-boolean terms into conjunctions of *binary* equalities (negated
   for ``distinct``), so the theory layer only ever sees binary equality
   atoms.  Boolean ``=``/``distinct`` are CNF connectives and stay as-is.

``define-fun`` expansion substitutes by name and is not capture-avoiding
against quantifiers inside definition bodies; the engine targets
quantifier-free skeletons, where no capture can occur.
"""

from __future__ import annotations

from typing import Optional

from ..smtlib.script import DefineFun, FunSignature
from ..smtlib.sorts import BOOL, Sort
from ..smtlib.terms import (
    Apply,
    Constant,
    Let,
    Quantifier,
    Symbol,
    Term,
    negate,
    substitute,
)


class Frame:
    """One assertion-stack level: assertions, their cached prepared forms,
    scoped declarations and the frame's selector variable."""

    __slots__ = (
        "assertions",
        "prepared",
        "simplified",
        "atom_lists",
        "encoded",
        "definitions",
        "consts",
        "funs",
        "selector",
    )

    def __init__(self) -> None:
        self.assertions: list[Term] = []
        self.prepared: list[Term] = []
        self.simplified: list[Term] = []
        self.atom_lists: list[tuple[Term, ...]] = []
        self.encoded = 0
        self.definitions: dict[str, DefineFun] = {}
        self.consts: dict[str, Sort] = {}
        self.funs: dict[str, FunSignature] = {}
        self.selector: Optional[int] = None


# ---------------------------------------------------------------------------
# Definition inlining and let expansion.
# ---------------------------------------------------------------------------


def inline_definitions(
    term: Term,
    definitions: dict[str, DefineFun],
    shadowed: frozenset[str],
    memo: dict[tuple[Term, frozenset[str]], Term],
) -> Term:
    """Beta-reduce every application (or nullary occurrence) of a defined
    function.  ``shadowed`` holds binder names that hide same-named
    definitions below them."""
    if not definitions:
        return term
    key = (term, shadowed)
    cached = memo.get(key)
    if cached is not None:
        return cached
    result = _inline_node(term, definitions, shadowed, memo)
    memo[key] = result
    return result


def _inline_node(
    term: Term,
    definitions: dict[str, DefineFun],
    shadowed: frozenset[str],
    memo: dict[tuple[Term, frozenset[str]], Term],
) -> Term:
    if isinstance(term, Constant):
        return term
    if isinstance(term, Symbol):
        definition = definitions.get(term.name)
        if definition is not None and not definition.params and term.name not in shadowed:
            return inline_definitions(definition.body, definitions, frozenset(), memo)
        return term
    if isinstance(term, Apply):
        rewritten = []
        for arg in term.args:
            rewritten.append(inline_definitions(arg, definitions, shadowed, memo))
        args = tuple(rewritten)
        definition = definitions.get(term.op)
        if definition is not None and not term.indices and term.op not in shadowed:
            body = inline_definitions(definition.body, definitions, frozenset(), memo)
            mapping = {name: arg for (name, _), arg in zip(definition.params, args)}
            return substitute(body, mapping)
        if args == term.args:
            return term
        return Apply(term.op, args, term.sort, term.indices)
    if isinstance(term, Quantifier):
        inner = shadowed | {name for name, _ in term.bindings}
        body = inline_definitions(term.body, definitions, inner, memo)
        if body is term.body:
            return term
        return Quantifier(term.kind, term.bindings, body)
    if isinstance(term, Let):
        bindings = tuple(
            (name, inline_definitions(value, definitions, shadowed, memo))
            for name, value in term.bindings
        )
        inner = shadowed | {name for name, _ in term.bindings}
        body = inline_definitions(term.body, definitions, inner, memo)
        return Let(bindings, body)
    raise TypeError(f"unknown term node: {term!r}")


def expand_lets(term: Term, memo: dict[Term, Term]) -> Term:
    """Substitute every ``let`` binder away (parallel-let semantics)."""
    cached = memo.get(term)
    if cached is not None:
        return cached
    if isinstance(term, (Constant, Symbol)):
        result: Term = term
    elif isinstance(term, Apply):
        rewritten = []
        for arg in term.args:
            rewritten.append(expand_lets(arg, memo))
        args = tuple(rewritten)
        result = term if args == term.args else Apply(term.op, args, term.sort, term.indices)
    elif isinstance(term, Quantifier):
        body = expand_lets(term.body, memo)
        result = term if body is term.body else Quantifier(term.kind, term.bindings, body)
    elif isinstance(term, Let):
        mapping = {
            name: expand_lets(value, memo) for name, value in term.bindings
        }
        body = expand_lets(term.body, memo)
        result = substitute(body, mapping)
    else:
        raise TypeError(f"unknown term node: {term!r}")
    memo[term] = result
    return result


# ---------------------------------------------------------------------------
# Equality expansion (theory preparation).
# ---------------------------------------------------------------------------


def expand_equalities(term: Term, memo: dict[Term, Term]) -> Term:
    """Rewrite n-ary ``=``/``distinct`` over non-boolean arguments into
    boolean structure over *binary* equalities.

    ``(= a b c)`` becomes ``(and (= a b) (= b c))``; ``(distinct a b c)``
    becomes the conjunction of ``(not (= x y))`` over all pairs; binary
    ``distinct`` becomes a single negated equality.  Logically equivalent
    in every theory, and it normalizes the atom vocabulary so the EUF
    plugin only handles binary equalities.
    """
    cached = memo.get(term)
    if cached is not None:
        return cached
    if isinstance(term, (Constant, Symbol)):
        result: Term = term
    elif isinstance(term, Apply):
        rewritten = []
        for arg in term.args:
            rewritten.append(expand_equalities(arg, memo))
        args = tuple(rewritten)
        if (
            term.op in ("=", "distinct")
            and args
            and args[0].sort != BOOL
            and (len(args) > 2 or term.op == "distinct")
        ):
            if term.op == "=":
                parts = [
                    Apply("=", (left, right), BOOL)
                    for left, right in zip(args, args[1:])
                ]
            else:
                parts = [
                    negate(Apply("=", (args[i], args[j]), BOOL))
                    for i in range(len(args))
                    for j in range(i + 1, len(args))
                ]
            result = parts[0] if len(parts) == 1 else Apply("and", tuple(parts), BOOL)
        elif args == term.args:
            result = term
        else:
            result = Apply(term.op, args, term.sort, term.indices)
    elif isinstance(term, Quantifier):
        body = expand_equalities(term.body, memo)
        result = term if body is term.body else Quantifier(term.kind, term.bindings, body)
    elif isinstance(term, Let):
        bindings = tuple(
            (name, expand_equalities(value, memo)) for name, value in term.bindings
        )
        body = expand_equalities(term.body, memo)
        if body is term.body and all(
            new is old for (_, new), (_, old) in zip(bindings, term.bindings)
        ):
            result = term
        else:
            result = Let(bindings, body)
    else:
        raise TypeError(f"unknown term node: {term!r}")
    memo[term] = result
    return result


__all__ = [
    "Frame",
    "inline_definitions",
    "expand_lets",
    "expand_equalities",
]
