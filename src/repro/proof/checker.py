"""An independent forward RUP/DRAT proof checker.

The checker re-derives nothing from the solver: it shares no code with
the CDCL propagation loop (:mod:`repro.sat.solver` uses two-watched
literals over mutable clause objects; this module uses counting-based
unit propagation — per-clause false-literal counters over immutable
tuples — with a trail for assumption rollback).  Its job is to *audit*
the solver, so the implementations must be able to disagree.

Checking replays the proof in order:

* ``input`` and ``lemma`` steps extend the formula as axioms (lemmas are
  recorded with provenance; their theory validity is the trusted base —
  the same convention DRAT toolchains use for the CNF itself).
* ``rup`` steps must pass **reverse unit propagation**: asserting the
  negation of every literal of the clause and unit-propagating over the
  active formula must reach a conflict.  This covers every learned
  clause and the concluding clause of the answer.
* ``delete`` steps deactivate a clause, so later RUP steps cannot lean
  on clauses the solver had already dropped.  Deleting a clause never
  retracts permanent (top-level) units it helped derive — the standard
  forward-checking relaxation, also used by ``drat-trim``.

After the replay the claimed :attr:`~repro.proof.log.Proof.conclusion`
must itself follow: the empty conclusion requires the formula to have
propagated to a contradiction, a non-empty conclusion must be RUP (it is
normally also the final ``rup`` step, so this is a cheap re-check).

Whenever a clause is added while the formula already propagates to a
contradiction, every later check passes trivially — sound, because the
contradiction itself was reached by verified steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from .log import DELETE, INPUT, LEMMA, RUP, Proof


@dataclass
class ProofCheckResult:
    """The verdict of :func:`check_proof`.

    ``ok`` is the certification verdict.  On rejection ``error`` says
    why and ``step_index`` points at the offending step (``None`` when
    the conclusion itself failed).  ``stats`` reports the work done:
    ``rup_checked``, ``propagations``, ``clauses``, ``lemmas``,
    ``deletions``.
    """

    ok: bool
    error: Optional[str] = None
    step_index: Optional[int] = None
    stats: dict[str, int] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.ok


class _Checker:
    """Counting-based unit propagation over an add/delete clause set."""

    def __init__(self) -> None:
        #: Clause id → deduped literal tuple; ``None`` once deleted.
        self._clauses: list[Optional[tuple[int, ...]]] = []
        #: Literal → ids of active-or-deleted clauses containing it.
        self._occ: dict[int, list[int]] = {}
        #: Clause id → number of false literals under the current assignment.
        self._false: list[int] = []
        #: Variable → +1 (true) / -1 (false); unassigned variables absent.
        self._value: dict[int, int] = {}
        #: Assigned literals in assignment order (permanent prefix + the
        #: temporary suffix of the RUP check in flight).
        self._trail: list[int] = []
        #: Sorted-literal key → ids, for deletion matching.
        self._by_key: dict[tuple[int, ...], list[int]] = {}
        #: The formula propagates to a conflict at the top level.
        self.contradiction = False
        self.stats = {
            "clauses": 0,
            "lemmas": 0,
            "deletions": 0,
            "rup_checked": 0,
            "propagations": 0,
        }

    # -- assignment ---------------------------------------------------------

    def _lit_value(self, lit: int) -> int:
        value = self._value.get(abs(lit), 0)
        return value if lit > 0 else -value

    def _propagate(self, pending: list[int]) -> bool:
        """Assign the pending literals and unit-propagate to fixpoint.
        Returns ``True`` on conflict.  Assignments stay on the trail for
        the caller to keep (permanent) or roll back (RUP check)."""
        index = 0
        while index < len(pending):
            lit = pending[index]
            index += 1
            value = self._lit_value(lit)
            if value == 1:
                continue
            if value == -1:
                return True
            self._value[abs(lit)] = 1 if lit > 0 else -1
            self._trail.append(lit)
            self.stats["propagations"] += 1
            occ = self._occ.get(-lit, ())
            for pos, cid in enumerate(occ):
                clause = self._clauses[cid]
                if clause is None:
                    continue
                self._false[cid] += 1
                if self._false[cid] < len(clause) - 1:
                    continue
                unassigned = None
                satisfied = False
                for other in clause:
                    other_value = self._lit_value(other)
                    if other_value == 1:
                        satisfied = True
                        break
                    if other_value == 0:
                        unassigned = other
                if satisfied:
                    continue
                if unassigned is None:
                    # Conflict.  ``lit`` stays on the trail, so finish its
                    # counter sweep first — :meth:`_undo_to` decrements the
                    # whole occurrence list and the counts must match.
                    for rest in occ[pos + 1 :]:
                        if self._clauses[rest] is not None:
                            self._false[rest] += 1
                    return True
                pending.append(unassigned)
        return False

    def _undo_to(self, mark: int) -> None:
        while len(self._trail) > mark:
            lit = self._trail.pop()
            del self._value[abs(lit)]
            for cid in self._occ.get(-lit, ()):
                if self._clauses[cid] is not None:
                    self._false[cid] -= 1

    # -- the RUP test -------------------------------------------------------

    def entails(self, lits: Sequence[int]) -> bool:
        """True when the active formula gives ``lits`` by reverse unit
        propagation (or is already contradictory)."""
        if self.contradiction:
            return True
        deduped, tautology = _dedupe(lits)
        if tautology:
            return True
        self.stats["rup_checked"] += 1
        mark = len(self._trail)
        conflict = self._propagate([-lit for lit in deduped])
        self._undo_to(mark)
        return conflict

    # -- formula maintenance ------------------------------------------------

    def add(self, lits: Sequence[int], lemma: bool = False) -> None:
        """Attach a clause and propagate any permanent consequence."""
        deduped, tautology = _dedupe(lits)
        cid = len(self._clauses)
        self._clauses.append(deduped)
        self._false.append(0)
        self._by_key.setdefault(tuple(sorted(deduped)), []).append(cid)
        self.stats["lemmas" if lemma else "clauses"] += 1
        false_count = 0
        for lit in deduped:
            self._occ.setdefault(lit, []).append(cid)
            if self._lit_value(lit) == -1:
                false_count += 1
        self._false[cid] = false_count
        if self.contradiction or tautology:
            return
        if not deduped:
            self.contradiction = True
            return
        unassigned = None
        satisfied = False
        for lit in deduped:
            value = self._lit_value(lit)
            if value == 1:
                satisfied = True
                break
            if value == 0:
                if unassigned is not None:
                    return  # two free literals: nothing to propagate yet
                unassigned = lit
        if satisfied:
            return
        if unassigned is None:
            self.contradiction = True
            return
        if self._propagate([unassigned]):
            self.contradiction = True

    def delete(self, lits: Sequence[int]) -> bool:
        """Deactivate one clause matching ``lits`` (as a literal set).
        Returns ``False`` when no active match exists."""
        deduped, _ = _dedupe(lits)
        if len(deduped) <= 1:
            # Unit/empty deletions are ignored (they would retract
            # permanent propagation); the solver never emits them.
            self.stats["deletions"] += 1
            return True
        ids = self._by_key.get(tuple(sorted(deduped)))
        if not ids:
            return False
        self._clauses[ids.pop()] = None
        self.stats["deletions"] += 1
        return True


def _dedupe(lits: Sequence[int]) -> tuple[tuple[int, ...], bool]:
    """Deduplicate preserving order; flag tautologies (p ∨ ¬p)."""
    seen: set[int] = set()
    out: list[int] = []
    tautology = False
    for lit in lits:
        lit = int(lit)
        if lit == 0:
            raise ValueError("0 is not a literal")
        if lit in seen:
            continue
        if -lit in seen:
            tautology = True
        seen.add(lit)
        out.append(lit)
    return tuple(out), tautology


def check_proof(proof: Proof) -> ProofCheckResult:
    """Replay ``proof`` and certify it (see the module docstring)."""
    checker = _Checker()
    for index, step in enumerate(proof.steps):
        if step.kind == INPUT:
            checker.add(step.lits)
        elif step.kind == LEMMA:
            checker.add(step.lits, lemma=True)
        elif step.kind == RUP:
            if not checker.entails(step.lits):
                return ProofCheckResult(
                    False,
                    error=f"step {index}: clause {list(step.lits)} is not RUP",
                    step_index=index,
                    stats=checker.stats,
                )
            checker.add(step.lits)
        elif step.kind == DELETE:
            if not checker.delete(step.lits):
                return ProofCheckResult(
                    False,
                    error=f"step {index}: deletion of unknown clause {list(step.lits)}",
                    step_index=index,
                    stats=checker.stats,
                )
        else:
            return ProofCheckResult(
                False,
                error=f"step {index}: unknown step kind {step.kind!r}",
                step_index=index,
                stats=checker.stats,
            )
    if not checker.entails(proof.conclusion):
        claim = "the empty clause" if not proof.conclusion else f"clause {list(proof.conclusion)}"
        return ProofCheckResult(
            False,
            error=f"conclusion {claim} does not follow from the proof",
            stats=checker.stats,
        )
    return ProofCheckResult(True, stats=checker.stats)


__all__ = ["ProofCheckResult", "check_proof"]
