"""Proof production and checking: the solver's trust layer.

``sat`` answers are validated in-engine by evaluating the model against
every live assertion; this package closes the asymmetry for ``unsat``:

* :mod:`repro.proof.log` — the DRAT-style clause proof the CDCL core
  emits while it searches: input clauses, theory lemmas (with plugin
  provenance), learned clauses as RUP additions, deletions, and a
  concluding clause per ``unsat`` answer (the empty clause, or the
  negation of the failed-assumption core when the check ran under
  assumptions).
* :mod:`repro.proof.checker` — an **independent** forward RUP/DRAT
  checker that shares no code with the solver's propagation loop: it
  replays the proof with its own counting-based unit propagation and
  accepts only when every RUP addition is derivable and the conclusion
  follows.

The trusted base mirrors the SAT-competition convention: input clauses
(the Tseitin encoding of the simplified assertions) are axioms, and
theory lemmas are axioms *recorded with provenance* — each lemma step
names the plugin whose explanation produced it, so the lemma surface is
auditable even though the checker does not re-derive theory reasoning.
Everything else — every learned clause and the final conclusion — must
pass reverse-unit-propagation over the accumulated formula.
"""

from .checker import ProofCheckResult, check_proof
from .log import Proof, ProofLog, ProofStep

__all__ = [
    "Proof",
    "ProofLog",
    "ProofStep",
    "ProofCheckResult",
    "check_proof",
]
