"""The clause-proof log the CDCL core appends to while searching.

A proof is a sequence of :class:`ProofStep` records over DIMACS-style
integer literals, in the order the solver produced them:

* ``input`` — a problem clause exactly as shipped to the solver
  (before its level-0 simplification), including frame-selector guards
  and retirement units.  Inputs are the axioms of the proof.
* ``lemma`` — a theory lemma, logged as stated by the theory plugin
  (before mid-search simplification), with the plugin name as
  provenance.  Lemmas are theory-valid axioms: the checker records but
  does not re-derive them, so the lemma list is the auditable interface
  between propositional certification and theory reasoning.
* ``rup`` — a clause the solver claims follows by reverse unit
  propagation: every learned clause, and the concluding clause of each
  ``unsat`` answer (empty, or the negated failed-assumption core).
  These are the steps the independent checker verifies.
* ``delete`` — a learned clause dropped by database reduction; the
  checker deactivates it, so later RUP steps cannot lean on clauses the
  solver no longer had.

One :class:`ProofLog` lives for the whole life of a solver — the engine
is incremental, and a later check's learned clauses may depend on
earlier checks' derivations — and :meth:`ProofLog.snapshot` freezes the
prefix into an immutable :class:`Proof` whose ``conclusion`` states what
that particular ``unsat`` answer claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

#: Step kinds, in the vocabulary used throughout this package.
INPUT = "input"
LEMMA = "lemma"
RUP = "rup"
DELETE = "delete"


@dataclass(frozen=True)
class ProofStep:
    """One proof event: a clause plus how it entered (or left) the formula.

    ``source`` carries provenance for ``lemma`` steps (the theory plugin
    that produced the explanation) and, occasionally, for ``input`` steps
    the engine wants to annotate (e.g. an assertion that simplified to
    ``false``)."""

    kind: str
    lits: tuple[int, ...]
    source: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "lits", tuple(int(lit) for lit in self.lits))


@dataclass(frozen=True)
class Proof:
    """An immutable proof for one ``unsat`` answer.

    ``steps`` is the full log prefix up to (and including) the answer's
    concluding step; ``conclusion`` is the clause the proof establishes —
    ``()`` for outright unsatisfiability, or the negated failed-assumption
    core when the check ran under assumptions (the engine maps those
    selector literals back to named assertions for ``get-unsat-core``).
    """

    steps: tuple[ProofStep, ...]
    conclusion: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "steps", tuple(self.steps))
        object.__setattr__(self, "conclusion", tuple(int(lit) for lit in self.conclusion))

    def __len__(self) -> int:
        return len(self.steps)

    def counts(self) -> dict[str, int]:
        """Step totals by kind (``input``/``lemma``/``rup``/``delete``)."""
        out = {INPUT: 0, LEMMA: 0, RUP: 0, DELETE: 0}
        for step in self.steps:
            out[step.kind] = out.get(step.kind, 0) + 1
        return out

    def to_drat(self, include_inputs: bool = False) -> str:
        """Render the proof in DRAT text format.

        Standard DRAT files carry only additions and ``d`` deletion
        lines; inputs belong to the CNF, so they render as ``c i``
        comment lines only when ``include_inputs`` is set.  Lemma steps
        are additions preceded by a ``c t <plugin>`` provenance comment —
        a checker that trusts only RUP can strip them into a separate
        axiom file.  The concluding clause is the last addition.
        """
        lines: list[str] = []
        for step in self.steps:
            body = " ".join(str(lit) for lit in step.lits) + " 0" if step.lits else "0"
            if step.kind == INPUT:
                if include_inputs:
                    lines.append(f"c i {body}")
            elif step.kind == LEMMA:
                lines.append(f"c t {step.source or 'theory'}")
                lines.append(body)
            elif step.kind == RUP:
                lines.append(body)
            elif step.kind == DELETE:
                lines.append(f"d {body}")
            else:  # pragma: no cover - log_* constructors fix the kinds
                raise ValueError(f"unknown proof step kind: {step.kind!r}")
        return "\n".join(lines) + ("\n" if lines else "")


@dataclass
class ProofLog:
    """The append-only log a :class:`~repro.sat.Solver` writes into.

    ``stats`` mirrors the step counts as plain counters so the engine can
    absorb them into its metrics registry (``proof.inputs`` ...).
    """

    steps: list[ProofStep] = field(default_factory=list)
    stats: dict[str, int] = field(
        default_factory=lambda: {
            "inputs": 0,
            "lemmas": 0,
            "rup_steps": 0,
            "deletions": 0,
            "conclusions": 0,
        }
    )

    def __len__(self) -> int:
        return len(self.steps)

    def log_input(self, lits: Iterable[int], source: Optional[str] = None) -> None:
        self.steps.append(ProofStep(INPUT, tuple(lits), source))
        self.stats["inputs"] += 1

    def log_lemma(self, lits: Iterable[int], source: Optional[str] = None) -> None:
        self.steps.append(ProofStep(LEMMA, tuple(lits), source))
        self.stats["lemmas"] += 1

    def log_rup(self, lits: Iterable[int]) -> None:
        self.steps.append(ProofStep(RUP, tuple(lits)))
        self.stats["rup_steps"] += 1

    def log_delete(self, lits: Iterable[int]) -> None:
        self.steps.append(ProofStep(DELETE, tuple(lits)))
        self.stats["deletions"] += 1

    def snapshot(self, conclusion: Iterable[int] = ()) -> Proof:
        """Freeze the current prefix into a :class:`Proof` claiming
        ``conclusion``."""
        self.stats["conclusions"] += 1
        return Proof(tuple(self.steps), tuple(conclusion))


__all__ = ["ProofStep", "Proof", "ProofLog", "INPUT", "LEMMA", "RUP", "DELETE"]
