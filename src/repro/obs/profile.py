"""Rendering helpers over recorded spans: per-phase totals and the
``--profile`` table.

Totals key on the span *path* (``check-sat/search/theory-check``) so a
phase name reused at different depths never double-counts, and the
insertion order of the returned mapping follows the tree (parents before
children), which makes the formatted table read as an indented
hierarchy.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Union

from .spans import Span, Tracer


def phase_totals(spans: Union[Tracer, Iterable[Span]]) -> dict[str, dict[str, int]]:
    """Aggregate a span forest into ``path -> {"ns": total, "count": n}``.

    Same-path spans (several ``check-sat`` roots, say) accumulate into
    one row.  Accepts a :class:`Tracer` (its roots) or any span iterable.
    """
    roots = spans.roots if isinstance(spans, Tracer) else list(spans)
    totals: dict[str, dict[str, int]] = {}
    stack = [(span, span.name) for span in reversed(roots)]
    ordered: list[tuple[Span, str]] = []
    while stack:
        span, path = stack.pop()
        ordered.append((span, path))
        for child in reversed(span.children):
            stack.append((child, f"{path}/{child.name}"))
    for span, path in ordered:
        row = totals.get(path)
        if row is None:
            totals[path] = {"ns": span.total_ns, "count": span.count}
        else:
            row["ns"] += span.total_ns
            row["count"] += span.count
    return totals


def phase_seconds(spans: Union[Tracer, Iterable[Span]]) -> dict[str, float]:
    """Per-phase wall-clock in seconds (JSON-artifact shape)."""
    return {
        path: round(row["ns"] / 1e9, 6) for path, row in phase_totals(spans).items()
    }


def format_phase_table(
    totals: Union[Tracer, Iterable[Span], Mapping[str, Mapping[str, int]]],
    prefix: str = "",
) -> str:
    """The per-phase timing table (one line per path, indented by depth).

    ``prefix`` is prepended to every line — the CLI passes ``"; "`` so
    the table stays an SMT-LIB comment block.
    """
    if not isinstance(totals, Mapping):
        totals = phase_totals(totals)
    header = f"{'phase':<40} {'total_s':>10} {'count':>8}"
    lines = [prefix + header, prefix + "-" * len(header)]
    for path, row in totals.items():
        depth = path.count("/")
        label = "  " * depth + path.rsplit("/", 1)[-1]
        lines.append(
            prefix + f"{label:<40} {row['ns'] / 1e9:>10.4f} {row['count']:>8}"
        )
    return "\n".join(lines)


__all__ = ["phase_totals", "phase_seconds", "format_phase_table"]
