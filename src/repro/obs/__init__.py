"""Solver observability: unified metrics, span tracing, search events.

Three orthogonal instruments, one bundle:

* :mod:`repro.obs.metrics` — a namespaced :class:`MetricsRegistry` of
  counters/gauges/timers that *absorbs* the pre-existing stats surfaces
  (``SatSolver.stats`` as ``sat.*``, per-plugin ``Theory.stats`` as
  ``theory.<name>.*``, the intern table as ``intern.*``) behind one
  snapshot/delta API.
* :mod:`repro.obs.spans` — hierarchical wall-clock tracing
  (``perf_counter_ns``) over the whole pipeline, with merged hot spans
  and a no-op-cheap module-level :func:`trace_span` entry point.
* :mod:`repro.obs.events` — a bounded JSONL search-event log
  (decisions, conflicts/learns with LBD, restarts, theory lemmas with
  plugin provenance, push/pop, unknown reasons) with per-kind caps and
  sampling.

:class:`Observability` bundles one of each for the engine: metrics are
always on (snapshot cost only, no hot-path overhead), tracer and events
are opt-in and ``None`` by default — disabled instrumentation is a
single ``is None`` test at every call site.
"""

from __future__ import annotations

from typing import Optional

from .events import (
    EVENT_SCHEMA,
    EventLog,
    open_memory_log,
    validate_event,
    validate_trace,
)
from .metrics import Counter, Gauge, MetricsRegistry, Timer
from .profile import format_phase_table, phase_seconds, phase_totals
from .spans import (
    NULL_SPAN,
    Span,
    Tracer,
    get_current_tracer,
    set_current_tracer,
    trace_span,
)


class Observability:
    """The engine-facing bundle: one registry, optional tracer, optional
    event log.  ``Observability()`` is the cheap default (metrics only);
    :meth:`tracing` turns everything on."""

    __slots__ = ("metrics", "tracer", "events")

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        events: Optional[EventLog] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self.events = events

    @classmethod
    def tracing(cls, events: Optional[EventLog] = None) -> "Observability":
        """Metrics + a fresh tracer (+ an event log when given)."""
        return cls(tracer=Tracer(), events=events)


__all__ = [
    "Observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Timer",
    "Span",
    "Tracer",
    "NULL_SPAN",
    "trace_span",
    "set_current_tracer",
    "get_current_tracer",
    "EventLog",
    "EVENT_SCHEMA",
    "validate_event",
    "validate_trace",
    "open_memory_log",
    "phase_totals",
    "phase_seconds",
    "format_phase_table",
]
