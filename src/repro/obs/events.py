"""The structured search-event log (JSONL).

An :class:`EventLog` streams one JSON object per line to a sink — a path
or any writable file object.  Every record carries three envelope
fields:

* ``seq`` — the record's 0-based position in the log,
* ``t_ns`` — nanoseconds since the log was opened (``perf_counter_ns``,
  monotonic),
* ``kind`` — one of the kinds in :data:`EVENT_SCHEMA`,

plus the kind's own payload fields (clause sizes, LBD, backjump levels,
the originating theory plugin, ``unknown`` reasons ...).

Adversarial instances produce millions of decision/conflict events, so
the log is **bounded by construction**: each kind gets ``cap_per_kind``
full-rate records, after which only every ``sample_stride``-th event of
that kind is written.  Nothing is silently lost — per-kind emitted and
dropped totals accumulate and :meth:`EventLog.close` appends a final
``summary`` record carrying them, so a truncated trace still supports
exact event-rate characterization.

:func:`validate_event` / :func:`validate_trace` check records against
:data:`EVENT_SCHEMA`; the test suite and CI artifact checks use them.
"""

from __future__ import annotations

import io
import json
import time
from pathlib import Path
from typing import IO, Any, Mapping, Optional, Union

#: ``kind`` → payload fields required on every record of that kind.
#: Records may carry extra fields; the envelope (``seq``/``t_ns``/
#: ``kind``) is required on all.
EVENT_SCHEMA: dict[str, frozenset[str]] = {
    # Script / engine lifecycle.
    "script": frozenset({"path"}),
    "push": frozenset({"levels", "depth"}),
    "pop": frozenset({"levels", "depth"}),
    "check-begin": frozenset({"index"}),
    "check-end": frozenset({"index", "answer"}),
    "unknown": frozenset({"index", "reason"}),
    # CDCL search.
    "decision": frozenset({"var", "level"}),
    "conflict": frozenset({"level", "size"}),
    "learn": frozenset({"size", "lbd", "backjump"}),
    "restart": frozenset({"conflicts"}),
    # Theory integration.
    "theory-lemma": frozenset({"size"}),
    "theory-conflict": frozenset({"plugin", "size"}),
    # Log bookkeeping (always written, never sampled).
    "summary": frozenset({"counts", "dropped"}),
}

_ENVELOPE = ("seq", "t_ns", "kind")

#: Default per-kind full-rate budget and past-cap sampling stride.
DEFAULT_CAP_PER_KIND = 10_000
DEFAULT_SAMPLE_STRIDE = 100


class EventLog:
    """A bounded JSONL event sink; see the module docstring.

    ``sink`` may be a path (opened and owned by the log) or a writable
    text file object (flushed but left open).  The log is usable as a
    context manager; :meth:`close` is idempotent and always appends the
    ``summary`` record first.
    """

    def __init__(
        self,
        sink: Union[str, Path, IO[str]],
        cap_per_kind: int = DEFAULT_CAP_PER_KIND,
        sample_stride: int = DEFAULT_SAMPLE_STRIDE,
    ) -> None:
        if cap_per_kind < 1 or sample_stride < 1:
            raise ValueError("cap_per_kind and sample_stride must be >= 1")
        if isinstance(sink, (str, Path)):
            self._sink: IO[str] = open(sink, "w", encoding="utf-8")
            self._owns_sink = True
        else:
            self._sink = sink
            self._owns_sink = False
        self._cap = cap_per_kind
        self._stride = sample_stride
        self._seq = 0
        self._t0 = time.perf_counter_ns()
        self._counts: dict[str, int] = {}
        self._dropped: dict[str, int] = {}
        self._closed = False

    # -- emission ------------------------------------------------------------

    def emit(self, kind: str, **fields: Any) -> None:
        """Record one event (dropped past the per-kind cap, except on the
        sampling stride).  Emitting on a closed log is a no-op so late
        stragglers never crash a solve."""
        if self._closed:
            return
        count = self._counts.get(kind, 0) + 1
        self._counts[kind] = count
        if count > self._cap and (count - self._cap) % self._stride != 0:
            self._dropped[kind] = self._dropped.get(kind, 0) + 1
            return
        self._write(kind, fields)

    def _write(self, kind: str, fields: Mapping[str, Any]) -> None:
        record = {"seq": self._seq, "t_ns": time.perf_counter_ns() - self._t0, "kind": kind}
        record.update(fields)
        self._seq += 1
        self._sink.write(json.dumps(record, separators=(",", ":"), sort_keys=False))
        self._sink.write("\n")

    # -- lifecycle -----------------------------------------------------------

    @property
    def counts(self) -> dict[str, int]:
        """Events seen per kind (written + dropped)."""
        return dict(self._counts)

    @property
    def dropped(self) -> dict[str, int]:
        """Events dropped per kind by the cap/sampling bound."""
        return dict(self._dropped)

    def close(self) -> None:
        if self._closed:
            return
        self._write("summary", {"counts": self._counts, "dropped": self._dropped})
        self._closed = True
        self._sink.flush()
        if self._owns_sink:
            self._sink.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Schema validation.
# ---------------------------------------------------------------------------


def validate_event(record: object) -> list[str]:
    """Problems with one decoded record (empty list = schema-valid)."""
    errors: list[str] = []
    if not isinstance(record, dict):
        return [f"record is not an object: {record!r}"]
    for field in _ENVELOPE:
        if field not in record:
            errors.append(f"missing envelope field {field!r}")
    seq = record.get("seq")
    if "seq" in record and (not isinstance(seq, int) or seq < 0):
        errors.append(f"seq must be a non-negative integer, got {seq!r}")
    t_ns = record.get("t_ns")
    if "t_ns" in record and (not isinstance(t_ns, int) or t_ns < 0):
        errors.append(f"t_ns must be a non-negative integer, got {t_ns!r}")
    kind = record.get("kind")
    if kind is not None:
        required = EVENT_SCHEMA.get(kind)
        if required is None:
            errors.append(f"unknown event kind {kind!r}")
        else:
            for field in sorted(required):
                if field not in record:
                    errors.append(f"{kind}: missing field {field!r}")
    return errors


def validate_trace(source: Union[str, Path, IO[str]]) -> list[str]:
    """Problems across a whole JSONL trace: per-line JSON decoding and
    schema validity, ``seq`` contiguity, ``t_ns`` monotonicity, and the
    presence of a final ``summary`` record."""
    if isinstance(source, (str, Path)):
        handle: IO[str] = open(source, encoding="utf-8")
        own = True
    else:
        handle = source
        own = False
    errors: list[str] = []
    last_kind: Optional[str] = None
    expected_seq = 0
    last_t = -1
    try:
        for number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"line {number}: invalid JSON ({exc})")
                continue
            for problem in validate_event(record):
                errors.append(f"line {number}: {problem}")
            if isinstance(record, dict):
                if record.get("seq") != expected_seq:
                    errors.append(
                        f"line {number}: seq {record.get('seq')!r}, expected {expected_seq}"
                    )
                expected_seq += 1
                t_ns = record.get("t_ns")
                if isinstance(t_ns, int):
                    if t_ns < last_t:
                        errors.append(f"line {number}: t_ns went backwards")
                    last_t = t_ns
                kind = record.get("kind")
                last_kind = kind if isinstance(kind, str) else last_kind
    finally:
        if own:
            handle.close()
    if expected_seq == 0:
        errors.append("trace is empty")
    elif last_kind != "summary":
        errors.append("trace does not end with a summary record")
    return errors


def open_memory_log(**kwargs: Any) -> tuple[EventLog, io.StringIO]:
    """An :class:`EventLog` writing into an in-memory buffer — the shape
    tests and ad-hoc tooling want."""
    buffer = io.StringIO()
    return EventLog(buffer, **kwargs), buffer


__all__ = [
    "EVENT_SCHEMA",
    "DEFAULT_CAP_PER_KIND",
    "DEFAULT_SAMPLE_STRIDE",
    "EventLog",
    "validate_event",
    "validate_trace",
    "open_memory_log",
]
