"""Hierarchical span tracing over ``perf_counter_ns``.

A :class:`Tracer` records a tree of named :class:`Span` activations —
``parse`` → ``check-sat`` → ``search`` → ``theory-check`` — with
nanosecond wall-clock per node.  Spans are context managers::

    tracer = Tracer()
    with tracer.span("check-sat"):
        with tracer.span("encode"):
            ...

Two properties matter for instrumenting a solver:

* **Merging** — hot repeated children (a theory check per propagation
  fixpoint) would bloat the tree; ``span(name, merge=True)`` folds every
  closed same-named sibling into one node that accumulates ``total_ns``
  and ``count``.  The tree stays bounded by the number of *distinct*
  phase names, not the number of activations.
* **No-op cheapness** — call sites in library code use the module-level
  :func:`trace_span`, which consults the *current tracer*.  When none is
  installed (the default), it returns a shared null context manager
  after a single global load, so instrumented code paths cost a few
  nanoseconds when tracing is off.  The current tracer is plain module
  state (like the intern table, the library is single-threaded by
  design); installers save and restore via :func:`set_current_tracer`.

Spans close in LIFO order even when the body raises — the context
manager protocol guarantees it — and reentrant same-name nesting is
legal (recursive phases simply nest).
"""

from __future__ import annotations

import time
from typing import Optional


class Span:
    """One node of the trace tree.

    ``total_ns`` is the authoritative duration: for a plain span it is
    ``end - start``; for a merged span it accumulates over every folded
    activation, with ``count`` recording how many.
    """

    __slots__ = ("name", "start_ns", "total_ns", "count", "children", "_open")

    def __init__(self, name: str) -> None:
        self.name = name
        self.start_ns = 0
        self.total_ns = 0
        self.count = 1
        self.children: list[Span] = []
        self._open = False

    def to_dict(self) -> dict:
        """JSON-ready recursive shape."""
        out: dict = {"name": self.name, "ns": self.total_ns, "count": self.count}
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<span {self.name} {self.total_ns}ns x{self.count}>"


class _SpanHandle:
    """Context manager for one span activation."""

    __slots__ = ("_tracer", "span", "_merge")

    def __init__(self, tracer: "Tracer", span: Span, merge: bool) -> None:
        self._tracer = tracer
        self.span = span
        self._merge = merge

    def __enter__(self) -> "_SpanHandle":
        self._tracer._enter(self.span)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._exit(self.span, self._merge)


class _NullSpan:
    """Shared no-op stand-in returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects a forest of spans; see the module docstring."""

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, merge: bool = False) -> _SpanHandle:
        """A context manager recording one activation of ``name``."""
        return _SpanHandle(self, Span(name), merge)

    @property
    def depth(self) -> int:
        """Currently open spans (0 outside any activation)."""
        return len(self._stack)

    def _enter(self, span: Span) -> None:
        if span._open:
            raise RuntimeError(f"span handle re-entered while open: {span.name}")
        span._open = True
        (self._stack[-1].children if self._stack else self.roots).append(span)
        self._stack.append(span)
        span.start_ns = time.perf_counter_ns()

    def _exit(self, span: Span, merge: bool) -> None:
        elapsed = time.perf_counter_ns() - span.start_ns
        top = self._stack.pop()
        assert top is span, "spans must close in LIFO order"
        span.total_ns += elapsed
        span._open = False
        if not merge:
            return
        siblings = self._stack[-1].children if self._stack else self.roots
        for sibling in siblings:
            if sibling is span or sibling.name != span.name or sibling._open:
                continue
            _merge_into(sibling, span)
            siblings.remove(span)
            return


def _merge_into(dst: Span, src: Span) -> None:
    """Fold ``src`` into ``dst``, merging same-named children recursively
    so a hot merged span never accumulates one subtree per activation."""
    dst.total_ns += src.total_ns
    dst.count += src.count
    for child in src.children:
        for existing in dst.children:
            if existing.name == child.name and not existing._open:
                _merge_into(existing, child)
                break
        else:
            dst.children.append(child)


# ---------------------------------------------------------------------------
# The current tracer (module state; single-threaded by design).
# ---------------------------------------------------------------------------

_current: Optional[Tracer] = None


def set_current_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` as the target of :func:`trace_span`; returns the
    previous one so callers can restore it (``finally``-style)."""
    global _current
    previous = _current
    _current = tracer
    return previous


def get_current_tracer() -> Optional[Tracer]:
    return _current


def trace_span(name: str, merge: bool = False):
    """A span on the current tracer, or the shared no-op when tracing is
    off — the library-wide instrumentation entry point."""
    tracer = _current
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, merge)


__all__ = [
    "Span",
    "Tracer",
    "NULL_SPAN",
    "trace_span",
    "set_current_tracer",
    "get_current_tracer",
]
