"""The unified metrics registry.

One :class:`MetricsRegistry` gives every layer of the solver a single,
namespaced counter surface.  Three primitive instruments cover the
existing needs:

* :class:`Counter` — a monotonically increasing integer (``decisions``,
  ``conflicts``, ``guard_clauses`` ...).  Deltas between snapshots are
  meaningful.
* :class:`Gauge` — a point-in-time level (``learned_db``, intern-table
  ``live`` nodes).  Snapshots report the current value; deltas keep the
  *after* value rather than subtracting.
* :class:`Timer` — a monotonic wall-clock accumulator over
  :func:`time.perf_counter_ns`, reported as ``<name>_ns`` /
  ``<name>_count`` pairs.

Hot loops (the CDCL inner loop, congruence closure) keep their plain
``dict`` counters — wrapping every increment in an object call would tax
the hottest paths.  Instead the registry *absorbs* those surfaces as
**sources**: :meth:`MetricsRegistry.register_source` takes a namespace
and a zero-argument supplier returning a mapping, and every
:meth:`~MetricsRegistry.snapshot` folds the supplier's entries in under
``<namespace>.<key>``.  This is how ``SatSolver.stats`` (``sat.*``),
per-plugin ``Theory.stats`` (``theory.euf.*``, ``theory.arith.*``) and
:func:`repro.smtlib.terms.intern_stats` (``intern.*``) unify behind one
API without touching their increment sites.

Snapshots are plain ``dict[str, int]`` and therefore JSON-ready;
:meth:`MetricsRegistry.delta` subtracts two snapshots counter-wise while
letting gauge-marked keys keep their absolute value — the engine's
per-``check-sat`` statistics are exactly such a delta.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Mapping, Optional


class Counter:
    """A monotonically increasing integer instrument."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only move forward; use a Gauge")
        self.value += amount


class Gauge:
    """A point-in-time level (absolute, not delta-able)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: int) -> None:
        self.value = value


class Timer:
    """A monotonic wall-clock accumulator (``perf_counter_ns``).

    Use as a context-manager factory::

        with registry.timer("engine.encode").time():
            ...

    ``total_ns`` and ``count`` accumulate across activations; nested or
    overlapping activations are supported (each holds its own start
    stamp).
    """

    __slots__ = ("total_ns", "count")

    def __init__(self) -> None:
        self.total_ns = 0
        self.count = 0

    def add_ns(self, elapsed_ns: int) -> None:
        if elapsed_ns < 0:
            raise ValueError("timers are monotonic; negative spans are bugs")
        self.total_ns += elapsed_ns
        self.count += 1

    def time(self) -> "_Timing":
        return _Timing(self)


class _Timing:
    """One timer activation; records on exit."""

    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._start = 0

    def __enter__(self) -> "_Timing":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._timer.add_ns(time.perf_counter_ns() - self._start)


class MetricsRegistry:
    """Namespaced counters, gauges, timers and absorbed stat sources.

    Instrument names are dotted paths (``engine.guard_clauses``); a name
    identifies exactly one instrument kind for the registry's lifetime.
    Sources are registered per namespace and may be re-registered (the
    engine re-binds its solver source on every reset) or unregistered.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, Timer] = {}
        self._sources: dict[
            str, tuple[Callable[[], Mapping[str, int]], frozenset[str]]
        ] = {}

    # -- instruments ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._claim(name)
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._claim(name)
            instrument = self._gauges[name] = Gauge()
        return instrument

    def timer(self, name: str) -> Timer:
        instrument = self._timers.get(name)
        if instrument is None:
            self._claim(name)
            instrument = self._timers[name] = Timer()
        return instrument

    def _claim(self, name: str) -> None:
        if name in self._counters or name in self._gauges or name in self._timers:
            raise ValueError(f"metric name already bound to another kind: {name!r}")

    # -- absorbed sources ----------------------------------------------------

    def register_source(
        self,
        namespace: str,
        supplier: Callable[[], Mapping[str, int]],
        gauges: Iterable[str] = (),
    ) -> None:
        """Absorb an external stats mapping under ``<namespace>.<key>``.

        ``gauges`` names the supplier keys that are levels rather than
        monotonic counters (they survive :meth:`delta` untouched).
        Re-registering a namespace replaces its supplier.
        """
        self._sources[namespace] = (supplier, frozenset(gauges))

    def unregister_source(self, namespace: str) -> None:
        self._sources.pop(namespace, None)

    def unregister_prefix(self, prefix: str) -> None:
        """Drop every source whose namespace starts with ``prefix``."""
        for namespace in [ns for ns in self._sources if ns.startswith(prefix)]:
            del self._sources[namespace]

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> dict[str, int]:
        """Flatten everything into one ``name -> value`` mapping."""
        out: dict[str, int] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, timer in self._timers.items():
            out[f"{name}_ns"] = timer.total_ns
            out[f"{name}_count"] = timer.count
        for namespace, (supplier, _) in self._sources.items():
            for key, value in supplier().items():
                out[f"{namespace}.{key}"] = value
        return out

    def gauge_keys(self) -> frozenset[str]:
        """Snapshot keys whose values are levels, not counters."""
        keys = set(self._gauges)
        for namespace, (_, gauges) in self._sources.items():
            for key in gauges:
                keys.add(f"{namespace}.{key}")
        return frozenset(keys)

    def delta(
        self,
        before: Mapping[str, int],
        after: Optional[Mapping[str, int]] = None,
    ) -> dict[str, int]:
        """``after - before`` per key, with three refinements: ``after``
        defaults to a fresh snapshot, keys absent from ``before`` count
        from zero, and gauge keys keep their ``after`` value (levels do
        not subtract meaningfully)."""
        if after is None:
            after = self.snapshot()
        absolute = self.gauge_keys()
        return {
            key: value if key in absolute else value - before.get(key, 0)
            for key, value in after.items()
        }


__all__ = ["Counter", "Gauge", "Timer", "MetricsRegistry"]
