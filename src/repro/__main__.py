"""``python -m repro`` — decide SMT-LIB scripts from the command line.

Reads each ``.smt2`` script, executes it with :class:`repro.engine.Engine`
and prints the solver output: one ``sat``/``unsat``/``unknown`` line per
``(check-sat)``, a ``(model ...)`` block per ``(get-model)`` and a value
list per ``(get-value ...)``.  Exit status is 0 when every file was
processed, 1 when any file failed to read, parse or type-check.

Usage::

    python -m repro file.smt2 [more.smt2 ...] [--stats] [--conflict-limit N]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from .engine import Engine
from .errors import ReproError
from .smtlib import parse_script


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Execute SMT-LIB scripts and decide their check-sat commands.",
    )
    parser.add_argument("paths", nargs="+", metavar="script.smt2", help="scripts to run")
    parser.add_argument(
        "--conflict-limit",
        type=int,
        default=None,
        metavar="N",
        help="answer unknown after N CDCL conflicts per check-sat",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-check-sat solver statistics as comment lines",
    )
    args = parser.parse_args(argv)

    # Every pass is recursive over term depth; generated scripts nest deeply.
    sys.setrecursionlimit(1_000_000)

    status = 0
    for path in args.paths:
        if len(args.paths) > 1:
            print(f"; {path}")
        try:
            script = parse_script(Path(path).read_text(encoding="utf-8"))
        except (OSError, ReproError) as exc:
            print(f'(error "{path}: {exc}")', file=sys.stderr)
            status = 1
            continue
        result = Engine(conflict_limit=args.conflict_limit).run(script)
        for line in result.output:
            print(line)
        if args.stats:
            for index, check in enumerate(result.check_results):
                stats = check.stats
                detail = ", ".join(f"{key}={stats[key]}" for key in sorted(stats))
                reason = f" reason={check.reason}" if check.reason else ""
                print(f"; check-sat #{index}: {check.answer}{reason} ({detail})")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
