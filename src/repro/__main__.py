"""``python -m repro`` — decide SMT-LIB scripts from the command line.

Reads each ``.smt2`` script, executes it with the incremental
:class:`repro.engine.Engine` and prints the solver output: one
``sat``/``unsat``/``unknown`` line per ``(check-sat)``, a ``(model ...)``
block per ``(get-model)`` and a value list per ``(get-value ...)``.

When a script carries a ``(set-info :status sat|unsat)`` annotation, every
computed answer is compared against it; a contradiction prints a warning
to stderr, and with ``--strict-status`` also fails the run.

Observability flags:

* ``--stats`` prints the per-``check-sat`` solver counters (conflicts,
  propagations, restarts, theory lemmas, Tseitin reuse ...) as comment
  lines.
* ``--stats-json`` replaces the normal solver output with **one** JSON
  document covering every input file — per-check legacy ``stats``,
  namespaced ``metrics`` deltas, per-phase nanoseconds and a final
  whole-run registry snapshot — so the output pipes straight into
  ``python -m json.tool`` or ``jq``.  Warnings and ``--profile`` tables
  move to stderr.
* ``--trace FILE`` streams the structured search-event log (decisions,
  conflicts/learns with LBD, restarts, theory lemmas/conflicts with
  plugin provenance, push/pop, unknown reasons) as JSONL to ``FILE``,
  one shared bounded log across all inputs with a ``script`` event per
  file.
* ``--profile`` records hierarchical phase spans (parse → prepare →
  encode → search → theory-check → model/validate) and prints a
  per-file timing table as comment lines.
* ``--dimacs PATH`` dumps the final solver CNF — gates, frame-selector
  guards, level-0 facts and theory lemmas — in DIMACS format (with
  several inputs, ``PATH.<index>`` per file).

Certification flags:

* ``--proof PATH`` turns proof production on and writes each ``unsat``
  answer's DRAT-style clause proof to ``PATH`` (``PATH.<index>`` per
  file with several inputs, and ``.c<check>`` per check when a script
  has several unsat answers).
* ``--check-proofs`` turns proof production on and replays every
  ``unsat`` answer's proof through the independent RUP/DRAT checker; a
  missing or rejected proof prints an error and fails the run.

Exit status: 0 on success, 1 when any file failed to read, parse or
type-check (or ``--check-proofs`` rejected a proof), 2 when
``--strict-status`` found a contradicted annotation.

Parallelism and budgets:

* ``--timeout SECS`` gives each script a wall-clock budget; expired
  checks answer ``unknown`` with reason ``timeout``.
* ``--portfolio N`` races N diversified solver configurations in worker
  processes, first definitive answer wins (losers are cancelled
  cooperatively); ``--share-clauses`` additionally broadcasts short
  learnt clauses between the workers.  ``--dimacs``/``--trace`` are
  sequential-only.

Usage::

    python -m repro file.smt2 [more.smt2 ...] [--stats] [--stats-json]
                    [--trace FILE] [--profile] [--conflict-limit N]
                    [--timeout SECS] [--portfolio N] [--share-clauses]
                    [--dimacs PATH] [--proof PATH] [--check-proofs]
                    [--strict-status]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Optional

from .engine import Engine
from .errors import ReproError
from .limits import ensure_recursion_limit
from .portfolio import solve_portfolio
from .obs import (
    EventLog,
    Observability,
    Tracer,
    format_phase_table,
    phase_totals,
    set_current_tracer,
    trace_span,
)
from .proof import check_proof
from .smtlib import parse_script


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Execute SMT-LIB scripts and decide their check-sat commands.",
    )
    parser.add_argument("paths", nargs="+", metavar="script.smt2", help="scripts to run")
    parser.add_argument(
        "--conflict-limit",
        type=int,
        default=None,
        metavar="N",
        help="answer unknown after N CDCL conflicts per check-sat",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECS",
        help="wall-clock budget per script; expired checks answer unknown "
        "with reason timeout",
    )
    parser.add_argument(
        "--portfolio",
        type=int,
        default=None,
        metavar="N",
        help="race N diversified solver configurations in worker processes; "
        "the first definitive answer wins",
    )
    parser.add_argument(
        "--share-clauses",
        action="store_true",
        help="with --portfolio, share short learnt clauses between workers",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-check-sat solver statistics as comment lines",
    )
    parser.add_argument(
        "--stats-json",
        action="store_true",
        help="print one JSON document (per-check stats, namespaced metrics, "
        "phase timings) instead of the solver output",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="stream the structured search-event log (JSONL) to FILE",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="record per-phase spans and print a timing table per file",
    )
    parser.add_argument(
        "--dimacs",
        metavar="PATH",
        default=None,
        help="dump the final CNF in DIMACS format (PATH.<i> per file when "
        "several scripts are given)",
    )
    parser.add_argument(
        "--proof",
        metavar="PATH",
        default=None,
        help="produce clause proofs and write each unsat answer's DRAT "
        "proof to PATH (PATH.<i> per file, .c<check> per extra unsat check)",
    )
    parser.add_argument(
        "--check-proofs",
        action="store_true",
        help="produce clause proofs and verify every unsat answer with the "
        "independent RUP/DRAT checker (a rejected proof fails the run)",
    )
    parser.add_argument(
        "--strict-status",
        action="store_true",
        help="exit non-zero when an answer contradicts (set-info :status ...)",
    )
    args = parser.parse_args(argv)

    racing = args.portfolio is not None and args.portfolio > 1
    if racing and (args.dimacs is not None or args.trace is not None):
        parser.error("--dimacs and --trace are sequential-only: they expose "
                     "worker-local solver state that a portfolio race does "
                     "not keep")

    # Every pass is recursive over term depth; generated scripts nest
    # deeply.  The bounded guard also applies inside Engine.run and the
    # portfolio worker bootstrap, so the CLI is no longer special.
    ensure_recursion_limit()

    events = EventLog(args.trace) if args.trace is not None else None
    tracing = args.profile or args.stats_json or events is not None
    status = 0
    contradicted = False
    documents: list[dict[str, Any]] = []
    try:
        for index, path in enumerate(args.paths):
            if len(args.paths) > 1 and not args.stats_json:
                print(f"; {path}")
            if events is not None:
                events.emit("script", path=str(path))
            tracer = Tracer() if tracing else None
            previous = set_current_tracer(tracer) if tracer is not None else None
            try:
                try:
                    with trace_span("parse"):
                        script = parse_script(Path(path).read_text(encoding="utf-8"))
                except (OSError, ReproError) as exc:
                    print(f'(error "{path}: {exc}")', file=sys.stderr)
                    status = 1
                    continue
                obs = (
                    Observability(tracer=tracer, events=events)
                    if (tracer is not None or events is not None)
                    else None
                )
                produce_proofs = args.proof is not None or args.check_proofs
                outcome = None
                if racing:
                    outcome = solve_portfolio(
                        script,
                        workers=args.portfolio,
                        conflict_limit=args.conflict_limit,
                        timeout=args.timeout,
                        obs=obs,
                        produce_proofs=produce_proofs,
                        share_clauses=args.share_clauses,
                    )
                    result = outcome.result
                    final_metrics = obs.metrics.snapshot() if obs is not None else {}
                else:
                    engine = Engine(
                        conflict_limit=args.conflict_limit,
                        obs=obs,
                        produce_proofs=produce_proofs,
                        timeout=args.timeout,
                    )
                    result = engine.run(script)
                    final_metrics = engine.metrics.snapshot()
            finally:
                if tracer is not None:
                    set_current_tracer(previous)
            if not args.stats_json:
                for line in result.output:
                    print(line)
            for check_index in result.status_mismatches:
                check = result.check_results[check_index]
                contradicted = True
                print(
                    f"; warning: {path}: check-sat #{check_index} answered "
                    f"{check.answer} but :status is {check.expected}",
                    file=sys.stderr,
                )
            if produce_proofs:
                unsat_checks = [
                    (check_index, check)
                    for check_index, check in enumerate(result.check_results)
                    if check.answer == "unsat"
                ]
                for check_index, check in unsat_checks:
                    if check.proof is None:
                        print(
                            f'(error "{path}: check-sat #{check_index} is unsat'
                            ' but carries no proof")',
                            file=sys.stderr,
                        )
                        status = 1
                        continue
                    if args.check_proofs:
                        verdict = check_proof(check.proof)
                        if not verdict.ok:
                            print(
                                f'(error "{path}: check-sat #{check_index} proof'
                                f' rejected: {verdict.error}")',
                                file=sys.stderr,
                            )
                            status = 1
                    if args.proof is not None:
                        base = (
                            args.proof
                            if len(args.paths) == 1
                            else f"{args.proof}.{index}"
                        )
                        out_path = (
                            base
                            if len(unsat_checks) == 1
                            else f"{base}.c{check_index}"
                        )
                        Path(out_path).write_text(
                            check.proof.to_drat(include_inputs=True),
                            encoding="utf-8",
                        )
            if args.stats and not args.stats_json and outcome is not None:
                winner = outcome.reports[outcome.winner]
                statuses = ", ".join(
                    f"w{report.index}={report.status}"
                    for report in outcome.reports
                )
                print(
                    f"; portfolio: winner w{outcome.winner} "
                    f"({winner.config.name}) in {outcome.elapsed:.2f}s "
                    f"[{statuses}]"
                )
            if args.stats and not args.stats_json:
                for check_index, check in enumerate(result.check_results):
                    stats = check.stats
                    detail = ", ".join(f"{key}={stats[key]}" for key in sorted(stats))
                    reason = f" reason={check.reason}" if check.reason else ""
                    print(f"; check-sat #{check_index}: {check.answer}{reason} ({detail})")
            if args.profile and tracer is not None:
                sink = sys.stderr if args.stats_json else sys.stdout
                print(f"; {path}: phase timings", file=sink)
                print(format_phase_table(tracer, prefix="; "), file=sink)
            if args.stats_json:
                phases = (
                    {p: row["ns"] for p, row in phase_totals(tracer).items()}
                    if tracer is not None
                    else {}
                )
                documents.append(
                    {
                        "path": str(path),
                        "answers": result.answers,
                        "checks": [
                            {
                                "answer": check.answer,
                                "reason": check.reason,
                                "expected": check.expected,
                                "stats": check.stats,
                                "metrics": check.metrics,
                                "phases": check.phases,
                                "proof_steps": (
                                    len(check.proof)
                                    if check.proof is not None
                                    else None
                                ),
                                "unsat_core": (
                                    list(check.unsat_core)
                                    if check.unsat_core is not None
                                    else None
                                ),
                            }
                            for check in result.check_results
                        ],
                        "phases": phases,
                        "metrics": final_metrics,
                    }
                )
            if args.dimacs is not None:
                out_path = (
                    args.dimacs if len(args.paths) == 1 else f"{args.dimacs}.{index}"
                )
                text = engine.dimacs(comments=[f"final CNF of {path}"])
                Path(out_path).write_text(text, encoding="utf-8")
    finally:
        if events is not None:
            events.close()
    if args.stats_json:
        print(json.dumps({"files": documents}, indent=2))
    if status == 0 and contradicted and args.strict_status:
        return 2
    return status


if __name__ == "__main__":
    raise SystemExit(main())
