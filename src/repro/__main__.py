"""``python -m repro`` — decide SMT-LIB scripts from the command line.

Reads each ``.smt2`` script, executes it with the incremental
:class:`repro.engine.Engine` and prints the solver output: one
``sat``/``unsat``/``unknown`` line per ``(check-sat)``, a ``(model ...)``
block per ``(get-model)`` and a value list per ``(get-value ...)``.

When a script carries a ``(set-info :status sat|unsat)`` annotation, every
computed answer is compared against it; a contradiction prints a warning
to stderr, and with ``--strict-status`` also fails the run.  ``--stats``
prints the per-``check-sat`` solver counters (conflicts, propagations,
restarts, theory lemmas, Tseitin reuse ...) as comment lines, and
``--dimacs PATH`` dumps the final solver CNF — gates, frame-selector
guards, level-0 facts and theory lemmas — in DIMACS format (with several
inputs, ``PATH.<index>`` per file).

Exit status: 0 on success, 1 when any file failed to read, parse or
type-check, 2 when ``--strict-status`` found a contradicted annotation.

Usage::

    python -m repro file.smt2 [more.smt2 ...] [--stats] [--conflict-limit N]
                    [--dimacs PATH] [--strict-status]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from .engine import Engine
from .errors import ReproError
from .smtlib import parse_script


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Execute SMT-LIB scripts and decide their check-sat commands.",
    )
    parser.add_argument("paths", nargs="+", metavar="script.smt2", help="scripts to run")
    parser.add_argument(
        "--conflict-limit",
        type=int,
        default=None,
        metavar="N",
        help="answer unknown after N CDCL conflicts per check-sat",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-check-sat solver statistics as comment lines",
    )
    parser.add_argument(
        "--dimacs",
        metavar="PATH",
        default=None,
        help="dump the final CNF in DIMACS format (PATH.<i> per file when "
        "several scripts are given)",
    )
    parser.add_argument(
        "--strict-status",
        action="store_true",
        help="exit non-zero when an answer contradicts (set-info :status ...)",
    )
    args = parser.parse_args(argv)

    # Every pass is recursive over term depth; generated scripts nest deeply.
    sys.setrecursionlimit(1_000_000)

    status = 0
    contradicted = False
    for index, path in enumerate(args.paths):
        if len(args.paths) > 1:
            print(f"; {path}")
        try:
            script = parse_script(Path(path).read_text(encoding="utf-8"))
        except (OSError, ReproError) as exc:
            print(f'(error "{path}: {exc}")', file=sys.stderr)
            status = 1
            continue
        engine = Engine(conflict_limit=args.conflict_limit)
        result = engine.run(script)
        for line in result.output:
            print(line)
        for check_index in result.status_mismatches:
            check = result.check_results[check_index]
            contradicted = True
            print(
                f"; warning: {path}: check-sat #{check_index} answered "
                f"{check.answer} but :status is {check.expected}",
                file=sys.stderr,
            )
        if args.stats:
            for check_index, check in enumerate(result.check_results):
                stats = check.stats
                detail = ", ".join(f"{key}={stats[key]}" for key in sorted(stats))
                reason = f" reason={check.reason}" if check.reason else ""
                print(f"; check-sat #{check_index}: {check.answer}{reason} ({detail})")
        if args.dimacs is not None:
            out_path = (
                args.dimacs if len(args.paths) == 1 else f"{args.dimacs}.{index}"
            )
            text = engine.dimacs(comments=[f"final CNF of {path}"])
            Path(out_path).write_text(text, encoding="utf-8")
    if status == 0 and contradicted and args.strict_status:
        return 2
    return status


if __name__ == "__main__":
    raise SystemExit(main())
