"""``python -m repro`` — decide SMT-LIB scripts from the command line.

Reads each ``.smt2`` script, executes it with the incremental
:class:`repro.engine.Engine` and prints the solver output: one
``sat``/``unsat``/``unknown`` line per ``(check-sat)``, a ``(model ...)``
block per ``(get-model)`` and a value list per ``(get-value ...)``.

When a script carries a ``(set-info :status sat|unsat)`` annotation, every
computed answer is compared against it; a contradiction prints a warning
to stderr, and with ``--strict-status`` also fails the run.

Observability flags:

* ``--stats`` prints the per-``check-sat`` solver counters (conflicts,
  propagations, restarts, theory lemmas, Tseitin reuse ...) as comment
  lines.
* ``--stats-json`` replaces the normal solver output with **one** JSON
  document covering every input file — per-check legacy ``stats``,
  namespaced ``metrics`` deltas, per-phase nanoseconds and a final
  whole-run registry snapshot — so the output pipes straight into
  ``python -m json.tool`` or ``jq``.  Warnings and ``--profile`` tables
  move to stderr.
* ``--trace FILE`` streams the structured search-event log (decisions,
  conflicts/learns with LBD, restarts, theory lemmas/conflicts with
  plugin provenance, push/pop, unknown reasons) as JSONL to ``FILE``,
  one shared bounded log across all inputs with a ``script`` event per
  file.
* ``--profile`` records hierarchical phase spans (parse → prepare →
  encode → search → theory-check → model/validate) and prints a
  per-file timing table as comment lines.
* ``--dimacs PATH`` dumps the final solver CNF — gates, frame-selector
  guards, level-0 facts and theory lemmas — in DIMACS format (with
  several inputs, ``PATH.<index>`` per file).

Exit status: 0 on success, 1 when any file failed to read, parse or
type-check, 2 when ``--strict-status`` found a contradicted annotation.

Usage::

    python -m repro file.smt2 [more.smt2 ...] [--stats] [--stats-json]
                    [--trace FILE] [--profile] [--conflict-limit N]
                    [--dimacs PATH] [--strict-status]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Optional

from .engine import Engine
from .errors import ReproError
from .obs import (
    EventLog,
    Observability,
    Tracer,
    format_phase_table,
    phase_totals,
    set_current_tracer,
    trace_span,
)
from .smtlib import parse_script


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Execute SMT-LIB scripts and decide their check-sat commands.",
    )
    parser.add_argument("paths", nargs="+", metavar="script.smt2", help="scripts to run")
    parser.add_argument(
        "--conflict-limit",
        type=int,
        default=None,
        metavar="N",
        help="answer unknown after N CDCL conflicts per check-sat",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-check-sat solver statistics as comment lines",
    )
    parser.add_argument(
        "--stats-json",
        action="store_true",
        help="print one JSON document (per-check stats, namespaced metrics, "
        "phase timings) instead of the solver output",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="stream the structured search-event log (JSONL) to FILE",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="record per-phase spans and print a timing table per file",
    )
    parser.add_argument(
        "--dimacs",
        metavar="PATH",
        default=None,
        help="dump the final CNF in DIMACS format (PATH.<i> per file when "
        "several scripts are given)",
    )
    parser.add_argument(
        "--strict-status",
        action="store_true",
        help="exit non-zero when an answer contradicts (set-info :status ...)",
    )
    args = parser.parse_args(argv)

    # Every pass is recursive over term depth; generated scripts nest deeply.
    sys.setrecursionlimit(1_000_000)

    events = EventLog(args.trace) if args.trace is not None else None
    tracing = args.profile or args.stats_json or events is not None
    status = 0
    contradicted = False
    documents: list[dict[str, Any]] = []
    try:
        for index, path in enumerate(args.paths):
            if len(args.paths) > 1 and not args.stats_json:
                print(f"; {path}")
            if events is not None:
                events.emit("script", path=str(path))
            tracer = Tracer() if tracing else None
            previous = set_current_tracer(tracer) if tracer is not None else None
            try:
                try:
                    with trace_span("parse"):
                        script = parse_script(Path(path).read_text(encoding="utf-8"))
                except (OSError, ReproError) as exc:
                    print(f'(error "{path}: {exc}")', file=sys.stderr)
                    status = 1
                    continue
                obs = (
                    Observability(tracer=tracer, events=events)
                    if (tracer is not None or events is not None)
                    else None
                )
                engine = Engine(conflict_limit=args.conflict_limit, obs=obs)
                result = engine.run(script)
            finally:
                if tracer is not None:
                    set_current_tracer(previous)
            if not args.stats_json:
                for line in result.output:
                    print(line)
            for check_index in result.status_mismatches:
                check = result.check_results[check_index]
                contradicted = True
                print(
                    f"; warning: {path}: check-sat #{check_index} answered "
                    f"{check.answer} but :status is {check.expected}",
                    file=sys.stderr,
                )
            if args.stats and not args.stats_json:
                for check_index, check in enumerate(result.check_results):
                    stats = check.stats
                    detail = ", ".join(f"{key}={stats[key]}" for key in sorted(stats))
                    reason = f" reason={check.reason}" if check.reason else ""
                    print(f"; check-sat #{check_index}: {check.answer}{reason} ({detail})")
            if args.profile and tracer is not None:
                sink = sys.stderr if args.stats_json else sys.stdout
                print(f"; {path}: phase timings", file=sink)
                print(format_phase_table(tracer, prefix="; "), file=sink)
            if args.stats_json:
                phases = (
                    {p: row["ns"] for p, row in phase_totals(tracer).items()}
                    if tracer is not None
                    else {}
                )
                documents.append(
                    {
                        "path": str(path),
                        "answers": result.answers,
                        "checks": [
                            {
                                "answer": check.answer,
                                "reason": check.reason,
                                "expected": check.expected,
                                "stats": check.stats,
                                "metrics": check.metrics,
                                "phases": check.phases,
                            }
                            for check in result.check_results
                        ],
                        "phases": phases,
                        "metrics": engine.metrics.snapshot(),
                    }
                )
            if args.dimacs is not None:
                out_path = (
                    args.dimacs if len(args.paths) == 1 else f"{args.dimacs}.{index}"
                )
                text = engine.dimacs(comments=[f"final CNF of {path}"])
                Path(out_path).write_text(text, encoding="utf-8")
    finally:
        if events is not None:
            events.close()
    if args.stats_json:
        print(json.dumps({"files": documents}, indent=2))
    if status == 0 and contradicted and args.strict_status:
        return 2
    return status


if __name__ == "__main__":
    raise SystemExit(main())
