"""Reproduction library for conf_asplos_SunYZ26.

Subpackages:

* :mod:`repro.smtlib` — the SMT-LIB front end: lexer, s-expressions, sorts,
  terms, script parser, type checker and round-trip printer.
* :mod:`repro.errors` — the shared exception hierarchy.
"""

from . import errors
from .errors import ReproError, SmtLibError, SolverError

__version__ = "0.1.0"

__all__ = ["errors", "ReproError", "SmtLibError", "SolverError", "__version__"]
