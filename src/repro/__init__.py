"""Reproduction library for conf_asplos_SunYZ26.

Subpackages and modules:

* :mod:`repro.smtlib` — the SMT-LIB front end: lexer, s-expressions, sorts,
  terms, script parser, type checker, simplifier/evaluator, CNF lowering
  and round-trip printer.
* :mod:`repro.sat` — the CDCL propositional solver (two-watched-literal
  propagation, first-UIP learning, VSIDS decay, Luby restarts) plus DIMACS
  import/export.
* :mod:`repro.engine` — script execution: runs ``assert`` /
  ``check-sat`` / ``get-model`` / ``get-value`` / ``push`` / ``pop`` and
  decides quantifier-free boolean structure (``python -m repro`` is the
  CLI).
* :mod:`repro.portfolio` — parallel portfolio solving: races diversified
  :class:`~repro.sat.SolverConfig` strategies across worker processes
  with cooperative cancellation and optional learned-clause sharing.
* :mod:`repro.errors` — the shared exception hierarchy.
"""

from . import errors
from .engine import CheckSatResult, Engine, ScriptResult, run_script, solve_script
from .errors import ReproError, SmtLibError, SolverError
from .limits import ensure_recursion_limit
from .portfolio import PortfolioOutcome, solve_portfolio
from .sat import SolverConfig

__version__ = "0.1.0"

__all__ = [
    "errors",
    "ReproError",
    "SmtLibError",
    "SolverError",
    "Engine",
    "CheckSatResult",
    "ScriptResult",
    "run_script",
    "solve_script",
    "SolverConfig",
    "PortfolioOutcome",
    "solve_portfolio",
    "ensure_recursion_limit",
    "__version__",
]
