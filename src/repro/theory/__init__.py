"""The pluggable theory layer of the DPLL(T) engine.

* :mod:`repro.theory.core` — the :class:`Theory` interface every plugin
  implements (``assert_literal`` / ``check`` / ``explain``-via-conflicts /
  ``push`` / ``pop`` / ``model``), the :class:`TheoryConflict` explanation
  shape, and the :class:`SortValueAllocator` that mints pairwise-distinct
  model values per sort.
* :mod:`repro.theory.euf` — the first plugin: congruence closure over the
  hash-consed DAG (union-find with a proof forest, congruence table keyed
  on interned children, disequality and distinguished-constant tracking),
  deciding QF_UF with checkable models and minimal-ish explanations.
* :mod:`repro.theory.arith` — the second plugin: linear rational/integer
  arithmetic (QF_LRA/QF_LIA) by Dutertre–de Moura dual simplex over
  δ-rationals, with Bland's-rule pivoting, minimal bound-clash and row
  explanations, and budgeted branch-and-bound for integer solutions.
* :class:`~repro.theory.core.TheoryComposite` — the dispatcher: routes
  each atom to the first plugin owning it (arithmetic before EUF),
  forwards checkpoints to all plugins in lockstep, and merges their
  models/statistics, so the engine keeps talking to exactly one
  :class:`Theory`.

The SAT core (:mod:`repro.sat`) knows nothing about terms and theories;
the engine (:mod:`repro.engine`) adapts a :class:`Theory` into a
:class:`repro.sat.TheoryHook` by mapping trail literals back to atoms.
"""

from .arith import ArithTheory, DeltaRational
from .core import (
    SortValueAllocator,
    Theory,
    TheoryComposite,
    TheoryConflict,
    TheoryModel,
)
from .euf import EufTheory

__all__ = [
    "Theory",
    "TheoryConflict",
    "TheoryModel",
    "TheoryComposite",
    "SortValueAllocator",
    "EufTheory",
    "ArithTheory",
    "DeltaRational",
]
