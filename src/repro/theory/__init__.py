"""The pluggable theory layer of the DPLL(T) engine.

* :mod:`repro.theory.core` — the :class:`Theory` interface every plugin
  implements (``assert_literal`` / ``check`` / ``explain``-via-conflicts /
  ``push`` / ``pop`` / ``model``), the :class:`TheoryConflict` explanation
  shape, and the :class:`SortValueAllocator` that mints pairwise-distinct
  model values per sort.
* :mod:`repro.theory.euf` — the first plugin: congruence closure over the
  hash-consed DAG (union-find with a proof forest, congruence table keyed
  on interned children, disequality and distinguished-constant tracking),
  deciding QF_UF with checkable models and minimal-ish explanations.

The SAT core (:mod:`repro.sat`) knows nothing about terms and theories;
the engine (:mod:`repro.engine`) adapts a :class:`Theory` into a
:class:`repro.sat.TheoryHook` by mapping trail literals back to atoms.
"""

from .core import SortValueAllocator, Theory, TheoryConflict, TheoryModel
from .euf import EufTheory

__all__ = [
    "Theory",
    "TheoryConflict",
    "TheoryModel",
    "SortValueAllocator",
    "EufTheory",
]
