"""The pluggable theory layer of the DPLL(T) engine.

* :mod:`repro.theory.core` — the :class:`Theory` interface every plugin
  implements (``assert_literal`` / ``check`` / ``explain``-via-conflicts /
  ``push`` / ``pop`` / ``model``), the :class:`TheoryConflict` explanation
  shape, the :class:`TheoryClause` lazy-lemma channel, and the
  :class:`SortValueAllocator` that mints pairwise-distinct model values
  per sort.
* :mod:`repro.theory.euf` — the first plugin: congruence closure over the
  hash-consed DAG (union-find with a proof forest, congruence table keyed
  on interned children, disequality and distinguished-constant tracking),
  deciding QF_UF with checkable models and minimal-ish explanations.
* :mod:`repro.theory.arith` — the second plugin: linear rational/integer
  arithmetic (QF_LRA/QF_LIA) by Dutertre–de Moura dual simplex over
  δ-rationals, with Bland's-rule pivoting, minimal bound-clash and row
  explanations, and budgeted branch-and-bound for integer solutions.
* :mod:`repro.theory.arrays` — the third plugin: extensional arrays
  (QF_AX-style ``select``/``store``) as a congruence-closure *extension*
  — one e-graph shared with EUF, read-over-write axioms instantiated
  lazily, symbolic index case splits shipped to the SAT core as
  :class:`~repro.theory.core.TheoryClause` lemmas.
* :mod:`repro.theory.bv` — not a lazy plugin but the *eager* path:
  :class:`~repro.theory.bv.BvBlaster` lowers QF_BV atoms to boolean
  circuits before encoding, so bit-vector reasoning rides the plain
  CDCL/proof pipeline.
* :class:`~repro.theory.core.TheoryComposite` — the dispatcher: routes
  each atom to the first plugin owning it (arithmetic before congruence
  closure), forwards checkpoints to all plugins in lockstep, and merges
  their models/statistics, so the engine keeps talking to exactly one
  :class:`Theory`.

The SAT core (:mod:`repro.sat`) knows nothing about terms and theories;
the engine (:mod:`repro.engine`) adapts a :class:`Theory` into a
:class:`repro.sat.TheoryHook` by mapping trail literals back to atoms.
See ``docs/THEORIES.md`` for the plugin-author contract.
"""

from .arith import ArithTheory, DeltaRational
from .arrays import ArraysState, ArraysTheory
from .bv import BvBlaster
from .core import (
    SortValueAllocator,
    Theory,
    TheoryClause,
    TheoryComposite,
    TheoryConflict,
    TheoryModel,
)
from .euf import EufTheory

__all__ = [
    "Theory",
    "TheoryConflict",
    "TheoryClause",
    "TheoryModel",
    "TheoryComposite",
    "SortValueAllocator",
    "EufTheory",
    "ArithTheory",
    "ArraysTheory",
    "ArraysState",
    "BvBlaster",
    "DeltaRational",
]
