"""The pluggable theory interface of the DPLL(T) engine.

A :class:`Theory` decides conjunctions of *theory literals* — atoms the
boolean skeleton abstracts away, asserted positively or negatively as the
SAT trail grows.  The engine drives a theory through five operations:

* :meth:`~Theory.owns_atom` — static classification: does this atom belong
  to the theory's fragment?  Atoms nobody owns stay abstract and make a
  propositionally satisfiable answer ``unknown``.
* :meth:`~Theory.assert_literal` — add one literal to the asserted set.
  Theories process eagerly: an inconsistency is reported immediately as a
  :class:`TheoryConflict` naming the responsible literal subset (the
  *explanation*, which the engine turns into a blocking clause for the
  SAT solver).
* :meth:`~Theory.check` — final consistency verdict over everything
  currently asserted; called at full propositional assignments.
* :meth:`~Theory.push` / :meth:`~Theory.pop` — checkpoint/rollback of the
  asserted set, called in lockstep with the SAT trail so backtracking
  never rebuilds theory state from scratch.
* :meth:`~Theory.model` — after a consistent final check: concrete values
  for the theory's symbols and interpretations for its uninterpreted
  functions, buildable into a script-level model.

The contract mirrors the lazy-SMT architecture of Z3/cvc5-style engines:
the SAT core enumerates boolean skeletons, theories veto them with
explanations, and the exchange of lemmas converges on a theory-consistent
model or propositional unsatisfiability.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:
    from ..obs.metrics import MetricsRegistry

from ..smtlib.evaluate import FunctionInterpretation
from ..smtlib.sorts import (
    BOOL,
    INT,
    REAL,
    STRING,
    Sort,
    is_bitvec,
    is_finite_field,
)
from ..smtlib.terms import (
    Constant,
    Term,
    bitvec_const,
    ff_const,
    int_const,
    qualified_constant,
)


@dataclass(frozen=True)
class TheoryConflict:
    """An inconsistent subset of the asserted literals.

    ``literals`` are ``(atom, positive)`` pairs whose conjunction the
    theory refutes; the engine negates them into a blocking clause.  Every
    listed literal must currently be asserted — the explanation is a
    subset, ideally small, of the asserted set.  ``source`` names the
    plugin that produced the conflict (observability provenance: the
    search-event log records which theory vetoed an assignment).
    """

    literals: tuple[tuple[Term, bool], ...]
    source: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "literals", tuple(self.literals))


@dataclass(frozen=True)
class TheoryClause:
    """A valid clause a theory asks the engine to add to the SAT core.

    Lazy instantiation (the array axioms, say) sometimes needs a
    *case split* the current assignment does not determine — ``i = j``
    versus ``i ≠ j`` for a symbolic read over a write.  A
    :class:`TheoryConflict` cannot express that (its literals must all be
    asserted); a :class:`TheoryClause` can: its literals are ``(atom,
    positive)`` pairs whose disjunction is **valid in the theory**, so the
    engine may add it permanently (it survives ``pop``) and let the SAT
    core branch.  Atoms new to the solver are encoded on the fly.
    ``source`` names the emitting plugin for proof/event provenance.
    """

    literals: tuple[tuple[Term, bool], ...]
    source: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "literals", tuple(self.literals))


@dataclass
class TheoryModel:
    """Concrete theory assignment: symbol values plus interpretations for
    uninterpreted functions, in the shapes :mod:`repro.smtlib.evaluate`
    consumes directly."""

    values: dict[str, Constant] = field(default_factory=dict)
    functions: dict[str, FunctionInterpretation] = field(default_factory=dict)


class Theory(ABC):
    """Abstract base of theory plugins (see the module docstring).

    Implementations keep ``stats`` (plain counters, merged into the
    engine's per-``check-sat`` statistics under a ``<name>_`` prefix) and
    must make :meth:`pop` restore *exactly* the state at the matching
    :meth:`push`, including any recorded conflict.
    """

    #: Short lowercase identifier, used to prefix statistics keys.
    name: str = "theory"

    def __init__(self) -> None:
        self.stats: dict[str, int] = {}

    @abstractmethod
    def owns_atom(self, atom: Term) -> bool:
        """True when the theory decides ``atom`` (asserted either way)."""

    @abstractmethod
    def assert_literal(self, atom: Term, positive: bool) -> Optional[TheoryConflict]:
        """Assert one literal; report an inconsistency immediately."""

    @abstractmethod
    def check(self) -> Optional[TheoryConflict]:
        """Final verdict over the full asserted set (``None`` = consistent)."""

    @abstractmethod
    def push(self) -> None:
        """Checkpoint the current asserted state."""

    @abstractmethod
    def pop(self, levels: int = 1) -> None:
        """Roll back to the state ``levels`` checkpoints ago."""

    @abstractmethod
    def model(self, allocator: "SortValueAllocator") -> Optional[TheoryModel]:
        """Concrete values after a consistent :meth:`check`; ``None`` when
        the theory cannot realize one (e.g. a finite sort ran out of
        distinct values)."""

    def incomplete_reason(self) -> Optional[str]:
        """Why the last :meth:`check` was incomplete (an exhausted search
        budget, say) — the engine reports it as the ``unknown`` reason
        when :meth:`model` returns ``None``.  Default: ``None`` (the
        theory is complete for its fragment)."""
        return None

    def pending_lemmas(self) -> tuple[TheoryClause, ...]:
        """Valid clauses queued since the last call (lazy instantiation).

        Drained by the engine after a conflict-free :meth:`check`; each
        clause is added to the SAT core permanently and the search
        resumes, so instantiation converges over repeated final checks.
        Default: no lemmas (most theories propagate eagerly)."""
        return ()

    def register_metrics(self, registry: "MetricsRegistry") -> None:
        """Absorb this plugin's counters into a metrics registry under
        ``theory.<name>``.  The default registration covers any plugin
        whose ``stats`` is a plain dict; plugins with gauge-like keys or
        extra instruments override and extend."""
        registry.register_source(f"theory.{self.name}", lambda: self.stats)


class TheoryComposite(Theory):
    """Routes atoms among several theory plugins (first owner wins).

    The engine talks to *one* :class:`Theory`; the composite fans the
    interface out to an ordered plugin list:

    * **Routing** — an atom is decided by the first plugin whose
      ``owns_atom`` accepts it; the choice is cached so every later
      ``assert_literal`` is a dictionary hit.  The plugin order is the
      priority order (arithmetic before EUF, so numeric comparisons are
      never mistaken for uninterpreted structure).
    * **Checkpoints** — ``push``/``pop`` forward to every plugin, so the
      per-literal trail synchronization stays exact regardless of which
      plugin an individual literal went to.
    * **Conflicts** — the first plugin reporting a conflict wins; its
      explanation is already a subset of the asserted literals, so the
      engine can ship it unchanged.
    * **Models** — plugin models merge in priority order (earlier
      plugins' values win), sharing one
      :class:`SortValueAllocator` so values minted by different plugins
      stay pairwise distinct per sort.  Any plugin failing to produce a
      model fails the composite.
    * **Statistics** — merged with a ``<plugin-name>_`` prefix per key.
    """

    name = "multi"

    def __init__(self, plugins: Sequence[Theory]) -> None:
        self._plugins = tuple(plugins)
        self._route: dict[Term, Optional[Theory]] = {}

    @property
    def plugins(self) -> tuple[Theory, ...]:
        return self._plugins

    @property
    def stats(self) -> dict[str, int]:  # type: ignore[override]
        merged: dict[str, int] = {}
        for plugin in self._plugins:
            for key, value in plugin.stats.items():
                merged[f"{plugin.name}_{key}"] = value
        return merged

    @stats.setter
    def stats(self, value: dict[str, int]) -> None:
        raise AttributeError("composite statistics are derived, not assignable")

    def owner(self, atom: Term) -> Optional[Theory]:
        """The plugin that decides ``atom``, or ``None`` (cached)."""
        cached = self._route.get(atom, _UNROUTED)
        if cached is not _UNROUTED:
            return cached  # type: ignore[return-value]
        owner: Optional[Theory] = None
        for plugin in self._plugins:
            if plugin.owns_atom(atom):
                owner = plugin
                break
        self._route[atom] = owner
        return owner

    def owns_atom(self, atom: Term) -> bool:
        return self.owner(atom) is not None

    def assert_literal(self, atom: Term, positive: bool) -> Optional[TheoryConflict]:
        owner = self.owner(atom)
        assert owner is not None, f"no plugin owns asserted atom: {atom!r}"
        return owner.assert_literal(atom, positive)

    def check(self) -> Optional[TheoryConflict]:
        for plugin in self._plugins:
            conflict = plugin.check()
            if conflict is not None:
                return conflict
        return None

    def push(self) -> None:
        for plugin in self._plugins:
            plugin.push()

    def pop(self, levels: int = 1) -> None:
        for plugin in self._plugins:
            plugin.pop(levels)

    def model(self, allocator: "SortValueAllocator") -> Optional[TheoryModel]:
        merged = TheoryModel()
        for plugin in self._plugins:
            partial = plugin.model(allocator)
            if partial is None:
                return None
            for key, value in partial.values.items():
                merged.values.setdefault(key, value)
            for key, interpretation in partial.functions.items():
                merged.functions.setdefault(key, interpretation)
        return merged

    def incomplete_reason(self) -> Optional[str]:
        for plugin in self._plugins:
            reason = plugin.incomplete_reason()
            if reason is not None:
                return reason
        return None

    def pending_lemmas(self) -> tuple[TheoryClause, ...]:
        lemmas: list[TheoryClause] = []
        for plugin in self._plugins:
            lemmas.extend(plugin.pending_lemmas())
        return tuple(lemmas)

    def register_metrics(self, registry: "MetricsRegistry") -> None:
        for plugin in self._plugins:
            plugin.register_metrics(registry)


_UNROUTED = object()


class SortValueAllocator:
    """Mints pairwise-distinct constants per sort for model construction.

    Theories pin the constants their constraints already mention via
    :meth:`reserve`; :meth:`fresh` then returns values distinct from every
    reserved *and* previously minted constant of that sort.  Uninterpreted
    sorts get ``@``-qualified abstract constants — the evaluator treats
    the ``@`` qualifier as a distinguished model value, so ``=`` and
    ``distinct`` fold over them.  Finite sorts (``BitVec``, finite
    fields) can exhaust; :meth:`fresh` then returns ``None`` and the
    caller falls back to ``unknown``.
    """

    def __init__(self) -> None:
        self._used: dict[Sort, set] = {}
        self._next: dict[Sort, int] = {}

    def reserve(self, constant: Constant) -> None:
        """Pin an existing constant so no fresh value collides with it."""
        self._used.setdefault(constant.sort, set()).add(constant.value)

    def fresh(self, sort: Sort) -> Optional[Constant]:
        """A constant of ``sort`` distinct from all reserved/minted ones."""
        used = self._used.setdefault(sort, set())
        counter = self._next.get(sort, 0)
        if sort == BOOL:
            return None  # booleans belong to the SAT core, not the theories
        if is_bitvec(sort) or is_finite_field(sort):
            capacity = (1 << sort.width) if is_bitvec(sort) else sort.width
            while counter < capacity and counter in used:
                counter += 1
            if counter >= capacity:
                return None
            self._next[sort] = counter + 1
            used.add(counter)
            if is_finite_field(sort):
                return ff_const(counter, sort.width)
            return bitvec_const(counter, sort.width)
        if sort == INT:
            while counter in used:
                counter += 1
            self._next[sort] = counter + 1
            used.add(counter)
            return int_const(counter)
        if sort == REAL:
            while Fraction(counter) in used:
                counter += 1
            self._next[sort] = counter + 1
            used.add(Fraction(counter))
            return Constant(Fraction(counter), REAL)
        if sort == STRING:
            value = f"@{counter}"
            while value in used:
                counter += 1
                value = f"@{counter}"
            self._next[sort] = counter + 1
            used.add(value)
            return Constant(value, STRING)
        # Uninterpreted (or otherwise unvalued) sort: abstract constants.
        self._next[sort] = counter + 1
        return qualified_constant(f"@{sort.name}!{counter}", sort)


__all__ = [
    "Theory",
    "TheoryConflict",
    "TheoryClause",
    "TheoryModel",
    "TheoryComposite",
    "SortValueAllocator",
]
