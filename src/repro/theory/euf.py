"""EUF: congruence closure over the hash-consed term DAG.

The first concrete :class:`~repro.theory.core.Theory` plugin decides the
quantifier-free theory of equality with uninterpreted functions.  The
implementation is the classic congruence-closure loop (Downey–Sethi–Tarjan
signatures, Nieuwenhuis–Oliveras proof forest):

* **Union-find** — every registered term node is in a class; ``find``
  walks parent pointers (union by rank, no path compression so rollback
  is a pure log replay).
* **Congruence table** — each application is keyed by its *signature*
  ``(op, indices, find(arg1), ..., find(argn))``; two applications whose
  signatures collide are congruent and their classes merge.  Merging
  re-signs the smaller side's use-list, so closure cost follows the
  classes that actually changed.
* **Proof forest** — every union adds an edge labelled with its cause: an
  asserted literal or a congruence between two applications.
  :meth:`EufTheory.explain` walks the forest (recursing through
  congruence labels) to produce the *subset* of asserted literals that
  forces an equality — the explanations that become SAT-level blocking
  clauses.
* **Disequalities** — negated equalities are indexed per class and
  checked on every union; asserting or deriving ``a = b`` against a
  recorded ``a ≠ b`` raises a conflict explained by the disequality
  literal plus the equality's proof.
* **Distinguished constants** — literal constants (numerals, strings,
  bit-vectors, ``true``/``false``) denote pairwise-distinct individuals;
  each class tracks at most one, and merging two is a conflict.  This
  lets EUF refute e.g. ``x = 1 ∧ x = 2`` with no arithmetic at all.
* **Predicates** — a boolean-sorted uninterpreted application asserted
  positively (negatively) merges with the ``true`` (``false``) constant,
  so predicate congruence ``x = y ∧ p(x) → p(y)`` falls out of the
  constant machinery.

Every mutation is written through an undo log; :meth:`~EufTheory.push`
records a watermark and :meth:`~EufTheory.pop` replays the log backward,
giving the per-literal checkpoints the DPLL(T) trail synchronization
needs.
"""

from __future__ import annotations

from typing import Callable, Collection, Iterable, Optional, Union

from ..smtlib.sorts import BOOL
from ..smtlib.terms import FALSE, TRUE, Apply, Constant, Symbol, Term
from ..smtlib.evaluate import FunctionInterpretation
from .core import SortValueAllocator, Theory, TheoryConflict, TheoryModel

_MISSING = object()

#: Proof-forest edge labels.
_Reason = tuple  # ("lit", atom, positive) | ("cong", app1, app2)


def _distinguished(constant: Constant) -> bool:
    """Literal constants denoting pairwise-distinct individuals (mirrors
    the evaluator's notion of a decidable literal)."""
    from ..smtlib.sorts import is_finite_field

    return (
        not constant.qualifier
        or is_finite_field(constant.sort)
        or constant.qualifier.startswith("@")
    )


class EufTheory(Theory):
    """Congruence closure with proof-producing explanations.

    ``uninterpreted`` names the script's declared functions (a collection
    of names or a predicate) — applications of anything else are treated
    as interpreted and stay outside the EUF fragment.
    """

    name = "euf"

    def __init__(
        self,
        uninterpreted: Union[Callable[[str], bool], Collection[str]] = (),
    ) -> None:
        super().__init__()
        self._is_uninterpreted: Callable[[str], bool]
        if callable(uninterpreted):
            self._is_uninterpreted = uninterpreted
        else:
            names = frozenset(uninterpreted)
            self._is_uninterpreted = names.__contains__
        self._rank: dict[Term, int] = {}
        self._parent: dict[Term, Term] = {}  # non-roots only
        self._sigs: dict[tuple, Apply] = {}
        self._use: dict[Term, list[Apply]] = {}  # representative -> apps to re-sign
        self._const: dict[Term, Constant] = {}  # representative -> distinguished constant
        self._diseqs: dict[Term, list[tuple[Term, Term, Term]]] = {}
        self._proof: dict[Term, tuple[Term, _Reason]] = {}
        self._conflict: Optional[TheoryConflict] = None
        self._trail: list[tuple] = []
        self._marks: list[int] = []
        self.stats = {"literals": 0, "merges": 0, "conflicts": 0, "explains": 0}

    # -- fragment membership -------------------------------------------------

    def is_euf_term(self, term: Term) -> bool:
        """True for terms EUF reasons about: distinguished constants,
        non-boolean symbols, and uninterpreted applications over such
        terms (argument positions must be non-boolean — boolean structure
        belongs to the SAT core)."""
        if isinstance(term, Constant):
            return _distinguished(term)
        if isinstance(term, Symbol):
            return term.sort != BOOL
        if isinstance(term, Apply):
            if term.indices or not self._is_uninterpreted(term.op):
                return False
            for arg in term.args:
                if arg.sort == BOOL or not self.is_euf_term(arg):
                    return False
            return True
        return False

    def owns_atom(self, atom: Term) -> bool:
        """EUF atoms: binary non-boolean equalities over EUF terms, and
        boolean-sorted uninterpreted applications (predicates)."""
        if not isinstance(atom, Apply):
            return False
        if atom.op == "=" and len(atom.args) == 2 and atom.args[0].sort != BOOL:
            return self.is_euf_term(atom.args[0]) and self.is_euf_term(atom.args[1])
        if atom.sort == BOOL and not atom.indices and self._is_uninterpreted(atom.op):
            for arg in atom.args:
                if arg.sort == BOOL or not self.is_euf_term(arg):
                    return False
            return True
        return False

    # -- undo log ------------------------------------------------------------

    def push(self) -> None:
        self._marks.append(len(self._trail))

    def pop(self, levels: int = 1) -> None:
        for _ in range(levels):
            mark = self._marks.pop()
            trail = self._trail
            while len(trail) > mark:
                entry = trail.pop()
                kind = entry[0]
                if kind == "d":
                    _, mapping, key, old = entry
                    if old is _MISSING:
                        mapping.pop(key, None)
                    else:
                        mapping[key] = old
                elif kind == "l":
                    _, values, length = entry
                    del values[length:]
                else:  # "c": conflict flag
                    self._conflict = entry[1]

    def _save(self, mapping: dict, key) -> None:
        self._trail.append(("d", mapping, key, mapping.get(key, _MISSING)))

    def _save_len(self, values: list) -> None:
        self._trail.append(("l", values, len(values)))

    def _set_conflict(self, conflict: TheoryConflict) -> None:
        self._trail.append(("c", self._conflict))
        self._conflict = conflict
        self.stats["conflicts"] += 1

    # -- union-find ----------------------------------------------------------

    def find(self, term: Term) -> Term:
        """The class representative of a registered term."""
        parent = self._parent
        node = parent.get(term)
        while node is not None:
            term = node
            node = parent.get(term)
        return term

    def same_class(self, a: Term, b: Term) -> bool:
        """True when both terms are currently known equal."""
        return self.find(a) is self.find(b)

    # -- registration --------------------------------------------------------

    def _signature(self, app: Apply) -> tuple:
        parts: list = [app.op, app.indices]
        for arg in app.args:
            parts.append(self.find(arg))
        return tuple(parts)

    def _register(self, term: Term) -> None:
        """Enter ``term`` (and its subterms) into the closure structures."""
        if term in self._rank:
            return
        if isinstance(term, Apply):
            for arg in term.args:
                self._register(arg)
        self._save(self._rank, term)
        self._rank[term] = 0
        if isinstance(term, Constant) and _distinguished(term):
            self._save(self._const, term)
            self._const[term] = term
        if isinstance(term, Apply):
            for rep in {self.find(arg) for arg in term.args}:
                use = self._use.setdefault(rep, [])
                self._save_len(use)
                use.append(term)
            signature = self._signature(term)
            existing = self._sigs.get(signature)
            if existing is None:
                self._save(self._sigs, signature)
                self._sigs[signature] = term
            elif self.find(existing) is not self.find(term):
                self._merge(term, existing, ("cong", term, existing))

    # -- merging -------------------------------------------------------------

    def _merge(self, a: Term, b: Term, reason: _Reason) -> None:
        pending: list[tuple[Term, Term, _Reason]] = [(a, b, reason)]
        while pending and self._conflict is None:
            x, y, why = pending.pop()
            root_x, root_y = self.find(x), self.find(y)
            if root_x is root_y:
                continue
            if self._rank[root_x] > self._rank[root_y]:
                x, y = y, x
                root_x, root_y = root_y, root_x
            self._proof_link(x, y, why)
            self._save(self._parent, root_x)
            self._parent[root_x] = root_y
            if self._rank[root_x] == self._rank[root_y]:
                self._save(self._rank, root_y)
                self._rank[root_y] += 1
            self.stats["merges"] += 1
            # Distinguished constants: at most one per class.
            const_x = self._const.get(root_x)
            const_y = self._const.get(root_y)
            if const_x is not None:
                if const_y is not None:
                    if const_x is not const_y:
                        self._set_conflict(
                            TheoryConflict(tuple(self.explain(const_x, const_y)), source=self.name)
                        )
                        return
                else:
                    self._save(self._const, root_y)
                    self._const[root_y] = const_x
            # Disequalities recorded against the absorbed class.
            entries = self._diseqs.get(root_x)
            if entries:
                merged = self._diseqs.setdefault(root_y, [])
                self._save_len(merged)
                for entry in entries:
                    lhs, rhs, atom = entry
                    if self.find(lhs) is self.find(rhs):
                        literals = [(atom, False)]
                        literals.extend(self.explain(lhs, rhs))
                        self._set_conflict(TheoryConflict(tuple(literals), source=self.name))
                        return
                    merged.append(entry)
            # Congruence: re-sign the absorbed class's use-list.
            uses = self._use.get(root_x)
            if uses:
                target = self._use.setdefault(root_y, [])
                self._save_len(target)
                for app in uses:
                    target.append(app)
                    signature = self._signature(app)
                    existing = self._sigs.get(signature)
                    if existing is None:
                        self._save(self._sigs, signature)
                        self._sigs[signature] = app
                    elif self.find(existing) is not self.find(app):
                        pending.append((app, existing, ("cong", app, existing)))

    # -- proof forest ----------------------------------------------------------

    def _proof_link(self, a: Term, b: Term, reason: _Reason) -> None:
        """Record the edge ``a — b`` by making ``a`` the root of its proof
        tree (reversing the path above it) and pointing it at ``b``."""
        path: list[tuple[Term, tuple[Term, _Reason]]] = []
        node = a
        while True:
            edge = self._proof.get(node)
            if edge is None:
                break
            path.append((node, edge))
            node = edge[0]
        for child, (parent, why) in path:
            self._save(self._proof, parent)
        for child, (parent, why) in path:
            self._proof[parent] = (child, why)
        self._save(self._proof, a)
        self._proof[a] = (b, reason)

    def explain(self, a: Term, b: Term) -> list[tuple[Term, bool]]:
        """The asserted literals forcing ``a = b``, as ``(atom, positive)``
        pairs — a (deduplicated) subset of the asserted set."""
        self.stats["explains"] += 1
        out: list[tuple[Term, bool]] = []
        seen_pairs: set[frozenset] = set()
        seen_literals: set[tuple[Term, bool]] = set()
        self._explain_pair(a, b, out, seen_pairs, seen_literals)
        return out

    def _explain_pair(
        self,
        a: Term,
        b: Term,
        out: list[tuple[Term, bool]],
        seen_pairs: set[frozenset],
        seen_literals: set[tuple[Term, bool]],
    ) -> None:
        if a is b:
            return
        key = frozenset((a, b))
        if key in seen_pairs:
            return
        seen_pairs.add(key)
        # Nearest common ancestor in the proof tree both terms share.
        ancestors = {a}
        node = a
        while True:
            edge = self._proof.get(node)
            if edge is None:
                break
            node = edge[0]
            ancestors.add(node)
        lca = b
        while lca not in ancestors:
            edge = self._proof.get(lca)
            assert edge is not None, "explain() on terms not known equal"
            lca = edge[0]
        for start in (a, b):
            node = start
            while node is not lca:
                node, why = self._proof[node]
                if why[0] == "lit":
                    literal = (why[1], why[2])
                    if literal not in seen_literals:
                        seen_literals.add(literal)
                        out.append(literal)
                else:
                    left, right = why[1], why[2]
                    for arg_l, arg_r in zip(left.args, right.args):
                        self._explain_pair(
                            arg_l, arg_r, out, seen_pairs, seen_literals
                        )

    # -- the Theory interface --------------------------------------------------

    def assert_literal(self, atom: Term, positive: bool) -> Optional[TheoryConflict]:
        if self._conflict is not None:
            return self._conflict
        self.stats["literals"] += 1
        assert isinstance(atom, Apply), f"not an EUF atom: {atom!r}"
        if atom.op == "=" and len(atom.args) == 2 and atom.args[0].sort != BOOL:
            lhs, rhs = atom.args
            self._register(lhs)
            self._register(rhs)
            if self._conflict is not None:
                return self._conflict
            if positive:
                self._merge(lhs, rhs, ("lit", atom, True))
            elif self.find(lhs) is self.find(rhs):
                literals = [(atom, False)]
                literals.extend(self.explain(lhs, rhs))
                self._set_conflict(TheoryConflict(tuple(literals), source=self.name))
            else:
                for end_a, end_b in ((lhs, rhs), (rhs, lhs)):
                    entries = self._diseqs.setdefault(self.find(end_a), [])
                    self._save_len(entries)
                    entries.append((lhs, rhs, atom))
            return self._conflict
        # Predicate atom: p(args) = true / false.
        self._register(atom)
        target = TRUE if positive else FALSE
        self._register(target)
        if self._conflict is not None:
            return self._conflict
        self._merge(atom, target, ("lit", atom, positive))
        return self._conflict

    def check(self) -> Optional[TheoryConflict]:
        # The closure is maintained eagerly, so the verdict is immediate.
        return self._conflict

    def _model_repair(
        self, classes: dict[Term, list[Term]]
    ) -> tuple[dict[Term, Term], tuple[tuple[Term, Term, Term], ...]]:
        """Hook for subclasses to adjust model construction.

        Returns ``(class_map, select_rows)``: classes mapped to a common
        root share one model value (instead of the default one-value-per-
        class assignment), and every ``(array_rep, index_rep, value_rep)``
        row is materialised as a ``select`` graph entry.  Pure EUF needs
        neither — distinctness is always sound here."""
        return {}, ()

    def model(self, allocator: SortValueAllocator) -> Optional[TheoryModel]:
        """Assign every class a value: its distinguished constant when it
        has one, otherwise a fresh value distinct from every other class
        of the sort.  Distinctness is always sound for EUF — classes are
        merged exactly when equality is forced — but subclasses with
        stronger semantics (arrays) can merge values via
        :meth:`_model_repair`."""
        if self._conflict is not None:
            return None
        classes: dict[Term, list[Term]] = {}
        for term in self._rank:
            classes.setdefault(self.find(term), []).append(term)
        class_map, select_rows = self._model_repair(classes)
        group_constant: dict[Term, Constant] = {}
        for representative in classes:
            constant = self._const.get(representative)
            if constant is not None:
                allocator.reserve(constant)
                group_constant[class_map.get(representative, representative)] = constant
        values: dict[Term, Constant] = {}
        group_value: dict[Term, Constant] = {}
        for representative in classes:
            root = class_map.get(representative, representative)
            constant = group_value.get(root)
            if constant is None:
                constant = group_constant.get(root)
                if constant is None:
                    constant = allocator.fresh(representative.sort)
                    if constant is None:
                        return None  # finite sort exhausted: no distinct model
                group_value[root] = constant
            values[representative] = constant
        model = TheoryModel()
        functions: dict[str, dict[tuple[Constant, ...], Constant]] = {}
        results: dict[str, Constant] = {}
        for array_rep, index_rep, value_rep in select_rows:
            key = (values[array_rep], values[index_rep])
            functions.setdefault("select", {})[key] = values[value_rep]
            results.setdefault("select", values[value_rep])
        for representative, members in classes.items():
            value = values[representative]
            for term in members:
                if isinstance(term, Symbol):
                    model.values[term.name] = value
                elif isinstance(term, Apply):
                    key = tuple(values[self.find(arg)] for arg in term.args)
                    functions.setdefault(term.op, {})[key] = value
                    results.setdefault(term.op, value)
        for op, entries in functions.items():
            result_sort = next(iter(entries.values())).sort
            if result_sort == BOOL:
                default: Optional[Constant] = FALSE
            else:
                default = allocator.fresh(result_sort)
            if default is None:
                default = results[op]
            model.functions[op] = FunctionInterpretation(entries, default)
        return model

    # -- introspection ---------------------------------------------------------

    def asserted_diseqs(self) -> Iterable[tuple[Term, Term, Term]]:
        """Currently recorded disequality entries (for tests/debugging)."""
        seen = set()
        for entries in self._diseqs.values():
            for entry in entries:
                if id(entry) not in seen:
                    seen.add(id(entry))
                    yield entry


__all__ = ["EufTheory"]
