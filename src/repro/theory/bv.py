"""Eager bit-blasting: QF_BV atoms → boolean circuits.

Unlike the lazy plugins (:class:`~repro.theory.arith.ArithTheory`,
:class:`~repro.theory.euf.EufTheory`), bit-vector reasoning is handled
*eagerly*: :class:`BvBlaster` rewrites every supported bit-vector atom
into a pure boolean term over fresh *bit symbols* (one per bit of every
bit-vector variable) **before** Tseitin encoding.  The rewritten skeleton
flows through the unchanged CNF/SAT pipeline, so

* blasted clauses are ordinary *input* clauses of the proof log — a BV
  ``unsat`` is fully RUP-certified by the independent checker with no
  trusted lemma steps, and
* the incremental engine's term-keyed memoization applies: a
  ``check-sat`` after ``push``/``pop`` re-blasts and re-encodes nothing
  for unchanged assertions.

The circuit constructors mirror :func:`repro.smtlib.evaluate.fold_apply`
operation by operation (ripple-carry adder, shift-add multiplier,
restoring divider with the SMT-LIB total semantics for division by zero,
barrel shifters with the ``shift >= width`` clamp, the signed
``bvsdiv``/``bvsrem``/``bvsmod`` definitional expansions), which makes
``fold_apply`` the blaster's semantic oracle: every ``sat`` model is
validated by evaluating the *pre-blast* assertions, so the circuits are
cross-checked against the reference semantics on every run, and the
differential fuzzer compares both against exhaustive enumeration.

Atoms whose bit-vector leaves are not plain symbols or constants (an
uninterpreted application, an array ``select`` ...) are left untouched;
they stay ordinary atoms for the lazy plugins or remain abstracted, which
keeps every answer sound.
"""

from __future__ import annotations

from typing import Optional

from ..smtlib.cnf import is_connective
from ..smtlib.sorts import BOOL, is_bitvec
from ..smtlib.terms import (
    FALSE,
    TRUE,
    Apply,
    Constant,
    Symbol,
    Term,
    bitvec_const,
    negate,
)

#: Bit-symbol name marker: bit ``i`` of symbol ``x`` is ``x!bv!i``.  The
#: ``!`` keeps generated names out of the plain-symbol lexical space, so
#: they cannot collide with script-declared identifiers.
BIT_MARKER = "!bv!"

#: Widths past this are not blasted (the circuits grow quadratically for
#: multiplication/division); the atom stays abstracted instead.
MAX_BLAST_WIDTH = 256

_UNSIGNED_CMP = {"bvult": False, "bvule": True, "bvugt": False, "bvuge": True}
_SIGNED_CMP = frozenset({"bvslt", "bvsle", "bvsgt", "bvsge"})


class _Unsupported(Exception):
    """Internal control flow: the atom leaves the supported fragment."""


class BvBlaster:
    """Rewrites boolean skeletons, lowering bit-vector atoms to circuits.

    One instance lives as long as the engine: the word memo (term → bit
    list) and the atom memo survive ``push``/``pop``, so incremental
    re-checks re-blast nothing, and :meth:`decode` can read back every
    bit-vector variable's value from any later SAT model.
    """

    name = "bv"

    def __init__(self, max_width: int = MAX_BLAST_WIDTH) -> None:
        self.max_width = max_width
        self.stats: dict[str, int] = {
            "atoms_blasted": 0,
            "atoms_skipped": 0,
            "symbols": 0,
            "bits": 0,
            "gates": 0,
        }
        #: symbol name → (width, LSB-first bit symbols).
        self._symbol_bits: dict[str, tuple[int, tuple[Symbol, ...]]] = {}
        self._bit_names: set[str] = set()
        self._word_memo: dict[Term, list[Term]] = {}
        self._atom_memo: dict[Term, Optional[Term]] = {}
        self._skeleton_memo: dict[Term, Term] = {}

    # -- public surface -----------------------------------------------------

    def rewrite(self, term: Term) -> Term:
        """Rewrite a boolean skeleton: connectives are traversed, each
        bit-vector atom becomes its circuit, every other atom survives."""
        cached = self._skeleton_memo.get(term)
        if cached is not None:
            return cached
        if is_connective(term):
            assert isinstance(term, Apply)
            args = tuple(self.rewrite(arg) for arg in term.args)
            result = (
                term
                if args == term.args
                else Apply(term.op, args, term.sort, term.indices)
            )
        else:
            result = self._blast_atom(term)
        self._skeleton_memo[term] = result
        return result

    def is_bit(self, name: str) -> bool:
        """True for generated bit-symbol names (hidden from models)."""
        return name in self._bit_names

    def decode(self, model: dict[str, Constant]) -> dict[str, Constant]:
        """Read every blasted symbol's value out of a boolean model.

        Bits absent from the model (simplified away by constant folding)
        are don't-cares and read as 0."""
        out: dict[str, Constant] = {}
        for name, (width, bits) in self._symbol_bits.items():
            value = 0
            for position, bit in enumerate(bits):
                if model.get(bit.name) is TRUE:
                    value |= 1 << position
            out[name] = bitvec_const(value, width)
        return out

    # -- atom lowering ------------------------------------------------------

    def _blast_atom(self, atom: Term) -> Term:
        if atom in self._atom_memo:
            cached = self._atom_memo[atom]
            return atom if cached is None else cached
        result = self._try_blast(atom)
        self._atom_memo[atom] = result
        if result is None:
            if self._mentions_bitvec(atom):
                self.stats["atoms_skipped"] += 1
            return atom
        self.stats["atoms_blasted"] += 1
        return result

    @staticmethod
    def _mentions_bitvec(atom: Term) -> bool:
        return any(is_bitvec(node.sort) for node in atom.walk())

    def _try_blast(self, atom: Term) -> Optional[Term]:
        if not isinstance(atom, Apply) or atom.indices:
            return None
        try:
            if atom.op == "=" and len(atom.args) >= 2 and is_bitvec(atom.args[0].sort):
                words = [self._bits(arg) for arg in atom.args]
                result = TRUE
                for left, right in zip(words, words[1:]):
                    result = self._and(result, self._word_eq(left, right))
                return result
            if atom.op in _UNSIGNED_CMP and len(atom.args) == 2:
                if not is_bitvec(atom.args[0].sort):
                    return None
                return self._unsigned_cmp(atom.op, *atom.args)
            if atom.op in _SIGNED_CMP and len(atom.args) == 2:
                if not is_bitvec(atom.args[0].sort):
                    return None
                return self._signed_cmp(atom.op, *atom.args)
        except _Unsupported:
            return None
        return None

    def _unsigned_cmp(self, op: str, lhs: Term, rhs: Term) -> Term:
        xs, ys = self._bits(lhs), self._bits(rhs)
        if op in ("bvugt", "bvuge"):
            xs, ys = ys, xs  # a > b  ≡  b < a
        less = self._ult(xs, ys)
        if _UNSIGNED_CMP[op]:  # non-strict: a <= b ≡ ¬(b < a)
            return negate(self._ult(ys, xs))
        return less

    def _signed_cmp(self, op: str, lhs: Term, rhs: Term) -> Term:
        xs, ys = self._bits(lhs), self._bits(rhs)
        if op in ("bvsgt", "bvsge"):
            xs, ys = ys, xs
            op = {"bvsgt": "bvslt", "bvsge": "bvsle"}[op]
        if op == "bvsle":
            return negate(self._slt(ys, xs))
        return self._slt(xs, ys)

    # -- word construction ---------------------------------------------------

    def _bits(self, term: Term) -> list[Term]:
        """The LSB-first boolean bit list of a bit-vector term."""
        cached = self._word_memo.get(term)
        if cached is not None:
            return cached
        result = self._bits_of(term)
        if len(result) > self.max_width:
            raise _Unsupported(term)
        self._word_memo[term] = result
        return result

    def _bits_of(self, term: Term) -> list[Term]:
        if not is_bitvec(term.sort):
            raise _Unsupported(term)
        width = term.sort.width
        if isinstance(term, Constant):
            if not isinstance(term.value, int):
                raise _Unsupported(term)
            return [
                TRUE if (term.value >> i) & 1 else FALSE for i in range(width)
            ]
        if isinstance(term, Symbol):
            return list(self._symbol_word(term.name, width))
        if not isinstance(term, Apply):
            raise _Unsupported(term)
        op, args = term.op, term.args
        if term.indices:
            return self._indexed(term)
        if op in ("bvadd", "bvmul", "bvand", "bvor", "bvxor"):
            acc = self._bits(args[0])
            for arg in args[1:]:
                rhs = self._bits(arg)
                if op == "bvadd":
                    acc = self._add(acc, rhs)
                elif op == "bvmul":
                    acc = self._mul(acc, rhs)
                else:
                    gate = {"bvand": self._and, "bvor": self._or, "bvxor": self._xor}[op]
                    acc = [gate(x, y) for x, y in zip(acc, rhs)]
            return acc
        if op == "bvnot":
            return [negate(b) for b in self._bits(args[0])]
        if op == "bvneg":
            return self._neg(self._bits(args[0]))
        if op == "bvsub":
            xs, ys = self._bits(args[0]), self._bits(args[1])
            return self._add(xs, [negate(y) for y in ys], carry=TRUE)
        if op in ("bvudiv", "bvurem"):
            quotient, remainder = self._udivrem(
                self._bits(args[0]), self._bits(args[1])
            )
            return quotient if op == "bvudiv" else remainder
        if op in ("bvsdiv", "bvsrem", "bvsmod"):
            return self._signed_divrem(
                op, self._bits(args[0]), self._bits(args[1])
            )
        if op in ("bvshl", "bvlshr", "bvashr"):
            return self._shift(op, self._bits(args[0]), self._bits(args[1]))
        if op == "concat":
            out: list[Term] = []
            for arg in reversed(args):  # the last operand is least significant
                out.extend(self._bits(arg))
            return out
        if op == "ite" and len(args) == 3:
            condition = self.rewrite(args[0])
            then_bits = self._bits(args[1])
            else_bits = self._bits(args[2])
            return [
                self._ite(condition, t, e)
                for t, e in zip(then_bits, else_bits)
            ]
        raise _Unsupported(term)

    def _indexed(self, term: Apply) -> list[Term]:
        op, indices = term.op, term.indices
        bits = self._bits(term.args[0]) if term.args else []
        width = len(bits)
        if op == "extract":
            high, low = indices
            return bits[low : high + 1]
        if op == "zero_extend":
            return bits + [FALSE] * indices[0]
        if op == "sign_extend":
            return bits + [bits[-1]] * indices[0]
        if op == "rotate_left":
            k = indices[0] % width
            return bits[width - k :] + bits[: width - k] if k else bits
        if op == "rotate_right":
            k = indices[0] % width
            return bits[k:] + bits[:k] if k else bits
        if op == "repeat":
            return bits * indices[0]
        raise _Unsupported(term)

    def _symbol_word(self, name: str, width: int) -> tuple[Symbol, ...]:
        entry = self._symbol_bits.get(name)
        if entry is not None:
            assert entry[0] == width, f"width clash for {name}"
            return entry[1]
        bits = tuple(
            Symbol(f"{name}{BIT_MARKER}{i}", BOOL) for i in range(width)
        )
        self._symbol_bits[name] = (width, bits)
        self._bit_names.update(bit.name for bit in bits)
        self.stats["symbols"] += 1
        self.stats["bits"] += width
        return bits

    # -- gate constructors (constant-folding) --------------------------------

    def _and(self, a: Term, b: Term) -> Term:
        if a is FALSE or b is FALSE:
            return FALSE
        if a is TRUE:
            return b
        if b is TRUE or a is b:
            return a
        self.stats["gates"] += 1
        return Apply("and", (a, b), BOOL)

    def _or(self, a: Term, b: Term) -> Term:
        if a is TRUE or b is TRUE:
            return TRUE
        if a is FALSE:
            return b
        if b is FALSE or a is b:
            return a
        self.stats["gates"] += 1
        return Apply("or", (a, b), BOOL)

    def _xor(self, a: Term, b: Term) -> Term:
        if a is FALSE:
            return b
        if b is FALSE:
            return a
        if a is TRUE:
            return negate(b)
        if b is TRUE:
            return negate(a)
        if a is b:
            return FALSE
        self.stats["gates"] += 1
        return Apply("xor", (a, b), BOOL)

    def _iff(self, a: Term, b: Term) -> Term:
        return negate(self._xor(a, b))

    def _ite(self, c: Term, t: Term, e: Term) -> Term:
        if c is TRUE:
            return t
        if c is FALSE:
            return e
        if t is e:
            return t
        if t is TRUE and e is FALSE:
            return c
        if t is FALSE and e is TRUE:
            return negate(c)
        if t is TRUE:
            return self._or(c, e)
        if t is FALSE:
            return self._and(negate(c), e)
        if e is FALSE:
            return self._and(c, t)
        if e is TRUE:
            return self._or(negate(c), t)
        self.stats["gates"] += 1
        return Apply("ite", (c, t, e), BOOL)

    # -- word-level circuits -------------------------------------------------

    def _word_eq(self, xs: list[Term], ys: list[Term]) -> Term:
        result = TRUE
        for x, y in zip(xs, ys):
            result = self._and(result, self._iff(x, y))
        return result

    def _add(self, xs: list[Term], ys: list[Term], carry: Term = FALSE) -> list[Term]:
        out = []
        for x, y in zip(xs, ys):
            partial = self._xor(x, y)
            out.append(self._xor(partial, carry))
            carry = self._or(self._and(x, y), self._and(partial, carry))
        return out

    def _neg(self, xs: list[Term]) -> list[Term]:
        return self._add(
            [negate(x) for x in xs], [FALSE] * len(xs), carry=TRUE
        )

    def _mul(self, xs: list[Term], ys: list[Term]) -> list[Term]:
        width = len(xs)
        acc: list[Term] = [FALSE] * width
        for shift, y in enumerate(ys):
            if y is FALSE:
                continue
            partial = [FALSE] * shift + [
                self._and(y, x) for x in xs[: width - shift]
            ]
            acc = self._add(acc, partial)
        return acc

    def _ult(self, xs: list[Term], ys: list[Term]) -> Term:
        # Borrow chain of xs - ys: a final borrow means xs < ys.
        borrow: Term = FALSE
        for x, y in zip(xs, ys):
            same = self._iff(x, y)
            borrow = self._or(
                self._and(negate(x), y), self._and(same, borrow)
            )
        return borrow

    def _slt(self, xs: list[Term], ys: list[Term]) -> Term:
        sign_x, sign_y = xs[-1], ys[-1]
        # Different signs: the negative side (sign bit 1) is smaller.
        return self._ite(
            self._xor(sign_x, sign_y), sign_x, self._ult(xs, ys)
        )

    def _shift(self, op: str, xs: list[Term], amount: list[Term]) -> list[Term]:
        width = len(xs)
        sign = xs[-1]
        fill: Term = sign if op == "bvashr" else FALSE
        result = list(xs)
        overflow: Term = FALSE
        for stage, bit in enumerate(amount):
            step = 1 << stage
            if step >= width:
                # This amount bit alone shifts everything out.
                overflow = self._or(overflow, bit)
                continue
            if op == "bvshl":
                shifted = [
                    result[i - step] if i >= step else FALSE
                    for i in range(width)
                ]
            else:
                shifted = [
                    result[i + step] if i + step < width else fill
                    for i in range(width)
                ]
            result = [
                self._ite(bit, s, r) for s, r in zip(shifted, result)
            ]
        return [self._ite(overflow, fill, r) for r in result]

    def _udivrem(
        self, xs: list[Term], ys: list[Term]
    ) -> tuple[list[Term], list[Term]]:
        """Restoring division; SMT-LIB totality: x/0 = all-ones, x%0 = x."""
        width = len(xs)
        divisor = ys + [FALSE]  # one headroom bit for the trial subtraction
        remainder: list[Term] = [FALSE] * (width + 1)
        quotient: list[Term] = [FALSE] * width
        for i in reversed(range(width)):
            remainder = [xs[i]] + remainder[:width]
            fits = negate(self._ult(remainder, divisor))
            difference = self._add(
                remainder, [negate(d) for d in divisor], carry=TRUE
            )
            remainder = [
                self._ite(fits, d, r)
                for d, r in zip(difference, remainder)
            ]
            quotient[i] = fits
        zero_divisor = TRUE
        for y in ys:
            zero_divisor = self._and(zero_divisor, negate(y))
        quotient = [self._ite(zero_divisor, TRUE, q) for q in quotient]
        remainder = [
            self._ite(zero_divisor, x, r)
            for x, r in zip(xs, remainder[:width])
        ]
        return quotient, remainder

    def _signed_divrem(
        self, op: str, xs: list[Term], ys: list[Term]
    ) -> list[Term]:
        """The SMT-LIB definitional expansions over ``bvudiv``/``bvurem``
        (mirrors ``_fold_bv_signed`` in the evaluator)."""
        sign_x, sign_y = xs[-1], ys[-1]
        abs_x = [self._ite(sign_x, n, x) for n, x in zip(self._neg(xs), xs)]
        abs_y = [self._ite(sign_y, n, y) for n, y in zip(self._neg(ys), ys)]
        quotient, remainder = self._udivrem(abs_x, abs_y)
        if op == "bvsdiv":
            flip = self._xor(sign_x, sign_y)
            negated = self._neg(quotient)
            return [self._ite(flip, n, q) for n, q in zip(negated, quotient)]
        if op == "bvsrem":
            negated = self._neg(remainder)
            return [
                self._ite(sign_x, n, r) for n, r in zip(negated, remainder)
            ]
        # bvsmod: the result takes the divisor's sign.
        rem_zero = TRUE
        for r in remainder:
            rem_zero = self._and(rem_zero, negate(r))
        same_sign = self._iff(sign_x, sign_y)
        both_negative = self._and(sign_x, sign_y)
        negated = self._neg(remainder)
        plain = [
            self._ite(both_negative, n, r)
            for n, r in zip(negated, remainder)
        ]
        adjusted_neg = self._add(
            ys, [negate(r) for r in remainder], carry=TRUE
        )  # t - urem
        adjusted_pos = self._add(remainder, ys)  # urem + t
        mixed = [
            self._ite(sign_x, a, b)
            for a, b in zip(adjusted_neg, adjusted_pos)
        ]
        take_plain = self._or(rem_zero, same_sign)
        return [self._ite(take_plain, p, m) for p, m in zip(plain, mixed)]


__all__ = ["BvBlaster", "BIT_MARKER", "MAX_BLAST_WIDTH"]
