"""Linear arithmetic: a dual-simplex theory plugin for QF_LRA / QF_LIA.

The second concrete :class:`~repro.theory.core.Theory` implements the
general simplex of Dutertre–de Moura ("A Fast Linear-Arithmetic Solver
for DPLL(T)", CAV'06), plus branch-and-bound for integer solutions:

* **Atoms** are binary comparisons ``lhs ▷ rhs`` (``<``, ``<=``, ``>``,
  ``>=``) whose difference is *linear* over Int/Real symbols (the
  fragment :func:`~repro.smtlib.linarith.linear_form` accepts).  Each
  atom compiles once into a bound ``v ▷ c`` on a single simplex
  variable: the symbol itself for one-variable forms, otherwise a *slack*
  variable defined by the canonically-scaled linear expression.  Slack
  definitions are shared — ``x + 2y <= 3`` and ``2x + 4y >= 10`` bound
  the same slack — so the tableau grows with distinct expressions, not
  with asserted literals.
* **Assert** updates one bound: a clash against the opposite bound is an
  immediate conflict explained by exactly the two responsible literals;
  a non-basic variable pushed outside its bounds is repaired by the
  standard ``update`` sweep over the columns.
* **Check** runs the dual simplex to a feasible assignment or a
  *minimal-by-construction* infeasibility explanation (the violated
  bound plus the limiting bound of every variable in its row), with
  Bland's rule (smallest variable index first) guaranteeing termination.
* **Strict bounds** use δ-rationals (:class:`DeltaRational`): ``x < c``
  is ``x <= c - δ`` for a symbolic infinitesimal δ, materialized at
  model-extraction time by choosing a concrete δ small enough for every
  asserted bound.  Integer variables avoid δ entirely — their strict
  bounds tighten to the nearest integer (``x < 5/2`` becomes
  ``x <= 2``), which also strengthens propagation.
* **Integers** get branch-and-bound on top of the rational relaxation:
  a fractional integer variable ``x`` with value ``v`` splits into
  ``x <= ⌊v⌋`` and ``x >= ⌊v⌋ + 1`` on an internal trail, bounded by a
  branch budget.  Both branches refuting proves integer infeasibility;
  the explanation is the union of the *external* literals appearing in
  the leaf conflicts (the internal branch bounds resolve away because
  the two cuts are exhaustive over the integers).  An exhausted budget
  degrades to ``unknown`` — the theory stays sound, never complete by
  accident.
* **Float filter** — every variable keeps a float image of the real
  part of its exact δ-rational assignment (refreshed at each exact
  write), and bound values cache a float image on first use.  The
  bound-violation scan and Bland column selection compare floats first
  and only fall back to exact ``Fraction`` comparison inside a relative
  guard band (:data:`_FLOAT_GUARD`): floats *steer* the search to the
  comparisons that matter, but every decided comparison is provably
  equal to the exact one (the band dwarfs the 1/2-ulp conversion
  error), so verdicts never depend on floating point.  Overflowing
  conversions degrade to ``±inf``, which always lands in the guard band
  and thus falls back to exact arithmetic.
* **Backtracking** restores bounds (and the conflict flag) through the
  same undo-log discipline as EUF.  The tableau, the variable
  assignment and all slack definitions persist across ``pop`` — rows
  are definitional identities, and relaxing bounds can never invalidate
  the non-basic-within-bounds invariant — so backtracking costs
  O(bounds changed), never a rebuild.

Equality atoms are deliberately **not** owned: the engine's preparation
pass splits every pure-arithmetic ``(= a b)`` into
``(and (<= a b) (>= a b))``, whose negation the SAT core case-splits
into strict inequalities — the theory never needs disequality reasoning.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Optional, Union

from ..obs.spans import trace_span
from ..smtlib.linarith import difference_form
from ..smtlib.sorts import INT, REAL
from ..smtlib.terms import Apply, Constant, Symbol, Term, int_const
from .core import SortValueAllocator, Theory, TheoryConflict, TheoryModel

_MISSING = object()

#: A bound's provenance: an asserted ``(atom, positive)`` literal, or
#: ``None`` for the internal cuts branch-and-bound asserts.
_Lit = Optional[tuple[Term, bool]]

_ARITH_OPS = ("<", "<=", ">", ">=")
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
_NEGATE = {"<": ">=", "<=": ">", ">": "<=", ">=": "<"}

#: Relative guard band for the simplex float filter: a float comparison
#: whose operands differ by no more than ``_FLOAT_GUARD * (1 + |a| + |b|)``
#: is treated as undecided and re-run exactly.  The band is ~10⁷ times the
#: worst-case ``float(Fraction)`` conversion error (1/2 ulp ≈ 1.1e-16
#: relative), so a float verdict outside the band always matches the
#: exact one.
_FLOAT_GUARD = 1e-9


def _to_float(value: Fraction) -> float:
    """Correctly-rounded float image of a rational; ``±inf`` on overflow
    (always inside the guard band, hence always re-checked exactly)."""
    try:
        return float(value)
    except OverflowError:
        return float("inf") if value > 0 else float("-inf")


def _floor(value: Fraction) -> int:
    return value.numerator // value.denominator


def _ceil(value: Fraction) -> int:
    return -((-value.numerator) // value.denominator)


class DeltaRational:
    """A rational plus a symbolic-infinitesimal multiple: ``r + k·δ``.

    Ordered lexicographically — exactly the order that makes the strict
    bound ``x < c`` equivalent to ``x <= c - δ`` for every sufficiently
    small positive δ.  Supports the ring operations the simplex needs
    (addition, subtraction, scaling by :class:`~fractions.Fraction`).
    """

    __slots__ = ("real", "delta", "_freal")

    def __init__(
        self, real: Union[int, Fraction], delta: Union[int, Fraction] = 0
    ) -> None:
        self.real = Fraction(real)
        self.delta = Fraction(delta)

    @property
    def freal(self) -> float:
        """Float image of the real part, cached on first use — what the
        simplex float filter compares before falling back to exact
        arithmetic.  ``±inf`` on overflow."""
        try:
            return self._freal
        except AttributeError:
            image = _to_float(self.real)
            self._freal = image
            return image

    def __add__(self, other: "DeltaRational") -> "DeltaRational":
        return DeltaRational(self.real + other.real, self.delta + other.delta)

    def __sub__(self, other: "DeltaRational") -> "DeltaRational":
        return DeltaRational(self.real - other.real, self.delta - other.delta)

    def scaled(self, factor: Fraction) -> "DeltaRational":
        return DeltaRational(self.real * factor, self.delta * factor)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeltaRational):
            return NotImplemented
        return self.real == other.real and self.delta == other.delta

    def __lt__(self, other: "DeltaRational") -> bool:
        return (self.real, self.delta) < (other.real, other.delta)

    def __le__(self, other: "DeltaRational") -> bool:
        return (self.real, self.delta) <= (other.real, other.delta)

    def __gt__(self, other: "DeltaRational") -> bool:
        return (self.real, self.delta) > (other.real, other.delta)

    def __ge__(self, other: "DeltaRational") -> bool:
        return (self.real, self.delta) >= (other.real, other.delta)

    def __hash__(self) -> int:
        return hash((self.real, self.delta))

    @property
    def is_integral(self) -> bool:
        return self.delta == 0 and self.real.denominator == 1

    def floor(self) -> int:
        """The largest integer (strictly) below a non-integral value, the
        value itself when integral."""
        if self.real.denominator == 1:
            base = int(self.real)
            return base - 1 if self.delta < 0 else base
        return _floor(self.real)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeltaRational({self.real!r}, {self.delta!r})"


class ArithTheory(Theory):
    """Dual simplex over δ-rationals with branch-and-bound for ``Int``.

    ``branch_limit`` caps the number of branch-and-bound nodes explored
    per ``check``; exhausting it makes the theory incomplete for that
    check (``model`` returns ``None``, the engine answers ``unknown``)
    but never unsound.
    """

    name = "arith"

    def __init__(self, branch_limit: int = 2000) -> None:
        super().__init__()
        self._branch_limit = branch_limit
        # Variable space: externals (script symbols) and slacks share it.
        self._terms: list[Optional[Symbol]] = []
        self._is_int: list[bool] = []
        self._var_of: dict[Symbol, int] = {}
        self._slack_of: dict[tuple, int] = {}
        # The tableau: basic variable -> sparse row over non-basic ones,
        # plus the column index (non-basic -> rows that mention it).
        self._rows: dict[int, dict[int, Fraction]] = {}
        self._cols: dict[int, set[int]] = {}
        self._assign: list[DeltaRational] = []
        # Float shadow of the real parts of _assign, refreshed at every
        # exact write.  Assignments are never rolled back by the undo
        # log, so the shadow needs no undo handling either.
        self._freal: list[float] = []
        self._lower: dict[int, tuple[DeltaRational, _Lit]] = {}
        self._upper: dict[int, tuple[DeltaRational, _Lit]] = {}
        self._compiled: dict[Term, tuple] = {}
        self._owned: dict[Term, bool] = {}
        self._conflict: Optional[TheoryConflict] = None
        self._incomplete = False
        self._trail: list[tuple] = []
        self._marks: list[int] = []
        self._internal_marks: list[int] = []
        self.stats = {
            "literals": 0,
            "conflicts": 0,
            "pivots": 0,
            "branches": 0,
            "checks": 0,
            "bb_exhausted": 0,
            "float_skips": 0,
            "float_fallbacks": 0,
        }

    # -- fragment membership -------------------------------------------------

    def owns_atom(self, atom: Term) -> bool:
        """Binary ``<``/``<=``/``>``/``>=`` whose difference is linear
        over Int/Real symbols."""
        cached = self._owned.get(atom)
        if cached is not None:
            return cached
        result = (
            isinstance(atom, Apply)
            and not atom.indices
            and atom.op in _ARITH_OPS
            and len(atom.args) == 2
            and difference_form(atom.args[0], atom.args[1]) is not None
        )
        self._owned[atom] = result
        return result

    # -- undo log ------------------------------------------------------------

    def push(self) -> None:
        self._marks.append(len(self._trail))

    def pop(self, levels: int = 1) -> None:
        for _ in range(levels):
            self._undo_to(self._marks.pop())

    def _undo_to(self, mark: int) -> None:
        trail = self._trail
        while len(trail) > mark:
            entry = trail.pop()
            if entry[0] == "d":
                _, mapping, key, old = entry
                if old is _MISSING:
                    mapping.pop(key, None)
                else:
                    mapping[key] = old
            else:  # "c": conflict flag
                self._conflict = entry[1]

    def _save(self, mapping: dict, key: int) -> None:
        self._trail.append(("d", mapping, key, mapping.get(key, _MISSING)))

    def _set_conflict(self, conflict: TheoryConflict) -> None:
        self._trail.append(("c", self._conflict))
        self._conflict = conflict
        self.stats["conflicts"] += 1

    # -- variable and slack registration ------------------------------------

    def _new_var(self, term: Optional[Symbol], is_int: bool) -> int:
        index = len(self._assign)
        self._terms.append(term)
        self._is_int.append(is_int)
        self._assign.append(DeltaRational(0))
        self._freal.append(0.0)
        return index

    def _var_index(self, symbol: Symbol) -> int:
        index = self._var_of.get(symbol)
        if index is None:
            index = self._new_var(symbol, symbol.sort == INT)
            self._var_of[symbol] = index
        return index

    def _slack_index(self, coeffs: dict[Symbol, Fraction]) -> tuple[int, Fraction]:
        """The (shared) slack variable for a multi-variable linear
        expression, plus the scale mapping the caller's coefficients onto
        the canonical ones (coprime integers, positive leading
        coefficient, variables ordered by name)."""
        items = sorted(coeffs.items(), key=lambda entry: entry[0].name)
        denominator_lcm = 1
        for _, coeff in items:
            denominator_lcm = (
                denominator_lcm
                * coeff.denominator
                // gcd(denominator_lcm, coeff.denominator)
            )
        numerator_gcd = 0
        for _, coeff in items:
            numerator_gcd = gcd(numerator_gcd, int(coeff * denominator_lcm))
        scale = Fraction(denominator_lcm, numerator_gcd)
        if items[0][1] < 0:
            scale = -scale
        key = tuple((symbol, coeff * scale) for symbol, coeff in items)
        existing = self._slack_of.get(key)
        if existing is not None:
            return existing, scale
        # New definition: express the row over the current non-basic
        # variables (substituting any basic variable's row keeps the
        # tableau in solved form) and enter it as a basic variable whose
        # assignment is the current value of the expression.
        row: dict[int, Fraction] = {}
        value = DeltaRational(0)
        is_int = True
        for symbol, coeff in key:
            index = self._var_index(symbol)
            if symbol.sort != INT:
                is_int = False
            value = value + self._assign[index].scaled(coeff)
            basic_row = self._rows.get(index)
            if basic_row is None:
                updated = row.get(index, Fraction(0)) + coeff
                if updated == 0:
                    row.pop(index, None)
                else:
                    row[index] = updated
            else:
                for column, entry in basic_row.items():
                    updated = row.get(column, Fraction(0)) + coeff * entry
                    if updated == 0:
                        row.pop(column, None)
                    else:
                        row[column] = updated
        slack = self._new_var(None, is_int)
        self._assign[slack] = value
        self._freal[slack] = _to_float(value.real)
        self._rows[slack] = row
        for column in row:
            self._cols.setdefault(column, set()).add(slack)
        self._slack_of[key] = slack
        return slack, scale

    # -- atom compilation ----------------------------------------------------

    def _compile(self, atom: Apply) -> tuple:
        cached = self._compiled.get(atom)
        if cached is not None:
            return cached
        form = difference_form(atom.args[0], atom.args[1])
        assert form is not None, f"not an arithmetic atom: {atom!r}"
        coeffs, constant = form
        target = -constant  # the atom is  Σ coeffs · x  ▷  target
        compiled: tuple
        if not coeffs:
            zero = Fraction(0)
            truth = {
                "<": zero < target,
                "<=": zero <= target,
                ">": zero > target,
                ">=": zero >= target,
            }[atom.op]
            compiled = ("const", truth)
        else:
            if len(coeffs) == 1:
                symbol, coeff = next(iter(coeffs.items()))
                var = self._var_index(symbol)
                scale = Fraction(1) / coeff
            else:
                var, scale = self._slack_index(coeffs)
            bound = target * scale
            op = atom.op if scale > 0 else _FLIP[atom.op]
            is_int = self._is_int[var]
            compiled = (
                "bound",
                var,
                self._bound_for(op, bound, is_int),
                self._bound_for(_NEGATE[op], bound, is_int),
            )
        self._compiled[atom] = compiled
        return compiled

    @staticmethod
    def _bound_for(
        op: str, bound: Fraction, is_int: bool
    ) -> tuple[bool, DeltaRational]:
        """``(is_upper, value)`` for ``v op bound``; integer variables
        tighten to integral δ-free bounds."""
        if op == "<=":
            return True, DeltaRational(_floor(bound)) if is_int else DeltaRational(bound)
        if op == "<":
            if is_int:
                return True, DeltaRational(_ceil(bound) - 1)
            return True, DeltaRational(bound, -1)
        if op == ">=":
            return False, DeltaRational(_ceil(bound)) if is_int else DeltaRational(bound)
        assert op == ">"
        if is_int:
            return False, DeltaRational(_floor(bound) + 1)
        return False, DeltaRational(bound, 1)

    # -- bound maintenance ---------------------------------------------------

    def _assert_bound(
        self, var: int, is_upper: bool, value: DeltaRational, lit: _Lit
    ) -> Optional[list[_Lit]]:
        """Tighten one bound; return the two clashing literals on an
        immediate lower/upper contradiction, ``None`` otherwise."""
        if is_upper:
            current = self._upper.get(var)
            if current is not None and current[0] <= value:
                return None  # weaker than what is already known
            other = self._lower.get(var)
            if other is not None and value < other[0]:
                return [lit, other[1]]
            self._save(self._upper, var)
            self._upper[var] = (value, lit)
            if var not in self._rows and self._assign[var] > value:
                self._update(var, value)
        else:
            current = self._lower.get(var)
            if current is not None and current[0] >= value:
                return None
            other = self._upper.get(var)
            if other is not None and value > other[0]:
                return [lit, other[1]]
            self._save(self._lower, var)
            self._lower[var] = (value, lit)
            if var not in self._rows and self._assign[var] < value:
                self._update(var, value)
        return None

    def _update(self, var: int, value: DeltaRational) -> None:
        """Move a non-basic variable, carrying every dependent basic."""
        assign, freal = self._assign, self._freal
        delta = value - assign[var]
        for basic in self._cols.get(var, ()):
            moved = assign[basic] + delta.scaled(self._rows[basic][var])
            assign[basic] = moved
            freal[basic] = _to_float(moved.real)
        assign[var] = value
        freal[var] = _to_float(value.real)

    # -- the simplex core ----------------------------------------------------

    def _below_upper(self, var: int) -> bool:
        """Strictly below the upper bound?  Float-filtered: the shadow
        decides outside the guard band, exact δ-rationals inside it."""
        bound = self._upper.get(var)
        if bound is None:
            return True
        af = self._freal[var]
        bf = bound[0].freal
        band = _FLOAT_GUARD * (1.0 + abs(af) + abs(bf))
        diff = bf - af
        if diff > band:
            self.stats["float_skips"] += 1
            return True
        if diff < -band:
            self.stats["float_skips"] += 1
            return False
        self.stats["float_fallbacks"] += 1
        return self._assign[var] < bound[0]

    def _above_lower(self, var: int) -> bool:
        """Strictly above the lower bound?  Float-filtered like
        :meth:`_below_upper`."""
        bound = self._lower.get(var)
        if bound is None:
            return True
        af = self._freal[var]
        bf = bound[0].freal
        band = _FLOAT_GUARD * (1.0 + abs(af) + abs(bf))
        diff = af - bf
        if diff > band:
            self.stats["float_skips"] += 1
            return True
        if diff < -band:
            self.stats["float_skips"] += 1
            return False
        self.stats["float_fallbacks"] += 1
        return self._assign[var] > bound[0]

    def _simplex(self) -> Optional[list[_Lit]]:
        """Pivot to feasibility; ``None`` when feasible, otherwise the
        infeasibility explanation (a list of bound literals).

        The violated-row scan runs on the float shadow: a row whose float
        image sits decisively inside (or outside) its bounds never touches
        exact arithmetic; only comparisons inside the guard band re-run on
        the δ-rationals.  Floats pick where to look — every verdict that
        reaches the caller is exact."""
        freal = self._freal
        guard = _FLOAT_GUARD
        skips = 0
        fallbacks = 0
        try:
            while True:
                violated: Optional[tuple[int, bool]] = None
                for basic in sorted(self._rows):
                    af = freal[basic]
                    low = self._lower.get(basic)
                    if low is not None:
                        bf = low[0].freal
                        band = guard * (1.0 + abs(af) + abs(bf))
                        diff = af - bf
                        if diff < -band:
                            skips += 1
                            violated = (basic, True)
                            break
                        if diff <= band:
                            fallbacks += 1
                            if self._assign[basic] < low[0]:
                                violated = (basic, True)
                                break
                        else:
                            skips += 1
                    high = self._upper.get(basic)
                    if high is not None:
                        bf = high[0].freal
                        band = guard * (1.0 + abs(af) + abs(bf))
                        diff = af - bf
                        if diff > band:
                            skips += 1
                            violated = (basic, False)
                            break
                        if diff >= -band:
                            fallbacks += 1
                            if self._assign[basic] > high[0]:
                                violated = (basic, False)
                                break
                        else:
                            skips += 1
                if violated is None:
                    return None
                basic, need_increase = violated
                row = self._rows[basic]
                chosen: Optional[int] = None
                for column in sorted(row):  # Bland's rule: smallest index
                    coeff = row[column]
                    if need_increase:
                        suitable = (coeff > 0 and self._below_upper(column)) or (
                            coeff < 0 and self._above_lower(column)
                        )
                    else:
                        suitable = (coeff < 0 and self._below_upper(column)) or (
                            coeff > 0 and self._above_lower(column)
                        )
                    if suitable:
                        chosen = column
                        break
                if chosen is None:
                    # Every row variable is at its limiting bound: the row is
                    # an inconsistent combination of exactly these bounds.
                    if need_increase:
                        explanation = [self._lower[basic][1]]
                        for column in sorted(row):
                            side = self._upper if row[column] > 0 else self._lower
                            explanation.append(side[column][1])
                    else:
                        explanation = [self._upper[basic][1]]
                        for column in sorted(row):
                            side = self._lower if row[column] > 0 else self._upper
                            explanation.append(side[column][1])
                    return explanation
                target = (
                    self._lower[basic][0] if need_increase else self._upper[basic][0]
                )
                self._pivot_and_update(basic, chosen, target)
                self.stats["pivots"] += 1
        finally:
            self.stats["float_skips"] += skips
            self.stats["float_fallbacks"] += fallbacks

    def _pivot_and_update(self, basic: int, entering: int, value: DeltaRational) -> None:
        row = self._rows[basic]
        coeff = row[entering]
        assign, freal = self._assign, self._freal
        theta = (value - assign[basic]).scaled(Fraction(1) / coeff)
        # Assignments first (they need the old column index).
        assign[basic] = value
        freal[basic] = _to_float(value.real)
        for other in self._cols.get(entering, ()):
            if other != basic:
                moved = assign[other] + theta.scaled(self._rows[other][entering])
                assign[other] = moved
                freal[other] = _to_float(moved.real)
        entered = assign[entering] + theta
        assign[entering] = entered
        freal[entering] = _to_float(entered.real)
        # Structural pivot: solve ``basic``'s row for ``entering`` ...
        del self._rows[basic]
        for column in row:
            self._cols[column].discard(basic)
        inverse = Fraction(1) / coeff
        entering_row: dict[int, Fraction] = {basic: inverse}
        for column, entry in row.items():
            if column != entering:
                entering_row[column] = -entry * inverse
        # ... and substitute it into every other row that mentions it.
        for other in self._cols.pop(entering, set()):
            other_row = self._rows[other]
            factor = other_row.pop(entering)
            for column, entry in entering_row.items():
                previous = other_row.get(column)
                updated = (previous or Fraction(0)) + factor * entry
                if updated == 0:
                    if previous is not None:
                        del other_row[column]
                        self._cols[column].discard(other)
                else:
                    other_row[column] = updated
                    if previous is None:
                        self._cols.setdefault(column, set()).add(other)
        self._rows[entering] = entering_row
        for column in entering_row:
            self._cols.setdefault(column, set()).add(entering)

    # -- branch and bound ----------------------------------------------------

    def _fractional_int_var(self) -> Optional[int]:
        for var, is_int in enumerate(self._is_int):
            if is_int and not self._assign[var].is_integral:
                return var
        return None

    def _push_internal(self) -> None:
        self._internal_marks.append(len(self._trail))

    def _pop_internal(self) -> None:
        self._undo_to(self._internal_marks.pop())

    #: Branch-and-bound recursion cap: each node is one Python stack
    #: frame, so the depth must stay well below the *default*
    #: interpreter recursion limit (1000) — library callers do not get
    #: the CLI's raised limit.  Deeper searches degrade to ``unknown``.
    _DEPTH_LIMIT = 200

    def _branch(
        self, budget: list[int], depth: int = 0
    ) -> tuple[str, dict[tuple[Term, bool], None]]:
        """Exhaust the integer search below the current bounds; returns
        ``("sat", _)``, ``("unknown", _)`` or ``("unsat", literals)``
        where ``literals`` are the *external* bounds used by the refuted
        leaves (internal cuts resolve away)."""
        budget[0] -= 1
        if budget[0] <= 0 or depth >= self._DEPTH_LIMIT:
            return "unknown", {}
        conflict = self._simplex()
        if conflict is not None:
            return "unsat", dict.fromkeys(l for l in conflict if l is not None)
        var = self._fractional_int_var()
        if var is None:
            return "sat", {}
        cut = self._assign[var].floor()
        self.stats["branches"] += 1
        accumulated: dict[tuple[Term, bool], None] = {}
        exhausted = False
        for is_upper, bound in ((True, cut), (False, cut + 1)):
            self._push_internal()
            clash = self._assert_bound(var, is_upper, DeltaRational(bound), None)
            if clash is None:
                verdict, literals = self._branch(budget, depth + 1)
            else:
                verdict = "unsat"
                literals = dict.fromkeys(l for l in clash if l is not None)
            if verdict == "sat":
                # Keep the integral assignment: the internal cuts only
                # tightened bounds, so relaxing them on pop leaves the
                # assignment feasible.
                self._pop_internal()
                return "sat", {}
            self._pop_internal()
            if verdict == "unknown":
                exhausted = True
            else:
                accumulated.update(literals)
        if exhausted:
            return "unknown", {}
        return "unsat", accumulated

    # -- the Theory interface ------------------------------------------------

    def assert_literal(self, atom: Term, positive: bool) -> Optional[TheoryConflict]:
        if self._conflict is not None:
            return self._conflict
        self.stats["literals"] += 1
        assert isinstance(atom, Apply), f"not an arithmetic atom: {atom!r}"
        compiled = self._compile(atom)
        if compiled[0] == "const":
            if compiled[1] != positive:
                self._set_conflict(TheoryConflict(((atom, positive),), source=self.name))
            return self._conflict
        _, var, positive_bound, negative_bound = compiled
        is_upper, value = positive_bound if positive else negative_bound
        clash = self._assert_bound(var, is_upper, value, (atom, positive))
        if clash is not None:
            literals = tuple(l for l in clash if l is not None)
            self._set_conflict(TheoryConflict(literals, source=self.name))
        return self._conflict

    def check(self) -> Optional[TheoryConflict]:
        if self._conflict is not None:
            return self._conflict
        self.stats["checks"] += 1
        self._incomplete = False
        conflict = self._simplex()
        if conflict is not None:
            literals = tuple(dict.fromkeys(l for l in conflict if l is not None))
            if not literals:  # defensive: never ship an empty explanation
                self._incomplete = True
                return None
            self._set_conflict(TheoryConflict(literals, source=self.name))
            return self._conflict
        if self._fractional_int_var() is None:
            return None
        with trace_span("branch-and-bound", merge=True):
            verdict, accumulated = self._branch([self._branch_limit])
        if verdict == "unsat" and accumulated:
            self._set_conflict(TheoryConflict(tuple(accumulated), source=self.name))
            return self._conflict
        if verdict != "sat":
            self._incomplete = True
            self.stats["bb_exhausted"] += 1
        return None

    def model(self, allocator: SortValueAllocator) -> Optional[TheoryModel]:
        """Concrete rational/integer values: the simplex assignment with
        δ instantiated small enough to honor every strict bound."""
        if self._conflict is not None or self._incomplete:
            return None
        if self._simplex() is not None or self._fractional_int_var() is not None:
            return None  # pragma: no cover - defensive; check() runs first
        delta = self._delta_value()
        model = TheoryModel()
        for symbol, var in self._var_of.items():
            value = self._assign[var]
            exact = value.real + value.delta * delta
            if self._is_int[var]:
                if exact.denominator != 1:
                    return None  # pragma: no cover - defensive
                constant = int_const(int(exact))
            else:
                constant = Constant(exact, REAL)
            allocator.reserve(constant)
            model.values[symbol.name] = constant
        return model

    def incomplete_reason(self) -> Optional[str]:
        if self._incomplete:
            return "branch-budget-exhausted"
        return None

    def _delta_value(self) -> Fraction:
        """A concrete positive δ preserving every bound comparison once
        substituted: for each ``a₁ + b₁δ ≤ a₂ + b₂δ`` with ``b₁ > b₂``
        the substitution stays true for δ up to ``(a₂ − a₁)/(b₁ − b₂)``."""
        delta = Fraction(1)
        for var, value in enumerate(self._assign):
            low = self._lower.get(var)
            if low is not None:
                bound = low[0]
                if bound.real < value.real and bound.delta > value.delta:
                    delta = min(
                        delta,
                        (value.real - bound.real) / (bound.delta - value.delta),
                    )
            high = self._upper.get(var)
            if high is not None:
                bound = high[0]
                if value.real < bound.real and value.delta > bound.delta:
                    delta = min(
                        delta,
                        (bound.real - value.real) / (value.delta - bound.delta),
                    )
        return delta

    # -- introspection -------------------------------------------------------

    def assignment(self) -> dict[Symbol, DeltaRational]:
        """The current (δ-symbolic) assignment per script symbol, for
        tests and debugging."""
        return {symbol: self._assign[var] for symbol, var in self._var_of.items()}

    def tableau_size(self) -> tuple[int, int]:
        """``(variables, basic rows)`` — the live tableau dimensions."""
        return len(self._assign), len(self._rows)


__all__ = ["ArithTheory", "DeltaRational"]
