"""Lazy arrays: read-over-write axiom instantiation on the EUF e-graph.

:class:`ArraysTheory` decides the quantifier-free extensional theory of
arrays (``select``/``store``) by *extending* congruence closure rather
than sitting beside it: the plugin subclasses
:class:`~repro.theory.euf.EufTheory`, so array terms, their indices and
their values share one e-graph with the uninterpreted functions — the
index equalities that drive read-over-write reasoning land in the same
union-find that closes ``select`` congruences.

The array axioms are instantiated *lazily*, three ways:

* **RoW-1, always** — registering ``(store a i v)`` immediately asserts
  the valid instance ``(select (store a i v) i) = v`` internally.
* **RoW-2, ground** — at :meth:`check`, for every registered read
  ``(select x j)`` and congruent write ``(store a i v) ~ x``: when ``i``
  and ``j`` sit in classes pinned to *distinct* literal constants the
  valid consequence ``(select (store a i v) j) = (select a j)`` is
  asserted internally, with the equalities pinning the indices recorded
  as its provenance.
* **RoW-2, symbolic** — when the solver has not determined ``i = j``,
  the plugin emits a *case-split lemma pair* through
  :meth:`pending_lemmas` (see :class:`~repro.theory.core.TheoryClause`):
  ``i = j → select(st, j) = v`` and ``i ≠ j → select(st, j) =
  select(a, j)``.  Both clauses are valid, so the engine adds them to the
  SAT core permanently and the boolean search performs the case split.

**Extensionality** is instantiated on demand: asserting ``a ≠ b`` over an
array sort asserts ``(select a w) ≠ (select b w)`` for a fresh witness
index ``w`` — two arrays differ only if they differ at some index.

Internal axiom instances never leak into explanations: every internally
asserted literal carries a *provenance* (the external literals that
justify it — empty for unconditionally valid instances), and
:meth:`_set_conflict` rewrites conflicts through that map before the
engine turns them into blocking clauses.  This keeps the DPLL(T)
contract intact: explanations remain subsets of the asserted literals.

Cooperation with arithmetic over indices is *incomplete* (an index
equality forced by simplex bounds is invisible here); the engine's model
validation demotes any such ``sat`` to ``unknown``, so answers stay
sound — see ``docs/THEORIES.md``.
"""

from __future__ import annotations

from typing import Callable, Collection, Optional, Union

from ..obs.spans import trace_span
from ..smtlib.sorts import BOOL, Sort, is_array
from ..smtlib.terms import FALSE, TRUE, Apply, Constant, Symbol, Term
from .core import SortValueAllocator, TheoryClause, TheoryConflict, TheoryModel
from .euf import EufTheory

#: Witness-symbol name marker (kept out of models and scripts).
WITNESS_MARKER = "@arr!"

#: Cap on case-split lemmas per engine lifetime; exceeding it stops
#: instantiation and reports ``array-lemma-budget`` instead of looping.
LEMMA_BUDGET = 10_000


class ArraysState:
    """Instantiation state the engine keeps *across* checks.

    Theory plugins are rebuilt per ``check-sat``, but the case-split
    lemmas they emit are permanent SAT clauses; sharing the emitted set
    (and the extensionality witness per disequality) across plugin
    instances stops every later check from re-shipping the same clauses.
    """

    def __init__(self) -> None:
        #: ``(store, index)`` pairs whose lemma pair has shipped.
        self.emitted: set[tuple[Term, Term]] = set()
        #: negated array equality → its stable witness symbol.
        self.witnesses: dict[Term, Symbol] = {}
        self.lemmas_emitted = 0


class ArraysTheory(EufTheory):
    """Extensional arrays via congruence closure + lazy instantiation."""

    name = "arrays"

    def __init__(
        self,
        uninterpreted: Union[Callable[[str], bool], Collection[str]] = (),
        state: Optional[ArraysState] = None,
    ) -> None:
        super().__init__(uninterpreted)
        self._state = state if state is not None else ArraysState()
        #: internally asserted literal → the external literals justifying
        #: it (empty for valid instances); used to rewrite explanations.
        self._provenance: dict[tuple[Term, bool], tuple[tuple[Term, bool], ...]] = {}
        #: axioms queued during registration, drained after each mutation.
        self._queue: list[tuple[Term, bool, tuple[tuple[Term, bool], ...]]] = []
        self._lemmas: list[TheoryClause] = []
        self._budget_exhausted = False
        self.stats.update(
            row1_instances=0,
            row2_ground=0,
            lemmas=0,
            witnesses=0,
        )

    # -- fragment membership -------------------------------------------------

    def is_euf_term(self, term: Term) -> bool:
        """Extends the EUF fragment with ``select``/``store`` applications.

        Boolean *element* positions admit only the constants ``true`` and
        ``false`` (a boolean-symbol element would smuggle SAT structure
        into the e-graph); everything else recurses."""
        if (
            isinstance(term, Apply)
            and not term.indices
            and term.op in ("select", "store")
        ):
            for arg in term.args:
                if arg.sort == BOOL:
                    if arg is not TRUE and arg is not FALSE:
                        return False
                elif not self.is_euf_term(arg):
                    return False
            return True
        return super().is_euf_term(term)

    def owns_atom(self, atom: Term) -> bool:
        """Adds boolean reads ``(select a i)`` (predicate-style atoms) to
        the inherited equality/predicate ownership — which, through the
        overridden :meth:`is_euf_term`, now accepts array structure."""
        if (
            isinstance(atom, Apply)
            and not atom.indices
            and atom.op == "select"
            and atom.sort == BOOL
            and self.is_euf_term(atom)
        ):
            return True
        return super().owns_atom(atom)

    # -- internal axiom assertions --------------------------------------------

    def _register(self, term: Term) -> None:
        if term in self._rank:
            return
        super()._register(term)
        if (
            isinstance(term, Apply)
            and not term.indices
            and term.op == "store"
            and len(term.args) == 3
        ):
            # RoW-1: select(store(a, i, v), i) = v, valid unconditionally.
            _a, index, value = term.args
            read = Apply("select", (term, index), term.sort.element(1))
            self.stats["row1_instances"] += 1
            if value.sort == BOOL:
                self._queue.append((read, value is TRUE, ()))
            else:
                self._queue.append((Apply("=", (read, value), BOOL), True, ()))

    def _assert_internal(
        self,
        atom: Term,
        positive: bool,
        provenance: tuple[tuple[Term, bool], ...],
    ) -> None:
        """Assert an axiom instance as if it were a trail literal, tagging
        it with the external literals that justify it."""
        self._provenance[(atom, positive)] = provenance
        if (
            isinstance(atom, Apply)
            and atom.op == "="
            and len(atom.args) == 2
            and atom.args[0].sort == BOOL
        ):
            # Boolean-element instances: the base class rejects boolean
            # equalities, so drive the e-graph directly (the atom only
            # ever appears inside explanations, where provenance
            # rewriting removes it again).
            lhs, rhs = atom.args
            self._register(lhs)
            self._register(rhs)
            if self._conflict is not None:
                return
            if positive:
                self._merge(lhs, rhs, ("lit", atom, True))
            elif self.find(lhs) is self.find(rhs):
                literals = [(atom, False)]
                literals.extend(self.explain(lhs, rhs))
                self._set_conflict(
                    TheoryConflict(tuple(literals), source=self.name)
                )
            else:
                for end_a, end_b in ((lhs, rhs), (rhs, lhs)):
                    entries = self._diseqs.setdefault(self.find(end_a), [])
                    self._save_len(entries)
                    entries.append((lhs, rhs, atom))
            return
        super().assert_literal(atom, positive)

    def _drain_queue(self) -> None:
        while self._queue and self._conflict is None:
            atom, positive, provenance = self._queue.pop()
            self._assert_internal(atom, positive, provenance)
        if self._conflict is not None:
            # Entries queued by registrations the solver is about to roll
            # back; re-registration after backtracking re-queues them.
            self._queue.clear()

    def _set_conflict(self, conflict: TheoryConflict) -> None:
        """Rewrite internal axiom literals to their external provenance
        before the conflict becomes a blocking clause."""
        literals: list[tuple[Term, bool]] = []
        seen: set[tuple[Term, bool]] = set()
        stack = list(conflict.literals)
        while stack:
            literal = stack.pop()
            if literal in seen:
                continue
            seen.add(literal)
            provenance = self._provenance.get(literal)
            if provenance is not None:
                stack.extend(provenance)
            else:
                literals.append(literal)
        super()._set_conflict(
            TheoryConflict(tuple(literals), source=self.name)
        )

    # -- the Theory interface --------------------------------------------------

    def assert_literal(self, atom: Term, positive: bool) -> Optional[TheoryConflict]:
        if self._conflict is not None:
            return self._conflict
        super().assert_literal(atom, positive)
        if (
            self._conflict is None
            and not positive
            and isinstance(atom, Apply)
            and atom.op == "="
            and len(atom.args) == 2
            and is_array(atom.args[0].sort)
        ):
            self._instantiate_extensionality(atom)
        self._drain_queue()
        return self._conflict

    def _instantiate_extensionality(self, atom: Apply) -> None:
        """``a ≠ b`` ⇒ ``(select a w) ≠ (select b w)`` for a fresh
        stable witness ``w`` — justified by the disequality itself."""
        lhs, rhs = atom.args
        sort: Sort = lhs.sort
        witness = self._state.witnesses.get(atom)
        if witness is None:
            witness = Symbol(
                f"{WITNESS_MARKER}{len(self._state.witnesses)}",
                sort.element(0),
            )
            self._state.witnesses[atom] = witness
        element = sort.element(1)
        read_l = Apply("select", (lhs, witness), element)
        read_r = Apply("select", (rhs, witness), element)
        self.stats["witnesses"] += 1
        self._queue.append(
            (Apply("=", (read_l, read_r), BOOL), False, ((atom, False),))
        )

    def check(self) -> Optional[TheoryConflict]:
        if self._conflict is not None:
            return self._conflict
        with trace_span("instantiate", merge=True):
            changed = True
            while changed and self._conflict is None:
                changed = self._instantiate_read_over_write()
                self._drain_queue()
        return self._conflict

    def pending_lemmas(self) -> tuple[TheoryClause, ...]:
        lemmas = tuple(self._lemmas)
        self._lemmas.clear()
        return lemmas

    def incomplete_reason(self) -> Optional[str]:
        if self._budget_exhausted:
            return "array-lemma-budget"
        return None

    def _model_repair(self, classes):
        """Weak-equivalence repair of the candidate model.

        Congruence closure assigns *distinct* values to distinct classes,
        which over-separates arrays two ways:

        * When two store chains are merged (``store(b,i,v) ~
          store(a,i,w)``) their bases must agree at every row except the
          write index, but nothing at the e-graph level says so.  The
          repair closes the select rows under store edges — copying rows
          between a store term and its base everywhere off the write
          index, merging the value classes of rows forced equal and
          materialising rows one side lacks.
        * An extensionality witness seated in its own index class may be
          *provably generic*: if the two arrays agree off some write
          index ``i``, the only place they can differ is ``i`` itself.
          When the closure forces the witness reads equal against the
          witness disequality, the repair retries with the witness index
          re-seated onto a candidate write-index class.

        The repair is best-effort: if every attempt collides with a
        pinned constant or a non-witness disequality it returns the
        identity plan, and the engine's model validation demotes the
        answer to a sound ``unknown``."""
        stores: list[Apply] = []
        selects: list[Apply] = []
        for term in self._rank:
            if isinstance(term, Apply) and not term.indices:
                if term.op == "store":
                    stores.append(term)
                elif term.op == "select":
                    selects.append(term)
        if not stores:
            return {}, ()
        write_indices: list[Term] = []
        for store in stores:
            rep = self.find(store.args[1])
            if rep not in write_indices:
                write_indices.append(rep)
        attempts: list[tuple[tuple[Term, Term], ...]] = [()]
        tried = 0
        while attempts and tried < 32:
            seeds = attempts.pop(0)
            tried += 1
            outcome = self._repair_attempt(classes, stores, selects, seeds)
            if outcome is None:
                continue
            if outcome[0] == "ok":
                return outcome[1], outcome[2]
            # Witness-row conflict: retry with the witness index merged
            # onto each candidate write-index class in turn.
            witness_rep = outcome[1]
            for candidate in write_indices:
                if candidate is not witness_rep:
                    attempts.append(seeds + ((witness_rep, candidate),))
        return {}, ()

    def _repair_attempt(self, classes, stores, selects, seeds):
        parent: dict[Term, Term] = {}

        def find(item: Term) -> Term:
            root = item
            while parent.get(root, root) is not root:
                root = parent[root]
            while parent.get(item, item) is not item:
                parent[item], item = root, parent[item]
            return root

        merged = False

        def union(left: Term, right: Term) -> None:
            nonlocal merged
            root_l, root_r = find(left), find(right)
            if root_l is not root_r:
                parent[root_r] = root_l
                merged = True

        for left, right in seeds:
            union(left, right)

        # Fixpoint: rebuild the row map whenever a merge shifts group
        # keys; each pass either merges classes or reaches closure.
        rows: dict[tuple[Term, Term], Term] = {}
        for _ in range(len(classes) + len(stores) + 8):
            merged = False
            rows = {}
            for read in selects:
                array, j = read.args
                key = (find(self.find(array)), find(self.find(j)))
                existing = rows.get(key)
                if existing is None:
                    rows[key] = find(self.find(read))
                else:
                    union(existing, self.find(read))
            grew = True
            while grew and not merged:
                grew = False
                for store in stores:
                    base, i, _value = store.args
                    store_rep = find(self.find(store))
                    base_rep = find(self.find(base))
                    i_rep = find(self.find(i))
                    if store_rep is base_rep:
                        continue
                    for (array, k), row in list(rows.items()):
                        if k is i_rep:
                            continue
                        if array is store_rep:
                            other = (base_rep, k)
                        elif array is base_rep:
                            other = (store_rep, k)
                        else:
                            continue
                        existing = rows.get(other)
                        if existing is None:
                            rows[other] = find(row)
                            grew = True
                        else:
                            union(existing, row)
            if not merged:
                break

        # Veto 1: a group may carry at most one distinguished constant.
        pinned: dict[Term, Constant] = {}
        for representative in classes:
            constant = self._const.get(representative)
            if constant is None:
                continue
            root = find(representative)
            existing = pinned.get(root)
            if existing is not None and existing != constant:
                return None
            pinned[root] = constant
        # Veto 2: no merge may cross an asserted disequality.  A crossed
        # *witness* disequality is recoverable: report the witness index
        # class so the caller can re-seat it.
        for entries in self._diseqs.values():
            for lhs, rhs, _atom in entries:
                if find(self.find(lhs)) is not find(self.find(rhs)):
                    continue
                witness_rep = self._witness_index(lhs, rhs, seeds)
                if witness_rep is not None:
                    return ("reseat", witness_rep)
                return None

        class_map: dict[Term, Term] = {}
        for representative in classes:
            root = find(representative)
            if root is not representative:
                class_map[representative] = root
        select_rows = tuple(
            (array, k, find(row)) for (array, k), row in rows.items()
        )
        return ("ok", class_map, select_rows)

    def _witness_index(self, lhs, rhs, seeds):
        """The index class of a witness-select disequality, if `lhs`/`rhs`
        are the two reads of an extensionality instance whose witness has
        not been re-seated yet in this attempt."""
        for side in (lhs, rhs):
            if not (
                isinstance(side, Apply)
                and not side.indices
                and side.op == "select"
            ):
                return None
        index = lhs.args[1]
        if not (
            isinstance(index, Symbol)
            and index.name.startswith(WITNESS_MARKER)
        ):
            return None
        rep = self.find(index)
        if any(left is rep for left, _right in seeds):
            return None
        return rep

    def model(self, allocator: SortValueAllocator) -> Optional[TheoryModel]:
        result = super().model(allocator)
        if result is not None:
            # Extensionality witnesses are internal vocabulary; drop them
            # so (get-model) stays total over script declarations only.
            for name in list(result.values):
                if name.startswith(WITNESS_MARKER):
                    del result.values[name]
        return result

    # -- read-over-write propagation -------------------------------------------

    def _instantiate_read_over_write(self) -> bool:
        reads: list[Apply] = []
        writes: list[Apply] = []
        for term in self._rank:
            if isinstance(term, Apply) and not term.indices:
                if term.op == "select":
                    reads.append(term)
                elif term.op == "store":
                    writes.append(term)
        by_class: dict[Term, list[Apply]] = {}
        by_base: dict[Term, list[Apply]] = {}
        for store in writes:
            by_class.setdefault(self.find(store), []).append(store)
            by_base.setdefault(self.find(store.args[0]), []).append(store)
        changed = False
        for read in reads:
            if self._conflict is not None:
                break
            array, j = read.args
            for store in by_class.get(self.find(array), ()):
                if self._propagate_pair(read, store, j):
                    changed = True
                if self._conflict is not None:
                    break
            if self._conflict is not None:
                break
            # Lift the read over stores written on top of this array:
            # registering select(store(a,i,v), j) lets congruence chain
            # select(a, j) to reads on every array merged with the store
            # (the next pass case-splits the lifted read as usual).
            for store in by_base.get(self.find(array), ()):
                lifted = Apply("select", (store, j), read.sort)
                if lifted not in self._rank:
                    self._register(lifted)
                    changed = True
        return changed

    def _propagate_pair(self, read: Apply, store: Apply, j: Term) -> bool:
        base, i, value = store.args
        element = read.sort
        if self.find(i) is self.find(j):
            # Congruent indices: registering select(store, j) lets plain
            # congruence (j ~ i) connect it to the RoW-1 instance.
            direct = Apply("select", (store, j), element)
            if direct not in self._rank:
                self._register(direct)
                return True
            return False
        const_i = self._const.get(self.find(i))
        const_j = self._const.get(self.find(j))
        direct = Apply("select", (store, j), element)
        shifted = Apply("select", (base, j), element)
        if const_i is not None and const_j is not None:
            # Distinct literal indices: the read bypasses the write, with
            # the equalities pinning both indices as provenance.
            if direct in self._rank and self.same_class(direct, shifted):
                return False
            provenance: list[tuple[Term, bool]] = []
            provenance.extend(self.explain(i, const_i))
            provenance.extend(self.explain(j, const_j))
            self.stats["row2_ground"] += 1
            self._queue.append(
                (Apply("=", (direct, shifted), BOOL), True, tuple(provenance))
            )
            return True
        # Symbolic indices: hand the case split to the SAT core.
        key = (store, j)
        if key in self._state.emitted:
            return False
        if self._state.lemmas_emitted >= LEMMA_BUDGET:
            self._budget_exhausted = True
            return False
        self._state.emitted.add(key)
        self._state.lemmas_emitted += 1
        self.stats["lemmas"] += 1
        index_eq = Apply("=", (i, j), BOOL)
        if element == BOOL:
            hit = (direct, value is TRUE)
            self._lemmas.append(
                TheoryClause(((index_eq, False), hit), source=self.name)
            )
            self._lemmas.append(
                TheoryClause(
                    ((index_eq, True), (direct, False), (shifted, True)),
                    source=self.name,
                )
            )
            self._lemmas.append(
                TheoryClause(
                    ((index_eq, True), (direct, True), (shifted, False)),
                    source=self.name,
                )
            )
        else:
            self._lemmas.append(
                TheoryClause(
                    ((index_eq, False), (Apply("=", (direct, value), BOOL), True)),
                    source=self.name,
                )
            )
            self._lemmas.append(
                TheoryClause(
                    ((index_eq, True), (Apply("=", (direct, shifted), BOOL), True)),
                    source=self.name,
                )
            )
        return True


__all__ = ["ArraysTheory", "ArraysState", "WITNESS_MARKER", "LEMMA_BUDGET"]
