"""Tokeniser for the SMT-LIB concrete syntax.

The lexer understands the token classes needed by the fuzzing substrate:
parentheses, symbols (simple and ``|quoted|``), keywords (``:named``),
numerals, decimals, hexadecimal and binary literals, and string literals
with SMT-LIB's doubled-quote escaping.  Comments (``;`` to end of line) are
skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Iterator

from ..errors import LexerError


class TokenKind(Enum):
    """Lexical category of a token."""

    LPAREN = auto()
    RPAREN = auto()
    SYMBOL = auto()
    KEYWORD = auto()
    NUMERAL = auto()
    DECIMAL = auto()
    HEXADECIMAL = auto()
    BINARY = auto()
    STRING = auto()


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: TokenKind
    text: str
    line: int
    column: int


_SYMBOL_EXTRA = set("~!@$%^&*_-+=<>.?/")


def _is_symbol_char(ch: str) -> bool:
    return ch.isalnum() or ch in _SYMBOL_EXTRA


def tokenize(text: str) -> list[Token]:
    """Tokenise ``text`` into a list of :class:`Token`.

    Raises :class:`~repro.errors.LexerError` on malformed input (unterminated
    strings or quoted symbols, stray characters).
    """
    return list(iter_tokens(text))


def iter_tokens(text: str) -> Iterator[Token]:
    """Yield tokens lazily; see :func:`tokenize`."""
    pos = 0
    line = 1
    col = 1
    length = len(text)

    def advance(count: int) -> None:
        nonlocal pos, line, col
        for _ in range(count):
            if pos < length and text[pos] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            pos += 1

    while pos < length:
        ch = text[pos]
        if ch in " \t\r\n":
            advance(1)
            continue
        if ch == ";":
            while pos < length and text[pos] != "\n":
                advance(1)
            continue
        start_line, start_col = line, col
        if ch == "(":
            advance(1)
            yield Token(TokenKind.LPAREN, "(", start_line, start_col)
            continue
        if ch == ")":
            advance(1)
            yield Token(TokenKind.RPAREN, ")", start_line, start_col)
            continue
        if ch == '"':
            end = pos + 1
            chunks = []
            while True:
                if end >= length:
                    raise LexerError("unterminated string literal", start_line, start_col)
                if text[end] == '"':
                    if end + 1 < length and text[end + 1] == '"':
                        chunks.append('"')
                        end += 2
                        continue
                    break
                chunks.append(text[end])
                end += 1
            literal = "".join(chunks)
            advance(end + 1 - pos)
            yield Token(TokenKind.STRING, literal, start_line, start_col)
            continue
        if ch == "|":
            end = text.find("|", pos + 1)
            if end == -1:
                raise LexerError("unterminated quoted symbol", start_line, start_col)
            name = text[pos + 1 : end]
            advance(end + 1 - pos)
            yield Token(TokenKind.SYMBOL, name, start_line, start_col)
            continue
        if ch == ":":
            end = pos + 1
            while end < length and _is_symbol_char(text[end]):
                end += 1
            word = text[pos:end]
            advance(end - pos)
            yield Token(TokenKind.KEYWORD, word, start_line, start_col)
            continue
        if ch == "#":
            if pos + 1 < length and text[pos + 1] in "xX":
                end = pos + 2
                while end < length and text[end] in "0123456789abcdefABCDEF":
                    end += 1
                word = text[pos:end]
                if len(word) <= 2:
                    raise LexerError("malformed hexadecimal literal", start_line, start_col)
                advance(end - pos)
                yield Token(TokenKind.HEXADECIMAL, word, start_line, start_col)
                continue
            if pos + 1 < length and text[pos + 1] in "bB":
                end = pos + 2
                while end < length and text[end] in "01":
                    end += 1
                word = text[pos:end]
                if len(word) <= 2:
                    raise LexerError("malformed binary literal", start_line, start_col)
                advance(end - pos)
                yield Token(TokenKind.BINARY, word, start_line, start_col)
                continue
            raise LexerError(f"unexpected character {ch!r}", start_line, start_col)
        if ch.isdigit():
            end = pos
            while end < length and text[end].isdigit():
                end += 1
            if end < length and text[end] == ".":
                end += 1
                while end < length and text[end].isdigit():
                    end += 1
                word = text[pos:end]
                advance(end - pos)
                yield Token(TokenKind.DECIMAL, word, start_line, start_col)
                continue
            word = text[pos:end]
            advance(end - pos)
            yield Token(TokenKind.NUMERAL, word, start_line, start_col)
            continue
        if _is_symbol_char(ch):
            end = pos
            while end < length and _is_symbol_char(text[end]):
                end += 1
            word = text[pos:end]
            advance(end - pos)
            yield Token(TokenKind.SYMBOL, word, start_line, start_col)
            continue
        raise LexerError(f"unexpected character {ch!r}", start_line, start_col)


__all__ = ["Token", "TokenKind", "tokenize", "iter_tokens"]
