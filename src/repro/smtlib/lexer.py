"""Tokeniser for the SMT-LIB concrete syntax.

The lexer understands the token classes needed by the fuzzing substrate:
parentheses, symbols (simple and ``|quoted|``), keywords (``:named``),
numerals, decimals, hexadecimal and binary literals, and string literals
with SMT-LIB's doubled-quote escaping.  Comments (``;`` to end of line) are
skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Iterator

from ..errors import LexerError, PrinterError


class TokenKind(Enum):
    """Lexical category of a token."""

    LPAREN = auto()
    RPAREN = auto()
    SYMBOL = auto()
    QUOTED_SYMBOL = auto()
    KEYWORD = auto()
    NUMERAL = auto()
    DECIMAL = auto()
    HEXADECIMAL = auto()
    BINARY = auto()
    STRING = auto()


#: SMT-LIB reserved words.  These may only occur unquoted in their syntactic
#: role (``let``, ``forall``...); a ``|let|`` spelling denotes an ordinary
#: symbol that merely shares the letters, and lexes as QUOTED_SYMBOL.
RESERVED_WORDS = frozenset(
    {
        "_",
        "!",
        "as",
        "let",
        "exists",
        "forall",
        "match",
        "par",
        "BINARY",
        "DECIMAL",
        "HEXADECIMAL",
        "NUMERAL",
        "STRING",
    }
)


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: TokenKind
    text: str
    line: int
    column: int


_SYMBOL_EXTRA = set("~!@$%^&*_-+=<>.?/")
_ASCII_DIGITS = set("0123456789")
_ASCII_LETTERS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ")


def _is_digit(ch: str) -> bool:
    # ASCII only: SMT-LIB numerals do not include Unicode digits.
    return ch in _ASCII_DIGITS


def _is_symbol_char(ch: str) -> bool:
    # ASCII only, per the SMT-LIB simple-symbol grammar.
    return ch in _ASCII_LETTERS or ch in _ASCII_DIGITS or ch in _SYMBOL_EXTRA


def is_simple_symbol(text: str) -> bool:
    """True when ``text`` lexes as a simple (unquoted) symbol.

    The single source of truth for the simple-symbol character set — the
    printer quotes exactly the symbols this predicate rejects, so lexer and
    printer can never drift apart.  Reserved words are *not* rejected here;
    they are simple symbols syntactically and callers that need to keep them
    out of identifier position consult :data:`RESERVED_WORDS`.
    """
    return bool(text) and not _is_digit(text[0]) and all(_is_symbol_char(c) for c in text)


def quote_identifier(name: str) -> str:
    """Render an *identifier* occurrence of ``name``: bare when it is a
    simple non-reserved symbol, ``|...|``-quoted otherwise (``|let|`` is an
    ordinary symbol; bare ``let`` is the keyword).  Raises
    :class:`~repro.errors.PrinterError` for names SMT-LIB cannot express."""
    if is_simple_symbol(name) and name not in RESERVED_WORDS:
        return name
    if "|" in name or "\\" in name:
        raise PrinterError(f"symbol cannot be quoted in SMT-LIB: {name!r}")
    return f"|{name}|"


def tokenize(text: str) -> list[Token]:
    """Tokenise ``text`` into a list of :class:`Token`.

    Raises :class:`~repro.errors.LexerError` on malformed input (unterminated
    strings or quoted symbols, stray characters).
    """
    return list(iter_tokens(text))


def iter_tokens(text: str) -> Iterator[Token]:
    """Yield tokens lazily; see :func:`tokenize`."""
    pos = 0
    line = 1
    col = 1
    length = len(text)

    def advance(count: int) -> None:
        nonlocal pos, line, col
        for _ in range(count):
            if pos < length and text[pos] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            pos += 1

    while pos < length:
        ch = text[pos]
        if ch in " \t\r\n":
            advance(1)
            continue
        if ch == ";":
            while pos < length and text[pos] != "\n":
                advance(1)
            continue
        start_line, start_col = line, col
        if ch == "(":
            advance(1)
            yield Token(TokenKind.LPAREN, "(", start_line, start_col)
            continue
        if ch == ")":
            advance(1)
            yield Token(TokenKind.RPAREN, ")", start_line, start_col)
            continue
        if ch == '"':
            end = pos + 1
            chunks = []
            while True:
                if end >= length:
                    raise LexerError("unterminated string literal", start_line, start_col)
                if text[end] == '"':
                    if end + 1 < length and text[end + 1] == '"':
                        chunks.append('"')
                        end += 2
                        continue
                    break
                chunks.append(text[end])
                end += 1
            literal = "".join(chunks)
            advance(end + 1 - pos)
            yield Token(TokenKind.STRING, literal, start_line, start_col)
            continue
        if ch == "|":
            end = text.find("|", pos + 1)
            if end == -1:
                raise LexerError("unterminated quoted symbol", start_line, start_col)
            name = text[pos + 1 : end]
            if "\\" in name:
                raise LexerError("backslash not allowed in quoted symbol", start_line, start_col)
            advance(end + 1 - pos)
            # A quoted simple symbol denotes the same symbol as its unquoted
            # spelling, so canonicalise to SYMBOL; reserved words and
            # non-simple contents stay QUOTED_SYMBOL so the parser never
            # mistakes |let| for the keyword.
            if is_simple_symbol(name) and name not in RESERVED_WORDS:
                yield Token(TokenKind.SYMBOL, name, start_line, start_col)
            else:
                yield Token(TokenKind.QUOTED_SYMBOL, name, start_line, start_col)
            continue
        if ch == ":":
            end = pos + 1
            while end < length and _is_symbol_char(text[end]):
                end += 1
            word = text[pos:end]
            if word == ":":
                raise LexerError("keyword with empty name", start_line, start_col)
            advance(end - pos)
            yield Token(TokenKind.KEYWORD, word, start_line, start_col)
            continue
        if ch == "#":
            if pos + 1 < length and text[pos + 1] == "x":
                end = pos + 2
                while end < length and text[end] in "0123456789abcdefABCDEF":
                    end += 1
                word = text[pos:end]
                if len(word) <= 2:
                    raise LexerError("malformed hexadecimal literal", start_line, start_col)
                if end < length and _is_symbol_char(text[end]):
                    raise LexerError("malformed hexadecimal literal", start_line, start_col)
                advance(end - pos)
                yield Token(TokenKind.HEXADECIMAL, word, start_line, start_col)
                continue
            if pos + 1 < length and text[pos + 1] == "b":
                end = pos + 2
                while end < length and text[end] in "01":
                    end += 1
                word = text[pos:end]
                if len(word) <= 2:
                    raise LexerError("malformed binary literal", start_line, start_col)
                if end < length and _is_symbol_char(text[end]):
                    raise LexerError("malformed binary literal", start_line, start_col)
                advance(end - pos)
                yield Token(TokenKind.BINARY, word, start_line, start_col)
                continue
            raise LexerError(f"unexpected character {ch!r}", start_line, start_col)
        if _is_digit(ch):
            end = pos
            while end < length and _is_digit(text[end]):
                end += 1
            if ch == "0" and end - pos > 1:
                raise LexerError("numeral with leading zero", start_line, start_col)
            if end < length and text[end] == ".":
                end += 1
                if end >= length or not _is_digit(text[end]):
                    raise LexerError("malformed decimal literal (no digits after '.')", start_line, start_col)
                while end < length and _is_digit(text[end]):
                    end += 1
                if end < length and _is_symbol_char(text[end]):
                    raise LexerError("malformed decimal literal", start_line, start_col)
                word = text[pos:end]
                advance(end - pos)
                yield Token(TokenKind.DECIMAL, word, start_line, start_col)
                continue
            if end < length and _is_symbol_char(text[end]):
                raise LexerError("numeral followed by symbol character", start_line, start_col)
            word = text[pos:end]
            advance(end - pos)
            yield Token(TokenKind.NUMERAL, word, start_line, start_col)
            continue
        if _is_symbol_char(ch):
            end = pos
            while end < length and _is_symbol_char(text[end]):
                end += 1
            word = text[pos:end]
            advance(end - pos)
            yield Token(TokenKind.SYMBOL, word, start_line, start_col)
            continue
        raise LexerError(f"unexpected character {ch!r}", start_line, start_col)


__all__ = [
    "Token",
    "TokenKind",
    "RESERVED_WORDS",
    "tokenize",
    "iter_tokens",
    "is_simple_symbol",
    "quote_identifier",
]
