"""Tseitin transformation: boolean term skeletons → CNF clauses.

The encoder lowers a boolean term DAG to clauses over integer literals
(the :mod:`repro.sat` convention: variables ``1..n``, a literal is ``±v``).
Every *atom* — a boolean symbol, a theory application such as ``(< x y)``,
a quantified subterm — gets a propositional variable, and every internal
connective node gets an *auxiliary* variable constrained to be equivalent
to the connective applied to its children's literals (the full,
both-direction Tseitin encoding, so the result does not depend on the
polarity at which a node occurs).

Two invariants the rest of the solving layer builds on:

* **Equisatisfiability** — ``assert_term(t)`` adds clauses satisfiable
  exactly when ``t`` is satisfiable over its atoms: any model of the
  clauses restricted to the atom variables satisfies ``t``, and any atom
  assignment satisfying ``t`` extends (uniquely, gate by gate) to a model
  of the clauses.  The encoding is linear: O(1) clauses per connective
  node, never the exponential distribution-based CNF.
* **Shared nodes share variables** — terms are hash-consed, and the
  encoder memoizes node → literal, so a subterm shared by many parents is
  encoded once and contributes one auxiliary variable no matter how often
  it occurs.  Feeding the encoder :func:`repro.smtlib.simplify.to_nnf`
  output keeps this sharp: NNF re-shares negations instead of duplicating
  DAG nodes.

The encoder accepts any boolean skeleton, NNF or not (``not`` simply flips
the child literal and ``=>`` encodes as its ``or`` form).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .sorts import BOOL
from .terms import FALSE, TRUE, Apply, Constant, Term

#: Connective operators the encoder interprets structurally; every other
#: boolean term is an atom.  ``=``/``distinct`` count only when their
#: arguments are boolean, ``ite`` only when its result is.
CONNECTIVES = frozenset({"not", "and", "or", "xor", "=>", "=", "distinct", "ite"})


def is_connective(term: Term) -> bool:
    """True when ``term`` is a boolean connective node (its children belong
    to the boolean skeleton); False for atoms and non-boolean terms."""
    if not isinstance(term, Apply) or term.sort != BOOL or term.op not in CONNECTIVES:
        return False
    if term.op in ("=", "distinct"):
        return bool(term.args) and term.args[0].sort == BOOL
    return True


def skeleton_atoms(term: Term) -> list[Term]:
    """The atoms of ``term``'s boolean skeleton, in first-occurrence order.

    Descends through connectives only; each distinct atom is reported once
    (hash-consing makes the dedup an identity check).  ``true``/``false``
    are not reported — they denote no model choice, and matching
    :attr:`CnfFormula.atom_vars` never assigns them a variable either.
    """
    atoms: list[Term] = []
    seen: set[Term] = set()
    stack = [term]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if is_connective(node):
            stack.extend(reversed(node.children()))
        elif node is not TRUE and node is not FALSE:
            atoms.append(node)
    return atoms


@dataclass
class CnfFormula:
    """The output of Tseitin encoding.

    ``atom_vars`` maps each atom term to its variable; every other variable
    up to ``num_vars`` is a Tseitin auxiliary.  ``clauses`` hold the gate
    definitions plus one unit clause per asserted root.
    """

    num_vars: int = 0
    clauses: list[tuple[int, ...]] = field(default_factory=list)
    atom_vars: dict[Term, int] = field(default_factory=dict)

    @property
    def num_atoms(self) -> int:
        return len(self.atom_vars)

    @property
    def num_aux(self) -> int:
        """Auxiliary (non-atom) variables introduced by the encoding."""
        return self.num_vars - len(self.atom_vars)


class TseitinEncoder:
    """Stateful encoder; feed it terms with :meth:`assert_term` (or get a
    root literal with :meth:`encode`) and read the result via
    :attr:`formula`.  Asserting several terms encodes their conjunction."""

    def __init__(self) -> None:
        self.formula = CnfFormula()
        self._literals: dict[Term, int] = {}
        self._true_var = 0

    # -- public surface -----------------------------------------------------

    def assert_term(self, term: Term) -> None:
        """Constrain ``term`` to hold: encode it and add its unit clause."""
        self.formula.clauses.append((self.encode(term),))

    def new_var(self) -> int:
        """Allocate a fresh non-atom variable in the encoder's space.

        The incremental engine draws its frame *selector* literals from
        here so clauses, atoms and selectors share one numbering.
        """
        return self._new_var()

    def encode(self, term: Term) -> int:
        """The literal equivalent to ``term`` (memoized per DAG node)."""
        if term.sort != BOOL:
            raise ValueError(f"cannot CNF-encode a term of sort {term.sort}")
        cached = self._literals.get(term)
        if cached is not None:
            return cached
        literal = self._encode_node(term)
        self._literals[term] = literal
        return literal

    # -- gates --------------------------------------------------------------

    def _new_var(self) -> int:
        self.formula.num_vars += 1
        return self.formula.num_vars

    def _atom(self, term: Term) -> int:
        var = self._new_var()
        self.formula.atom_vars[term] = var
        return var

    def _true_literal(self) -> int:
        if not self._true_var:
            self._true_var = self._new_var()
            self.formula.clauses.append((self._true_var,))
        return self._true_var

    def _encode_node(self, term: Term) -> int:
        if isinstance(term, Constant):
            if term is TRUE:
                return self._true_literal()
            if term is FALSE:
                return -self._true_literal()
            return self._atom(term)  # qualified boolean constant: opaque
        if not is_connective(term):
            return self._atom(term)
        assert isinstance(term, Apply)
        op = term.op
        if op == "not":
            return -self.encode(term.args[0])
        lits = [self.encode(arg) for arg in term.args]
        if op == "and":
            return self._and_gate(lits)
        if op == "or":
            return self._or_gate(lits)
        if op == "=>":
            return self._or_gate([-lit for lit in lits[:-1]] + [lits[-1]])
        if op == "xor":
            return self._xor_chain(lits)
        if op == "=":
            if len(lits) == 2:
                return self._iff_gate(lits[0], lits[1])
            pairs = [self._iff_gate(a, b) for a, b in zip(lits, lits[1:])]
            return self._and_gate(pairs)
        if op == "distinct":
            if len(lits) > 2:
                # No three booleans are pairwise distinct.
                return -self._true_literal()
            return self._xor_gate(lits[0], lits[1])
        if op == "ite":
            return self._ite_gate(lits[0], lits[1], lits[2])
        raise AssertionError(f"unhandled connective {op!r}")  # pragma: no cover

    def _and_gate(self, lits: list[int]) -> int:
        if len(lits) == 1:
            return lits[0]
        v = self._new_var()
        clauses = self.formula.clauses
        for lit in lits:
            clauses.append((-v, lit))
        clauses.append(tuple([v] + [-lit for lit in lits]))
        return v

    def _or_gate(self, lits: list[int]) -> int:
        if len(lits) == 1:
            return lits[0]
        v = self._new_var()
        clauses = self.formula.clauses
        for lit in lits:
            clauses.append((v, -lit))
        clauses.append(tuple([-v] + lits))
        return v

    def _xor_gate(self, a: int, b: int) -> int:
        v = self._new_var()
        self.formula.clauses.extend(
            [(-v, a, b), (-v, -a, -b), (v, -a, b), (v, a, -b)]
        )
        return v

    def _iff_gate(self, a: int, b: int) -> int:
        v = self._new_var()
        self.formula.clauses.extend(
            [(-v, -a, b), (-v, a, -b), (v, a, b), (v, -a, -b)]
        )
        return v

    def _xor_chain(self, lits: list[int]) -> int:
        acc = lits[0]
        for lit in lits[1:]:
            acc = self._xor_gate(acc, lit)
        return acc

    def _ite_gate(self, c: int, t: int, e: int) -> int:
        v = self._new_var()
        self.formula.clauses.extend(
            [
                (-v, -c, t),
                (-v, c, e),
                (v, -c, -t),
                (v, c, -e),
                # Redundant but propagation-strengthening:
                (-v, t, e),
                (v, -t, -e),
            ]
        )
        return v


def tseitin(term: Term) -> CnfFormula:
    """Encode a single asserted boolean term; convenience over the class."""
    encoder = TseitinEncoder()
    encoder.assert_term(term)
    return encoder.formula


__all__ = [
    "CONNECTIVES",
    "CnfFormula",
    "TseitinEncoder",
    "tseitin",
    "is_connective",
    "skeleton_atoms",
]
