"""Linear-arithmetic normal form: ``Σ cᵢ·xᵢ + k`` over Int/Real terms.

:func:`linear_form` rewrites a numeric term into a sparse linear
polynomial — a mapping from :class:`~repro.smtlib.terms.Symbol` to
:class:`~fractions.Fraction` coefficients plus a rational constant — or
reports that the term is not linear (``None``).  The supported fragment
is the linear one of ``Ints``/``Reals``:

* numerals and decimals (exact rationals),
* ``Int``/``Real`` symbols (the *variables* of the form),
* ``+``, binary/n-ary/unary ``-``,
* ``*`` with at most one non-constant factor,
* ``/`` by non-zero constants, and
* ``to_real`` coercions (transparent: the form is sort-agnostic).

Anything else — ``div``/``mod``/``abs``, non-linear products, ``ite``,
uninterpreted applications, division by zero or by a symbolic term —
makes the term non-linear and the function returns ``None``.  Division
by literal zero is deliberately rejected even though ``(/ x 0)`` is a
well-sorted term: SMT-LIB leaves its value unspecified, so no algebraic
rewriting may decide it.

The normal form is the shared vocabulary of two consumers that must
agree with each other:

* the simplifier folds comparison/equality atoms whose *difference* is a
  ground form (``(< x (+ x 1))`` → ``true``), and
* the :class:`~repro.theory.arith.ArithTheory` plugin compiles atoms
  into simplex bounds ``Σ cᵢxᵢ ▷ k``.

Both build on the same :func:`linear_form`, so the theory can never
disagree with the simplifier about what an atom means.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from .sorts import INT, REAL
from .terms import Apply, Constant, Symbol, Term

#: A sparse linear polynomial: coefficients per variable plus a constant.
LinearForm = tuple[dict[Symbol, Fraction], Fraction]

_NUMERIC = (INT, REAL)


def is_numeric_term(term: Term) -> bool:
    """True when the term's sort is ``Int`` or ``Real``."""
    return term.sort in _NUMERIC


def linear_form(term: Term) -> Optional[LinearForm]:
    """The linear normal form of a numeric term, or ``None``.

    The returned coefficient mapping never contains zero entries, so a
    ground (variable-free) term yields an empty mapping and the form's
    value is the constant alone.
    """
    coeffs: dict[Symbol, Fraction] = {}
    constant = _accumulate(term, Fraction(1), coeffs)
    if constant is None:
        return None
    for symbol in [s for s, c in coeffs.items() if c == 0]:
        del coeffs[symbol]
    return coeffs, constant


def _accumulate(
    term: Term, scale: Fraction, coeffs: dict[Symbol, Fraction]
) -> Optional[Fraction]:
    """Add ``scale * term`` into ``coeffs``; return the constant part
    contributed, or ``None`` when the term is not linear."""
    if isinstance(term, Constant):
        if term.sort not in _NUMERIC or term.qualifier:
            return None
        return scale * Fraction(term.value)  # type: ignore[arg-type]
    if isinstance(term, Symbol):
        if term.sort not in _NUMERIC:
            return None
        coeffs[term] = coeffs.get(term, Fraction(0)) + scale
        return Fraction(0)
    if not isinstance(term, Apply) or term.indices:
        return None
    op = term.op
    if op == "to_real":
        return _accumulate(term.args[0], scale, coeffs)
    if op == "+":
        total = Fraction(0)
        for arg in term.args:
            part = _accumulate(arg, scale, coeffs)
            if part is None:
                return None
            total += part
        return total
    if op == "-":
        if len(term.args) == 1:
            return _accumulate(term.args[0], -scale, coeffs)
        total = _accumulate(term.args[0], scale, coeffs)
        if total is None:
            return None
        for arg in term.args[1:]:
            part = _accumulate(arg, -scale, coeffs)
            if part is None:
                return None
            total += part
        return total
    if op == "*":
        # Linear only when at most one factor is non-constant.
        factor = Fraction(1)
        symbolic: Optional[Term] = None
        for arg in term.args:
            literal = _ground_value(arg)
            if literal is not None:
                factor *= literal
            elif symbolic is None:
                symbolic = arg
            else:
                return None
        if symbolic is None:
            return scale * factor
        return _accumulate(symbolic, scale * factor, coeffs)
    if op == "/":
        divisor = Fraction(1)
        for arg in term.args[1:]:
            literal = _ground_value(arg)
            if literal is None or literal == 0:
                return None  # symbolic or unspecified (zero) divisor
            divisor *= literal
        return _accumulate(term.args[0], scale / divisor, coeffs)
    return None


def _ground_value(term: Term) -> Optional[Fraction]:
    """The rational value of a *ground* linear term, or ``None``."""
    if isinstance(term, Constant):
        if term.sort not in _NUMERIC or term.qualifier:
            return None
        return Fraction(term.value)  # type: ignore[arg-type]
    if isinstance(term, Apply) and not term.indices:
        nested: dict[Symbol, Fraction] = {}
        constant = _accumulate(term, Fraction(1), nested)
        if constant is not None and not any(nested.values()):
            return constant
    return None


def difference_form(lhs: Term, rhs: Term) -> Optional[LinearForm]:
    """The linear form of ``lhs - rhs``, or ``None`` when either side is
    not linear.  Shared-term cancellation falls out of the arithmetic:
    ``difference_form(x, x)`` is the empty form."""
    coeffs: dict[Symbol, Fraction] = {}
    left = _accumulate(lhs, Fraction(1), coeffs)
    if left is None:
        return None
    right = _accumulate(rhs, Fraction(-1), coeffs)
    if right is None:
        return None
    for symbol in [s for s, c in coeffs.items() if c == 0]:
        del coeffs[symbol]
    return coeffs, left + right


__all__ = ["LinearForm", "linear_form", "difference_form", "is_numeric_term"]
