"""The SMT-LIB front end and term-compute layer.

Pipeline: :mod:`lexer` (text → tokens) → :mod:`sexpr` (tokens → generic
s-expressions) → :mod:`parser` (s-expressions → sorted commands and terms,
using :mod:`sorts`, :mod:`terms` and :mod:`script`) → :mod:`typecheck`
(well-sortedness verification) → :mod:`simplify` / :mod:`evaluate`
(theory-aware rewriting and ground evaluation over the hash-consed term
DAG) → :mod:`printer` (back to concrete syntax, satisfying
``parse(print(s)) == s`` for every parsed script ``s``).

Terms are hash-consed: structurally equal terms are one interned object,
giving O(1) equality/hashing and memoizable passes (see
:mod:`repro.smtlib.terms`).

This module re-exports the surface the downstream subsystems (generator,
skeletonizer, reducer, oracle) program against.
"""

from .cnf import CnfFormula, TseitinEncoder, is_connective, skeleton_atoms, tseitin
from .evaluate import FunctionInterpretation, evaluate, evaluate_value, fold_apply
from .lexer import RESERVED_WORDS, Token, TokenKind, is_simple_symbol, iter_tokens, tokenize
from .linarith import LinearForm, difference_form, linear_form
from .parser import parse_command, parse_script, parse_sort, parse_term
from .simplify import simplify, simplify_script, to_nnf
from .printer import (
    command_to_smtlib,
    constant_to_smtlib,
    script_to_smtlib,
    sort_to_smtlib,
    symbol_to_smtlib,
    term_to_smtlib,
)
from .script import (
    Assert,
    CheckSat,
    Command,
    DeclarationContext,
    DeclareConst,
    DeclareFun,
    DeclareSort,
    DefineFun,
    Exit,
    FunSignature,
    GetModel,
    GetUnsatCore,
    GetValue,
    Pop,
    Push,
    Script,
    SetInfo,
    SetLogic,
    SetOption,
    apply_command,
)
from .sexpr import Atom, SExpr, parse_sexprs, sexpr_to_string, sexprs_to_script
from .sorts import (
    BOOL,
    INT,
    REAL,
    REGLAN,
    ROUNDING_MODE,
    STRING,
    Sort,
    array_sort,
    bag_sort,
    bitvec_sort,
    finite_field_sort,
    relation_sort,
    seq_sort,
    set_sort,
    tuple_sort,
    uninterpreted_sort,
)
from .terms import (
    FALSE,
    TRUE,
    Apply,
    Constant,
    Let,
    Quantifier,
    Symbol,
    Term,
    bitvec_const,
    bool_const,
    ff_const,
    int_const,
    intern_stats,
    negate,
    qualified_constant,
    real_const,
    replace_subterm,
    reset_intern_stats,
    string_const,
    substitute,
)
from .typecheck import apply_sort, check, check_script, is_builtin_operator, well_sorted

__all__ = [
    # lexer
    "Token",
    "TokenKind",
    "RESERVED_WORDS",
    "tokenize",
    "iter_tokens",
    "is_simple_symbol",
    # sexpr
    "Atom",
    "SExpr",
    "parse_sexprs",
    "sexpr_to_string",
    "sexprs_to_script",
    # sorts
    "Sort",
    "BOOL",
    "INT",
    "REAL",
    "STRING",
    "REGLAN",
    "ROUNDING_MODE",
    "bitvec_sort",
    "finite_field_sort",
    "seq_sort",
    "set_sort",
    "bag_sort",
    "array_sort",
    "tuple_sort",
    "relation_sort",
    "uninterpreted_sort",
    # terms
    "Term",
    "Constant",
    "Symbol",
    "Apply",
    "Quantifier",
    "Let",
    "TRUE",
    "FALSE",
    "int_const",
    "real_const",
    "string_const",
    "bool_const",
    "bitvec_const",
    "ff_const",
    "qualified_constant",
    "substitute",
    "negate",
    "replace_subterm",
    "intern_stats",
    "reset_intern_stats",
    # script
    "Command",
    "Script",
    "DeclarationContext",
    "FunSignature",
    "SetLogic",
    "SetOption",
    "SetInfo",
    "DeclareSort",
    "DeclareFun",
    "DeclareConst",
    "DefineFun",
    "Assert",
    "GetUnsatCore",
    "CheckSat",
    "GetModel",
    "GetValue",
    "Push",
    "Pop",
    "Exit",
    "apply_command",
    # parser
    "parse_sort",
    "parse_term",
    "parse_command",
    "parse_script",
    # typecheck
    "apply_sort",
    "check",
    "check_script",
    "is_builtin_operator",
    "well_sorted",
    # linarith
    "LinearForm",
    "linear_form",
    "difference_form",
    # simplify
    "simplify",
    "simplify_script",
    "to_nnf",
    # cnf
    "CnfFormula",
    "TseitinEncoder",
    "tseitin",
    "is_connective",
    "skeleton_atoms",
    # evaluate
    "evaluate",
    "evaluate_value",
    "FunctionInterpretation",
    "fold_apply",
    # printer
    "symbol_to_smtlib",
    "sort_to_smtlib",
    "constant_to_smtlib",
    "term_to_smtlib",
    "command_to_smtlib",
    "script_to_smtlib",
]
