"""Well-sortedness checking for SMT-LIB terms.

The heart of the module is the operator signature table: for every operator
in Core, Ints, Reals, BitVec, Strings and Arrays — plus the cvc5 extensions
the sorts module supports (Seq, Set, Relation, Bag, FiniteField, Tuple) — a
rule mapping (indices, argument sorts) to the result sort, raising
:class:`~repro.errors.TypeCheckError` on mismatch.

Two entry points:

* :func:`apply_sort` — compute the result sort of one application.  The
  parser uses this to assign sorts while building terms.
* :func:`check` — recursively verify that an already-built term is
  well-sorted, i.e. every node's stored sort agrees with what the signature
  table (and the declaration context, for free symbols) derives.

With the hash-consed term core, ``check`` doubles as the simplifier's
safety net: every rewrite rule is sort-preserving, so
``check(simplify(t))`` must succeed at ``t.sort`` — the test suite
enforces this across the whole corpus.  :func:`well_sorted` wraps
``check`` as a predicate for callers (benchmarks, generators) that only
need a verdict.
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import Callable, Optional

from ..errors import TypeCheckError, UnknownSymbolError
from .script import DeclarationContext
from .sorts import (
    BOOL,
    INT,
    REAL,
    REGLAN,
    STRING,
    Sort,
    bitvec_sort,
    is_bitvec,
    is_finite_field,
    relation_sort,
    tuple_sort,
)
from .terms import Apply, Constant, Let, Quantifier, Symbol, Term, pop_scope, push_scope

SignatureRule = Callable[[str, tuple[int, ...], tuple[Sort, ...]], Sort]


def _fail(op: str, indices: tuple[int, ...], args: tuple[Sort, ...], why: str) -> TypeCheckError:
    rendered = " ".join(str(s) for s in args) or "<none>"
    shown = f"(_ {op} {' '.join(map(str, indices))})" if indices else op
    return TypeCheckError(f"ill-sorted application of {shown} to ({rendered}): {why}")


def _expect_arity(op, indices, args, count):
    if len(args) != count:
        raise _fail(op, indices, args, f"expected {count} argument(s), got {len(args)}")


def _expect_no_indices(op, indices, args):
    if indices:
        raise _fail(op, indices, args, "operator takes no indices")


def _expect_same(op, indices, args):
    if any(a != args[0] for a in args[1:]):
        raise _fail(op, indices, args, "arguments must share one sort")


# -- rule combinators -------------------------------------------------------


def _fixed(params: tuple[Sort, ...], result: Sort) -> SignatureRule:
    def rule(op, indices, args):
        _expect_no_indices(op, indices, args)
        _expect_arity(op, indices, args, len(params))
        for expected, actual in zip(params, args):
            if expected != actual:
                raise _fail(op, indices, args, f"expected ({' '.join(map(str, params))})")
        return result

    return rule


def _nary_same(element: Optional[Sort], result: Optional[Sort], minimum: int = 2) -> SignatureRule:
    """At least ``minimum`` same-sorted arguments; ``None`` means polymorphic
    (element: any shared sort; result: the shared argument sort)."""

    def rule(op, indices, args):
        _expect_no_indices(op, indices, args)
        if len(args) < minimum:
            raise _fail(op, indices, args, f"expected at least {minimum} argument(s)")
        _expect_same(op, indices, args)
        if element is not None and args[0] != element:
            raise _fail(op, indices, args, f"arguments must have sort {element}")
        return result if result is not None else args[0]

    return rule


def _numeric_nary(minimum: int = 2) -> SignatureRule:
    def rule(op, indices, args):
        _expect_no_indices(op, indices, args)
        if len(args) < minimum:
            raise _fail(op, indices, args, f"expected at least {minimum} argument(s)")
        _expect_same(op, indices, args)
        if args[0] not in (INT, REAL):
            raise _fail(op, indices, args, "arguments must be Int or Real")
        return args[0]

    return rule


def _numeric_compare(op, indices, args):
    _expect_no_indices(op, indices, args)
    if len(args) < 2:
        raise _fail(op, indices, args, "expected at least 2 arguments")
    _expect_same(op, indices, args)
    if args[0] not in (INT, REAL):
        raise _fail(op, indices, args, "arguments must be Int or Real")
    return BOOL


def _bv_nary(minimum: int = 2) -> SignatureRule:
    def rule(op, indices, args):
        _expect_no_indices(op, indices, args)
        if len(args) < minimum:
            raise _fail(op, indices, args, f"expected at least {minimum} argument(s)")
        _expect_same(op, indices, args)
        if not is_bitvec(args[0]):
            raise _fail(op, indices, args, "arguments must be bit-vectors")
        return args[0]

    return rule


def _bv_binary(result_bool: bool = False) -> SignatureRule:
    def rule(op, indices, args):
        _expect_no_indices(op, indices, args)
        _expect_arity(op, indices, args, 2)
        _expect_same(op, indices, args)
        if not is_bitvec(args[0]):
            raise _fail(op, indices, args, "arguments must be bit-vectors")
        return BOOL if result_bool else args[0]

    return rule


def _bv_unary(op, indices, args):
    _expect_no_indices(op, indices, args)
    _expect_arity(op, indices, args, 1)
    if not is_bitvec(args[0]):
        raise _fail(op, indices, args, "argument must be a bit-vector")
    return args[0]


def _container(name: str, sort: Sort) -> bool:
    return sort.name == name and len(sort.args) >= 1


def _ff_nary(minimum: int) -> SignatureRule:
    def rule(op, indices, args):
        _expect_no_indices(op, indices, args)
        if len(args) < minimum:
            raise _fail(op, indices, args, f"expected at least {minimum} argument(s)")
        _expect_same(op, indices, args)
        if not is_finite_field(args[0]):
            raise _fail(op, indices, args, "arguments must be finite-field elements")
        return args[0]

    return rule


# -- individually defined rules ---------------------------------------------


def _rule_eq(op, indices, args):
    _expect_no_indices(op, indices, args)
    if len(args) < 2:
        raise _fail(op, indices, args, "expected at least 2 arguments")
    _expect_same(op, indices, args)
    return BOOL


def _rule_ite(op, indices, args):
    _expect_no_indices(op, indices, args)
    _expect_arity(op, indices, args, 3)
    if args[0] != BOOL:
        raise _fail(op, indices, args, "condition must be Bool")
    if args[1] != args[2]:
        raise _fail(op, indices, args, "branches must share one sort")
    return args[1]


def _rule_minus(op, indices, args):
    # Unary negation or n-ary subtraction over one numeric sort.
    _expect_no_indices(op, indices, args)
    if not args:
        raise _fail(op, indices, args, "expected at least 1 argument")
    _expect_same(op, indices, args)
    if args[0] not in (INT, REAL):
        raise _fail(op, indices, args, "arguments must be Int or Real")
    return args[0]


def _rule_divisible(op, indices, args):
    if len(indices) != 1 or indices[0] <= 0:
        raise _fail(op, indices, args, "requires one positive index")
    _expect_arity(op, indices, args, 1)
    if args[0] != INT:
        raise _fail(op, indices, args, "argument must be Int")
    return BOOL


def _rule_concat(op, indices, args):
    _expect_no_indices(op, indices, args)
    if len(args) < 2:
        raise _fail(op, indices, args, "expected at least 2 arguments")
    if not all(is_bitvec(a) for a in args):
        raise _fail(op, indices, args, "arguments must be bit-vectors")
    return bitvec_sort(sum(a.width for a in args))


def _rule_extract(op, indices, args):
    if len(indices) != 2:
        raise _fail(op, indices, args, "requires two indices (_ extract i j)")
    _expect_arity(op, indices, args, 1)
    if not is_bitvec(args[0]):
        raise _fail(op, indices, args, "argument must be a bit-vector")
    high, low = indices
    if not (0 <= low <= high < args[0].width):
        raise _fail(op, indices, args, f"extract bounds out of range for width {args[0].width}")
    return bitvec_sort(high - low + 1)


def _rule_extend(op, indices, args):
    if len(indices) != 1 or indices[0] < 0:
        raise _fail(op, indices, args, "requires one non-negative index")
    _expect_arity(op, indices, args, 1)
    if not is_bitvec(args[0]):
        raise _fail(op, indices, args, "argument must be a bit-vector")
    return bitvec_sort(args[0].width + indices[0])


def _rule_rotate(op, indices, args):
    if len(indices) != 1 or indices[0] < 0:
        raise _fail(op, indices, args, "requires one non-negative index")
    _expect_arity(op, indices, args, 1)
    if not is_bitvec(args[0]):
        raise _fail(op, indices, args, "argument must be a bit-vector")
    return args[0]


def _rule_repeat(op, indices, args):
    if len(indices) != 1 or indices[0] <= 0:
        raise _fail(op, indices, args, "requires one positive index")
    _expect_arity(op, indices, args, 1)
    if not is_bitvec(args[0]):
        raise _fail(op, indices, args, "argument must be a bit-vector")
    return bitvec_sort(args[0].width * indices[0])


def _rule_select(op, indices, args):
    _expect_no_indices(op, indices, args)
    _expect_arity(op, indices, args, 2)
    array = args[0]
    if array.name != "Array" or len(array.args) != 2:
        raise _fail(op, indices, args, "first argument must be an Array")
    if args[1] != array.args[0]:
        raise _fail(op, indices, args, f"index must have sort {array.args[0]}")
    return array.args[1]


def _rule_store(op, indices, args):
    _expect_no_indices(op, indices, args)
    _expect_arity(op, indices, args, 3)
    array = args[0]
    if array.name != "Array" or len(array.args) != 2:
        raise _fail(op, indices, args, "first argument must be an Array")
    if args[1] != array.args[0] or args[2] != array.args[1]:
        raise _fail(op, indices, args, f"expected index {array.args[0]} and value {array.args[1]}")
    return array


def _seq_rule(arity: int, tail: tuple[Sort, ...], result: Optional[str]) -> SignatureRule:
    """First argument ``(Seq A)``, then fixed tail sorts; result is the Seq
    itself (``"seq"``), its element (``"elem"``), or a concrete sort name."""

    def rule(op, indices, args):
        _expect_no_indices(op, indices, args)
        _expect_arity(op, indices, args, arity)
        if not _container("Seq", args[0]):
            raise _fail(op, indices, args, "first argument must be a Seq")
        for expected, actual in zip(tail, args[1:]):
            target = args[0].element() if expected is None else expected
            if actual != target:
                raise _fail(op, indices, args, f"expected argument of sort {target}")
        if result == "seq":
            return args[0]
        if result == "elem":
            return args[0].element()
        return Sort(result) if result else BOOL

    return rule


def _rule_seq_unit(op, indices, args):
    _expect_no_indices(op, indices, args)
    _expect_arity(op, indices, args, 1)
    return Sort("Seq", args=(args[0],))


def _rule_seq_concat(op, indices, args):
    _expect_no_indices(op, indices, args)
    if len(args) < 2:
        raise _fail(op, indices, args, "expected at least 2 arguments")
    _expect_same(op, indices, args)
    if not _container("Seq", args[0]):
        raise _fail(op, indices, args, "arguments must be sequences")
    return args[0]


def _rule_seq_contains_like(op, indices, args):
    _expect_no_indices(op, indices, args)
    _expect_arity(op, indices, args, 2)
    _expect_same(op, indices, args)
    if not _container("Seq", args[0]):
        raise _fail(op, indices, args, "arguments must be sequences")
    return BOOL


def _set_binary(op, indices, args):
    _expect_no_indices(op, indices, args)
    _expect_arity(op, indices, args, 2)
    _expect_same(op, indices, args)
    if not _container("Set", args[0]):
        raise _fail(op, indices, args, "arguments must be sets")
    return args[0]


def _set_compare(op, indices, args):
    _expect_no_indices(op, indices, args)
    _expect_arity(op, indices, args, 2)
    _expect_same(op, indices, args)
    if not _container("Set", args[0]):
        raise _fail(op, indices, args, "arguments must be sets")
    return BOOL


def _rule_set_member(op, indices, args):
    _expect_no_indices(op, indices, args)
    _expect_arity(op, indices, args, 2)
    if not _container("Set", args[1]) or args[0] != args[1].element():
        raise _fail(op, indices, args, "expected (A (Set A))")
    return BOOL


def _rule_set_singleton(op, indices, args):
    _expect_no_indices(op, indices, args)
    _expect_arity(op, indices, args, 1)
    return Sort("Set", args=(args[0],))


def _rule_set_insert(op, indices, args):
    _expect_no_indices(op, indices, args)
    if len(args) < 2:
        raise _fail(op, indices, args, "expected at least 2 arguments")
    target = args[-1]
    if not _container("Set", target):
        raise _fail(op, indices, args, "last argument must be a Set")
    if any(a != target.element() for a in args[:-1]):
        raise _fail(op, indices, args, f"inserted elements must have sort {target.element()}")
    return target


def _rule_set_card(op, indices, args):
    _expect_no_indices(op, indices, args)
    _expect_arity(op, indices, args, 1)
    if not _container("Set", args[0]):
        raise _fail(op, indices, args, "argument must be a Set")
    return INT


def _rule_set_complement(op, indices, args):
    _expect_no_indices(op, indices, args)
    _expect_arity(op, indices, args, 1)
    if not _container("Set", args[0]):
        raise _fail(op, indices, args, "argument must be a Set")
    return args[0]


def _is_relation(sort: Sort) -> bool:
    return (
        _container("Set", sort)
        and sort.element().name in ("Tuple", "UnitTuple")
    )


def _rel_columns(sort: Sort) -> tuple[Sort, ...]:
    return sort.element().args


def _rule_rel_transpose(op, indices, args):
    _expect_no_indices(op, indices, args)
    _expect_arity(op, indices, args, 1)
    if not _is_relation(args[0]):
        raise _fail(op, indices, args, "argument must be a Relation (Set of Tuple)")
    return relation_sort(*reversed(_rel_columns(args[0])))


def _rule_rel_product(op, indices, args):
    _expect_no_indices(op, indices, args)
    _expect_arity(op, indices, args, 2)
    if not (_is_relation(args[0]) and _is_relation(args[1])):
        raise _fail(op, indices, args, "arguments must be Relations")
    return relation_sort(*(_rel_columns(args[0]) + _rel_columns(args[1])))


def _rule_rel_join(op, indices, args):
    _expect_no_indices(op, indices, args)
    _expect_arity(op, indices, args, 2)
    if not (_is_relation(args[0]) and _is_relation(args[1])):
        raise _fail(op, indices, args, "arguments must be Relations")
    left, right = _rel_columns(args[0]), _rel_columns(args[1])
    if not left or not right or left[-1] != right[0]:
        raise _fail(op, indices, args, "join columns do not match")
    return relation_sort(*(left[:-1] + right[1:]))


def _rule_rel_tclosure(op, indices, args):
    _expect_no_indices(op, indices, args)
    _expect_arity(op, indices, args, 1)
    if not _is_relation(args[0]):
        raise _fail(op, indices, args, "argument must be a Relation")
    columns = _rel_columns(args[0])
    if len(columns) != 2 or columns[0] != columns[1]:
        raise _fail(op, indices, args, "transitive closure needs a homogeneous binary Relation")
    return args[0]


def _rule_bag(op, indices, args):
    _expect_no_indices(op, indices, args)
    _expect_arity(op, indices, args, 2)
    if args[1] != INT:
        raise _fail(op, indices, args, "multiplicity must be Int")
    return Sort("Bag", args=(args[0],))


def _bag_binary(op, indices, args):
    _expect_no_indices(op, indices, args)
    _expect_arity(op, indices, args, 2)
    _expect_same(op, indices, args)
    if not _container("Bag", args[0]):
        raise _fail(op, indices, args, "arguments must be bags")
    return args[0]


def _rule_bag_count(op, indices, args):
    _expect_no_indices(op, indices, args)
    _expect_arity(op, indices, args, 2)
    if not _container("Bag", args[1]) or args[0] != args[1].element():
        raise _fail(op, indices, args, "expected (A (Bag A))")
    return INT


def _rule_bag_card(op, indices, args):
    _expect_no_indices(op, indices, args)
    _expect_arity(op, indices, args, 1)
    if not _container("Bag", args[0]):
        raise _fail(op, indices, args, "argument must be a Bag")
    return INT


def _rule_tuple(op, indices, args):
    _expect_no_indices(op, indices, args)
    return tuple_sort(*args)


def _rule_tuple_select(op, indices, args):
    if len(indices) != 1 or indices[0] < 0:
        raise _fail(op, indices, args, "requires one non-negative index")
    _expect_arity(op, indices, args, 1)
    if args[0].name != "Tuple" or indices[0] >= len(args[0].args):
        raise _fail(op, indices, args, "index out of range for tuple sort")
    return args[0].args[indices[0]]


# ---------------------------------------------------------------------------
# The table itself.
# ---------------------------------------------------------------------------

SIGNATURES: dict[str, SignatureRule] = {
    # Core
    "not": _fixed((BOOL,), BOOL),
    "and": _nary_same(BOOL, BOOL),
    "or": _nary_same(BOOL, BOOL),
    "xor": _nary_same(BOOL, BOOL),
    "=>": _nary_same(BOOL, BOOL),
    "=": _rule_eq,
    "distinct": _rule_eq,
    "ite": _rule_ite,
    # Ints / Reals
    "+": _numeric_nary(),
    "*": _numeric_nary(),
    "-": _rule_minus,
    "div": _nary_same(INT, INT),
    "mod": _fixed((INT, INT), INT),
    "abs": _fixed((INT,), INT),
    "/": _nary_same(REAL, REAL),
    "<": _numeric_compare,
    "<=": _numeric_compare,
    ">": _numeric_compare,
    ">=": _numeric_compare,
    "to_real": _fixed((INT,), REAL),
    "to_int": _fixed((REAL,), INT),
    "is_int": _fixed((REAL,), BOOL),
    "divisible": _rule_divisible,
    # BitVec
    "concat": _rule_concat,
    "extract": _rule_extract,
    "zero_extend": _rule_extend,
    "sign_extend": _rule_extend,
    "rotate_left": _rule_rotate,
    "rotate_right": _rule_rotate,
    "repeat": _rule_repeat,
    "bvnot": _bv_unary,
    "bvneg": _bv_unary,
    "bvand": _bv_nary(),
    "bvor": _bv_nary(),
    "bvxor": _bv_nary(),
    "bvadd": _bv_nary(),
    "bvmul": _bv_nary(),
    "bvsub": _bv_binary(),
    "bvudiv": _bv_binary(),
    "bvurem": _bv_binary(),
    "bvsdiv": _bv_binary(),
    "bvsrem": _bv_binary(),
    "bvsmod": _bv_binary(),
    "bvshl": _bv_binary(),
    "bvlshr": _bv_binary(),
    "bvashr": _bv_binary(),
    "bvult": _bv_binary(result_bool=True),
    "bvule": _bv_binary(result_bool=True),
    "bvugt": _bv_binary(result_bool=True),
    "bvuge": _bv_binary(result_bool=True),
    "bvslt": _bv_binary(result_bool=True),
    "bvsle": _bv_binary(result_bool=True),
    "bvsgt": _bv_binary(result_bool=True),
    "bvsge": _bv_binary(result_bool=True),
    # Strings
    "str.++": _nary_same(STRING, STRING),
    "str.len": _fixed((STRING,), INT),
    "str.at": _fixed((STRING, INT), STRING),
    "str.substr": _fixed((STRING, INT, INT), STRING),
    "str.contains": _fixed((STRING, STRING), BOOL),
    "str.prefixof": _fixed((STRING, STRING), BOOL),
    "str.suffixof": _fixed((STRING, STRING), BOOL),
    "str.indexof": _fixed((STRING, STRING, INT), INT),
    "str.replace": _fixed((STRING, STRING, STRING), STRING),
    "str.replace_all": _fixed((STRING, STRING, STRING), STRING),
    "str.to_int": _fixed((STRING,), INT),
    "str.from_int": _fixed((INT,), STRING),
    "str.<": _fixed((STRING, STRING), BOOL),
    "str.<=": _fixed((STRING, STRING), BOOL),
    "str.to_re": _fixed((STRING,), REGLAN),
    "str.in_re": _fixed((STRING, REGLAN), BOOL),
    "re.++": _nary_same(REGLAN, REGLAN),
    "re.union": _nary_same(REGLAN, REGLAN),
    "re.inter": _nary_same(REGLAN, REGLAN),
    "re.*": _fixed((REGLAN,), REGLAN),
    "re.+": _fixed((REGLAN,), REGLAN),
    "re.opt": _fixed((REGLAN,), REGLAN),
    "re.range": _fixed((STRING, STRING), REGLAN),
    # Arrays
    "select": _rule_select,
    "store": _rule_store,
    # Sequences (cvc5)
    "seq.unit": _rule_seq_unit,
    "seq.++": _rule_seq_concat,
    "seq.len": _seq_rule(1, (), "Int"),
    "seq.extract": _seq_rule(3, (INT, INT), "seq"),
    "seq.at": _seq_rule(2, (INT,), "seq"),
    "seq.nth": _seq_rule(2, (INT,), "elem"),
    "seq.update": _seq_rule(3, (INT, None), "seq"),
    "seq.contains": _rule_seq_contains_like,
    "seq.prefixof": _rule_seq_contains_like,
    "seq.suffixof": _rule_seq_contains_like,
    # Sets (cvc5)
    "set.union": _set_binary,
    "set.inter": _set_binary,
    "set.minus": _set_binary,
    "set.subset": _set_compare,
    "set.member": _rule_set_member,
    "set.singleton": _rule_set_singleton,
    "set.insert": _rule_set_insert,
    "set.card": _rule_set_card,
    "set.complement": _rule_set_complement,
    # Relations (cvc5)
    "rel.transpose": _rule_rel_transpose,
    "rel.product": _rule_rel_product,
    "rel.join": _rule_rel_join,
    "rel.tclosure": _rule_rel_tclosure,
    # Bags (cvc5)
    "bag": _rule_bag,
    "bag.union_max": _bag_binary,
    "bag.union_disjoint": _bag_binary,
    "bag.inter_min": _bag_binary,
    "bag.difference_subtract": _bag_binary,
    "bag.count": _rule_bag_count,
    "bag.card": _rule_bag_card,
    # Finite fields (cvc5)
    "ff.add": _ff_nary(2),
    "ff.mul": _ff_nary(2),
    "ff.neg": _ff_nary(1),
    # Tuples (cvc5)
    "tuple": _rule_tuple,
    "tuple.select": _rule_tuple_select,
}


# Nullary theory constants that appear as bare symbols in concrete syntax.
BUILTIN_CONSTANTS: dict[str, Sort] = {
    "re.none": REGLAN,
    "re.all": REGLAN,
    "re.allchar": REGLAN,
}

# Qualified nullary constructors ``(as <name> <sort>)`` → required sort head.
QUALIFIED_CONSTANT_HEADS: dict[str, str] = {
    "seq.empty": "Seq",
    "set.empty": "Set",
    "set.universe": "Set",
    "bag.empty": "Bag",
}


def is_builtin_operator(op: str) -> bool:
    """True when ``op`` has an entry in the signature table."""
    return op in SIGNATURES


def apply_sort(
    op: str,
    indices: tuple[int, ...],
    arg_sorts: tuple[Sort, ...],
    context: Optional[DeclarationContext] = None,
) -> Sort:
    """Result sort of applying ``op`` (with ``indices``) to ``arg_sorts``.

    Built-in operators are resolved through the signature table; everything
    else is looked up in ``context`` as a declared function.  Raises
    :class:`TypeCheckError` on sort mismatch and
    :class:`~repro.errors.UnknownSymbolError` for unknown operators.
    """
    rule = SIGNATURES.get(op)
    if rule is not None:
        return rule(op, tuple(indices), tuple(arg_sorts))
    if context is not None:
        signature = context.lookup_fun(op)
        if signature is not None:
            if indices:
                raise _fail(op, indices, arg_sorts, "declared functions take no indices")
            if signature.params != tuple(arg_sorts):
                raise _fail(
                    op, indices, arg_sorts,
                    f"declared signature is ({' '.join(map(str, signature.params))}) {signature.result}",
                )
            return signature.result
    raise UnknownSymbolError(op)


# ---------------------------------------------------------------------------
# Constant validation.
# ---------------------------------------------------------------------------


def check_constant(constant: Constant) -> None:
    """Verify that a constant's value is representable at its sort."""
    sort, value = constant.sort, constant.value
    if constant.qualifier:
        qualifier = constant.qualifier
        if is_finite_field(sort):
            match = re.fullmatch(r"ff(\d+)", qualifier)
            if match is None:
                raise TypeCheckError(f"finite-field constant needs an ff qualifier, got {qualifier!r}")
            if not isinstance(value, int) or not 0 <= value < sort.width:
                raise TypeCheckError(f"finite-field value {value!r} out of range for {sort}")
            if int(match.group(1)) != value:
                raise TypeCheckError(
                    f"finite-field qualifier {qualifier!r} does not encode value {value!r}"
                )
            return
        head = QUALIFIED_CONSTANT_HEADS.get(qualifier)
        if head is None:
            raise TypeCheckError(f"unknown qualified constant {qualifier!r}")
        if sort.name != head or not sort.args:
            raise TypeCheckError(f"qualified constant {qualifier!r} requires a {head} sort, got {sort}")
        return
    if sort == BOOL:
        if not isinstance(value, bool):
            raise TypeCheckError(f"Bool constant with non-bool value {value!r}")
    elif sort == INT:
        if not isinstance(value, int) or isinstance(value, bool):
            raise TypeCheckError(f"Int constant with non-int value {value!r}")
    elif sort == REAL:
        if not isinstance(value, (int, Fraction)) or isinstance(value, bool):
            raise TypeCheckError(f"Real constant with non-rational value {value!r}")
    elif sort == STRING:
        if not isinstance(value, str):
            raise TypeCheckError(f"String constant with non-string value {value!r}")
    elif is_bitvec(sort):
        if not isinstance(value, int) or not 0 <= value < (1 << sort.width):
            raise TypeCheckError(f"bit-vector value {value!r} out of range for {sort}")
    elif is_finite_field(sort):
        raise TypeCheckError(f"finite-field constant must carry an ff qualifier: {constant!r}")
    else:
        raise TypeCheckError(f"unqualified constant of non-literal sort {sort}")


# ---------------------------------------------------------------------------
# The recursive checker.
# ---------------------------------------------------------------------------


def check(term: Term, context: Optional[DeclarationContext] = None) -> Sort:
    """Verify that ``term`` is well-sorted and return its sort.

    Every ``Apply`` node's stored sort must equal what the signature table
    derives from its children; quantifier bodies must be ``Bool``; ``let``
    bodies must agree with the stored sort.  When ``context`` is given, free
    symbols must match their declared zero-arity signatures.  Raises
    :class:`TypeCheckError` or :class:`~repro.errors.UnknownSymbolError`.

    The checker memoizes per binder scope: with hash-consed terms a subterm
    shared by many parents inside one scope is verified once, so checking
    is linear in DAG size; the bound-variable dict is mutated and restored
    around binders, so deep binder chains are linear too.
    """
    return _check(term, context, {}, {})


def well_sorted(term: Term, context: Optional[DeclarationContext] = None) -> bool:
    """Predicate form of :func:`check`: ``True`` when the term passes."""
    try:
        check(term, context)
    except (TypeCheckError, UnknownSymbolError):
        return False
    return True


def reject_duplicate_names(what: str, names: list[str], exc: type = TypeCheckError) -> None:
    """Raise ``exc`` if ``names`` contains a repeat (shared by parser and
    checker so the two validation layers cannot drift)."""
    seen: set[str] = set()
    for name in names:
        if name in seen:
            raise exc(f"duplicate {what} binding: {name!r}")
        seen.add(name)


def _check(
    term: Term,
    context: Optional[DeclarationContext],
    bound: dict[str, Sort],
    cache: dict[Term, Sort],
) -> Sort:
    # ``cache`` is the memo for the *current binder scope*: shared subterms
    # inside one scope are verified once (O(1) per node thanks to
    # hash-consing), and each binder opens a fresh cache that dies with the
    # scope, so memory stays proportional to the live binder path.  The
    # single ``bound`` dict is mutated and restored around binders rather
    # than copied, keeping deep binder chains linear.
    cached = cache.get(term)
    if cached is not None:
        return cached
    sort = _check_uncached(term, context, bound, cache)
    cache[term] = sort
    return sort


def _check_uncached(
    term: Term,
    context: Optional[DeclarationContext],
    bound: dict[str, Sort],
    cache: dict[Term, Sort],
) -> Sort:
    if isinstance(term, Constant):
        check_constant(term)
        return term.sort
    if isinstance(term, Symbol):
        if term.name in bound:
            declared = bound[term.name]
        elif term.name in BUILTIN_CONSTANTS:
            declared = BUILTIN_CONSTANTS[term.name]
        elif context is not None:
            signature = context.lookup_fun(term.name)
            if signature is None:
                raise UnknownSymbolError(term.name)
            if signature.arity != 0:
                raise TypeCheckError(f"symbol {term.name!r} has arity {signature.arity}, used as a constant")
            declared = signature.result
        else:
            return term.sort
        if declared != term.sort:
            raise TypeCheckError(
                f"symbol {term.name!r} declared with sort {declared}, used at {term.sort}"
            )
        return term.sort
    if isinstance(term, Apply):
        # Plain loop, not a genexpr, so deep chains check in linear time.
        checked = []
        for arg in term.args:
            checked.append(_check(arg, context, bound, cache))
        arg_sorts = tuple(checked)
        # Same rule as the parser: a bound variable shadows even builtin
        # operator names, and bound variables can never be applied.
        if term.op in bound:
            raise TypeCheckError(f"bound variable {term.op!r} cannot be applied")
        if context is None and term.op not in SIGNATURES:
            # Without a context we cannot validate a declared function's rank;
            # trust the stored sort, mirroring the free-Symbol behaviour.
            return term.sort
        derived = apply_sort(term.op, term.indices, arg_sorts, context)
        if derived != term.sort:
            raise TypeCheckError(
                f"application of {term.op} stores sort {term.sort}, derived {derived}"
            )
        return derived
    if isinstance(term, Quantifier):
        if not term.bindings:
            raise TypeCheckError("quantifier with no bindings")
        reject_duplicate_names("quantifier", [n for n, _ in term.bindings])
        saved = push_scope(bound, term.bindings)
        try:
            body_sort = _check(term.body, context, bound, {})
        finally:
            pop_scope(bound, saved)
        if body_sort != BOOL:
            raise TypeCheckError(f"quantifier body must be Bool, got {body_sort}")
        return BOOL
    if isinstance(term, Let):
        if not term.bindings:
            raise TypeCheckError("let with no bindings")
        reject_duplicate_names("let", [n for n, _ in term.bindings])
        # Values are checked in the enclosing scope (parallel let).
        value_sorts = []
        for name, value in term.bindings:
            value_sorts.append((name, _check(value, context, bound, cache)))
        saved = push_scope(bound, value_sorts)
        try:
            return _check(term.body, context, bound, {})
        finally:
            pop_scope(bound, saved)
    raise TypeCheckError(f"unknown term node: {term!r}")


def check_script(script) -> None:
    """Check every defined body and asserted term of a script in context."""
    from ..obs.spans import trace_span
    from .script import Assert, DefineFun, apply_command

    with trace_span("typecheck"):
        context = DeclarationContext()
        for command in script.commands:
            if isinstance(command, DefineFun):
                # Parameters are bound variables (they may shadow
                # declarations), not declarations of their own.
                reject_duplicate_names(
                    "define-fun parameter", [n for n, _ in command.params]
                )
                body_sort = _check(command.body, context, dict(command.params), {})
                if body_sort != command.result:
                    raise TypeCheckError(
                        f"define-fun {command.name!r} declares result "
                        f"{command.result}, body has {body_sort}"
                    )
            elif isinstance(command, Assert):
                if _check(command.term, context, {}, {}) != BOOL:
                    raise TypeCheckError("asserted term must be Bool")
            apply_command(command, context)


__all__ = [
    "SIGNATURES",
    "BUILTIN_CONSTANTS",
    "QUALIFIED_CONSTANT_HEADS",
    "is_builtin_operator",
    "apply_sort",
    "check_constant",
    "check",
    "check_script",
    "well_sorted",
]
