"""S-expression layer between the lexer and the SMT-LIB parser.

The parser first builds generic s-expressions (nested Python lists whose
leaves are :class:`Atom`) and then interprets them as commands and terms.
Keeping this intermediate layer makes the skeletonizer, the delta reducer
and the seed corpus generator much simpler: they can manipulate structure
without committing to full sort checking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from ..errors import ParseError
from .lexer import Token, TokenKind, is_simple_symbol, quote_identifier, tokenize


def format_symbol(name: str) -> str:
    """Render a plain-symbol occurrence: bare when simple (including the
    reserved words, which legitimately appear as plain SYMBOL atoms in
    keyword position), ``|...|``-quoted otherwise.  Raises
    :class:`~repro.errors.PrinterError` for names SMT-LIB cannot express
    (containing ``|`` or ``\\``)."""
    if is_simple_symbol(name):
        return name
    return quote_identifier(name)


@dataclass(frozen=True)
class Atom:
    """A leaf of an s-expression: the token text plus its lexical kind."""

    text: str
    kind: TokenKind

    def __str__(self) -> str:
        if self.kind == TokenKind.STRING:
            return '"' + self.text.replace('"', '""') + '"'
        if self.kind == TokenKind.QUOTED_SYMBOL:
            return f"|{self.text}|"
        if self.kind == TokenKind.SYMBOL:
            return format_symbol(self.text)
        return self.text

    @property
    def is_symbol(self) -> bool:
        """True for symbols in either spelling (plain or ``|quoted|``)."""
        return self.kind in (TokenKind.SYMBOL, TokenKind.QUOTED_SYMBOL)

    @property
    def is_plain_symbol(self) -> bool:
        """True only for unquoted symbols — the spellings that can carry
        syntactic roles such as ``let`` or ``_`` in head position."""
        return self.kind == TokenKind.SYMBOL

    @property
    def is_numeral(self) -> bool:
        return self.kind == TokenKind.NUMERAL


SExpr = Union[Atom, list]


def parse_sexprs(text: str) -> list[SExpr]:
    """Parse ``text`` into a list of top-level s-expressions."""
    tokens = tokenize(text)
    expressions: list[SExpr] = []
    index = 0
    while index < len(tokens):
        expr, index = _parse_one(tokens, index)
        expressions.append(expr)
    return expressions


def _parse_one(tokens: list[Token], index: int) -> tuple[SExpr, int]:
    if index >= len(tokens):
        raise ParseError("unexpected end of input")
    token = tokens[index]
    if token.kind == TokenKind.LPAREN:
        items: list[SExpr] = []
        index += 1
        while True:
            if index >= len(tokens):
                raise ParseError(f"unbalanced parenthesis opened at line {token.line}")
            if tokens[index].kind == TokenKind.RPAREN:
                return items, index + 1
            item, index = _parse_one(tokens, index)
            items.append(item)
    if token.kind == TokenKind.RPAREN:
        raise ParseError(f"unexpected ')' at line {token.line}, column {token.column}")
    return Atom(token.text, token.kind), index + 1


def sexpr_to_string(expr: SExpr) -> str:
    """Render an s-expression back to concrete syntax."""
    if isinstance(expr, Atom):
        return str(expr)
    return "(" + " ".join(sexpr_to_string(item) for item in expr) + ")"


def sexprs_to_script(expressions: Iterable[SExpr]) -> str:
    """Render a sequence of top-level s-expressions, one per line."""
    return "\n".join(sexpr_to_string(expr) for expr in expressions)


def symbol(name: str) -> Atom:
    """Construct a symbol atom (convenience for structure-level rewriting)."""
    return Atom(name, TokenKind.SYMBOL)


def head_symbol(expr: SExpr) -> str:
    """The leading symbol of a list s-expression, or '' when not applicable."""
    if isinstance(expr, list) and expr and isinstance(expr[0], Atom):
        return expr[0].text
    return ""


def strip_atoms(expr: SExpr):
    """Convert an s-expression into plain Python lists/strings (lossy: string
    literals lose their quoting kind).  Useful for quick structural checks."""
    if isinstance(expr, Atom):
        return expr.text
    return [strip_atoms(item) for item in expr]


__all__ = [
    "format_symbol",
    "Atom",
    "SExpr",
    "parse_sexprs",
    "sexpr_to_string",
    "sexprs_to_script",
    "symbol",
    "head_symbol",
    "strip_atoms",
]
