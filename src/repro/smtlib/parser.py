"""Interpret s-expressions as SMT-LIB scripts and fully-sorted terms.

The parser sits on top of :mod:`repro.smtlib.sexpr` and produces the typed
representation: :class:`~repro.smtlib.script.Script` of commands whose
terms are :class:`~repro.smtlib.terms.Term` trees with every node carrying
its :class:`~repro.smtlib.sorts.Sort`.  Sort inference is driven by the
:class:`~repro.smtlib.script.DeclarationContext` (for declared symbols) and
by the operator signature table in :mod:`repro.smtlib.typecheck` (for
built-in operators), so parsing doubles as an eager well-sortedness check.

All terms are built through the hash-consing constructors in
:mod:`repro.smtlib.terms`, so parsing the same text twice yields
*identical* term object graphs (``is``-equal roots), and repeated
subterms within one script share a single node.
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import Mapping, Optional, Union

from ..errors import ParseError, TypeCheckError, UnknownSymbolError
from .lexer import RESERVED_WORDS, TokenKind
from .script import (
    Assert,
    CheckSat,
    Command,
    DeclarationContext,
    DeclareConst,
    DeclareFun,
    DeclareSort,
    DefineFun,
    Exit,
    GetModel,
    GetUnsatCore,
    GetValue,
    Pop,
    Push,
    Script,
    SetInfo,
    SetLogic,
    SetOption,
    apply_command,
)
from .sexpr import Atom, SExpr, parse_sexprs, sexpr_to_string
from .sorts import (
    BOOL,
    REAL,
    Sort,
    bitvec_sort,
    is_finite_field,
    relation_sort,
    tuple_sort,
)
from .terms import (
    Apply,
    Constant,
    Let,
    Quantifier,
    Symbol,
    Term,
    bool_const,
    ff_const,
    int_const,
    qualified_constant,
    string_const,
)
from .typecheck import (
    BUILTIN_CONSTANTS,
    QUALIFIED_CONSTANT_HEADS,
    SIGNATURES,
    apply_sort,
    check_constant,
    reject_duplicate_names,
)

_BV_LITERAL = re.compile(r"^bv(\d+)$")
_FF_LITERAL = re.compile(r"^ff(\d+)$")

# Head symbol of builtin sorts → (number of sort arguments, number of indices).
_BUILTIN_SORT_SHAPES: dict[str, tuple[int, int]] = {
    "Bool": (0, 0),
    "Int": (0, 0),
    "Real": (0, 0),
    "String": (0, 0),
    "RegLan": (0, 0),
    "RoundingMode": (0, 0),
    "UnitTuple": (0, 0),
    "BitVec": (0, 1),
    "FiniteField": (0, 1),
    "Seq": (1, 0),
    "Set": (1, 0),
    "Bag": (1, 0),
    "Array": (2, 0),
}


# ---------------------------------------------------------------------------
# Sorts.
# ---------------------------------------------------------------------------


def parse_sort(expr: SExpr, context: Optional[DeclarationContext] = None) -> Sort:
    """Interpret an s-expression as a :class:`Sort`.

    ``(Relation S...)`` and ``(Tuple S...)`` are normalised through the
    constructors in :mod:`repro.smtlib.sorts` (a ``Relation`` becomes a
    ``Set`` of ``Tuple``).  When ``context`` is given, non-builtin head
    symbols must be declared sorts of matching arity.
    """
    if isinstance(expr, Atom):
        if not expr.is_symbol:
            raise ParseError(f"expected a sort, got {expr}")
        if expr.is_plain_symbol and expr.text in RESERVED_WORDS:
            raise ParseError(f"reserved word {expr.text!r} is not a sort")
        name = expr.text
        shape = _BUILTIN_SORT_SHAPES.get(name)
        if shape is not None and shape != (0, 0):
            raise ParseError(f"sort {name} requires arguments or indices")
        if name in ("Tuple", "Relation"):
            raise ParseError(f"sort {name} requires arguments; use the ({name} ...) form")
        if shape is None:
            _require_declared_sort(name, 0, context)
        return Sort(name)
    if not expr:
        raise ParseError("empty sort expression")
    head = expr[0]
    if isinstance(head, Atom) and head.is_plain_symbol and head.text == "_":
        if len(expr) < 3 or not isinstance(expr[1], Atom):
            raise ParseError(f"malformed indexed sort: {sexpr_to_string(expr)}")
        name = expr[1].text
        indices = tuple(_parse_numeral(item, "sort index") for item in expr[2:])
        shape = _BUILTIN_SORT_SHAPES.get(name)
        if shape is None:
            # Only builtin indexed sorts exist; declared sorts never take indices.
            raise ParseError(f"sort {name} does not take indices")
        if shape[1] != len(indices):
            raise ParseError(f"sort {name} takes {shape[1]} index/indices, got {len(indices)}")
        if name == "BitVec" and indices[0] <= 0:
            raise ParseError("bit-vector width must be positive")
        if name == "FiniteField" and indices[0] < 2:
            raise ParseError("finite field order must be at least 2")
        return Sort(name, indices=indices)
    if not isinstance(head, Atom) or not head.is_symbol:
        raise ParseError(f"malformed sort: {sexpr_to_string(expr)}")
    name = head.text
    args = tuple(parse_sort(item, context) for item in expr[1:])
    if name == "Relation":
        return relation_sort(*args)
    if name == "Tuple":
        return tuple_sort(*args)
    shape = _BUILTIN_SORT_SHAPES.get(name)
    if shape is not None:
        if shape[0] != len(args) or shape[1] != 0:
            raise ParseError(f"sort {name} takes {shape[0]} argument(s), got {len(args)}")
    else:
        _require_declared_sort(name, len(args), context)
    return Sort(name, args=args)


def _require_declared_sort(name: str, arity: int, context: Optional[DeclarationContext]) -> None:
    if context is None:
        return
    declared = context.sort_arity(name)
    if declared is None:
        raise UnknownSymbolError(name)
    if declared != arity:
        raise ParseError(f"sort {name} has arity {declared}, applied to {arity} argument(s)")


def _parse_numeral(expr: SExpr, what: str) -> int:
    if not isinstance(expr, Atom) or not expr.is_numeral:
        raise ParseError(f"expected a numeral {what}, got {sexpr_to_string(expr)}")
    return int(expr.text)


# ---------------------------------------------------------------------------
# Terms.
# ---------------------------------------------------------------------------


def parse_term(
    expr: Union[str, SExpr],
    context: Optional[DeclarationContext] = None,
    bound: Optional[Mapping[str, Sort]] = None,
) -> Term:
    """Interpret text or an s-expression as a fully-sorted :class:`Term`.

    ``bound`` maps let/quantifier-bound variable names to their sorts for
    recursive calls; callers normally omit it.
    """
    if isinstance(expr, str):
        exprs = parse_sexprs(expr)
        if len(exprs) != 1:
            raise ParseError(f"expected exactly one term, got {len(exprs)} s-expressions")
        expr = exprs[0]
    context = context if context is not None else DeclarationContext()
    return _term(expr, context, dict(bound or {}))


def _term(expr: SExpr, context: DeclarationContext, bound: dict[str, Sort]) -> Term:
    if isinstance(expr, Atom):
        return _atom_term(expr, context, bound)
    if not expr:
        raise ParseError("empty term expression")
    head = expr[0]
    if isinstance(head, Atom) and head.is_symbol:
        keyword = head.text
        # Syntactic roles attach only to unquoted spellings: |let| is an
        # ordinary symbol, bare let is the binder keyword.
        if head.is_plain_symbol:
            if keyword == "as":
                return _qualified_term(expr, context, bound)
            if keyword == "_":
                return _indexed_literal(expr)
            if keyword == "let":
                return _let_term(expr, context, bound)
            if keyword in ("forall", "exists"):
                return _quantifier_term(keyword, expr, context, bound)
            if keyword == "!":
                raise ParseError(
                    "annotations (! term :named name) are only supported "
                    "directly under assert"
                )
            if keyword in RESERVED_WORDS:
                raise ParseError(f"reserved word {keyword!r} cannot head an application")
        args = tuple(_term(item, context, bound) for item in expr[1:])
        if keyword in bound:
            raise TypeCheckError(f"bound variable {keyword!r} cannot be applied")
        sort = apply_sort(keyword, (), tuple(a.sort for a in args), context)
        return Apply(keyword, args, sort)
    if (
        isinstance(head, list)
        and head
        and isinstance(head[0], Atom)
        and head[0].is_plain_symbol
        and head[0].text == "_"
    ):
        if len(head) < 3 or not isinstance(head[1], Atom):
            raise ParseError(f"malformed indexed operator: {sexpr_to_string(head)}")
        op = head[1].text
        indices = tuple(_parse_numeral(item, "operator index") for item in head[2:])
        args = tuple(_term(item, context, bound) for item in expr[1:])
        sort = apply_sort(op, indices, tuple(a.sort for a in args), context)
        return Apply(op, args, sort, indices=indices)
    raise ParseError(f"cannot interpret term: {sexpr_to_string(expr)}")


def _atom_term(atom: Atom, context: DeclarationContext, bound: dict[str, Sort]) -> Term:
    kind = atom.kind
    if kind == TokenKind.NUMERAL:
        return int_const(int(atom.text))
    if kind == TokenKind.DECIMAL:
        return Constant(Fraction(atom.text), REAL)
    if kind == TokenKind.HEXADECIMAL:
        digits = atom.text[2:]
        return Constant(int(digits, 16), bitvec_sort(4 * len(digits)))
    if kind == TokenKind.BINARY:
        digits = atom.text[2:]
        return Constant(int(digits, 2), bitvec_sort(len(digits)))
    if kind == TokenKind.STRING:
        return string_const(atom.text)
    if kind in (TokenKind.SYMBOL, TokenKind.QUOTED_SYMBOL):
        name = atom.text
        if kind == TokenKind.SYMBOL and name in RESERVED_WORDS:
            raise ParseError(f"reserved word {name!r} is not a term")
        # Bound variables shadow every theory constant, true/false included.
        if name in bound:
            return Symbol(name, bound[name])
        if name == "true":
            return bool_const(True)
        if name == "false":
            return bool_const(False)
        if name in BUILTIN_CONSTANTS:
            return Symbol(name, BUILTIN_CONSTANTS[name])
        signature = context.lookup_fun(name)
        if signature is None:
            raise UnknownSymbolError(name)
        if signature.arity != 0:
            raise TypeCheckError(
                f"function {name!r} has arity {signature.arity}; apply it to arguments"
            )
        return Symbol(name, signature.result)
    raise ParseError(f"cannot interpret atom as a term: {atom}")


def _qualified_term(
    expr: SExpr, context: DeclarationContext, bound: Mapping[str, Sort]
) -> Term:
    if len(expr) != 3 or not isinstance(expr[1], Atom) or not expr[1].is_symbol:
        raise ParseError(f"malformed qualified term: {sexpr_to_string(expr)}")
    name = expr[1].text
    sort = parse_sort(expr[2], context)
    match = _FF_LITERAL.match(name)
    if match and is_finite_field(sort):
        return ff_const(int(match.group(1)), sort.width)
    if name in QUALIFIED_CONSTANT_HEADS:
        constant = qualified_constant(name, sort)
        check_constant(constant)  # the ascribed sort must match the constant's theory
        return constant
    # Otherwise this is a sort-ascribed identifier, e.g. (as x Int): the
    # ascription must agree with the symbol's bound or declared sort.
    declared: Optional[Sort] = None
    if name in bound:
        declared = bound[name]
    else:
        signature = context.lookup_fun(name)
        if signature is not None:
            if signature.arity != 0:
                raise TypeCheckError(
                    f"function {name!r} has arity {signature.arity}; cannot sort-ascribe it"
                )
            declared = signature.result
    if declared is None:
        raise UnknownSymbolError(name)
    if declared != sort:
        raise TypeCheckError(
            f"symbol {name!r} has sort {declared}, ascribed {sort}"
        )
    return Symbol(name, declared)


def _indexed_literal(expr: SExpr) -> Term:
    # A standalone (_ bvN w) bit-vector literal.
    if len(expr) == 3 and isinstance(expr[1], Atom):
        match = _BV_LITERAL.match(expr[1].text)
        if match:
            width = _parse_numeral(expr[2], "bit-vector width")
            if width <= 0:
                raise ParseError("bit-vector width must be positive")
            value = int(match.group(1))
            if value >= 1 << width:
                raise ParseError(f"bit-vector literal bv{value} does not fit in {width} bit(s)")
            return Constant(value, bitvec_sort(width))
    raise ParseError(f"indexed identifier is not a term: {sexpr_to_string(expr)}")


def _let_term(expr: SExpr, context: DeclarationContext, bound: dict[str, Sort]) -> Term:
    if len(expr) != 3 or not isinstance(expr[1], list):
        raise ParseError(f"malformed let: {sexpr_to_string(expr)}")
    bindings: list[tuple[str, Term]] = []
    for binding in expr[1]:
        if (
            not isinstance(binding, list)
            or len(binding) != 2
            or not isinstance(binding[0], Atom)
            or not binding[0].is_symbol
        ):
            raise ParseError(f"malformed let binding: {sexpr_to_string(binding)}")
        bindings.append((_symbol_text(binding[0]), _term(binding[1], context, bound)))
    if not bindings:
        raise ParseError("let requires at least one binding")
    _reject_duplicate_names("let", [name for name, _ in bindings])
    inner = dict(bound)
    inner.update((name, value.sort) for name, value in bindings)
    body = _term(expr[2], context, inner)
    return Let(tuple(bindings), body)


def _quantifier_term(
    kind: str, expr: SExpr, context: DeclarationContext, bound: dict[str, Sort]
) -> Term:
    if len(expr) != 3 or not isinstance(expr[1], list):
        raise ParseError(f"malformed {kind}: {sexpr_to_string(expr)}")
    bindings: list[tuple[str, Sort]] = []
    for binding in expr[1]:
        if (
            not isinstance(binding, list)
            or len(binding) != 2
            or not isinstance(binding[0], Atom)
            or not binding[0].is_symbol
        ):
            raise ParseError(f"malformed binding: {sexpr_to_string(binding)}")
        bindings.append((_symbol_text(binding[0]), parse_sort(binding[1], context)))
    if not bindings:
        raise ParseError(f"{kind} requires at least one binding")
    _reject_duplicate_names(kind, [name for name, _ in bindings])
    inner = dict(bound)
    inner.update(bindings)
    body = _term(expr[2], context, inner)
    if body.sort != BOOL:
        raise TypeCheckError(f"{kind} body must be Bool, got {body.sort}")
    return Quantifier(kind, tuple(bindings), body)


# ---------------------------------------------------------------------------
# Commands and scripts.
# ---------------------------------------------------------------------------


def parse_command(expr: SExpr, context: DeclarationContext) -> Command:
    """Interpret one s-expression as a :class:`Command` (without applying its
    declaration effect to ``context`` — callers do that via
    :func:`~repro.smtlib.script.apply_command`)."""
    if not isinstance(expr, list) or not expr or not isinstance(expr[0], Atom) or not expr[0].is_plain_symbol:
        raise ParseError(f"expected a command, got {sexpr_to_string(expr)}")
    name = expr[0].text
    rest = expr[1:]
    if name == "set-logic":
        _expect_operands(name, rest, 1)
        return SetLogic(_symbol_text(rest[0]))
    if name in ("set-option", "set-info"):
        _expect_operands(name, rest, 2)
        if not isinstance(rest[0], Atom) or rest[0].kind != TokenKind.KEYWORD:
            raise ParseError(f"{name} expects a keyword, got {sexpr_to_string(rest[0])}")
        value = sexpr_to_string(rest[1])
        return (SetOption if name == "set-option" else SetInfo)(rest[0].text, value)
    if name == "declare-sort":
        if len(rest) not in (1, 2):
            raise ParseError(f"declare-sort takes 1 or 2 operands, got {len(rest)}")
        arity = _parse_numeral(rest[1], "sort arity") if len(rest) == 2 else 0
        return DeclareSort(_declarable_sort_name(rest[0]), arity)
    if name == "declare-fun":
        _expect_operands(name, rest, 3)
        if not isinstance(rest[1], list):
            raise ParseError("declare-fun expects a parameter sort list")
        params = tuple(parse_sort(item, context) for item in rest[1])
        return DeclareFun(_declarable_fun_name(rest[0]), params, parse_sort(rest[2], context))
    if name == "declare-const":
        _expect_operands(name, rest, 2)
        return DeclareConst(_declarable_fun_name(rest[0]), parse_sort(rest[1], context))
    if name == "define-fun":
        _expect_operands(name, rest, 4)
        if not isinstance(rest[1], list):
            raise ParseError("define-fun expects a parameter list")
        params: list[tuple[str, Sort]] = []
        for param in rest[1]:
            if not isinstance(param, list) or len(param) != 2:
                raise ParseError(f"malformed define-fun parameter: {sexpr_to_string(param)}")
            params.append((_symbol_text(param[0]), parse_sort(param[1], context)))
        _reject_duplicate_names("define-fun parameter", [name for name, _ in params])
        result = parse_sort(rest[2], context)
        body = _term(rest[3], context, dict(params))
        if body.sort != result:
            raise TypeCheckError(
                f"define-fun body has sort {body.sort}, declared result is {result}"
            )
        return DefineFun(_declarable_fun_name(rest[0]), tuple(params), result, body)
    if name == "assert":
        _expect_operands(name, rest, 1)
        operand = rest[0]
        label: Optional[str] = None
        if (
            isinstance(operand, list)
            and operand
            and isinstance(operand[0], Atom)
            and operand[0].is_plain_symbol
            and operand[0].text == "!"
        ):
            operand, label = _named_annotation(operand)
        term = _term(operand, context, {})
        if term.sort != BOOL:
            raise TypeCheckError(f"asserted term must be Bool, got {term.sort}")
        return Assert(term, label)
    if name in ("check-sat", "get-model", "get-unsat-core", "exit"):
        _expect_operands(name, rest, 0)
        return {
            "check-sat": CheckSat,
            "get-model": GetModel,
            "get-unsat-core": GetUnsatCore,
            "exit": Exit,
        }[name]()
    if name == "get-value":
        _expect_operands(name, rest, 1)
        if not isinstance(rest[0], list) or not rest[0]:
            raise ParseError("get-value expects a non-empty term list")
        return GetValue(tuple(_term(item, context, {}) for item in rest[0]))
    if name in ("push", "pop"):
        if len(rest) not in (0, 1):
            raise ParseError(f"{name} takes at most one operand")
        levels = _parse_numeral(rest[0], "level count") if rest else 1
        if levels < 0:
            raise ParseError(f"{name} level count must be non-negative")
        return (Push if name == "push" else Pop)(levels)
    raise ParseError(f"unknown command: {name}")


def _named_annotation(expr: SExpr) -> tuple[SExpr, str]:
    """Destructure ``(! term :named name)`` under ``assert``.

    Exactly one ``:named`` attribute is supported — other attributes (and
    repeated pairs) are rejected rather than silently dropped, so nothing
    the printer cannot round-trip ever enters a :class:`Script`."""
    if len(expr) < 2:
        raise ParseError("annotation needs a term: (! term :named name)")
    attributes = expr[2:]
    if not attributes:
        raise ParseError("annotation without attributes: (! term :named name)")
    if len(attributes) != 2:
        raise ParseError(
            "assert annotations take exactly one attribute pair: (! term :named name)"
        )
    keyword = attributes[0]
    if not isinstance(keyword, Atom) or keyword.kind != TokenKind.KEYWORD:
        raise ParseError(
            f"expected an attribute keyword, got {sexpr_to_string(keyword)}"
        )
    if keyword.text != ":named":
        raise ParseError(
            f"unsupported assert annotation {keyword.text!r}; only :named is supported"
        )
    return expr[1], _symbol_text(attributes[1])


def _reject_duplicate_names(what: str, names: list[str]) -> None:
    reject_duplicate_names(what, names, ParseError)


def _declarable_fun_name(expr: SExpr) -> str:
    name = _symbol_text(expr)
    if name in SIGNATURES or name in BUILTIN_CONSTANTS or name in ("true", "false"):
        raise ParseError(f"cannot redeclare builtin symbol {name!r}")
    return name


def _declarable_sort_name(expr: SExpr) -> str:
    name = _symbol_text(expr)
    if name in _BUILTIN_SORT_SHAPES or name in ("Tuple", "Relation"):
        raise ParseError(f"cannot redeclare builtin sort {name!r}")
    return name


def _expect_operands(name: str, rest: list, count: int) -> None:
    if len(rest) != count:
        raise ParseError(f"{name} takes {count} operand(s), got {len(rest)}")


def _symbol_text(expr: SExpr) -> str:
    if not isinstance(expr, Atom) or not expr.is_symbol:
        raise ParseError(f"expected a symbol, got {sexpr_to_string(expr)}")
    if expr.is_plain_symbol and expr.text in RESERVED_WORDS:
        raise ParseError(f"reserved word {expr.text!r} cannot be used as a symbol")
    return expr.text


def parse_script(
    text: str, context: Optional[DeclarationContext] = None
) -> Script:
    """Parse a whole SMT-LIB script from concrete syntax.

    Declarations accumulate into ``context`` (a fresh one when omitted) so
    each command sees everything declared before it, including the effect of
    ``push``/``pop`` on scoping.
    """
    context = context if context is not None else DeclarationContext()
    commands: list[Command] = []
    for expr in parse_sexprs(text):
        command = parse_command(expr, context)
        apply_command(command, context)
        commands.append(command)
    return Script(tuple(commands))


__all__ = [
    "parse_sort",
    "parse_term",
    "parse_command",
    "parse_script",
]
