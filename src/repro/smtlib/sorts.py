"""SMT-LIB sorts.

A :class:`Sort` is an immutable tree: a head symbol, optional *numeral
indices* (for indexed sorts such as ``(_ BitVec 8)`` and
``(_ FiniteField 3)``) and optional *sort arguments* (for parametric sorts
such as ``(Seq Int)`` and ``(Array Int Bool)``).

The module also provides the standard sorts used throughout the library and
helper constructors for the parametric ones, including the solver-specific
extensions exercised by the paper (sequences, sets, relations, bags and
finite fields in cvc5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .lexer import quote_identifier


@dataclass(frozen=True)
class Sort:
    """An SMT-LIB sort such as ``Int``, ``(_ BitVec 8)`` or ``(Seq Int)``."""

    name: str
    args: tuple["Sort", ...] = ()
    indices: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))
        object.__setattr__(self, "indices", tuple(int(i) for i in self.indices))
        # Cache the structural hash: the hash-consed term layer hashes sorts
        # on every construction, so sort hashing must be O(1) after this.
        object.__setattr__(
            self, "_hash", hash((self.name, self.args, self.indices))
        )

    def __hash__(self) -> int:
        return self._hash

    # -- structural queries -------------------------------------------------

    @property
    def is_parametric(self) -> bool:
        """True when the sort carries sort arguments (``Seq``, ``Array``...)."""
        return bool(self.args)

    @property
    def is_indexed(self) -> bool:
        """True when the sort carries numeral indices (``BitVec``...)."""
        return bool(self.indices)

    def element(self, position: int = 0) -> "Sort":
        """Return the sort argument at ``position`` (element sort of ``Seq`` etc.)."""
        return self.args[position]

    @property
    def width(self) -> int:
        """Bit width of a ``BitVec`` sort (or first index of any indexed sort)."""
        if not self.indices:
            raise ValueError(f"sort {self} has no indices")
        return self.indices[0]

    def walk(self) -> Iterable["Sort"]:
        """Yield this sort and every sort nested inside it (pre-order)."""
        yield self
        for arg in self.args:
            yield from arg.walk()

    # -- rendering ----------------------------------------------------------

    def to_smtlib(self) -> str:
        """Render the sort in concrete SMT-LIB syntax.

        Declared sort names that are not simple symbols (or collide with
        reserved words) are ``|...|``-quoted, like any other identifier."""
        head = quote_identifier(self.name)
        if self.indices:
            head = "(_ {} {})".format(head, " ".join(str(i) for i in self.indices))
        if not self.args:
            return head
        return "({} {})".format(head, " ".join(a.to_smtlib() for a in self.args))

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return self.to_smtlib()


# ---------------------------------------------------------------------------
# Standard non-parametric sorts.
# ---------------------------------------------------------------------------

BOOL = Sort("Bool")
INT = Sort("Int")
REAL = Sort("Real")
STRING = Sort("String")
REGLAN = Sort("RegLan")
ROUNDING_MODE = Sort("RoundingMode")
UNIT_TUPLE = Sort("UnitTuple")


# ---------------------------------------------------------------------------
# Parametric / indexed sort constructors.
# ---------------------------------------------------------------------------


def bitvec_sort(width: int) -> Sort:
    """``(_ BitVec width)`` — fixed-width bit-vectors."""
    if width <= 0:
        raise ValueError("bit-vector width must be positive")
    return Sort("BitVec", indices=(width,))


def finite_field_sort(order: int) -> Sort:
    """``(_ FiniteField p)`` — cvc5's prime-order finite fields."""
    if order < 2:
        raise ValueError("finite field order must be at least 2")
    return Sort("FiniteField", indices=(order,))


def seq_sort(element: Sort) -> Sort:
    """``(Seq element)`` — cvc5's sequence theory."""
    return Sort("Seq", args=(element,))


def set_sort(element: Sort) -> Sort:
    """``(Set element)`` — cvc5's finite-set theory."""
    return Sort("Set", args=(element,))


def bag_sort(element: Sort) -> Sort:
    """``(Bag element)`` — cvc5's bag (multiset) theory."""
    return Sort("Bag", args=(element,))


def array_sort(index: Sort, value: Sort) -> Sort:
    """``(Array index value)`` — the standard array theory."""
    return Sort("Array", args=(index, value))


def tuple_sort(*elements: Sort) -> Sort:
    """``(Tuple e1 ... en)`` — cvc5 tuples; ``UnitTuple`` when empty."""
    if not elements:
        return UNIT_TUPLE
    return Sort("Tuple", args=tuple(elements))


def relation_sort(*elements: Sort) -> Sort:
    """``(Relation e1 ... en)`` = ``(Set (Tuple e1 ... en))`` in cvc5."""
    return set_sort(tuple_sort(*elements))


def datatype_sort(name: str, *args: Sort) -> Sort:
    """A user-declared (possibly parametric) datatype sort."""
    return Sort(name, args=tuple(args))


def uninterpreted_sort(name: str) -> Sort:
    """A user-declared uninterpreted sort (``declare-sort``)."""
    return Sort(name)


# ---------------------------------------------------------------------------
# Classification helpers.
# ---------------------------------------------------------------------------

_NUMERIC_NAMES = frozenset({"Int", "Real"})
_CONTAINER_NAMES = frozenset({"Seq", "Set", "Bag", "Array", "Tuple"})
_BUILTIN_NAMES = frozenset(
    {
        "Bool",
        "Int",
        "Real",
        "String",
        "RegLan",
        "RoundingMode",
        "BitVec",
        "FiniteField",
        "UnitTuple",
    }
) | _CONTAINER_NAMES


def is_numeric(sort: Sort) -> bool:
    """True for ``Int`` and ``Real``."""
    return sort.name in _NUMERIC_NAMES


def is_bitvec(sort: Sort) -> bool:
    """True for ``(_ BitVec n)``."""
    return sort.name == "BitVec"


def is_finite_field(sort: Sort) -> bool:
    """True for ``(_ FiniteField p)``."""
    return sort.name == "FiniteField"


def is_array(sort: Sort) -> bool:
    """True for ``(Array index value)``."""
    return sort.name == "Array"


def is_container(sort: Sort) -> bool:
    """True for the parametric container sorts (Seq/Set/Bag/Array/Tuple)."""
    return sort.name in _CONTAINER_NAMES


def is_builtin(sort: Sort) -> bool:
    """True when the head symbol is defined by SMT-LIB or a solver extension."""
    return sort.name in _BUILTIN_NAMES


def parse_sort_sexpr(expr) -> Sort:
    """Build a :class:`Sort` from a parsed s-expression.

    ``expr`` is either a string (simple sort), or a nested list mirroring the
    concrete syntax, e.g. ``["_", "BitVec", "8"]`` or ``["Seq", "Int"]``.
    """
    if isinstance(expr, str):
        return Sort(expr)
    if not isinstance(expr, (list, tuple)) or not expr:
        raise ValueError(f"cannot interpret sort expression: {expr!r}")
    if expr[0] == "_":
        if len(expr) < 3:
            raise ValueError(f"malformed indexed sort: {expr!r}")
        name = expr[1]
        indices = tuple(int(tok) for tok in expr[2:])
        return Sort(name, indices=indices)
    head = expr[0]
    if isinstance(head, (list, tuple)):
        # Indexed head with arguments, e.g. ((_ Foo 2) Int) — rare but legal.
        base = parse_sort_sexpr(head)
        return Sort(base.name, args=tuple(parse_sort_sexpr(a) for a in expr[1:]), indices=base.indices)
    return Sort(head, args=tuple(parse_sort_sexpr(a) for a in expr[1:]))


__all__ = [
    "Sort",
    "BOOL",
    "INT",
    "REAL",
    "STRING",
    "REGLAN",
    "ROUNDING_MODE",
    "UNIT_TUPLE",
    "bitvec_sort",
    "finite_field_sort",
    "seq_sort",
    "set_sort",
    "bag_sort",
    "array_sort",
    "tuple_sort",
    "relation_sort",
    "datatype_sort",
    "uninterpreted_sort",
    "is_numeric",
    "is_bitvec",
    "is_finite_field",
    "is_array",
    "is_container",
    "is_builtin",
    "parse_sort_sexpr",
]
