"""Ground-term evaluation: reduce closed terms to literal values.

Two entry points:

* :func:`fold_apply` — the *literal operator table*: given an operator, its
  indices and already-literal :class:`~repro.smtlib.terms.Constant`
  arguments, compute the result constant, or return ``None`` when the
  operator is not foldable (unknown op, or a case SMT-LIB leaves
  unspecified such as ``(div x 0)``).  The simplifier reuses this table for
  its constant-folding rules, so evaluator and simplifier can never
  disagree on literal semantics.
* :func:`evaluate` — the recursive ground evaluator: reduces a closed term
  (optionally under an environment mapping symbol names to constants) to a
  single :class:`Constant`, short-circuiting ``and``/``or``/``ite`` the way
  the logic defines them.  Raises
  :class:`~repro.errors.EvaluationError` when the term is not ground or
  hits an unfoldable application.

Semantics follow the SMT-LIB standard: ``div``/``mod`` are Euclidean,
``bvudiv x 0`` is all-ones, ``bvurem x 0`` is ``x``, ``str.substr`` is
total with out-of-range arguments yielding ``""``, and so on.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Mapping, Optional

from ..errors import EvaluationError
from .sorts import (
    INT,
    REAL,
    STRING,
    Sort,
    bitvec_sort,
    is_array,
    is_bitvec,
    is_finite_field,
)
from .terms import (
    FALSE,
    TRUE,
    Apply,
    Constant,
    ConstantValue,
    Let,
    Quantifier,
    Symbol,
    Term,
    bool_const,
    ff_const,
    pop_scope,
    push_scope,
)

# ---------------------------------------------------------------------------
# Integer helpers (SMT-LIB semantics).
# ---------------------------------------------------------------------------


def euclidean_div(a: int, b: int) -> int:
    """SMT-LIB ``div``: quotient with ``0 <= mod < |b|`` (``b`` non-zero)."""
    if b > 0:
        return a // b
    return -(a // -b)


def euclidean_mod(a: int, b: int) -> int:
    """SMT-LIB ``mod``: remainder in ``[0, |b|)`` (``b`` non-zero)."""
    return a - b * euclidean_div(a, b)


def _to_signed(value: int, width: int) -> int:
    return value - (1 << width) if value >= 1 << (width - 1) else value


def _mask(width: int) -> int:
    return (1 << width) - 1


def _is_literal(constant: Constant) -> bool:
    # Unqualified literals and finite-field constants denote pairwise
    # distinct values, as do the ``@``-qualified abstract constants the
    # theory layer mints for uninterpreted-sort model values; other
    # qualified constants (seq.empty, set.universe ...) are symbolic, so
    # disequality between them must not be decided.
    return (
        not constant.qualifier
        or is_finite_field(constant.sort)
        or constant.qualifier.startswith("@")
    )


# ---------------------------------------------------------------------------
# The literal operator table.
# ---------------------------------------------------------------------------

_Folder = Callable[[tuple[int, ...], tuple[Constant, ...], Sort], Optional[Constant]]


def _chain(values: tuple, relation: Callable[[object, object], bool]) -> Constant:
    ok = all(relation(a, b) for a, b in zip(values, values[1:]))
    return bool_const(ok)


def _fold_core(op: str, indices, args: tuple[Constant, ...], sort: Sort) -> Optional[Constant]:
    values = tuple(a.value for a in args)
    if op == "not":
        return bool_const(not values[0])
    if op == "and":
        return bool_const(all(values))
    if op == "or":
        return bool_const(any(values))
    if op == "xor":
        parity = False
        for v in values:
            parity ^= bool(v)
        return bool_const(parity)
    if op == "=>":
        result = bool(values[-1])
        for v in reversed(values[:-1]):
            result = (not v) or result
        return bool_const(result)
    if op == "=":
        if all(a is args[0] for a in args[1:]):
            return TRUE
        if all(_is_literal(a) for a in args):
            return FALSE
        return None
    if op == "distinct":
        if len(set(args)) != len(args):
            return FALSE
        if all(_is_literal(a) for a in args):
            return TRUE
        return None
    if op == "ite":
        return args[1] if values[0] else args[2]
    return None


def _fold_arith(op: str, indices, args: tuple[Constant, ...], sort: Sort) -> Optional[Constant]:
    values = tuple(a.value for a in args)
    arg_sort = args[0].sort
    if op == "+":
        return Constant(sum(values), arg_sort)
    if op == "*":
        product = values[0]
        for v in values[1:]:
            product *= v
        return Constant(product, arg_sort)
    if op == "-":
        if len(values) == 1:
            return Constant(-values[0], arg_sort)
        acc = values[0]
        for v in values[1:]:
            acc -= v
        return Constant(acc, arg_sort)
    if op == "div":
        acc = values[0]
        for v in values[1:]:
            if v == 0:
                return None
            acc = euclidean_div(acc, v)
        return Constant(acc, INT)
    if op == "mod":
        if values[1] == 0:
            return None
        return Constant(euclidean_mod(values[0], values[1]), INT)
    if op == "abs":
        return Constant(abs(values[0]), INT)
    if op == "/":
        acc = Fraction(values[0])
        for v in values[1:]:
            if v == 0:
                return None
            acc /= v
        return Constant(acc, REAL)
    if op == "<":
        return _chain(values, lambda a, b: a < b)
    if op == "<=":
        return _chain(values, lambda a, b: a <= b)
    if op == ">":
        return _chain(values, lambda a, b: a > b)
    if op == ">=":
        return _chain(values, lambda a, b: a >= b)
    if op == "to_real":
        return Constant(Fraction(values[0]), REAL)
    if op == "to_int":
        fraction = Fraction(values[0])
        return Constant(fraction.numerator // fraction.denominator, INT)
    if op == "is_int":
        return bool_const(Fraction(values[0]).denominator == 1)
    if op == "divisible":
        return bool_const(values[0] % indices[0] == 0)
    return None


def _fold_bitvec(op: str, indices, args: tuple[Constant, ...], sort: Sort) -> Optional[Constant]:
    values = tuple(a.value for a in args)
    width = args[0].sort.width
    mask = _mask(width)

    def bv(value: int, result_width: int = width) -> Constant:
        return Constant(value & _mask(result_width), bitvec_sort(result_width))

    if op in ("bvadd", "bvmul", "bvand", "bvor", "bvxor"):
        acc = values[0]
        for v in values[1:]:
            if op == "bvadd":
                acc += v
            elif op == "bvmul":
                acc *= v
            elif op == "bvand":
                acc &= v
            elif op == "bvor":
                acc |= v
            else:
                acc ^= v
        return bv(acc)
    if op == "bvnot":
        return bv(~values[0])
    if op == "bvneg":
        return bv(-values[0])
    if op == "bvsub":
        return bv(values[0] - values[1])
    if op == "bvudiv":
        return bv(mask if values[1] == 0 else values[0] // values[1])
    if op == "bvurem":
        return bv(values[0] if values[1] == 0 else values[0] % values[1])
    if op in ("bvsdiv", "bvsrem", "bvsmod"):
        return _fold_bv_signed(op, values[0], values[1], width)
    if op == "bvshl":
        return bv(0 if values[1] >= width else values[0] << values[1])
    if op == "bvlshr":
        return bv(0 if values[1] >= width else values[0] >> values[1])
    if op == "bvashr":
        signed = _to_signed(values[0], width)
        shift = min(values[1], width)
        return bv(signed >> shift)
    if op == "concat":
        acc = 0
        total = 0
        for a in args:
            acc = (acc << a.sort.width) | a.value
            total += a.sort.width
        return bv(acc, total)
    if op == "extract":
        high, low = indices
        return bv(values[0] >> low, high - low + 1)
    if op == "zero_extend":
        return bv(values[0], width + indices[0])
    if op == "sign_extend":
        return bv(_to_signed(values[0], width), width + indices[0])
    if op == "rotate_left":
        k = indices[0] % width
        return bv((values[0] << k) | (values[0] >> (width - k)) if k else values[0])
    if op == "rotate_right":
        k = indices[0] % width
        return bv((values[0] >> k) | (values[0] << (width - k)) if k else values[0])
    if op == "repeat":
        acc = 0
        for _ in range(indices[0]):
            acc = (acc << width) | values[0]
        return bv(acc, width * indices[0])
    if op in ("bvult", "bvule", "bvugt", "bvuge"):
        a, b = values
        return bool_const(
            {"bvult": a < b, "bvule": a <= b, "bvugt": a > b, "bvuge": a >= b}[op]
        )
    if op in ("bvslt", "bvsle", "bvsgt", "bvsge"):
        a, b = _to_signed(values[0], width), _to_signed(values[1], width)
        return bool_const(
            {"bvslt": a < b, "bvsle": a <= b, "bvsgt": a > b, "bvsge": a >= b}[op]
        )
    return None


def _fold_bv_signed(op: str, s: int, t: int, width: int) -> Constant:
    """``bvsdiv``/``bvsrem``/``bvsmod`` per their SMT-LIB definitional
    expansions over ``bvudiv``/``bvurem`` (total, including ``t = 0``)."""
    mask = _mask(width)
    sort = bitvec_sort(width)
    msb_s = s >> (width - 1)
    msb_t = t >> (width - 1)
    abs_s = (-s) & mask if msb_s else s
    abs_t = (-t) & mask if msb_t else t
    udiv = mask if abs_t == 0 else abs_s // abs_t
    urem = abs_s if abs_t == 0 else abs_s % abs_t
    if op == "bvsdiv":
        negate = msb_s != msb_t
        return Constant((-udiv) & mask if negate else udiv, sort)
    if op == "bvsrem":
        return Constant((-urem) & mask if msb_s else urem, sort)
    # bvsmod: result takes the divisor's sign.
    if urem == 0 or msb_s == msb_t:
        value = (-urem) & mask if msb_s and msb_t else urem
    elif msb_s and not msb_t:
        value = (t - urem) & mask
    else:
        value = (urem + t) & mask
    return Constant(value, sort)


def _fold_string(op: str, indices, args: tuple[Constant, ...], sort: Sort) -> Optional[Constant]:
    values = tuple(a.value for a in args)
    if op == "str.++":
        return Constant("".join(values), STRING)
    if op == "str.len":
        return Constant(len(values[0]), INT)
    if op == "str.at":
        s, i = values
        return Constant(s[i] if 0 <= i < len(s) else "", STRING)
    if op == "str.substr":
        s, m, n = values
        if 0 <= m < len(s) and n >= 0:
            return Constant(s[m : m + n], STRING)
        return Constant("", STRING)
    if op == "str.contains":
        return bool_const(values[1] in values[0])
    if op == "str.prefixof":
        return bool_const(values[1].startswith(values[0]))
    if op == "str.suffixof":
        return bool_const(values[1].endswith(values[0]))
    if op == "str.indexof":
        s, t, i = values
        if i < 0 or i > len(s):
            return Constant(-1, INT)
        return Constant(s.find(t, i), INT)
    if op == "str.replace":
        s, t, u = values
        if not t:
            return Constant(u + s, STRING)
        return Constant(s.replace(t, u, 1), STRING)
    if op == "str.replace_all":
        s, t, u = values
        if not t:
            return Constant(s, STRING)
        return Constant(s.replace(t, u), STRING)
    if op == "str.to_int":
        s = values[0]
        ok = bool(s) and all(c in "0123456789" for c in s)
        return Constant(int(s) if ok else -1, INT)
    if op == "str.from_int":
        n = values[0]
        return Constant(str(n) if n >= 0 else "", STRING)
    if op == "str.<":
        return bool_const(values[0] < values[1])
    if op == "str.<=":
        return bool_const(values[0] <= values[1])
    return None


def _fold_ff(op: str, indices, args: tuple[Constant, ...], sort: Sort) -> Optional[Constant]:
    order = args[0].sort.width
    values = tuple(a.value for a in args)
    if op == "ff.add":
        return ff_const(sum(values), order)
    if op == "ff.mul":
        product = 1
        for v in values:
            product = (product * v) % order
        return ff_const(product, order)
    if op == "ff.neg":
        return ff_const(-values[0], order)
    return None


_CORE_OPS = frozenset({"not", "and", "or", "xor", "=>", "=", "distinct", "ite"})
_ARITH_OPS = frozenset(
    {"+", "*", "-", "div", "mod", "abs", "/", "<", "<=", ">", ">=",
     "to_real", "to_int", "is_int", "divisible"}
)
_FF_OPS = frozenset({"ff.add", "ff.mul", "ff.neg"})


def fold_apply(
    op: str,
    indices: tuple[int, ...],
    args: tuple[Constant, ...],
    sort: Sort,
) -> Optional[Constant]:
    """Fold one application of ``op`` to literal constants.

    ``sort`` is the application's (already type-checked) result sort.
    Returns the literal result, or ``None`` when the application is not
    foldable — unknown operator, symbolic qualified constants under
    ``=``/``distinct``, or a case SMT-LIB leaves unspecified (``div``,
    ``mod`` and ``/`` by zero).  The returned constant always has sort
    ``sort``.
    """
    if op in _CORE_OPS:
        return _fold_core(op, indices, args, sort)
    if op in _ARITH_OPS:
        return _fold_arith(op, indices, args, sort)
    if op in _FF_OPS and is_finite_field(args[0].sort):
        return _fold_ff(op, indices, args, sort)
    if op.startswith("str."):
        return _fold_string(op, indices, args, sort)
    if args and is_bitvec(args[0].sort):
        return _fold_bitvec(op, indices, args, sort)
    return None


# ---------------------------------------------------------------------------
# Array values.
# ---------------------------------------------------------------------------


class ArrayValue:
    """The value a ``store`` chain denotes: an opaque base-array constant
    plus a finite map of updated indices.

    The evaluator keeps these *normalized* against the model's ``select``
    graph — an update that merely restates what the base already reads is
    dropped, and chains over the same base flatten to one map — so
    structural equality of two values coincides with extensional equality
    relative to the model.  That is what lets ``=`` over array constants
    fold soundly during model validation.
    """

    __slots__ = ("base", "updates", "_hash")

    def __init__(
        self, base: Constant, updates: Mapping[Constant, Constant]
    ) -> None:
        self.base = base
        self.updates: dict[Constant, Constant] = dict(updates)
        self._hash = hash((base, frozenset(self.updates.items())))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        return self is other or (
            isinstance(other, ArrayValue)
            and self.base is other.base
            and self.updates == other.updates
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArrayValue(base={self.base!r}, {len(self.updates)} updates)"


def _array_parts(array: Constant) -> tuple[Constant, dict[Constant, Constant]]:
    value = array.value
    if isinstance(value, ArrayValue):
        return value.base, value.updates
    return array, {}


def _base_read(
    base: Constant,
    index: Constant,
    funs: Optional[Mapping[str, "FunctionInterpretation"]],
) -> Optional[Constant]:
    if funs is not None:
        interpretation = funs.get("select")
        if interpretation is not None:
            return interpretation((base, index))
    return None


def _array_equal(
    lhs: Constant,
    rhs: Constant,
    funs: Optional[Mapping[str, "FunctionInterpretation"]],
) -> Optional[bool]:
    """Extensional equality of two array constants, relative to the
    model's ``select`` graph; ``None`` when no graph is available and the
    values are not structurally identical."""
    if lhs is rhs:
        return True
    base_l, updates_l = _array_parts(lhs)
    base_r, updates_r = _array_parts(rhs)
    if base_l is base_r and updates_l == updates_r:
        return True
    interpretation = funs.get("select") if funs is not None else None
    if interpretation is None:
        return None
    # Outside the finite key set below both rows read the graph default,
    # so comparing on it decides extensional equality exactly.
    keys = set(updates_l) | set(updates_r)
    for entry in interpretation.entries:
        if len(entry) == 2 and (entry[0] is base_l or entry[0] is base_r):
            keys.add(entry[1])
    for key in keys:
        row_l = updates_l.get(key)
        if row_l is None:
            row_l = interpretation((base_l, key))
        row_r = updates_r.get(key)
        if row_r is None:
            row_r = interpretation((base_r, key))
        if row_l is not row_r:
            return False
    return True


def _fold_array_cmp(
    op: str,
    args: tuple[Constant, ...],
    funs: Optional[Mapping[str, "FunctionInterpretation"]],
) -> Constant:
    """``=``/``distinct`` over array constants, extensionally."""
    if op == "=":
        for other in args[1:]:
            verdict = _array_equal(args[0], other, funs)
            if verdict is None:
                raise EvaluationError("cannot compare array values")
            if not verdict:
                return FALSE
        return TRUE
    for position, lhs in enumerate(args):
        for rhs in args[position + 1 :]:
            verdict = _array_equal(lhs, rhs, funs)
            if verdict is None:
                raise EvaluationError("cannot compare array values")
            if verdict:
                return FALSE
    return TRUE


def _fold_array(
    op: str,
    args: tuple[Constant, ...],
    sort: Sort,
    funs: Optional[Mapping[str, "FunctionInterpretation"]],
) -> Optional[Constant]:
    """Evaluate ``select``/``store`` with real array semantics.

    ``store`` builds (and normalizes) an :class:`ArrayValue`; ``select``
    resolves through the update map, consulting the model's ``select``
    graph only for the opaque base.  Returns ``None`` when a base read is
    needed but no ``select`` interpretation is available."""
    if op == "select" and len(args) == 2:
        base, updates = _array_parts(args[0])
        hit = updates.get(args[1])
        if hit is not None:
            return hit
        return _base_read(base, args[1], funs)
    if op == "store" and len(args) == 3:
        array, index, value = args
        base, updates = _array_parts(array)
        updates = dict(updates)
        if _base_read(base, index, funs) is value:
            updates.pop(index, None)
        else:
            updates[index] = value
        if not updates:
            return base
        return Constant(ArrayValue(base, updates), sort)
    return None


# ---------------------------------------------------------------------------
# Uninterpreted-function interpretations.
# ---------------------------------------------------------------------------


class FunctionInterpretation:
    """A finite function graph plus a default: the model shape for an
    uninterpreted function.

    ``entries`` maps argument tuples (of interned :class:`Constant` nodes,
    so lookup is a dict hit) to result constants; every other argument
    tuple maps to ``default``.  The graph-plus-default shape is total and
    trivially congruence-respecting, which is exactly what model
    validation over EUF needs.
    """

    __slots__ = ("entries", "default")

    def __init__(
        self,
        entries: Mapping[tuple[Constant, ...], Constant],
        default: Constant,
    ) -> None:
        self.entries: dict[tuple[Constant, ...], Constant] = dict(entries)
        self.default = default

    def __call__(self, args: tuple[Constant, ...]) -> Constant:
        return self.entries.get(args, self.default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FunctionInterpretation({len(self.entries)} entries, "
            f"default={self.default!r})"
        )


# ---------------------------------------------------------------------------
# The ground evaluator.
# ---------------------------------------------------------------------------


def evaluate(
    term: Term,
    bindings: Optional[Mapping[str, Constant]] = None,
    funs: Optional[Mapping[str, FunctionInterpretation]] = None,
) -> Constant:
    """Reduce a closed term to a literal :class:`Constant`.

    ``bindings`` maps free symbol names to constants (their sorts must match
    the symbol occurrences); ``funs`` maps uninterpreted function names to
    :class:`FunctionInterpretation` objects, extending evaluation over EUF
    models.  ``and``/``or``/``ite`` evaluate lazily in argument order,
    mirroring the logic's short-circuit identities.  Raises
    :class:`~repro.errors.EvaluationError` for quantified terms, uncovered
    free symbols, or unfoldable applications.
    """
    env: dict[str, Constant] = dict(bindings or {})
    return _evaluate(term, env, dict(funs) if funs else None)


def evaluate_value(
    term: Term,
    bindings: Optional[Mapping[str, Constant]] = None,
    funs: Optional[Mapping[str, FunctionInterpretation]] = None,
) -> ConstantValue:
    """Like :func:`evaluate` but return the Python value of the result."""
    return evaluate(term, bindings, funs).value


def _evaluate(
    term: Term,
    env: dict[str, Constant],
    funs: Optional[dict[str, FunctionInterpretation]],
) -> Constant:
    if isinstance(term, Constant):
        return term
    if isinstance(term, Symbol):
        value = env.get(term.name)
        if value is None:
            raise EvaluationError(f"cannot evaluate free symbol {term.name!r}")
        if value.sort != term.sort:
            raise EvaluationError(
                f"binding for {term.name!r} has sort {value.sort}, expected {term.sort}"
            )
        return value
    if isinstance(term, Apply):
        op = term.op
        if op == "ite":
            condition = _evaluate(term.args[0], env, funs)
            return _evaluate(term.args[1] if condition.value else term.args[2], env, funs)
        if op == "and":
            for arg in term.args:
                if not _evaluate(arg, env, funs).value:
                    return FALSE
            return TRUE
        if op == "or":
            for arg in term.args:
                if _evaluate(arg, env, funs).value:
                    return TRUE
            return FALSE
        # Plain loop, not a genexpr: keeps deep chains linear on CPython
        # 3.11+ (a genexpr re-enters the C interpreter at every level).
        evaluated = []
        for arg in term.args:
            evaluated.append(_evaluate(arg, env, funs))
        args = tuple(evaluated)
        if op in ("select", "store") and not term.indices:
            # Array semantics come before any function graph: a store
            # chain denotes a concrete update map, never a free function.
            result = _fold_array(op, args, term.sort, funs)
            if result is not None:
                return result
        if (
            op in ("=", "distinct")
            and not term.indices
            and args
            and is_array(args[0].sort)
        ):
            return _fold_array_cmp(op, args, funs)
        if funs is not None and not term.indices:
            interpretation = funs.get(op)
            if interpretation is not None:
                return interpretation(args)
        folded = fold_apply(op, term.indices, args, term.sort)
        if folded is None:
            raise EvaluationError(f"cannot evaluate application of {op!r}")
        return folded
    if isinstance(term, Let):
        # Parallel let: values evaluate in the enclosing environment.  The
        # environment is mutated and restored rather than copied, so deep
        # let chains evaluate in linear time.
        values = []
        for name, value in term.bindings:
            values.append((name, _evaluate(value, env, funs)))
        saved = push_scope(env, values)
        try:
            return _evaluate(term.body, env, funs)
        finally:
            pop_scope(env, saved)
    if isinstance(term, Quantifier):
        raise EvaluationError(f"cannot evaluate quantified term ({term.kind})")
    raise EvaluationError(f"unknown term node: {term!r}")


__all__ = [
    "fold_apply",
    "evaluate",
    "evaluate_value",
    "euclidean_div",
    "euclidean_mod",
    "ArrayValue",
    "FunctionInterpretation",
]
