"""Deterministic SMT-LIB concrete syntax for sorts, terms and scripts.

The printer is the inverse of :mod:`repro.smtlib.parser` and satisfies the
round-trip law the reduction and generation layers rely on: for any parsed
script ``s``, ``parse_script(script_to_smtlib(s)) == s``.  Two printing
choices keep that law simple:

* Bit-vector constants print as ``#x...`` when the width is a multiple of
  four and as ``#b...`` otherwise — both reparse to the identical constant.
* Negative ``Int``/``Real`` constants print as applications ``(- n)``
  (SMT-LIB has no negative literals).  The parser produces non-negative
  constants only, so parsed terms always round-trip exactly; terms built
  programmatically with negative literals round-trip to the equivalent
  negation application.  Likewise a ``Real`` whose value has no finite
  decimal expansion prints as ``(/ p.0 q.0)``.

Term rendering is context-free, so it memoizes per hash-consed node:
subterms shared across a term DAG are rendered once per call.
"""

from __future__ import annotations

from fractions import Fraction

from .evaluate import ArrayValue
from .lexer import quote_identifier
from .sorts import BOOL, INT, REAL, STRING, Sort, is_bitvec
from .terms import Apply, Constant, Let, Quantifier, Symbol, Term


def symbol_to_smtlib(name: str) -> str:
    """Render an *identifier*, quoting with ``|...|`` when it is not simple
    or is a reserved word (``|let|`` is an ordinary symbol; bare ``let`` is
    the keyword).  Raises :class:`~repro.errors.PrinterError` for names
    SMT-LIB cannot express (alias of :func:`repro.smtlib.lexer.quote_identifier`)."""
    return quote_identifier(name)


def sort_to_smtlib(sort: Sort) -> str:
    """Render a sort (delegates to :meth:`Sort.to_smtlib`)."""
    return sort.to_smtlib()


# ---------------------------------------------------------------------------
# Constants.
# ---------------------------------------------------------------------------


def _decimal_text(value: Fraction) -> str:
    """Finite decimal for a non-negative fraction, or '' when none exists."""
    denominator = value.denominator
    twos = fives = 0
    while denominator % 2 == 0:
        denominator //= 2
        twos += 1
    while denominator % 5 == 0:
        denominator //= 5
        fives += 1
    if denominator != 1:
        return ""
    places = max(twos, fives)
    scaled = value.numerator * 10**places // value.denominator
    if places == 0:
        return f"{scaled}.0"
    digits = str(scaled).rjust(places + 1, "0")
    return f"{digits[:-places]}.{digits[-places:]}"


def constant_to_smtlib(constant: Constant) -> str:
    sort, value = constant.sort, constant.value
    if isinstance(value, ArrayValue):
        # Evaluated array values print as a store chain over their base.
        text = constant_to_smtlib(value.base)
        for index, element in sorted(
            value.updates.items(), key=lambda item: constant_to_smtlib(item[0])
        ):
            text = (
                f"(store {text} {constant_to_smtlib(index)}"
                f" {constant_to_smtlib(element)})"
            )
        return text
    if constant.qualifier:
        return f"(as {symbol_to_smtlib(constant.qualifier)} {sort.to_smtlib()})"
    if sort == BOOL:
        return "true" if value else "false"
    if sort == INT:
        return str(value) if value >= 0 else f"(- {-value})"
    if sort == REAL:
        fraction = Fraction(value)
        sign = fraction < 0
        text = _decimal_text(abs(fraction))
        if not text:
            text = f"(/ {abs(fraction.numerator)}.0 {fraction.denominator}.0)"
        return f"(- {text})" if sign else text
    if sort == STRING:
        return '"' + str(value).replace('"', '""') + '"'
    if is_bitvec(sort):
        width = sort.width
        if width % 4 == 0:
            return "#x{:0{}x}".format(value, width // 4)
        return "#b{:0{}b}".format(value, width)
    raise ValueError(f"cannot print constant of sort {sort}: {constant!r}")


# ---------------------------------------------------------------------------
# Terms.
# ---------------------------------------------------------------------------


def term_to_smtlib(term: Term) -> str:
    """Render a term in concrete SMT-LIB syntax.

    Printing is context-free, so the renderer memoizes per distinct node:
    with hash-consed terms, a subterm shared by many parents is rendered
    once per call no matter how often it occurs.
    """
    return _term_text(term, {})


def _term_text(term: Term, memo: dict[Term, str]) -> str:
    cached = memo.get(term)
    if cached is not None:
        return cached
    if isinstance(term, Constant):
        text = constant_to_smtlib(term)
    elif isinstance(term, Symbol):
        text = symbol_to_smtlib(term.name)
    elif isinstance(term, Apply):
        head = symbol_to_smtlib(term.op)
        if term.indices:
            head = "(_ {} {})".format(head, " ".join(str(i) for i in term.indices))
        if not term.args:
            text = f"({head})"
        else:
            # Plain loop, not a genexpr, so deep terms print in linear time.
            parts = []
            for a in term.args:
                parts.append(_term_text(a, memo))
            text = "({} {})".format(head, " ".join(parts))
    elif isinstance(term, Quantifier):
        bindings = " ".join(
            f"({symbol_to_smtlib(name)} {sort.to_smtlib()})" for name, sort in term.bindings
        )
        text = f"({term.kind} ({bindings}) {_term_text(term.body, memo)})"
    elif isinstance(term, Let):
        bindings = " ".join(
            f"({symbol_to_smtlib(name)} {_term_text(value, memo)})"
            for name, value in term.bindings
        )
        text = f"(let ({bindings}) {_term_text(term.body, memo)})"
    else:
        raise TypeError(f"unknown term node: {term!r}")
    memo[term] = text
    return text


# ---------------------------------------------------------------------------
# Commands and scripts.
# ---------------------------------------------------------------------------


def command_to_smtlib(command) -> str:
    """Render one command in concrete SMT-LIB syntax."""
    from .script import (
        Assert,
        CheckSat,
        DeclareConst,
        DeclareFun,
        DeclareSort,
        DefineFun,
        Exit,
        GetModel,
        GetUnsatCore,
        GetValue,
        Pop,
        Push,
        SetInfo,
        SetLogic,
        SetOption,
    )

    if isinstance(command, SetLogic):
        return f"(set-logic {symbol_to_smtlib(command.logic)})"
    if isinstance(command, SetOption):
        return f"(set-option {command.keyword} {command.value})"
    if isinstance(command, SetInfo):
        return f"(set-info {command.keyword} {command.value})"
    if isinstance(command, DeclareSort):
        return f"(declare-sort {symbol_to_smtlib(command.name)} {command.arity})"
    if isinstance(command, DeclareFun):
        params = " ".join(sort.to_smtlib() for sort in command.params)
        return "(declare-fun {} ({}) {})".format(
            symbol_to_smtlib(command.name), params, command.result.to_smtlib()
        )
    if isinstance(command, DeclareConst):
        return f"(declare-const {symbol_to_smtlib(command.name)} {command.sort.to_smtlib()})"
    if isinstance(command, DefineFun):
        params = " ".join(
            f"({symbol_to_smtlib(name)} {sort.to_smtlib()})" for name, sort in command.params
        )
        return "(define-fun {} ({}) {} {})".format(
            symbol_to_smtlib(command.name),
            params,
            command.result.to_smtlib(),
            term_to_smtlib(command.body),
        )
    if isinstance(command, Assert):
        if command.name is not None:
            return "(assert (! {} :named {}))".format(
                term_to_smtlib(command.term), symbol_to_smtlib(command.name)
            )
        return f"(assert {term_to_smtlib(command.term)})"
    if isinstance(command, CheckSat):
        return "(check-sat)"
    if isinstance(command, GetModel):
        return "(get-model)"
    if isinstance(command, GetUnsatCore):
        return "(get-unsat-core)"
    if isinstance(command, GetValue):
        terms = " ".join(term_to_smtlib(term) for term in command.terms)
        return f"(get-value ({terms}))"
    if isinstance(command, Push):
        return f"(push {command.levels})"
    if isinstance(command, Pop):
        return f"(pop {command.levels})"
    if isinstance(command, Exit):
        return "(exit)"
    raise TypeError(f"unknown command: {command!r}")


def script_to_smtlib(script) -> str:
    """Render a whole script, one command per line, with trailing newline."""
    lines = [command_to_smtlib(command) for command in script.commands]
    return "\n".join(lines) + ("\n" if lines else "")


__all__ = [
    "symbol_to_smtlib",
    "sort_to_smtlib",
    "constant_to_smtlib",
    "term_to_smtlib",
    "command_to_smtlib",
    "script_to_smtlib",
]
