"""Theory-aware, rewrite-to-fixpoint term simplification.

The simplifier rewrites terms bottom-up, memoized over the hash-consed DAG
(each distinct subterm is simplified once no matter how often it is
shared), and applies node-local rules until none fires:

* **Ground folding** — any application whose arguments are all literals is
  folded through the shared literal operator table in
  :mod:`repro.smtlib.evaluate`; partial constant runs inside n-ary
  applications fold through the *same* table, so the simplifier and the
  evaluator agree on literal semantics by construction.
* **Core** — boolean identities (``and``/``or`` unit and absorbing
  elements, duplicate and complementary-literal elimination, double
  negation, ``xor``/``=>`` constant elimination), ``ite`` collapsing, and
  reflexive ``=``/``distinct``/comparison collapsing.
* **Ints/Reals** — n-ary constant folding with ``+``/``*`` identity and
  absorption, nested same-operator flattening, ``(- x 0)``, ``(div x 1)``,
  ``(mod x 1)``, ``(/ x 1)`` and ``to_int``/``to_real`` cancellation.
* **BitVec** — the same algebraic treatment for ``bvadd``/``bvmul``/
  ``bvand``/``bvor``/``bvxor``, adjacent-literal ``concat`` merging,
  whole-width ``extract`` elimination, and zero-shift/zero-extend/rotate
  identities.
* **Strings** — adjacent-literal ``str.++`` merging with empty-string
  elimination (``str.len`` and friends fold through the ground table).

Binder handling is conservative and capture-free: a nested ``let`` spine
is processed in one sweep, accumulating *literal* bindings into a single
substitution environment (constants are closed terms, so substituting
them can never capture), dropping unused bindings, and keeping symbolic
bindings in place.  A quantifier whose body simplifies to a literal
collapses to it, and binders unused in the body are dropped (sound
because SMT-LIB sorts are non-empty).  Free-variable sets are memoized
per node, so binder-heavy terms simplify in time proportional to DAG
size, not depth squared.

Every rule is sort-preserving, so ``simplify(t).sort == t.sort`` and the
result still passes :func:`repro.smtlib.typecheck.check`.  All rules
strictly decrease the lexicographic measure (tree size, literal count,
nesting depth), so the local fixpoint loop terminates; with hash-consing,
``simplify(simplify(t)) == simplify(t)`` is an identity check.

:func:`simplify_script` rewrites every ``assert`` of a script through one
shared memo table.
"""

from __future__ import annotations

from typing import Callable, Optional

from .evaluate import fold_apply
from .linarith import is_numeric_term, linear_form
from .script import Script
from .sorts import BOOL, INT, STRING, Sort, bitvec_sort
from .terms import (
    FALSE,
    TRUE,
    Apply,
    Constant,
    Let,
    Quantifier,
    Symbol,
    Term,
    bool_const,
    negate,
    substitute,
)

#: Flattening a nested associative application stops once the flattened
#: argument list would exceed this many entries.  The cap keeps deep
#: *chains* fully foldable while preventing a shared doubling DAG
#: (``t = (+ t t)`` repeated) from being linearised into an
#: exponentially wide node.
FLATTEN_LIMIT = 128


def simplify(term: Term) -> Term:
    """Simplify ``term`` to a rewrite fixpoint.  Sort-preserving."""
    return _simplify(term, {}, {})


def simplify_script(script: Script) -> Script:
    """Rewrite every ``assert`` of ``script`` through the simplifier.

    Other commands (declarations, options, ``check-sat`` ...) are kept
    as-is; all assertions share one memo table so common subterms across
    assertions are simplified once.
    """
    memo: dict[Term, Term] = {}
    free: dict[Term, frozenset[str]] = {}
    return script.map_assertions(lambda term: _simplify(term, memo, free))


# ---------------------------------------------------------------------------
# Free-variable sets, memoized per node.
# ---------------------------------------------------------------------------

_NO_NAMES: frozenset[str] = frozenset()


def _free_names(term: Term, free: dict[Term, frozenset[str]]) -> frozenset[str]:
    """Names of the free symbols of ``term`` (context-free, so cacheable
    per node across the whole simplification pass)."""
    cached = free.get(term)
    if cached is not None:
        return cached
    if isinstance(term, Symbol):
        names = frozenset((term.name,))
    elif isinstance(term, Constant):
        names = _NO_NAMES
    elif isinstance(term, Apply):
        collected: set[str] = set()
        for arg in term.args:
            collected |= _free_names(arg, free)
        names = frozenset(collected)
    elif isinstance(term, Quantifier):
        names = _free_names(term.body, free) - {name for name, _ in term.bindings}
    elif isinstance(term, Let):
        collected = set(_free_names(term.body, free))
        collected -= {name for name, _ in term.bindings}
        for _, value in term.bindings:
            collected |= _free_names(value, free)
        names = frozenset(collected)
    else:
        raise TypeError(f"unknown term node: {term!r}")
    free[term] = names
    return names


# ---------------------------------------------------------------------------
# The bottom-up driver.
# ---------------------------------------------------------------------------


def _simplify(
    term: Term,
    memo: dict[Term, Term],
    free: dict[Term, frozenset[str]],
) -> Term:
    cached = memo.get(term)
    if cached is not None:
        return cached
    if isinstance(term, (Constant, Symbol)):
        result: Term = term
    elif isinstance(term, Apply):
        # Plain loop, not a genexpr: pure-Python recursion stays stackless
        # on CPython 3.11+, while a genexpr re-enters the C interpreter at
        # every level and makes deep chains quadratically slower.
        simplified = []
        for arg in term.args:
            simplified.append(_simplify(arg, memo, free))
        args = tuple(simplified)
        node = Apply(term.op, args, term.sort, term.indices)
        rewritten = _apply_rules(node)
        result = node if rewritten is node else _simplify(rewritten, memo, free)
    elif isinstance(term, Quantifier):
        body = _simplify(term.body, memo, free)
        used = _free_names(body, free)
        kept = tuple((name, sort) for name, sort in term.bindings if name in used)
        if not kept:
            result = body  # constant body, or no binding used: Bool either way
        else:
            result = Quantifier(term.kind, kept, body)
    elif isinstance(term, Let):
        result = _simplify_let(term, memo, free)
    else:
        raise TypeError(f"unknown term node: {term!r}")
    memo[term] = result
    memo[result] = result
    return result


def _simplify_let(
    term: Let,
    memo: dict[Term, Term],
    free: dict[Term, frozenset[str]],
) -> Term:
    """Process a whole nested-``let`` spine in one sweep.

    Literal bindings accumulate into a single substitution environment
    (constants are closed, so substituting them can never capture a
    variable); symbolic bindings are kept as ``let`` frames.  Walking the
    spine once — instead of substituting at every nesting level — keeps
    deep ``let`` chains linear.
    """
    env: dict[str, Term] = {}
    frames: list[list[tuple[str, Term]]] = []
    node: Term = term
    while isinstance(node, Let):
        kept: list[tuple[str, Term]] = []
        bound_here = []
        for name, value in node.bindings:
            # Parallel let: values see the outer environment only.  The
            # environment is restricted to the value's free names so the
            # substitution never copies the whole (possibly deep-chain
            # sized) environment.
            needed = _restrict(env, value, free)
            value = substitute(value, needed) if needed else value
            value = _simplify(value, memo, free)
            bound_here.append((name, value))
        for name, _ in node.bindings:
            env.pop(name, None)  # names bound here shadow outer entries
        for name, value in bound_here:
            if isinstance(value, Constant):
                env[name] = value
            else:
                kept.append((name, value))
        frames.append(kept)
        node = node.body
    needed = _restrict(env, node, free)
    body = substitute(node, needed) if needed else node
    result = _simplify(body, memo, free)
    for kept in reversed(frames):
        used = _free_names(result, free)
        remaining = tuple((name, value) for name, value in kept if name in used)
        if remaining:
            result = Let(remaining, result)
    return result


def _restrict(
    env: dict[str, Term],
    term: Term,
    free: dict[Term, frozenset[str]],
) -> dict[str, Term]:
    """The part of ``env`` that can occur free in ``term``."""
    if not env:
        return env
    restricted = {}
    for name in _free_names(term, free):
        value = env.get(name)
        if value is not None:
            restricted[name] = value
    return restricted


# ---------------------------------------------------------------------------
# Node-local rules.
# ---------------------------------------------------------------------------


def _apply_rules(node: Apply) -> Term:
    if node.args and all(isinstance(a, Constant) for a in node.args):
        folded = fold_apply(node.op, node.indices, node.args, node.sort)
        if folded is not None:
            return folded
    rule = _RULES.get(node.op)
    if rule is not None:
        return rule(node)
    return node


def _flatten(op: str, args: tuple[Term, ...]) -> tuple[Term, ...]:
    """Inline nested un-indexed applications of the same associative ``op``,
    bounded by :data:`FLATTEN_LIMIT`."""
    if not any(isinstance(a, Apply) and a.op == op and not a.indices for a in args):
        return args
    flat: list[Term] = []
    for a in args:
        if isinstance(a, Apply) and a.op == op and not a.indices:
            flat.extend(a.args)
        else:
            flat.append(a)
    if len(flat) > FLATTEN_LIMIT:
        return args
    return tuple(flat)


def _fold_run(op: str, constants: list[Constant], sort: Sort) -> Optional[Constant]:
    """Fold a run of literal arguments through the shared operator table,
    so partial folding can never disagree with the evaluator."""
    if len(constants) == 1:
        return constants[0]
    return fold_apply(op, (), tuple(constants), sort)


def _rule_not(node: Apply) -> Term:
    (arg,) = node.args
    if arg is TRUE:
        return FALSE
    if arg is FALSE:
        return TRUE
    if isinstance(arg, Apply) and arg.op == "not":
        return arg.args[0]
    return node


def _bool_connective(absorber: Constant, identity: Constant) -> Callable[[Apply], Term]:
    """``and`` (absorber false, identity true) and ``or`` (dual): flatten,
    drop identity elements and duplicates, short-circuit on the absorber or
    on a complementary pair."""

    def rule(node: Apply) -> Term:
        args = _flatten(node.op, node.args)
        kept: list[Term] = []
        seen: set[Term] = set()
        for arg in args:
            if arg is absorber:
                return absorber
            if arg is identity or arg in seen:
                continue
            seen.add(arg)
            kept.append(arg)
        for arg in kept:
            if isinstance(arg, Apply) and arg.op == "not" and arg.args[0] in seen:
                return absorber
        if not kept:
            return identity
        if len(kept) == 1:
            return kept[0]
        if tuple(kept) == node.args:
            return node
        return Apply(node.op, tuple(kept), BOOL)

    return rule


def _rule_xor(node: Apply) -> Term:
    args = _flatten("xor", node.args)
    constants = [a for a in args if isinstance(a, Constant)]
    if not constants and args == node.args:
        return node
    rest = [a for a in args if not isinstance(a, Constant)]
    parity = bool(_fold_run("xor", constants, BOOL).value) if constants else False
    if not rest:
        return bool_const(parity)
    inner = rest[0] if len(rest) == 1 else Apply("xor", tuple(rest), BOOL)
    if parity:
        return Apply("not", (inner,), BOOL)
    return inner


def _rule_implies(node: Apply) -> Term:
    args = node.args
    if args[-1] is TRUE:
        return TRUE
    if any(a is FALSE for a in args[:-1]):
        return TRUE
    premises = [a for a in args[:-1] if a is not TRUE]
    if args[-1] is FALSE and premises:
        negated = premises[0] if len(premises) == 1 else Apply("and", tuple(premises), BOOL)
        return Apply("not", (negated,), BOOL)
    if not premises:
        return args[-1]
    if len(premises) == len(args) - 1:
        return node
    return Apply("=>", tuple(premises) + (args[-1],), BOOL)


def _linear_forms(args: tuple[Term, ...]):
    """``linear_form`` of each argument, computed once per argument (a
    pairwise ``difference_form`` would re-walk every term n-1 times)."""
    return [linear_form(arg) for arg in args]


def _forms_difference(left, right):
    """The rational value of ``left - right`` for two linear forms whose
    variables cancel exactly, else ``None``."""
    if left is None or right is None or left[0] != right[0]:
        return None
    return left[1] - right[1]


def _rule_eq(node: Apply) -> Term:
    args = node.args
    if all(a is args[0] for a in args[1:]):
        return TRUE
    if len(args) == 2 and args[0].sort == BOOL:
        for value, other in ((args[0], args[1]), (args[1], args[0])):
            if value is TRUE:
                return other
            if value is FALSE:
                return Apply("not", (other,), BOOL)
    if is_numeric_term(args[0]):
        # Linear normalization: fold when adjacent differences are ground
        # (adjacent equalities chain, so one non-zero difference refutes
        # the whole atom and all-zero differences prove it).
        forms = _linear_forms(args)
        ground = 0
        for left, right in zip(forms, forms[1:]):
            difference = _forms_difference(left, right)
            if difference is None:
                continue
            if difference != 0:
                return FALSE
            ground += 1
        if ground == len(args) - 1:
            return TRUE
    return node


def _rule_distinct(node: Apply) -> Term:
    args = node.args
    if len(set(args)) != len(args):
        return FALSE
    if args[0].sort == BOOL:
        if len(args) > 2:
            return FALSE  # three pairwise-distinct booleans cannot exist
        for value, other in ((args[0], args[1]), (args[1], args[0])):
            if value is TRUE:
                return Apply("not", (other,), BOOL)
            if value is FALSE:
                return other
    if is_numeric_term(args[0]):
        forms = _linear_forms(args)
        ground = 0
        for i in range(len(args)):
            for j in range(i + 1, len(args)):
                difference = _forms_difference(forms[i], forms[j])
                if difference is None:
                    continue
                if difference == 0:
                    return FALSE
                ground += 1
        if ground == len(args) * (len(args) - 1) // 2:
            return TRUE
    return node


def _rule_ite(node: Apply) -> Term:
    condition, then, other = node.args
    if condition is TRUE:
        return then
    if condition is FALSE:
        return other
    if then is other:
        return then
    if then is TRUE and other is FALSE:
        return condition
    if then is FALSE and other is TRUE:
        return Apply("not", (condition,), BOOL)
    if isinstance(condition, Apply) and condition.op == "not":
        return Apply("ite", (condition.args[0], other, then), node.sort)
    return node


def _ac_fold(node: Apply, identity: object, absorber: Optional[object] = None) -> Term:
    """Associative/commutative n-ary operator: flatten nested applications,
    fold the literal arguments into one trailing constant (via the shared
    operator table), drop the identity element and short-circuit on the
    absorbing element."""
    args = _flatten(node.op, node.args)
    constants = [a for a in args if isinstance(a, Constant)]
    if not constants and args == node.args:
        return node
    rest = [a for a in args if not isinstance(a, Constant)]
    folded = _fold_run(node.op, constants, node.sort) if constants else None
    if folded is None and constants:
        return node  # the table could not fold this run; leave it alone
    if absorber is not None and folded is not None and folded.value == absorber:
        return folded
    terms = list(rest)
    if folded is not None and (folded.value != identity or not rest):
        terms.append(folded)
    if not terms:
        return Constant(identity, node.sort)  # pragma: no cover - defensive
    if len(terms) == 1:
        return terms[0]
    if tuple(terms) == node.args:
        return node
    return Apply(node.op, tuple(terms), node.sort)


def _all_ones(sort: Sort) -> int:
    return (1 << sort.width) - 1


def _rule_add(node: Apply) -> Term:
    return _ac_fold(node, 0)


def _rule_mul(node: Apply) -> Term:
    return _ac_fold(node, 1, absorber=0)


def _rule_bvxor(node: Apply) -> Term:
    return _ac_fold(node, 0)


def _rule_bvand(node: Apply) -> Term:
    return _ac_fold(node, _all_ones(node.sort), absorber=0)


def _rule_bvor(node: Apply) -> Term:
    return _ac_fold(node, 0, absorber=_all_ones(node.sort))


def _rule_minus(node: Apply) -> Term:
    args = node.args
    if len(args) == 1:
        (arg,) = args
        if isinstance(arg, Apply) and arg.op == "-" and len(arg.args) == 1:
            return arg.args[0]
        return node
    tail = [a for a in args[1:] if not (isinstance(a, Constant) and a.value == 0)]
    if len(tail) == len(args) - 1:
        return node
    if not tail:
        return args[0]
    return Apply("-", (args[0], *tail), node.sort)


def _drop_identity_tail(identity: object) -> Callable[[Apply], Term]:
    """Left-associative operator: drop trailing identity-element literals
    (``(div x 1)`` → ``x``, ``(bvshl x #x00)`` → ``x`` ...)."""

    def rule(node: Apply) -> Term:
        args = node.args
        tail = [a for a in args[1:] if not (isinstance(a, Constant) and a.value == identity)]
        if len(tail) == len(args) - 1:
            return node
        if not tail:
            return args[0]
        return Apply(node.op, (args[0], *tail), node.sort)

    return rule


def _rule_mod(node: Apply) -> Term:
    divisor = node.args[1]
    if isinstance(divisor, Constant) and divisor.value == 1:
        return Constant(0, INT)
    return node


def _rule_to_int(node: Apply) -> Term:
    (arg,) = node.args
    if isinstance(arg, Apply) and arg.op == "to_real":
        return arg.args[0]
    return node


_REFLEXIVE_COMPARE = {
    "<": False, ">": False, "<=": True, ">=": True,
    "bvult": False, "bvugt": False, "bvslt": False, "bvsgt": False,
    "bvule": True, "bvuge": True, "bvsle": True, "bvsge": True,
    "str.<": False, "str.<=": True,
}


_COMPARE_VERDICT: dict[str, Callable[[object], bool]] = {
    "<": lambda d: d < 0,  # type: ignore[operator]
    "<=": lambda d: d <= 0,  # type: ignore[operator]
    ">": lambda d: d > 0,  # type: ignore[operator]
    ">=": lambda d: d >= 0,  # type: ignore[operator]
}


def _rule_compare(node: Apply) -> Term:
    if all(a is node.args[0] for a in node.args[1:]):
        return bool_const(_REFLEXIVE_COMPARE[node.op])
    verdict = _COMPARE_VERDICT.get(node.op)
    if verdict is not None and is_numeric_term(node.args[0]):
        # A chained comparison is the conjunction of its adjacent pairs:
        # one decisively-false pair refutes the atom, all-true proves it.
        forms = _linear_forms(node.args)
        ground = 0
        for left, right in zip(forms, forms[1:]):
            difference = _forms_difference(left, right)
            if difference is None:
                continue
            if not verdict(difference):
                return FALSE
            ground += 1
        if ground == len(node.args) - 1:
            return TRUE
    return node


def _rule_concat(node: Apply) -> Term:
    merged: list[Term] = []
    changed = False
    for arg in node.args:
        if isinstance(arg, Constant) and merged and isinstance(merged[-1], Constant):
            left = merged[-1]
            pair_sort = bitvec_sort(left.sort.width + arg.sort.width)
            merged[-1] = fold_apply("concat", (), (left, arg), pair_sort)
            changed = True
        else:
            merged.append(arg)
    if not changed:
        return node
    if len(merged) == 1:
        return merged[0]
    return Apply("concat", tuple(merged), node.sort)


def _rule_extract(node: Apply) -> Term:
    (arg,) = node.args
    high, low = node.indices
    if low == 0 and high == arg.sort.width - 1:
        return arg
    return node


def _rule_extend(node: Apply) -> Term:
    if node.indices == (0,):
        return node.args[0]
    return node


def _rule_rotate(node: Apply) -> Term:
    (arg,) = node.args
    if node.indices[0] % arg.sort.width == 0:
        return arg
    return node


def _rule_repeat(node: Apply) -> Term:
    if node.indices == (1,):
        return node.args[0]
    return node


def _rule_str_concat(node: Apply) -> Term:
    merged: list[Term] = []
    changed = False
    for arg in _flatten("str.++", node.args):
        if isinstance(arg, Constant):
            if arg.value == "":
                changed = True
                continue
            if merged and isinstance(merged[-1], Constant):
                merged[-1] = fold_apply("str.++", (), (merged[-1], arg), STRING)
                changed = True
                continue
        merged.append(arg)
    if not changed and tuple(merged) == node.args:
        return node
    if not merged:
        return Constant("", STRING)
    if len(merged) == 1:
        return merged[0]
    return Apply("str.++", tuple(merged), STRING)


_RULES: dict[str, Callable[[Apply], Term]] = {
    # Core
    "not": _rule_not,
    "and": _bool_connective(FALSE, TRUE),
    "or": _bool_connective(TRUE, FALSE),
    "xor": _rule_xor,
    "=>": _rule_implies,
    "=": _rule_eq,
    "distinct": _rule_distinct,
    "ite": _rule_ite,
    # Ints / Reals
    "+": _rule_add,
    "*": _rule_mul,
    "-": _rule_minus,
    "div": _drop_identity_tail(1),
    "mod": _rule_mod,
    "/": _drop_identity_tail(1),
    "to_int": _rule_to_int,
    # BitVec
    "bvadd": _rule_add,
    "bvmul": _rule_mul,
    "bvxor": _rule_bvxor,
    "bvand": _rule_bvand,
    "bvor": _rule_bvor,
    "bvsub": _drop_identity_tail(0),
    "bvshl": _drop_identity_tail(0),
    "bvlshr": _drop_identity_tail(0),
    "bvashr": _drop_identity_tail(0),
    "bvudiv": _drop_identity_tail(1),
    "concat": _rule_concat,
    "extract": _rule_extract,
    "zero_extend": _rule_extend,
    "sign_extend": _rule_extend,
    "rotate_left": _rule_rotate,
    "rotate_right": _rule_rotate,
    "repeat": _rule_repeat,
    # Strings
    "str.++": _rule_str_concat,
}
_RULES.update({op: _rule_compare for op in _REFLEXIVE_COMPARE})


# ---------------------------------------------------------------------------
# Negation normal form.
# ---------------------------------------------------------------------------

_DUAL_QUANTIFIER = {"forall": "exists", "exists": "forall"}


def to_nnf(term: Term) -> Term:
    """Negation normal form: push ``not`` down to the atoms of a boolean
    skeleton, tracking polarity.

    After the pass, ``not`` appears only directly above *atoms* (boolean
    symbols, theory applications, quantified subterms).  ``and``/``or`` are
    dualised by De Morgan, ``=>`` expands to its ``or`` form, and the
    parity-style connectives absorb negation into themselves instead of
    expanding: a negated ``xor`` flips the polarity of its last argument, a
    negated boolean ``=`` (iff) becomes ``xor`` (and vice versa for boolean
    ``distinct``), and a negated ``ite`` negates both branches.  Quantifiers
    dualise (``not forall`` → ``exists not``); ``let`` pushes the negation
    into the body only, leaving bound values untouched (their occurrences'
    polarity is not determined by the binder).

    The rewrite is memoized per ``(node, polarity)`` pair over the
    hash-consed DAG, so a subterm shared by many parents is converted once
    per polarity and the result is again a maximally shared DAG — the
    Tseitin encoder relies on this to give shared subterms one auxiliary
    variable.  Sort-preserving; semantics-preserving for every ``Bool``
    term (non-boolean subterms are never entered).
    """
    if term.sort != BOOL:
        raise ValueError(f"to_nnf expects a Bool term, got sort {term.sort}")
    return _nnf(term, True, {})


def _nnf(term: Term, positive: bool, memo: dict[tuple[Term, bool], Term]) -> Term:
    key = (term, positive)
    cached = memo.get(key)
    if cached is not None:
        return cached
    result = _nnf_node(term, positive, memo)
    memo[key] = result
    return result


def _nnf_node(term: Term, positive: bool, memo: dict[tuple[Term, bool], Term]) -> Term:
    if isinstance(term, Constant):
        if term is TRUE or term is FALSE:
            return term if positive else negate(term)
        return term if positive else Apply("not", (term,), BOOL)
    if isinstance(term, Symbol):
        return term if positive else Apply("not", (term,), BOOL)
    if isinstance(term, Quantifier):
        kind = term.kind if positive else _DUAL_QUANTIFIER[term.kind]
        body = _nnf(term.body, positive, memo)
        if body is term.body and kind == term.kind:
            return term
        return Quantifier(kind, term.bindings, body)
    if isinstance(term, Let):
        body = _nnf(term.body, positive, memo)
        if body is term.body:
            return term
        return Let(term.bindings, body)
    if isinstance(term, Apply):
        op = term.op
        args = term.args
        if op == "not":
            return _nnf(args[0], not positive, memo)
        if op in ("and", "or"):
            if not positive:
                op = "or" if op == "and" else "and"
            rewritten = []
            for arg in args:
                rewritten.append(_nnf(arg, positive, memo))
            new_args = tuple(rewritten)
            if positive and new_args == args:
                return term
            return Apply(op, new_args, BOOL)
        if op == "=>":
            # (=> a1 ... an b) == (or (not a1) ... (not an) b); the negation
            # is the dual conjunction.
            premises = tuple(_nnf(a, not positive, memo) for a in args[:-1])
            conclusion = _nnf(args[-1], positive, memo)
            return Apply("or" if positive else "and", premises + (conclusion,), BOOL)
        if op == "xor":
            # Negating a parity constraint flips the polarity of exactly one
            # argument; the last is as good as any.
            head = tuple(_nnf(a, True, memo) for a in args[:-1])
            tail = _nnf(args[-1], positive, memo)
            new_args = head + (tail,)
            if positive and new_args == args:
                return term
            return Apply("xor", new_args, BOOL)
        if op == "=" and args and args[0].sort == BOOL:
            return _nnf_iff(term, positive, memo)
        if op == "distinct" and args and args[0].sort == BOOL:
            if len(args) > 2:
                # No three booleans are pairwise distinct.
                return FALSE if positive else TRUE
            pair = tuple(_nnf(a, True, memo) for a in args)
            return Apply("xor" if positive else "=", pair, BOOL)
        if op == "ite" and term.sort == BOOL:
            condition = _nnf(args[0], True, memo)
            then = _nnf(args[1], positive, memo)
            other = _nnf(args[2], positive, memo)
            new_args = (condition, then, other)
            if positive and new_args == args:
                return term
            return Apply("ite", new_args, BOOL)
        # Theory atom (comparison, uninterpreted application ...): opaque.
        return term if positive else Apply("not", (term,), BOOL)
    raise TypeError(f"unknown term node: {term!r}")


def _nnf_iff(term: Apply, positive: bool, memo: dict[tuple[Term, bool], Term]) -> Term:
    args = tuple(_nnf(a, True, memo) for a in term.args)
    if len(args) == 2:
        if positive:
            return term if args == term.args else Apply("=", args, BOOL)
        return Apply("xor", args, BOOL)
    # Chained boolean equality is the conjunction of adjacent iffs; its
    # negation is the disjunction of adjacent xors.
    inner_op = "=" if positive else "xor"
    pairs = tuple(Apply(inner_op, (a, b), BOOL) for a, b in zip(args, args[1:]))
    return Apply("and" if positive else "or", pairs, BOOL)


__all__ = ["simplify", "simplify_script", "to_nnf", "FLATTEN_LIMIT"]
